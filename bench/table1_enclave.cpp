// Reproduces Table 1 (Appendix C): no-service vs null-service datapath
// throughput and latency, with and without enclaves.
//
// Paper setup: "the packet arrives on an ingress pipe to the pipe-terminus,
// then is sent to a service module (via IPC) which immediately returns the
// packet to the pipe-terminus, which then sends it to an egress pipe. The
// no-service case is where the packet is merely received by the
// pipe-terminus and then forwarded out the egress pipe." Two cores for
// null-service (one terminus, one service), 64 outstanding packets.
//
// This harness drives the real library datapath: PSP-sealed ILP pipes,
// the decision cache/pipe-terminus, the socketpair IPC channel to a real
// service thread running the null service in the execution environment,
// and the enclave cost model (SEV-style bounce-buffer copies at the VM
// I/O boundary, plus enclave_runtime's module-boundary copies) standing
// in for AMD SEV.
//
//   ./bench/table1_enclave [--duration_ms=400] [--payload=1000] [--outstanding=64]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "core/channel.h"
#include "core/decision_cache.h"
#include "core/exec_env.h"
#include "core/pipe_terminus.h"
#include "core/service_node.h"
#include "enclave/enclave.h"
#include "ilp/pipe.h"
#include "services/null_service.h"

using namespace interedge;
using steady = std::chrono::steady_clock;

namespace {

constexpr core::peer_id kHost = 1;
constexpr core::peer_id kEgressPeer = 2;

// SEV-style whole-VM I/O cost applied at the pipe boundary: a bounce-buffer
// copy plus a calibrated per-crossing spin. Used for the "Enclave? Yes"
// rows; the null-service rows additionally wrap the module in
// enclave_runtime (module-boundary crossings).
struct vm_boundary {
  bool enabled = false;
  bytes bounce;
  std::uint64_t checksum = 0;
  void cross(const_byte_span data) {
    if (!enabled) return;
    // Bounce-buffer copy: data crossing the SEV boundary moves through
    // shared unencrypted pages (swiotlb); the memory-controller
    // re-encryption runs at memcpy-like speed, so one extra copy per
    // crossing is the faithful per-byte model. (SEV's compute overhead is
    // "little" — Appendix C — and the paper indeed measured only ~1%
    // throughput cost on this row.)
    bounce.resize(data.size());
    std::memcpy(bounce.data(), data.data(), data.size());
    checksum ^= bounce[bounce.size() / 2];
    benchmark_do_not_optimize(checksum);
  }
  static void benchmark_do_not_optimize(std::uint64_t& v) {
    asm volatile("" : "+r"(v));
  }
};

struct bench_result {
  double pps = 0;
  double mean_us = 0;
  double p50_us = 0;
};

// Minimal node_services for running the execution environment standalone.
class bench_node final : public core::node_services {
 public:
  core::peer_id node_id() const override { return 100; }
  std::uint16_t edomain() const override { return 1; }
  const interedge::clock& node_clock() const override { return real_clock::instance(); }
  void send(core::peer_id, const ilp::ilp_header&, bytes) override {}
  void schedule(nanoseconds, std::function<void()>) override {}
  std::optional<core::peer_id> next_hop(core::edge_addr dest) const override { return dest; }
  core::decision_cache& cache() override { return cache_; }
  metrics_registry& metrics() override { return metrics_; }

 private:
  core::decision_cache cache_{64};
  metrics_registry metrics_;
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(steady::now().time_since_epoch())
          .count());
}

// Thread CPU time: immune to scheduler noise from other processes — used
// to rate the single-threaded no-service datapath.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e9;
}

// Builds the sealed ingress wire image for one packet whose payload begins
// with an 8-byte injection timestamp (rewritten per send).
struct pipe_pair {
  ilp::pipe host_side;   // seals ingress traffic (the load generator)
  ilp::pipe sn_ingress;  // SN's end of the host pipe
  ilp::pipe sn_egress;   // SN's end of the egress pipe
  ilp::pipe peer_side;   // far end of the egress pipe

  pipe_pair()
      : host_side(to_bytes("ingress-pipe-secret-32-bytes!!!!"), 10, 20, true),
        sn_ingress(to_bytes("ingress-pipe-secret-32-bytes!!!!"), 20, 10, false),
        sn_egress(to_bytes("egress--pipe-secret-32-bytes!!!!"), 30, 40, true),
        peer_side(to_bytes("egress--pipe-secret-32-bytes!!!!"), 40, 30, false) {}
};

ilp::ilp_header bench_header() {
  ilp::ilp_header h;
  h.service = ilp::svc::null_service;
  h.connection = 7;
  h.set_meta_u64(ilp::meta_key::dest_addr, kEgressPeer);
  return h;
}

// ---- no-service: pipe-terminus fast path only, one core ----------------
bench_result run_no_service(bool enclave, std::chrono::milliseconds duration,
                            std::size_t payload_size) {
  pipe_pair pipes;
  vm_boundary boundary{enclave, {}};
  core::decision_cache cache(1024);
  cache.insert(core::cache_key{kHost, ilp::svc::null_service, 7},
               core::decision::forward_to(kEgressPeer));

  histogram latency;
  std::uint64_t processed = 0;

  bytes payload(payload_size, 0x5a);
  const ilp::ilp_header header = bench_header();

  const double cpu0 = thread_cpu_seconds();
  const auto deadline = steady::now() + duration;
  while (steady::now() < deadline) {
    // Load generator: stamp + seal (not charged to the SN's latency).
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < 8; ++i) payload[i] = static_cast<std::uint8_t>(t0 >> (8 * i));
    const bytes wire = pipes.host_side.seal(header, payload);

    // ---- SN datapath under test ----
    boundary.cross(wire);  // VM ingress I/O
    auto opened = pipes.sn_ingress.open(const_byte_span(wire).subspan(1));
    const auto d = cache.lookup(
        core::cache_key{kHost, opened->first.service, opened->first.connection});
    bytes egress_wire = pipes.sn_egress.seal(opened->first, opened->second);
    boundary.cross(egress_wire);  // VM egress I/O
    (void)d;
    // ---- end datapath ----

    latency.record(now_ns() - t0);
    ++processed;
  }
  // The loop is single-threaded: rate it on thread CPU time so preemption
  // by other processes does not masquerade as datapath cost.
  const double seconds = thread_cpu_seconds() - cpu0;
  return {static_cast<double>(processed) / seconds, latency.mean() / 1000.0,
          static_cast<double>(latency.quantile(0.5)) / 1000.0};
}

// ---- null-service: terminus + IPC + service thread, two cores ----------
bench_result run_null_service(bool enclave, std::chrono::milliseconds duration,
                              std::size_t payload_size, std::size_t outstanding) {
  pipe_pair pipes;
  vm_boundary boundary{enclave, {}};
  core::decision_cache cache(1024);  // never hit: every packet consults the service

  bench_node node;
  core::exec_env env(node);
  if (enclave) {
    enclave::enclave_config ec;
    ec.transition_cost = nanoseconds(0);  // copies model the SEV I/O cost
    ec.sealing_secret = to_bytes("bench-secret");
    env.deploy(std::make_unique<enclave::enclave_runtime>(
        std::make_unique<services::null_service>(kEgressPeer), ec));
  } else {
    env.deploy(std::make_unique<services::null_service>(kEgressPeer));
  }

  // The service thread lives inside the IPC channel.
  core::ipc_channel channel([&env](core::slowpath_request req) {
    core::packet pkt;
    pkt.l3_src = req.l3_src;
    pkt.header = ilp::ilp_header::decode(req.header_bytes);
    pkt.payload = std::move(req.payload);
    return core::to_response(req.token, env.dispatch(pkt));
  });

  histogram latency;
  std::uint64_t completed = 0;

  core::pipe_terminus terminus(
      cache, channel,
      [&](core::peer_id, const ilp::ilp_header& h, const_byte_span payload) {
        bytes egress_wire = pipes.sn_egress.seal(h, payload);
        boundary.cross(egress_wire);  // VM egress I/O
        std::uint64_t t0 = 0;
        for (int i = 0; i < 8; ++i) t0 |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
        latency.record(now_ns() - t0);
        ++completed;
      });

  bytes payload(payload_size, 0x5a);
  const ilp::ilp_header header = bench_header();

  const auto deadline = steady::now() + duration;
  while (steady::now() < deadline) {
    while (terminus.in_flight() >= outstanding) terminus.pump();
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < 8; ++i) payload[i] = static_cast<std::uint8_t>(t0 >> (8 * i));
    const bytes wire = pipes.host_side.seal(header, payload);

    boundary.cross(wire);  // VM ingress I/O
    auto opened = pipes.sn_ingress.open(const_byte_span(wire).subspan(1));
    terminus.handle(core::packet{kHost, std::move(opened->first), std::move(opened->second)});
  }
  while (terminus.busy()) terminus.pump();

  const double seconds =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(duration).count()) /
      1e9;
  return {static_cast<double>(completed) / seconds, latency.mean() / 1000.0,
          static_cast<double>(latency.quantile(0.5)) / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const auto duration = std::chrono::milliseconds(flags.get_int("duration_ms", 400));
  const std::size_t payload = static_cast<std::size_t>(flags.get_int("payload", 1000));
  const std::size_t outstanding = static_cast<std::size_t>(flags.get_int("outstanding", 64));

  std::printf("== Table 1: no-service / null-service with and without enclaves ==\n");
  std::printf("(duration %lld ms per cell, %zu-byte payloads, %zu outstanding)\n\n",
              static_cast<long long>(duration.count()), payload, outstanding);
  std::printf("%-14s %-9s %18s %14s %14s\n", "Microbenchmark", "Enclave?", "Throughput (PPS)",
              "Mean lat (us)", "p50 lat (us)");

  struct row {
    const char* name;
    bool null_service;
    bool enclave;
  };
  const row rows[] = {
      {"No-service", false, false},
      {"No-service", false, true},
      {"Null-service", true, false},
      {"Null-service", true, true},
  };

  // Runs for each (microbenchmark, enclave) cell are interleaved so CPU
  // frequency drift hits base and enclave variants equally; the reported
  // value is the per-cell median of 5 runs. Latency is measured unloaded
  // (outstanding = 1), matching the paper's "unloaded median latency".
  constexpr int kReps = 5;
  std::map<std::pair<bool, bool>, std::vector<bench_result>> cells;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const row& r : rows) {
      cells[{r.null_service, r.enclave}].push_back(
          r.null_service ? run_null_service(r.enclave, duration, payload, outstanding)
                         : run_no_service(r.enclave, duration, payload));
    }
  }

  double base_pps[2] = {0, 0};
  for (const row& r : rows) {
    auto& runs = cells[{r.null_service, r.enclave}];
    std::sort(runs.begin(), runs.end(),
              [](const bench_result& a, const bench_result& b) { return a.pps < b.pps; });
    bench_result result = runs[kReps / 2];
    if (r.null_service) {
      const bench_result unloaded =
          run_null_service(r.enclave, duration / 2, payload, /*outstanding=*/1);
      result.mean_us = unloaded.mean_us;
      result.p50_us = unloaded.p50_us;
    }
    std::printf("%-14s %-9s %18.1f %14.2f %14.2f", r.name, r.enclave ? "Yes" : "No",
                result.pps, result.mean_us, result.p50_us);
    if (!r.enclave) {
      base_pps[r.null_service] = result.pps;
      std::printf("\n");
    } else {
      std::printf("   (%.1f%% tput cost)\n",
                  100.0 * (1.0 - result.pps / base_pps[r.null_service]));
    }
  }

  std::printf(
      "\nPaper (AMD EPYC 7B12): 377420/372883 PPS and 12.4/13.1 us (no-service),\n"
      "120018/110627 PPS and 33.0/35.5 us (null-service). Expected shape: the\n"
      "IPC round trip costs ~3x in throughput; enclaves cost <~10%% on each.\n");
  return 0;
}
