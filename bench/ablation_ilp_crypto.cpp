// Ablation A3: ILP header-protection cost. The ILP design goal is
// "minimal impact on packet latency ... beyond the overheads imposed by
// the service itself" (§4). Measures PSP seal/open, full pipe seal/open
// (header-only encryption, payload untouched), the one-time handshake
// (X25519 + HKDF), and a plaintext-copy baseline for reference.
#include <benchmark/benchmark.h>

#include <cstring>

#include "crypto/kdf.h"
#include "crypto/psp.h"
#include "crypto/x25519.h"
#include "ilp/pipe.h"

using namespace interedge;

namespace {

crypto::psp_master_key master() {
  crypto::psp_master_key k;
  k.fill(0x42);
  return k;
}

ilp::ilp_header sample_header() {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = 12345;
  h.set_meta_u64(ilp::meta_key::dest_addr, 99);
  return h;
}

void BM_PspSeal(benchmark::State& state) {
  crypto::psp_context tx(master(), 7);
  const bytes plaintext(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.seal(plaintext, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_PspOpen(benchmark::State& state) {
  crypto::psp_context tx(master(), 7);
  const crypto::psp_context rx(master(), 7);
  const bytes wire = tx.seal(bytes(static_cast<std::size_t>(state.range(0)), 0x5a), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx.open(wire, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

// Full pipe data path: header sealed, payload carried in clear alongside.
void BM_PipeSealOpen(benchmark::State& state) {
  const bytes secret(32, 0x11);
  ilp::pipe a(secret, 1, 2, true);
  ilp::pipe b(secret, 2, 1, false);
  const ilp::ilp_header header = sample_header();
  const bytes payload(static_cast<std::size_t>(state.range(0)), 0x77);
  for (auto _ : state) {
    const bytes wire = a.seal(header, payload);
    benchmark::DoNotOptimize(b.open(const_byte_span(wire).subspan(1)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

// Baseline: what moving the same bytes costs with no protection at all.
void BM_PlaintextCopyBaseline(benchmark::State& state) {
  const bytes payload(static_cast<std::size_t>(state.range(0)), 0x77);
  bytes sink(payload.size());
  for (auto _ : state) {
    std::memcpy(sink.data(), payload.data(), payload.size());
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

// One-time costs: the pipe-establishment handshake crypto and a key epoch
// rotation ("ILP adds no additional latency when establishing a
// connection" because this happens once per element pair, not per
// connection).
void BM_HandshakeX25519(benchmark::State& state) {
  crypto::x25519_key seed_a{}, seed_b{};
  seed_a[0] = 1;
  seed_b[0] = 2;
  const auto a = crypto::x25519_keypair_from_seed(seed_a);
  const auto b = crypto::x25519_keypair_from_seed(seed_b);
  for (auto _ : state) {
    const auto shared = crypto::x25519(a.secret, b.public_key);
    benchmark::DoNotOptimize(
        crypto::hkdf({}, const_byte_span(shared.data(), shared.size()), to_bytes("dir"), 64));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_KeyRotation(benchmark::State& state) {
  crypto::psp_context tx(master(), 7);
  for (auto _ : state) {
    tx.rotate();
    benchmark::DoNotOptimize(tx.current_spi());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_PspSeal)->Arg(48)->Arg(256)->Arg(1400);
BENCHMARK(BM_PspOpen)->Arg(48)->Arg(256)->Arg(1400);
BENCHMARK(BM_PipeSealOpen)->Arg(64)->Arg(512)->Arg(1400);
BENCHMARK(BM_PlaintextCopyBaseline)->Arg(64)->Arg(512)->Arg(1400);
BENCHMARK(BM_HandshakeX25519);
BENCHMARK(BM_KeyRotation);

BENCHMARK_MAIN();
