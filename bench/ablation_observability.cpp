// Ablation A7: telemetry primitives (ISSUE 2). Quantifies why the hot
// paths hold metric handles instead of names:
//   * string lookup (mutex + map per event) vs a cached counter& — the
//     migration the service modules went through; expected ≥10x;
//   * plain counter vs sharded_counter under multi-threaded contention;
//   * histogram record and tracer sampler costs, the per-event prices the
//     <2% datapath overhead budget (DESIGN.md §8) is built from;
//   * exposition cost for a registry of realistic size.
// The cross-hop arms (ISSUE 5) price the path-tracing building blocks the
// same way: context codec, the per-packet header-metadata miss every
// unsampled packet pays, span emit + drain, and collector reassembly.
// The health-plane arms (ISSUE 7) price the rollup tick, burn-rate
// queries/evaluation, and the flight-recorder append — the costs behind
// the plane's own share of the <2% budget.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/prof.h"
#include "common/prof_symbolize.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "common/trace_collector.h"
#include "ilp/header.h"

using namespace interedge;

namespace {

// A live SN interns dozens of series (datapath counters, per-service rx
// families, stage histograms, per-module dispatch counters); lookups pay
// a map walk of that size, so the before/after arms measure against a
// realistically populated registry, not a one-entry toy.
void populate_sn_sized(metrics_registry& reg) {
  for (int i = 0; i < 24; ++i) {
    reg.get_counter("sn.family." + std::to_string(i));
  }
  for (const char* svc : {"delivery", "pubsub", "multicast", "anycast", "qos", "odns", "mixnet",
                          "ddos", "vpn", "mq", "ordered", "bulk", "firewall", "streaming",
                          "mobility", "cluster"}) {
    reg.get_counter("sn.rx.pkts", {{"service", svc}});
    reg.get_counter("sn.slowpath.dispatch", {{"service", svc}});
  }
  for (int i = 0; i < 8; ++i) {
    reg.get_histogram("sn.stage." + std::to_string(i));
  }
}

// The "before" of the service migration: every event pays the registry
// mutex and the name-map lookup.
void BM_CounterStringLookup(benchmark::State& state) {
  metrics_registry reg;
  populate_sn_sized(reg);
  reg.get_counter("vpn.redirected");
  for (auto _ : state) {
    reg.get_counter("vpn.redirected").add();
  }
  state.SetItemsProcessed(state.iterations());
}

// The "after": handle resolved once, hot path is one relaxed fetch_add.
void BM_CounterHandle(benchmark::State& state) {
  metrics_registry reg;
  populate_sn_sized(reg);
  counter& c = reg.get_counter("vpn.redirected");
  for (auto _ : state) {
    c.add();
  }
  state.SetItemsProcessed(state.iterations());
}

// Labeled lookup is costlier still (label rendering per call) — the case
// for resolving per-service families like sn.rx.pkts{service=...} once.
void BM_CounterLabeledLookup(benchmark::State& state) {
  metrics_registry reg;
  populate_sn_sized(reg);
  for (auto _ : state) {
    reg.get_counter("sn.rx.pkts", {{"service", "odns"}}).add();
  }
  state.SetItemsProcessed(state.iterations());
}

void contended_adds(benchmark::State& state, bool sharded) {
  static metrics_registry reg;
  if (sharded) {
    sharded_counter& c = reg.get_sharded_counter("bench.sharded");
    for (auto _ : state) c.add();
  } else {
    counter& c = reg.get_counter("bench.plain");
    for (auto _ : state) c.add();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CounterContended(benchmark::State& state) { contended_adds(state, false); }
void BM_ShardedCounterContended(benchmark::State& state) { contended_adds(state, true); }

void BM_HistogramRecord(benchmark::State& state) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("bench.latency");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
    v &= 0xffffff;                                   // keep in the ns range
  }
  state.SetItemsProcessed(state.iterations());
}

// Per-packet sampler cost: one relaxed fetch_add + mask compare.
void BM_TracerSampleTick(benchmark::State& state) {
  metrics_registry reg;
  trace::tracer tr(reg, trace::tracer::config{.sample_shift = 8});
  bool hit = false;
  for (auto _ : state) {
    hit ^= tr.sample_tick();
  }
  benchmark::DoNotOptimize(hit);
  state.SetItemsProcessed(state.iterations());
}

// Span over the current tracer: two clock reads + a histogram record.
void BM_TracerSpan(benchmark::State& state) {
  metrics_registry reg;
  trace::tracer tr(reg);
  trace::scoped_tracer st(&tr);
  for (auto _ : state) {
    trace::span s(trace::stage::cache);
  }
  state.SetItemsProcessed(state.iterations());
}

// Exposition over a registry of realistic size (the SN interns a few
// dozen families): the cost an operator pays per scrape, off the hot path.
void BM_ExportPrometheus(benchmark::State& state) {
  metrics_registry reg;
  for (int i = 0; i < 32; ++i) {
    reg.get_counter("sn.family." + std::to_string(i)).add(i);
  }
  for (int i = 0; i < 8; ++i) {
    reg.get_histogram("sn.stage." + std::to_string(i)).record(100 + i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.export_prometheus());
  }
  state.SetItemsProcessed(state.iterations());
}

// ---- cross-hop path tracing (ISSUE 5) ----------------------------------

// The 19-byte wire context round-trip: encode into a stack buffer, decode
// back. Paid once per hop on the sampled path only.
void BM_TraceCtxCodec(benchmark::State& state) {
  trace::trace_context ctx;
  ctx.trace_id = 0xabcdef0123456789ull;
  ctx.parent_span = 0x1122334455667788ull;
  ctx.hop_count = 3;
  ctx.flags = trace::kTraceCtxSampled;
  for (auto _ : state) {
    const bytes wire = ctx.encode();
    auto back = trace::trace_context::decode(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}

// What every UNSAMPLED packet pays at a tracing-enabled hop: one failed
// metadata lookup on the decoded header. This is the number the <2%
// datapath budget (DESIGN.md §11) rides on.
void BM_HeaderCtxLookupMiss(benchmark::State& state) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = 777;
  for (auto _ : state) {
    auto ctx = h.trace_ctx();
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}

// The sampled-path counterpart: lookup + decode of a present context.
void BM_HeaderCtxLookupHit(benchmark::State& state) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = 777;
  trace::trace_context ctx;
  ctx.trace_id = 42;
  ctx.flags = trace::kTraceCtxSampled;
  h.set_trace(ctx);
  for (auto _ : state) {
    auto back = h.trace_ctx();
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}

// Per-sampled-packet span emit into the SPSC ring, with the consumer-side
// drain amortized the way the SN control loop runs it.
void BM_PathRecorderEmitDrain(benchmark::State& state) {
  trace::path_recorder rec(trace::path_recorder::config{.node = 7, .capacity = 4096});
  trace::path_span s;
  s.trace_id = 1;
  s.node = 7;
  s.kind = trace::span_kind::hop_fast;
  std::vector<trace::path_span> drained;
  std::uint64_t i = 0;
  for (auto _ : state) {
    s.span_id = ++i;
    rec.emit(s);
    if ((i & 0xff) == 0) {
      drained.clear();
      rec.drain(drained, 256);
    }
  }
  benchmark::DoNotOptimize(drained);
  state.SetItemsProcessed(state.iterations());
}

// Collector-side cost per ingested span: dedup check, trace-table upkeep.
// Off the datapath (control thread / edomain plane), but bounds how many
// spans a plane can fold per push.
void BM_CollectorIngest(benchmark::State& state) {
  trace::trace_collector col(1024);
  trace::path_span s;
  s.node = 7;
  s.kind = trace::span_kind::hop_fast;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    s.trace_id = i & 0x3ff;  // cycle the trace table
    s.span_id = i;
    col.ingest(s);
  }
  state.SetItemsProcessed(state.iterations());
}

// ---- SLO health plane (ISSUE 7) ----------------------------------------

// One health tick over an SN-sized registry: snapshot + diff every series
// into the window ring. Runs on the control thread at ~100ms cadence, so
// its absolute cost (not a per-packet rate) is what the <2% budget sees.
void BM_TimeseriesTick(benchmark::State& state) {
  metrics_registry reg;
  populate_sn_sized(reg);
  timeseries_store ts(timeseries_store::config{});
  std::int64_t ns = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Mutate a few series so every tick diffs real movement.
    reg.get_counter("sn.family.0").add(3);
    reg.get_histogram("sn.stage.0").record(1000 + (i++ & 0xff));
    ns += 100'000'000;  // 100ms cadence
    ts.tick(reg, time_point(nanoseconds(ns)));
  }
  state.SetItemsProcessed(state.iterations());
}

// A burn-rate query: merge the span's window sketches and threshold them.
void BM_TimeseriesFractionAbove(benchmark::State& state) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  timeseries_store ts(timeseries_store::config{});
  std::int64_t ns = 0;
  for (int t = 0; t < 64; ++t) {
    for (int i = 0; i < 64; ++i) h.record(1'000'000 + i * 10'000);
    ns += 10'000'000'000ll;
    ts.tick(reg, time_point(nanoseconds(ns)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts.hist_fraction_above("lat", std::chrono::minutes(5), 2'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}

// A full multi-window evaluation pass over a handful of targets — four
// burn queries per target per tick.
void BM_SloEvaluate(benchmark::State& state) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  timeseries_store ts(timeseries_store::config{});
  slo::slo_monitor mon(ts, slo::burn_windows{});
  for (int i = 0; i < 4; ++i) {
    slo::slo_target t;
    t.name = "t" + std::to_string(i);
    t.service = "delivery";
    t.latency_series = "lat";
    t.threshold_ns = 2'000'000;
    mon.add_target(t);
  }
  std::int64_t ns = 0;
  for (int t = 0; t < 64; ++t) {
    for (int i = 0; i < 64; ++i) h.record(1'000'000);
    ns += 10'000'000'000ll;
    ts.tick(reg, time_point(nanoseconds(ns)));
  }
  for (auto _ : state) {
    mon.evaluate(time_point(nanoseconds(ns)));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}

// Per-event flight-recorder append: one fetch_add + six relaxed stores.
// This is the price the span drain pays per event while the box is armed
// — the recorder-side share of the <2% budget.
void BM_FlightRecorderRecord(benchmark::State& state) {
  static flight_recorder fr(flight_recorder::config{.capacity = 1024, .trigger_mask = 0});
  fr_event e;
  e.kind = fr_kind::span;
  std::uint64_t i = 0;
  for (auto _ : state) {
    e.time_ns = ++i;
    e.a = i;
    fr.record(e);
  }
  state.SetItemsProcessed(state.iterations());
}

// The postmortem read: validate + sort the whole ring. Paid once per
// freeze, never on a datapath.
void BM_FlightRecorderSnapshot(benchmark::State& state) {
  flight_recorder fr(flight_recorder::config{.capacity = 1024, .trigger_mask = 0});
  for (std::uint64_t i = 0; i < 2048; ++i) {
    fr.record(fr_event{.time_ns = i, .kind = fr_kind::span, .a = i});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fr.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}

// ---- continuous profiling plane (ISSUE 10) micro-costs ----------------

// The two costs a cycle_scope pays on entry+exit when a cycle_set is
// installed: two rdtsc reads plus two relaxed atomic adds. This is the
// per-stage attribution price the datapath pays per BATCH (not per
// packet) — decrypt, terminus, slowpath each open one scope per batch.
void BM_ProfCycleScope(benchmark::State& state) {
  prof::cycle_set set;
  prof::scoped_cycle_set ambient(&set);
  for (auto _ : state) {
    prof::cycle_scope s(prof::cycle_stage::decrypt);
    benchmark::DoNotOptimize(&s);
  }
  state.SetItemsProcessed(state.iterations());
}

// The same scope with NO ambient set — the price every deployment with
// the profiler off pays: two TLS loads, nothing else.
void BM_ProfCycleScopeDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    prof::cycle_scope s(prof::cycle_stage::decrypt);
    benchmark::DoNotOptimize(&s);
  }
  state.SetItemsProcessed(state.iterations());
}

// The handler-side cost: one SPSC ring push of a captured stack (the
// unwind itself depends on stack depth; this is the fixed part).
void BM_ProfRingPush(benchmark::State& state) {
  prof::sample_ring ring(4096);
  prof::raw_sample s;
  s.depth = 16;
  for (std::uint32_t i = 0; i < s.depth; ++i) s.pc[i] = 0x400000 + i * 64;
  prof::raw_sample out;
  for (auto _ : state) {
    if (!ring.try_push(s)) {
      while (ring.try_pop(out)) benchmark::DoNotOptimize(out.depth);
    }
  }
  state.SetItemsProcessed(state.iterations());
}

// The recurring health-tick cost with nothing new to fold: one pass over
// the registered rings' (empty) SPSC heads. What profile_tick pays every
// interval on an idle node.
void BM_ProfDrainIdle(benchmark::State& state) {
  prof::profiler p(prof::profiler_config{.sample_hz = 97, .ring_slots = 4096});
  p.register_current_thread("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.drain());
  }
  p.unregister_current_thread();
  state.SetItemsProcessed(state.iterations());
}

// Export: render the folded-stack table (symbolizer cache warm after the
// first iteration). Paid at postmortem/export time, never on a datapath.
void BM_ProfFoldedExport(benchmark::State& state) {
  prof::profiler p(prof::profiler_config{.sample_hz = 997, .ring_slots = 4096,
                                         .force_timer = true});
  p.register_current_thread("bench");
  p.arm();
  // ~100ms of real sampled work so the table has representative stacks.
  volatile std::uint64_t acc = 1;
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 4096; ++i) acc = acc * 6364136223846793005ull + 1;
  }
  p.drain();
  p.disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.folded());
  }
  p.unregister_current_thread();
  state.counters["stacks"] = static_cast<double>(p.stacks().size());
  state.SetItemsProcessed(state.iterations());
}

// Symbolization: dladdr + ELF .symtab lookup per distinct PC, cached
// after first hit. Paid only at export/postmortem time.
void BM_ProfSymbolizeCached(benchmark::State& state) {
  prof::symbolizer sym;
  const std::uintptr_t pc = reinterpret_cast<std::uintptr_t>(&malloc);
  std::string first = sym.name_of(pc);  // warm the cache
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sym.name_of(pc));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_CounterStringLookup);
BENCHMARK(BM_CounterHandle);
BENCHMARK(BM_CounterLabeledLookup);
BENCHMARK(BM_CounterContended)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_ShardedCounterContended)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_TracerSampleTick);
BENCHMARK(BM_TracerSpan);
BENCHMARK(BM_ExportPrometheus);
BENCHMARK(BM_TraceCtxCodec);
BENCHMARK(BM_HeaderCtxLookupMiss);
BENCHMARK(BM_HeaderCtxLookupHit);
BENCHMARK(BM_PathRecorderEmitDrain);
BENCHMARK(BM_CollectorIngest);
BENCHMARK(BM_TimeseriesTick);
BENCHMARK(BM_TimeseriesFractionAbove);
BENCHMARK(BM_SloEvaluate);
BENCHMARK(BM_FlightRecorderRecord)->Threads(1)->Threads(4);
BENCHMARK(BM_FlightRecorderSnapshot);
BENCHMARK(BM_ProfCycleScope);
BENCHMARK(BM_ProfCycleScopeDisarmed);
BENCHMARK(BM_ProfRingPush);
BENCHMARK(BM_ProfDrainIdle);
BENCHMARK(BM_ProfFoldedExport);
BENCHMARK(BM_ProfSymbolizeCached);

BENCHMARK_MAIN();
