// Ablation A4: service-layer behaviour over simulated deployments —
// pub/sub fan-out scaling, gateway relay vs direct inter-domain paths,
// and CDN cache effectiveness. Latency numbers are *virtual* (simulated)
// time — they characterize path structure, not host speed; the msgs/s
// column is real wall-clock simulator throughput.
//
//   ./bench/ablation_services [--max_subscribers=256]
#include <chrono>
#include <cstdio>

#include "common/flags.h"
#include "common/metrics.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/content.h"
#include "services/clients/pubsub_client.h"
#include "services/delivery.h"

using namespace interedge;
using steady = std::chrono::steady_clock;

namespace {

void pubsub_fanout_sweep(int max_subscribers) {
  std::printf("-- pub/sub fan-out sweep (4 edomains, subscribers spread evenly) --\n");
  std::printf("%12s %14s %18s %20s\n", "subscribers", "deliveries", "sim datagrams",
              "wall msgs/s");
  for (int subs = 1; subs <= max_subscribers; subs *= 4) {
    deploy::deployment net;
    std::vector<deploy::edomain_id> domains;
    for (int i = 0; i < 4; ++i) {
      domains.push_back(net.add_edomain());
      net.add_sn(domains.back());
      net.add_sn(domains.back());
    }
    auto& publisher = net.add_host(domains[0]);
    std::vector<host::host_stack*> hosts;
    for (int i = 0; i < subs; ++i) hosts.push_back(&net.add_host(domains[i % 4]));
    net.interconnect();
    deploy::deploy_standard_services(net);

    services::pubsub_client pub(publisher);
    std::vector<std::unique_ptr<services::pubsub_client>> clients;
    std::uint64_t delivered = 0;
    for (auto* h : hosts) {
      clients.push_back(std::make_unique<services::pubsub_client>(*h));
      clients.back()->subscribe("feed", [&delivered](const std::string&, bytes) { ++delivered; });
    }
    net.run();

    const std::uint64_t datagrams_before = net.net().datagrams_sent();
    constexpr int kMessages = 50;
    const auto t0 = steady::now();
    for (int m = 0; m < kMessages; ++m) {
      pub.publish("feed", bytes(200, 0x33));
      net.run();
    }
    const double wall =
        std::chrono::duration_cast<std::chrono::duration<double>>(steady::now() - t0).count();
    std::printf("%12d %14llu %18llu %20.0f\n", subs,
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(net.net().datagrams_sent() - datagrams_before),
                static_cast<double>(delivered) / wall);
  }
  std::printf("\n");
}

void interdomain_path_comparison() {
  std::printf("-- inter-edomain path: gateway relay vs direct (on-demand) pipes --\n");
  std::printf("%10s %22s %22s\n", "mode", "end-to-end (sim us)", "SN hops");
  for (const bool direct : {false, true}) {
    deploy::deployment net(deploy::deployment_config{.direct_interdomain = direct});
    const auto west = net.add_edomain();
    const auto east = net.add_edomain();
    net.add_sn(west);                       // west gateway
    const auto sn_w2 = net.add_sn(west);    // sender's SN (non-gateway)
    net.add_sn(east);                       // east gateway
    const auto sn_e2 = net.add_sn(east);    // receiver's SN (non-gateway)
    auto& alice = net.add_host(west, sn_w2);
    auto& bob = net.add_host(east, sn_e2);
    net.interconnect();
    deploy::deploy_standard_services(net);

    // Warm up pipes so the measurement excludes handshakes.
    bob.set_default_handler([](const ilp::ilp_header&, bytes) {});
    alice.send_to(bob.addr(), ilp::svc::delivery, to_bytes("warm"));
    net.run();

    time_point sent, arrived;
    bob.set_default_handler([&](const ilp::ilp_header&, bytes) { arrived = net.net().now(); });
    sent = net.net().now();
    alice.send_to(bob.addr(), ilp::svc::delivery, to_bytes("measured"));
    net.run();

    std::uint64_t sn_hops = 0;
    for (auto sn : net.sns_in(west)) sn_hops += net.sn(sn).datapath_stats().forwarded;
    for (auto sn : net.sns_in(east)) sn_hops += net.sn(sn).datapath_stats().forwarded;

    std::printf("%10s %22.1f %22llu\n", direct ? "direct" : "gateway",
                static_cast<double>((arrived - sent).count()) / 1000.0,
                static_cast<unsigned long long>(sn_hops / 2));  // per measured packet
  }
  std::printf("\n");
}

void cdn_cache_effectiveness() {
  std::printf("-- CDN bundle: origin load vs client population (3 fetches each) --\n");
  std::printf("%10s %16s %18s %22s\n", "clients", "total fetches", "origin served",
              "edge absorption");
  for (int clients : {1, 4, 16, 64}) {
    deploy::deployment net;
    const auto origin_domain = net.add_edomain();
    const auto edge_domain = net.add_edomain();
    net.add_sn(origin_domain);
    net.add_sn(edge_domain);
    auto& origin_host = net.add_host(origin_domain);
    std::vector<host::host_stack*> hosts;
    for (int i = 0; i < clients; ++i) hosts.push_back(&net.add_host(edge_domain));
    net.interconnect();
    deploy::deploy_standard_services(net);

    services::content_origin origin(origin_host);
    origin.put("popular", bytes(1000, 0x99));
    std::vector<std::unique_ptr<services::content_client>> ccs;
    int delivered = 0;
    for (auto* h : hosts) ccs.push_back(std::make_unique<services::content_client>(*h));
    // First round staggered (no request coalescing in the module, so a
    // simultaneous cold herd would all miss); later rounds concurrent.
    for (auto& cc : ccs) {
      cc->fetch(origin_host.addr(), "popular",
                [&delivered](const std::string&, bytes) { ++delivered; });
      net.run();
    }
    for (int round = 1; round < 3; ++round) {
      for (auto& cc : ccs) {
        cc->fetch(origin_host.addr(), "popular",
                  [&delivered](const std::string&, bytes) { ++delivered; });
      }
      net.run();
    }
    const int total = clients * 3;
    std::printf("%10d %16d %18llu %21.1f%%\n", clients, total,
                static_cast<unsigned long long>(origin.requests_served()),
                100.0 * (1.0 - static_cast<double>(origin.requests_served()) / total));
  }
  std::printf("\n");
}

// Before/after of the ISSUE 2 service-metric migration: every module used
// to call ctx.metrics().get_counter("name").add() per event (registry
// mutex + name-map lookup); they now hold handles resolved in start().
// This arm measures exactly those two code shapes.
void metric_path_comparison() {
  std::printf("-- service metric path: per-event string lookup vs cached handle --\n");
  constexpr int kEvents = 2'000'000;
  metrics_registry reg;
  // A deployed SN's registry holds dozens of series; size the name map
  // accordingly so the lookup arm pays a realistic map walk.
  for (int i = 0; i < 48; ++i) reg.get_counter("sn.family." + std::to_string(i));

  const auto t0 = steady::now();
  for (int i = 0; i < kEvents; ++i) {
    reg.get_counter("svc.events").add();  // the old hot-path shape
  }
  const double lookup_ns =
      std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(steady::now() - t0)
          .count() /
      kEvents;

  counter& handle = reg.get_counter("svc.events");  // resolved once, as in start()
  const auto t1 = steady::now();
  for (int i = 0; i < kEvents; ++i) {
    handle.add();
  }
  const double handle_ns =
      std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(steady::now() - t1)
          .count() /
      kEvents;

  std::printf("%18s %14s %12s\n", "path", "ns/event", "speedup");
  std::printf("%18s %14.1f %12s\n", "string lookup", lookup_ns, "1.0x");
  std::printf("%18s %14.1f %11.1fx\n", "cached handle", handle_ns, lookup_ns / handle_ns);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int max_subscribers = static_cast<int>(flags.get_int("max_subscribers", 256));

  std::printf("== Ablation A4: service-layer behaviour ==\n\n");
  metric_path_comparison();
  pubsub_fanout_sweep(max_subscribers);
  interdomain_path_comparison();
  cdn_cache_effectiveness();
  return 0;
}
