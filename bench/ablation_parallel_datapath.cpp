// Ablation A7: multi-core SN datapath (DESIGN.md §9). Measures aggregate
// packets/sec through a full service_node — steering peek, shard decrypt,
// decision-cache consult, terminus verdict — sweeping workers 0/1/2/4/8
// at feed batch sizes 1 and 32. workers == 0 is the single-threaded
// baseline (the inline datapath the earlier ablations measure); the
// speedup claim is aggregate pkts/s at N workers over that baseline on a
// multi-core host. Every arm reports a "workers" counter plus per-shard
// decision-cache hit rates, so the JSON output carries the scaling story.
//
// The timed section includes everything the parallel mode adds: the
// control-thread peek + SipHash steer, the SPSC handoff, the worker-side
// authenticated open against the shard's pipe_rx replica, and wait_idle's
// end-of-burst drain — so a 1-core host honestly shows the coordination
// overhead instead of a free speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/service_node.h"
#include "ilp/pipe_manager.h"

using namespace interedge;
using namespace interedge::core;

namespace {

constexpr std::size_t kFlows = 64;
constexpr std::size_t kBurst = 1024;  // packets per timed iteration
constexpr std::size_t kPayload = 256;

// Minimal slow-path module: deliver locally and install the fast-path
// entry, mirroring what BM_IngressDatapath's inline channel does. Keeping
// the verdict local (no forward) holds the egress half constant across
// arms so the sweep isolates the ingress scaling.
class deliver_module final : public service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::delivery; }
  std::string_view name() const override { return "bench-deliver"; }
  module_result on_packet(service_context&, const packet& pkt) override {
    module_result r = module_result::deliver();
    r.cache_inserts.emplace_back(
        cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection}, decision::deliver());
    return r;
  }
};

ilp::ilp_header flow_header(ilp::connection_id conn) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = conn;
  return h;
}

// A sender pipe_manager feeding a real service_node, shuttling datagrams
// in memory (no simulator: the control thread is the bench thread).
struct harness {
  real_clock clk;
  std::vector<bytes> sender_out;  // sender -> SN
  std::vector<bytes> sn_out;      // SN -> sender (handshake replies)
  std::unique_ptr<ilp::pipe_manager> sender;
  std::unique_ptr<service_node> sn;

  explicit harness(std::size_t workers) {
    sn_config cfg;
    cfg.id = 2;
    cfg.edomain = 1;
    cfg.workers = workers;
    cfg.shard_ring_depth = 4096;  // >= kBurst: measure throughput, not drops
    sn = std::make_unique<service_node>(
        cfg, clk, [this](peer_id, bytes d) { sn_out.push_back(std::move(d)); },
        [](nanoseconds, std::function<void()>) {}, nullptr);
    sn->env().deploy(std::make_unique<deliver_module>());
    sender = std::make_unique<ilp::pipe_manager>(
        1, [this](peer_id, bytes d) { sender_out.push_back(std::move(d)); },
        [](peer_id, const ilp::ilp_header&, bytes) {});

    // Handshake, then one warming packet per flow so every shard holds its
    // flows' decisions before the timed section.
    sender->connect(2);
    shuttle();
    for (std::size_t f = 0; f < kFlows; ++f) {
      sender->send(2, flow_header(static_cast<ilp::connection_id>(f + 1)),
                   bytes(kPayload, 0x5a));
    }
    shuttle();
    sn->wait_idle(std::chrono::milliseconds(5000));
  }

  void shuttle() {
    while (!sender_out.empty() || !sn_out.empty()) {
      std::vector<bytes> moving;
      moving.swap(sender_out);
      for (const bytes& d : moving) sn->on_datagram(1, d);
      moving.clear();
      moving.swap(sn_out);
      for (const bytes& d : moving) sender->on_datagram(2, d);
      sn->wait_idle(std::chrono::milliseconds(5000));
    }
  }

  // Seals one burst of data datagrams round-robin across the flows. PSP is
  // stateless per packet, so the burst is replayable every iteration.
  std::vector<bytes> preseal() {
    sender_out.clear();
    for (std::size_t i = 0; i < kBurst; ++i) {
      sender->send(2, flow_header(static_cast<ilp::connection_id>(i % kFlows + 1)),
                   bytes(kPayload, 0x77));
    }
    std::vector<bytes> wires;
    wires.swap(sender_out);
    return wires;
  }
};

// One benchmark over both sweep axes: range(0) = workers, range(1) = feed
// batch. Rates are computed against wall-clock time measured around the
// feed + wait_idle of each burst — worker threads do the datapath work, so
// main-thread CPU time would misstate the parallel arms.
void BM_ParallelDatapath(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto feed_batch = static_cast<std::size_t>(state.range(1));
  harness h(workers);
  const std::vector<bytes> wires = h.preseal();

  std::vector<std::pair<peer_id, bytes>> scratch;
  scratch.reserve(feed_batch);
  std::uint64_t packets = 0;
  double seconds = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t i = 0;
    while (i < wires.size()) {
      const std::size_t n = std::min(feed_batch, wires.size() - i);
      scratch.clear();
      // The parallel SN moves datagram bytes into the shard rings, so each
      // burst hands over fresh copies (the copy is charged to every arm).
      for (std::size_t k = 0; k < n; ++k) scratch.emplace_back(1, wires[i + k]);
      h.sn->on_datagrams(std::span<std::pair<peer_id, bytes>>(scratch));
      i += n;
    }
    h.sn->wait_idle(std::chrono::milliseconds(10000));
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    packets += wires.size();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["pkts/s"] = seconds > 0 ? static_cast<double>(packets) / seconds : 0;
  if (workers == 0) {
    const cache_stats& cs = h.sn->cache().stats();
    const double looked = static_cast<double>(cs.hits + cs.misses);
    state.counters["hit_rate"] = looked > 0 ? static_cast<double>(cs.hits) / looked : 0;
  } else {
    std::uint64_t drops = 0;
    for (std::size_t s = 0; s < h.sn->worker_count(); ++s) {
      const cache_stats& cs = h.sn->shard_cache_stats(s);
      const double looked = static_cast<double>(cs.hits + cs.misses);
      state.counters["shard" + std::to_string(s) + "_hit_rate"] =
          looked > 0 ? static_cast<double>(cs.hits) / looked : 0;
      drops += h.sn->metrics()
                   .get_counter("sn.shard.ingress_drops", {{"shard", std::to_string(s)}})
                   .value();
    }
    state.counters["ingress_drops"] = static_cast<double>(drops);
  }
}

}  // namespace

BENCHMARK(BM_ParallelDatapath)
    ->Args({0, 1})
    ->Args({0, 32})
    ->Args({1, 1})
    ->Args({1, 32})
    ->Args({2, 1})
    ->Args({2, 32})
    ->Args({4, 1})
    ->Args({4, 32})
    ->Args({8, 1})
    ->Args({8, 32})
    ->UseRealTime();

BENCHMARK_MAIN();
