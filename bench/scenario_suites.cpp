// Scenario suite runner (DESIGN.md §14): executes the named adversarial +
// churn suites and prints one JSON SLO verdict report per suite. With
// --json, each report is additionally written to SCENARIO_<suite>.json in
// the current directory for machine comparison across runs.
//
//   scenario_suites [--suite=NAME|all] [--seed=N] [--json]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "scenario/suites.h"

int main(int argc, char** argv) {
  std::string suite = "all";
  std::uint64_t seed = 42;
  bool json_files = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--suite=", 8) == 0) {
      suite = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_files = true;
    } else {
      std::fprintf(stderr, "usage: %s [--suite=NAME|all] [--seed=N] [--json]\n", argv[0]);
      return 2;
    }
  }

  int failed = 0;
  for (const std::string_view name : interedge::scenario::suite_names()) {
    if (suite != "all" && suite != name) continue;
    const auto rep = interedge::scenario::run_suite(name, seed);
    const std::string json = rep.to_json();
    std::printf("%s\n", json.c_str());
    if (json_files) {
      std::ofstream out("SCENARIO_" + std::string(name) + ".json");
      out << json << '\n';
    }
    if (!rep.passed()) {
      std::fprintf(stderr, "FAIL: suite %.*s\n", static_cast<int>(name.size()),
                   name.data());
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}
