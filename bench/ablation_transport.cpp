// Ablation A2: slow-path transport choice. The paper's prototype "used IPC
// to send and receive data from services which obviously adds overhead",
// naming shared-memory rings as the known fix. This measures the
// per-packet service round trip over each transport.
//
// Also (ISSUE 6) the datagram-transport backend sweep: recvmmsg vs
// io_uring receive at batch 1/8/32 over loopback, both draining into pool
// slabs through recv_batch_views.
#include <benchmark/benchmark.h>

#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "net/udp_transport.h"

using namespace interedge;
using namespace interedge::core;

namespace {

slowpath_handler null_handler() {
  return [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::forward_to(2);
    return resp;
  };
}

slowpath_request make_request(std::size_t payload_size) {
  slowpath_request req;
  req.l3_src = 1;
  req.header_bytes = bytes(24, 0x11);
  req.payload = bytes(payload_size, 0x5a);
  return req;
}

void pump_one(slowpath_channel& ch, slowpath_request req) {
  while (!ch.submit(req)) {
  }
  // ring_channel offers a parking wait — essential when producer and
  // worker share a core; other channels are polled.
  if (auto* ring = dynamic_cast<ring_channel*>(&ch)) {
    for (;;) {
      if (auto r = ring->poll_wait()) {
        benchmark::DoNotOptimize(r->verdict);
        return;
      }
    }
  }
  for (;;) {
    if (auto r = ch.poll()) {
      benchmark::DoNotOptimize(r->verdict);
      return;
    }
  }
}

void BM_Transport_Inline(benchmark::State& state) {
  inline_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ring(benchmark::State& state) {
  ring_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ipc(benchmark::State& state) {
  ipc_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

// Pipelined variants: 64 outstanding, as in Table 1.
template <typename Channel>
void pipelined(benchmark::State& state) {
  Channel ch(null_handler());
  const auto base = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  std::uint64_t completed = 0;
  std::uint64_t submitted = 0;
  for (auto _ : state) {
    // Keep the 64-deep window full...
    while (submitted - completed < 64) {
      auto r = base;
      r.token = token++;
      if (!ch.submit(std::move(r))) break;  // bounded channel momentarily full
      ++submitted;
    }
    // ...and account one completion per iteration.
    if constexpr (std::is_same_v<Channel, ring_channel>) {
      while (!ch.poll_wait()) {
      }
    } else {
      while (!ch.poll()) {
      }
    }
    ++completed;
  }
  while (completed < submitted) {
    if (ch.poll()) ++completed;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ring_Pipelined(benchmark::State& state) { pipelined<ring_channel>(state); }
void BM_Transport_Ipc_Pipelined(benchmark::State& state) { pipelined<ipc_channel>(state); }

// ---- ISSUE 6: receive-backend sweep (recvmmsg vs io_uring) -----------
//
// One sender bursting `batch` 256-byte datagrams over loopback; the
// receiver drains through recv_batch_views into pool slabs — the identical
// zero-copy surface for both backends, so the delta is purely the syscall
// and completion model (recvmmsg per burst vs re-armed ring completions).
void udp_backend_sweep(benchmark::State& state, net::udp_backend backend) {
  net::udp_config cfg;
  cfg.backend = backend;
  net::udp_endpoint rx(cfg);
  if (backend == net::udp_backend::uring && rx.backend() != net::udp_backend::uring) {
    state.SkipWithError("io_uring unavailable on this kernel");
    return;
  }
  net::udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> datagrams(batch, bytes(256, 0x42));
  std::vector<std::pair<net::peer_id, buf::pkt_view>> received;
  std::uint64_t moved = 0;

  for (auto _ : state) {
    const std::size_t sent = tx.send_batch(2, datagrams);
    std::size_t got = 0;
    for (int spins = 0; got < sent && spins < 100000; ++spins) {
      received.clear();  // drops the slab refs; the pool recycles them
      got += rx.recv_batch_views(net::udp_endpoint::kBatchMax, received);
    }
    moved += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(moved), benchmark::Counter::kIsRate);
}

void BM_UdpBackend_Mmsg(benchmark::State& state) {
  udp_backend_sweep(state, net::udp_backend::mmsg);
}
void BM_UdpBackend_Uring(benchmark::State& state) {
  udp_backend_sweep(state, net::udp_backend::uring);
}

// ---- ISSUE 8: egress-backend sweep (sendmsg vs io_uring tx) ----------
//
// The mirror of the receive sweep: now the *transmit* endpoint's backend
// varies and the receiver is always the mmsg drain. On the uring arm
// send_batch stages one SENDMSG SQE per datagram and a single
// io_uring_enter submits the burst; on mmsg each datagram is a synchronous
// sendmsg. The receive drain stays inside the timed region on both arms so
// the comparison is a full loopback round trip at equal reliability.
void udp_tx_backend_sweep(benchmark::State& state, net::udp_backend backend) {
  net::udp_config cfg;
  cfg.backend = backend;
  net::udp_endpoint tx(cfg);
  if (backend == net::udp_backend::uring && tx.backend() != net::udp_backend::uring) {
    state.SkipWithError("io_uring unavailable on this kernel");
    return;
  }
  net::udp_endpoint rx;  // plain mmsg receiver on both arms
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> datagrams(batch, bytes(256, 0x42));
  std::vector<std::pair<net::peer_id, buf::pkt_view>> received;
  std::uint64_t moved = 0;

  for (auto _ : state) {
    // send_batch flushes its staged SQEs before returning, so the burst is
    // on the wire when the drain below starts.
    const std::size_t sent = tx.send_batch(2, datagrams);
    std::size_t got = 0;
    for (int spins = 0; got < sent && spins < 100000; ++spins) {
      received.clear();
      got += rx.recv_batch_views(net::udp_endpoint::kBatchMax, received);
    }
    moved += got;
  }
  tx.tx_drain();  // retire any straggling completions before teardown
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(moved), benchmark::Counter::kIsRate);
}

void BM_UdpTx_Mmsg(benchmark::State& state) {
  udp_tx_backend_sweep(state, net::udp_backend::mmsg);
}
void BM_UdpTx_Uring(benchmark::State& state) {
  udp_tx_backend_sweep(state, net::udp_backend::uring);
}

}  // namespace

BENCHMARK(BM_Transport_Inline)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ring)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ipc)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ring_Pipelined)->Arg(1000);
BENCHMARK(BM_Transport_Ipc_Pipelined)->Arg(1000);
BENCHMARK(BM_UdpBackend_Mmsg)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_UdpBackend_Uring)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_UdpTx_Mmsg)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_UdpTx_Uring)->Arg(1)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
