// Ablation A2: slow-path transport choice. The paper's prototype "used IPC
// to send and receive data from services which obviously adds overhead",
// naming shared-memory rings as the known fix. This measures the
// per-packet service round trip over each transport.
#include <benchmark/benchmark.h>

#include <thread>
#include <type_traits>

#include "core/channel.h"

using namespace interedge;
using namespace interedge::core;

namespace {

slowpath_handler null_handler() {
  return [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::forward_to(2);
    return resp;
  };
}

slowpath_request make_request(std::size_t payload_size) {
  slowpath_request req;
  req.l3_src = 1;
  req.header_bytes = bytes(24, 0x11);
  req.payload = bytes(payload_size, 0x5a);
  return req;
}

void pump_one(slowpath_channel& ch, slowpath_request req) {
  while (!ch.submit(req)) {
  }
  // ring_channel offers a parking wait — essential when producer and
  // worker share a core; other channels are polled.
  if (auto* ring = dynamic_cast<ring_channel*>(&ch)) {
    for (;;) {
      if (auto r = ring->poll_wait()) {
        benchmark::DoNotOptimize(r->verdict);
        return;
      }
    }
  }
  for (;;) {
    if (auto r = ch.poll()) {
      benchmark::DoNotOptimize(r->verdict);
      return;
    }
  }
}

void BM_Transport_Inline(benchmark::State& state) {
  inline_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ring(benchmark::State& state) {
  ring_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ipc(benchmark::State& state) {
  ipc_channel ch(null_handler());
  const auto req = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  for (auto _ : state) {
    auto r = req;
    r.token = token++;
    pump_one(ch, std::move(r));
  }
  state.SetItemsProcessed(state.iterations());
}

// Pipelined variants: 64 outstanding, as in Table 1.
template <typename Channel>
void pipelined(benchmark::State& state) {
  Channel ch(null_handler());
  const auto base = make_request(static_cast<std::size_t>(state.range(0)));
  std::uint64_t token = 0;
  std::uint64_t completed = 0;
  std::uint64_t submitted = 0;
  for (auto _ : state) {
    // Keep the 64-deep window full...
    while (submitted - completed < 64) {
      auto r = base;
      r.token = token++;
      if (!ch.submit(std::move(r))) break;  // bounded channel momentarily full
      ++submitted;
    }
    // ...and account one completion per iteration.
    if constexpr (std::is_same_v<Channel, ring_channel>) {
      while (!ch.poll_wait()) {
      }
    } else {
      while (!ch.poll()) {
      }
    }
    ++completed;
  }
  while (completed < submitted) {
    if (ch.poll()) ++completed;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Transport_Ring_Pipelined(benchmark::State& state) { pipelined<ring_channel>(state); }
void BM_Transport_Ipc_Pipelined(benchmark::State& state) { pipelined<ipc_channel>(state); }

}  // namespace

BENCHMARK(BM_Transport_Inline)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ring)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ipc)->Arg(64)->Arg(1000);
BENCHMARK(BM_Transport_Ring_Pipelined)->Arg(1000);
BENCHMARK(BM_Transport_Ipc_Pipelined)->Arg(1000);

BENCHMARK_MAIN();
