// Ablation A1: the decision cache. Measures the fast path (cache hit) vs
// the slow path (miss -> service module via the inline channel), the cost
// of eviction churn, and the hit-rate sweep through the pipe-terminus —
// quantifying why ILP is designed for cacheability (§4 goal 3).
#include <benchmark/benchmark.h>

#include "core/decision_cache.h"
#include "core/pipe_terminus.h"

using namespace interedge;
using namespace interedge::core;

namespace {

cache_key key_of(std::uint64_t i) { return cache_key{i, 1, i * 7}; }

void BM_Cache_Hit(benchmark::State& state) {
  decision_cache cache(4096);
  for (std::uint64_t i = 0; i < 1024; ++i) cache.insert(key_of(i), decision::forward_to(i));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key_of(i++ % 1024)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Cache_Miss(benchmark::State& state) {
  decision_cache cache(4096);
  std::uint64_t i = 1u << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key_of(i++)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Cache_InsertWithEviction(benchmark::State& state) {
  decision_cache cache(static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    cache.insert(key_of(i++), decision::forward_to(1));
  }
  state.SetItemsProcessed(state.iterations());
}

// Terminus-level sweep: what a given hit rate means for per-packet cost.
void BM_Terminus_HitRateSweep(benchmark::State& state) {
  const int hit_percent = static_cast<int>(state.range(0));

  decision_cache cache(1 << 16);
  inline_channel channel([](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::forward_to(2);
    return resp;
  });
  std::uint64_t forwarded = 0;
  pipe_terminus terminus(cache, channel,
                         [&forwarded](peer_id, const ilp::ilp_header&, const_byte_span) {
                           ++forwarded;
                         });

  // Pre-install decisions for the "hot" connections.
  for (std::uint64_t c = 0; c < 100; ++c) {
    cache.insert(cache_key{1, ilp::svc::null_service, c}, decision::forward_to(2));
  }

  packet pkt;
  pkt.l3_src = 1;
  pkt.header.service = ilp::svc::null_service;
  pkt.payload = bytes(64, 0);

  std::uint64_t i = 0;
  std::uint64_t cold = 1u << 20;
  for (auto _ : state) {
    const bool hit = static_cast<int>(i % 100) < hit_percent;
    pkt.header.connection = hit ? (i % 100) : cold++;
    ++i;
    packet copy = pkt;
    terminus.handle(std::move(copy));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["fast_path"] = static_cast<double>(terminus.stats().fast_path);
}

}  // namespace

BENCHMARK(BM_Cache_Hit);
BENCHMARK(BM_Cache_Miss);
BENCHMARK(BM_Cache_InsertWithEviction)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Terminus_HitRateSweep)->Arg(0)->Arg(50)->Arg(90)->Arg(100);

BENCHMARK_MAIN();
