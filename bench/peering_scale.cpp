// Reproduces the Appendix C "Direct peering" benchmark: "A commodity
// (16-core) server could easily maintain 98,000 simultaneous tunnels, each
// doing symmetric key rotation every three minutes. In terms of compute,
// this consumed less than half a core, and in terms of bandwidth it
// consumed roughly 3.4 Mbps."
//
// We build the tunnel fleet with staggered 3-minute rekey deadlines and
// process one full rotation interval, measuring (a) the CPU time spent on
// rekey handshakes as a fraction of a core and (b) the control-plane
// bandwidth of the handshake messages.
//
//   ./bench/peering_scale [--tunnels=98000] [--interval_s=180] [--scale=0.1]
//
// --scale runs a proportional subsample (default 10% of the tunnels over
// 10% of the interval) and extrapolates — full scale takes a few minutes
// of wall time mostly constructing key pairs; pass --scale=1 for the
// complete run.
#include <chrono>
#include <cstdio>

#include "common/flags.h"
#include "tunnel/tunnel.h"

using namespace interedge;
using steady = std::chrono::steady_clock;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const double scale = flags.get_double("scale", 0.1);
  const std::size_t full_tunnels = static_cast<std::size_t>(flags.get_int("tunnels", 98000));
  const auto full_interval = std::chrono::seconds(flags.get_int("interval_s", 180));

  const std::size_t tunnels = std::max<std::size_t>(1, static_cast<std::size_t>(
      static_cast<double>(full_tunnels) * scale));
  // Keep the per-tunnel rekey RATE identical to the paper's workload: each
  // tunnel rekeys once per full_interval; we process `scale` of the
  // interval over the subsampled fleet and extrapolate linearly in both
  // dimensions.
  const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(full_interval);

  std::printf("== Appendix C direct-peering benchmark ==\n");
  std::printf("constructing %zu tunnels (%.0f%% of %zu)...\n", tunnels, scale * 100,
              full_tunnels);

  const auto t_build0 = steady::now();
  tunnel::tunnel_fleet fleet(tunnels, window, /*seed=*/42);
  const auto build_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(steady::now() - t_build0).count();
  std::printf("fleet ready in %.1f s\n\n", build_s);

  // Process one full rotation interval in 1-second ticks of virtual time,
  // accumulating the real CPU time the rekeys consume.
  std::printf("processing one %lld-second rotation interval...\n",
              static_cast<long long>(full_interval.count()));
  double cpu_seconds = 0;
  std::size_t rekeys = 0;
  for (std::int64_t tick = 1; tick <= full_interval.count(); ++tick) {
    const time_point virtual_now{std::chrono::seconds(tick)};
    const auto t0 = steady::now();
    rekeys += fleet.rotate_due(virtual_now);
    cpu_seconds +=
        std::chrono::duration_cast<std::chrono::duration<double>>(steady::now() - t0).count();
  }

  const double interval_s = static_cast<double>(full_interval.count());
  const double core_fraction = cpu_seconds / interval_s;
  const double bytes_total = static_cast<double>(fleet.total_handshake_bytes());
  const double mbps = bytes_total * 8.0 / interval_s / 1e6;

  // Extrapolate the subsample to the full fleet (costs are per-tunnel
  // independent, so scaling is linear).
  const double scale_up = static_cast<double>(full_tunnels) / static_cast<double>(tunnels);

  std::printf("\n-- measured (%zu tunnels) --\n", tunnels);
  std::printf("rekeys completed:        %zu (%.1f/s)\n", rekeys,
              static_cast<double>(rekeys) / interval_s);
  std::printf("rekey CPU time:          %.2f s over a %.0f s interval = %.4f cores\n",
              cpu_seconds, interval_s, core_fraction);
  std::printf("handshake bandwidth:     %.3f Mbps (%.0f bytes/rekey)\n", mbps,
              rekeys ? bytes_total / static_cast<double>(rekeys) : 0.0);

  std::printf("\n-- extrapolated to %zu tunnels --\n", full_tunnels);
  std::printf("CPU:                     %.3f cores   (paper: < 0.5 core)\n",
              core_fraction * scale_up);
  std::printf("control bandwidth:       %.2f Mbps    (paper: ~3.4 Mbps incl. keepalives)\n",
              mbps * scale_up);
  std::printf("verdict:                 %s\n",
              core_fraction * scale_up < 0.5 ? "PASS — full-mesh edomain peering is cheap"
                                             : "FAIL — exceeds half a core");
  return core_fraction * scale_up < 0.5 ? 0 : 1;
}
