// Ablation A6: batched SN ingress datapath. Measures packets/sec through
// the full receive chain — pipe decrypt, decision-cache consult, terminus
// verdict — at batch sizes 1/8/32/128. Batch size 1 runs the legacy
// per-packet path (pipe_manager::on_datagram → pipe::open →
// pipe_terminus::handle, each packet paying its own allocations, cache
// lookup and slow-path drain); sizes > 1 run the batched path
// (on_datagram_batch → pipe::decrypt_batch → handle_batch) where scratch
// buffers are reused, same-flow packets share one cache lookup and the
// slow-path channel is drained once per batch. The UDP arms isolate the
// syscall half of the story: recvmmsg/sendmmsg versus one syscall per
// datagram over loopback.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/buf_pool.h"
#include "common/clock.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/prof.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "core/decision_cache.h"
#include "core/pipe_terminus.h"
#include "ilp/pipe_manager.h"
#include "net/udp_transport.h"

using namespace interedge;
using namespace interedge::core;

// TU-wide heap instrumentation (ISSUE 6): replacing global operator new in
// this binary lets the zero-copy arms audit — not estimate — steady-state
// allocation counts across the whole ingress chain. Counting is gated so
// setup/teardown churn stays out of the audit.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

ilp::ilp_header flow_header() {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = 777;
  return h;
}

// A sender pipe_manager feeding a receiver wired the way service_node
// wires it: pipes → terminus → decision cache → inline slow-path channel.
struct datapath {
  decision_cache cache{4096, 0};
  std::unique_ptr<inline_channel> channel;
  std::unique_ptr<pipe_terminus> terminus;
  std::vector<bytes> sender_out;    // datagrams sender → receiver
  std::vector<bytes> receiver_out;  // datagrams receiver → sender
  std::unique_ptr<ilp::pipe_manager> sender;
  std::unique_ptr<ilp::pipe_manager> receiver;
  std::vector<packet> batch_scratch;

  datapath() {
    channel = std::make_unique<inline_channel>([](slowpath_request req) {
      const auto header = ilp::ilp_header::decode(req.header_bytes);
      slowpath_response resp;
      resp.token = req.token;
      resp.verdict = decision::deliver();
      resp.cache_inserts.emplace_back(cache_key{req.l3_src, header.service, header.connection},
                                      decision::deliver());
      return resp;
    });
    terminus = std::make_unique<pipe_terminus>(
        cache, *channel, [](peer_id, const ilp::ilp_header&, const_byte_span) {});
    sender = std::make_unique<ilp::pipe_manager>(
        1, [this](peer_id, bytes d) { sender_out.push_back(std::move(d)); },
        [](peer_id, const ilp::ilp_header&, bytes) {});
    receiver = std::make_unique<ilp::pipe_manager>(
        2, [this](peer_id, bytes d) { receiver_out.push_back(std::move(d)); },
        [this](peer_id from, const ilp::ilp_header& h, bytes payload) {
          terminus->handle(packet{from, h, std::move(payload)});
        });
    receiver->set_batch_deliver([this](peer_id from, std::span<ilp::opened_packet> pkts) {
      batch_scratch.clear();
      batch_scratch.reserve(pkts.size());
      for (ilp::opened_packet& p : pkts) {
        batch_scratch.push_back(
            packet{from, std::move(p.header), bytes(p.payload.begin(), p.payload.end())});
      }
      terminus->handle_batch(batch_scratch);
    });

    // Handshake, then warm the decision cache with one packet of the flow.
    sender->connect(2);
    shuttle();
    sender->send(2, flow_header(), bytes(16, 0x5a));
    shuttle();
  }

  // Delivers queued datagrams until both directions quiesce.
  void shuttle() {
    while (!sender_out.empty() || !receiver_out.empty()) {
      std::vector<bytes> moving;
      moving.swap(sender_out);
      for (const bytes& d : moving) receiver->on_datagram(1, d);
      moving.clear();
      moving.swap(receiver_out);
      for (const bytes& d : moving) sender->on_datagram(2, d);
    }
  }

  // Switches delivery to the zero-copy shape service_node uses since
  // ISSUE 6: the terminus consumes packet_views aliasing the decrypted
  // buffers instead of per-packet owned copies.
  std::vector<packet_view> view_scratch;
  void use_view_deliver() {
    receiver->set_batch_deliver([this](peer_id from, std::span<ilp::opened_packet> pkts) {
      view_scratch.clear();
      view_scratch.reserve(pkts.size());
      for (ilp::opened_packet& p : pkts) {
        view_scratch.push_back(packet_view{from, std::move(p.header), p.payload});
      }
      terminus->handle_batch(std::span<packet_view>(view_scratch));
    });
  }

  // Seals `count` same-flow data datagrams of `payload_size` bytes. PSP is
  // stateless per packet, so the burst can be replayed every iteration.
  std::vector<bytes> preseal(std::size_t count, std::size_t payload_size) {
    sender_out.clear();
    for (std::size_t i = 0; i < count; ++i) {
      sender->send(2, flow_header(), bytes(payload_size, 0x77));
    }
    std::vector<bytes> wires;
    wires.swap(sender_out);
    return wires;
  }
};

// Full ingress chain at varying batch sizes; range(0) == 1 is the
// per-packet baseline the ≥2x claim is measured against.
void BM_IngressDatapath(benchmark::State& state) {
  datapath dp;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, 256);
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  if (batch == 1) {
    for (auto _ : state) {
      dp.receiver->on_datagram(1, wires[0]);
    }
  } else {
    for (auto _ : state) {
      dp.receiver->on_datagram_batch(1, spans);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
}

// Same chain with full telemetry enabled the way service_node enables it:
// registry-backed datapath counters, per-stage histograms, 1/256 packet
// sampling into the trace ring. The ISSUE 2 acceptance bar is ≤2% off the
// untraced arm at batch 32 — compare against BM_IngressDatapath/32.
void BM_IngressDatapath_Telemetry(benchmark::State& state) {
  datapath dp;
  metrics_registry reg;
  trace::tracer tracer(reg, trace::tracer::config{.hop = 2, .sample_shift = 8});
  dp.terminus->enable_telemetry(reg, &tracer);
  trace::scoped_tracer st(&tracer);

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, 256);
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  if (batch == 1) {
    for (auto _ : state) {
      dp.receiver->on_datagram(1, wires[0]);
    }
  } else {
    for (auto _ : state) {
      dp.receiver->on_datagram_batch(1, spans);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
  // Surface the stage timings the tracer accumulated, so the bench JSON
  // carries the per-stage story alongside the throughput numbers.
  state.counters["parse_p50_ns"] = static_cast<double>(
      tracer.stage_hist(trace::stage::parse).quantile(0.5));
  state.counters["decrypt_p50_ns"] = static_cast<double>(
      tracer.stage_hist(trace::stage::decrypt).quantile(0.5));
  state.counters["ingress_p50_ns"] = static_cast<double>(
      tracer.stage_hist(trace::stage::ingress).quantile(0.5));
  state.counters["sampled"] = static_cast<double>(tracer.sampled());
}

// Same chain with the fault-tolerant lifecycle enabled the way a live SN
// runs it: pipe liveness armed on the receiver (every authenticated rx
// resets the peer's miss counter), a slow-path policy installed (deadline
// stamped per miss, high-water shed check), and the recurring work — a
// liveness tick plus a decision-cache snapshot, standing in for the
// keepalive and checkpoint timers — amortized at a 10ms-vs-1M-pkts/s
// realistic period. The acceptance bar is <2% off BM_IngressDatapath at
// batch 32.
void BM_IngressDatapath_Robustness(benchmark::State& state) {
  datapath dp;
  manual_clock clk;
  dp.receiver->enable_liveness(clk, {.keepalive_interval = std::chrono::milliseconds(10)});
  dp.terminus->set_slowpath_policy({.clk = &clk,
                                    .deadline = std::chrono::milliseconds(5),
                                    .high_water = 1024});

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, 256);
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  std::uint64_t iter = 0;
  for (auto _ : state) {
    if (batch == 1) {
      dp.receiver->on_datagram(1, wires[0]);
    } else {
      dp.receiver->on_datagram_batch(1, spans);
    }
    // ~10ms of timer work per ~4096 bursts: probe cycle each tick, a full
    // decision-cache checkpoint snapshot every 16th (~160ms period).
    if ((++iter & 0xfff) == 0) {
      clk.advance(std::chrono::milliseconds(10));
      dp.receiver->liveness_tick();
      if ((iter & 0xffff) == 0) {
        bytes snap = dp.cache.snapshot(clk.now());
        benchmark::DoNotOptimize(snap);
      }
      dp.shuttle();  // drain the probe/ack exchange
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
}

// Continuous profiling plane (ISSUE 10) layered on the robustness arm,
// the way a live SN runs it: the bench thread registered with an armed
// sampling profiler at the default 97Hz and a cycle_set installed so the
// datapath's internal cycle_scope attribution (decrypt, terminus,
// slowpath) is live. The SIGPROF handler is the entire steady-state cost —
// draining/symbolizing happens on health ticks in production and stays
// OUT of the timed loop here. This TU's heap audit doubles as proof the
// handler never allocates. Acceptance (ISSUE 10): <2% pkts/s off
// BM_IngressDatapath_Robustness at batch 32.
void BM_IngressDatapath_Profiled(benchmark::State& state) {
  datapath dp;
  manual_clock clk;
  dp.receiver->enable_liveness(clk, {.keepalive_interval = std::chrono::milliseconds(10)});
  dp.terminus->set_slowpath_policy({.clk = &clk,
                                    .deadline = std::chrono::milliseconds(5),
                                    .high_water = 1024});

  prof::profiler profiler(prof::profiler_config{.sample_hz = 97, .ring_slots = 4096});
  profiler.register_current_thread("bench");
  profiler.arm();
  prof::cycle_set cycles;
  prof::scoped_cycle_set ambient(&cycles);

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, 256);
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  std::uint64_t iter = 0;
  for (auto _ : state) {
    if (batch == 1) {
      dp.receiver->on_datagram(1, wires[0]);
    } else {
      dp.receiver->on_datagram_batch(1, spans);
    }
    if ((++iter & 0xfff) == 0) {
      clk.advance(std::chrono::milliseconds(10));
      dp.receiver->liveness_tick();
      if ((iter & 0xffff) == 0) {
        bytes snap = dp.cache.snapshot(clk.now());
        benchmark::DoNotOptimize(snap);
      }
      dp.shuttle();
    }
  }
  // Outside the timed loop, matching production where drain/fold runs on
  // health ticks, not in the packet path.
  profiler.drain();
  profiler.disarm();
  profiler.unregister_current_thread();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
  state.counters["samples"] = static_cast<double>(profiler.total_samples());
  state.counters["sample_drops"] = static_cast<double>(profiler.total_dropped());
  state.counters["decrypt_cycles"] =
      static_cast<double>(cycles.self[static_cast<std::size_t>(prof::cycle_stage::decrypt)]);
  state.counters["terminus_cycles"] =
      static_cast<double>(cycles.self[static_cast<std::size_t>(prof::cycle_stage::terminus)]);
}

// Cross-hop path tracing (ISSUE 5) layered on the robustness arm, the way
// a live SN runs it: recorder installed on the terminus, liveness + slow-
// path policy armed. The `sampled` flag selects whether the presealed
// packets carry a sampled trace context in their sealed headers:
//   false — the common case; every packet pays exactly one failed
//           metadata-map lookup. Acceptance: <2% off
//           BM_IngressDatapath_Robustness at batch 32.
//   true  — worst case (sample shift 0): every packet emits a hop span
//           and re-seals a bumped context — the cost an operator opts
//           into per sampled packet, not per packet.
void ingress_path_tracing(benchmark::State& state, bool sampled) {
  datapath dp;
  manual_clock clk;
  dp.receiver->enable_liveness(clk, {.keepalive_interval = std::chrono::milliseconds(10)});
  dp.terminus->set_slowpath_policy({.clk = &clk,
                                    .deadline = std::chrono::milliseconds(5),
                                    .high_water = 1024});
  trace::path_recorder rec(trace::path_recorder::config{.node = 2, .capacity = 4096});
  dp.terminus->enable_path_tracing(&rec);

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<bytes> wires;
  if (sampled) {
    // Preseal by hand: same flow, but every header carries a sampled
    // context, as if an upstream hop at sample shift 0 forwarded it.
    dp.sender_out.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      ilp::ilp_header h = flow_header();
      trace::trace_context ctx;
      ctx.trace_id = 0x1234 + i;
      ctx.parent_span = 1;
      ctx.hop_count = 1;
      ctx.flags = trace::kTraceCtxSampled;
      h.set_trace(ctx);
      dp.sender->send(2, h, bytes(256, 0x77));
    }
    wires.swap(dp.sender_out);
  } else {
    wires = dp.preseal(batch, 256);
  }
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  std::vector<trace::path_span> drained;
  std::uint64_t iter = 0;
  for (auto _ : state) {
    if (batch == 1) {
      dp.receiver->on_datagram(1, wires[0]);
    } else {
      dp.receiver->on_datagram_batch(1, spans);
    }
    if (sampled) {
      drained.clear();
      rec.drain(drained, batch);  // the control thread's drain, amortized
    }
    if ((++iter & 0xfff) == 0) {
      clk.advance(std::chrono::milliseconds(10));
      dp.receiver->liveness_tick();
      dp.shuttle();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
  state.counters["spans_emitted"] = static_cast<double>(rec.emitted());
  state.counters["spans_dropped"] = static_cast<double>(rec.dropped());
}

void BM_IngressDatapath_PathTracing(benchmark::State& state) {
  ingress_path_tracing(state, /*sampled=*/false);
}
void BM_IngressDatapath_PathTracingSampled(benchmark::State& state) {
  ingress_path_tracing(state, /*sampled=*/true);
}

// SLO health plane (ISSUE 7) layered on the ingress chain, costed the way
// a live SN pays for it: each worker pump bumps a relaxed per-shard
// heartbeat word the watchdog scans, and an armed flight recorder sits
// ready (an append only happens on events — per-op price in
// ablation_observability). Everything else the plane does — snapshotting
// an SN-sized registry, the rollup tick into the window ring, the
// four-burn-window evaluation per SLO target, exposition gauges — rides
// the 100ms control tick, amortized here at the robustness arm's
// one-tick-per-4096-bursts cadence. Acceptance: <2% off BM_IngressDatapath
// at batch 32.
void BM_IngressDatapath_HealthPlane(benchmark::State& state) {
  datapath dp;

  // The merged registry a health tick rolls up, at SN-scale cardinality.
  metrics_registry reg;
  for (int i = 0; i < 48; ++i) reg.get_counter("sn.family." + std::to_string(i));
  for (int i = 0; i < 8; ++i) reg.get_histogram("sn.stage." + std::to_string(i));
  timeseries_store ts(timeseries_store::config{});
  slo::slo_monitor mon(ts, slo::burn_windows{});
  slo::slo_target tgt;
  tgt.name = "delivery-p99";
  tgt.service = "delivery";
  tgt.latency_series = "sn.stage.0";
  tgt.threshold_ns = 2'000'000;
  mon.add_target(tgt);
  flight_recorder recorder(flight_recorder::config{.capacity = 1024});
  std::atomic<std::uint64_t> heartbeat{0};

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, 256);
  std::vector<const_byte_span> spans(wires.begin(), wires.end());

  std::int64_t ns = 0;
  std::uint64_t iter = 0;
  for (auto _ : state) {
    if (batch == 1) {
      dp.receiver->on_datagram(1, wires[0]);
    } else {
      dp.receiver->on_datagram_batch(1, spans);
    }
    heartbeat.fetch_add(1, std::memory_order_relaxed);  // the pump's beat
    if ((++iter & 0xfff) == 0) {
      // The control thread's health tick: mutate a few series the way live
      // traffic would, roll the snapshot up, evaluate burn rates, expose.
      reg.get_counter("sn.family.0").add(static_cast<std::uint64_t>(batch));
      reg.get_histogram("sn.stage.0").record(1'000'000 + (iter & 0xffff));
      benchmark::DoNotOptimize(heartbeat.load(std::memory_order_relaxed));
      ns += 100'000'000;  // 100ms cadence
      ts.tick(reg, time_point(nanoseconds(ns)));
      mon.evaluate(time_point(nanoseconds(ns)));
      mon.expose(reg);
      recorder.record(fr_event{.time_ns = static_cast<std::uint64_t>(ns),
                               .kind = fr_kind::gauge,
                               .a = heartbeat.load(std::memory_order_relaxed)});
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * batch),
                         benchmark::Counter::kIsRate);
  state.counters["health_ticks"] = static_cast<double>(ts.ticks());
}

// ---- ISSUE 6: the copying baseline vs the zero-copy slab datapath ----
//
// Both arms run the identical chain (framing parse, batched PSP open,
// decision-cache consult, terminus verdict) on the same presealed burst;
// they differ only in buffer handling. Copying: arena decrypt + every
// delivered payload copied into an owned packet (the pre-ISSUE-6 shape).
// Zero-copy: datagrams live in pool slabs, headers decrypt in place over
// their own ciphertext, and the terminus consumes views — no payload copy
// anywhere. Each arm also audits its steady-state heap allocations with
// the TU's instrumented operator new; the zero-copy arm fails the bench
// if the audit finds any.

// Allocation audit: run `rounds` untimed repetitions of `fn` with heap
// counting on; returns allocations per round.
template <typename Fn>
double audit_allocs(std::size_t rounds, Fn&& fn) {
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (std::size_t r = 0; r < rounds; ++r) fn();
  g_count_allocs.store(false, std::memory_order_relaxed);
  return static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed)) /
         static_cast<double>(rounds);
}

// MTU-representative payload for the copy-tax arms: PSP seals only the
// ILP header, so decrypt cost is size-invariant while the copying
// baseline's tax scales per byte. 1 KiB is the regime the zero-copy
// refactor targets; the 256-byte story is BM_IngressDatapath above.
constexpr std::size_t kZeroCopyPayload = 1024;

void BM_IngressDatapathCopying(benchmark::State& state) {
  datapath dp;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, kZeroCopyPayload);

  // Faithful pre-ISSUE-6 shape: the transport handed every datagram out as
  // a freshly allocated `bytes` (udp_endpoint::recv_batch copied out of
  // its receive scratch), then the arena decrypt + owned-packet deliver
  // copied the payload again. Both copies are in this arm.
  std::vector<bytes> owned;
  std::vector<const_byte_span> spans;
  auto ingest = [&] {
    owned.clear();
    spans.clear();
    for (const bytes& w : wires) {
      owned.emplace_back(w.begin(), w.end());  // the rx handout copy
      spans.emplace_back(owned.back().data(), owned.back().size());
    }
    dp.receiver->on_datagram_batch(1, spans);
  };

  ingest();  // warm-up: scratch reaches capacity
  for (auto _ : state) {
    ingest();
  }
  const double allocs_per_round = audit_allocs(64, ingest);

  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch), benchmark::Counter::kIsRate);
  state.counters["heap_allocs_per_pkt"] = allocs_per_round / static_cast<double>(batch);
}

void BM_IngressDatapathZeroCopy(benchmark::State& state) {
  datapath dp;
  dp.use_view_deliver();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> wires = dp.preseal(batch, kZeroCopyPayload);

  buf::pool_config pcfg;
  pcfg.slab_size = 2048;
  pcfg.slab_count = std::max<std::size_t>(std::size_t{64}, batch);
  buf::buf_pool pool(pcfg);
  std::vector<buf::pkt_view> views;  // destroyed before the pool: refs drop first
  std::vector<byte_span> muts;
  // The in-place open destroys the wire's sealed region (the decrypted
  // header lands over its own ciphertext). PSP has no replay protection,
  // so restoring just that header region — never the payload — re-arms the
  // identical packet for the next iteration.
  std::vector<bytes> saved_hdr;
  {
    buf::buf_pool::cache cache(pool);
    for (const bytes& w : wires) {
      buf::slab_ref ref = cache.try_alloc();
      std::memcpy(ref.data(), w.data(), w.size());
      views.emplace_back(std::move(ref), 0, w.size());
      muts.push_back(views.back().mutable_span());
      saved_hdr.emplace_back(w.begin(), w.end() - kZeroCopyPayload);
    }
  }
  auto restore = [&] {
    for (std::size_t i = 0; i < muts.size(); ++i) {
      std::memcpy(muts[i].data(), saved_hdr[i].data(), saved_hdr[i].size());
    }
  };

  dp.receiver->on_datagram_batch_mut(1, muts);  // warm-up
  for (auto _ : state) {
    restore();
    dp.receiver->on_datagram_batch_mut(1, muts);
  }
  const double allocs_per_round = audit_allocs(64, [&] {
    restore();
    dp.receiver->on_datagram_batch_mut(1, muts);
  });

  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch), benchmark::Counter::kIsRate);
  state.counters["heap_allocs_per_pkt"] = allocs_per_round / static_cast<double>(batch);
  if (allocs_per_round != 0.0) {
    state.SkipWithError("steady-state heap allocations on the zero-copy path");
  }
}

// ---- ISSUE 8: egress arm — batched uring tx, zero allocs per packet ---
//
// The transmit mirror of BM_IngressDatapathZeroCopy: B (head, payload)
// gather sends staged as SENDMSG SQEs, one io_uring_enter per flush, the
// mmsg receiver draining into pool slabs to close the loop. Every staging
// resource is preallocated at ring construction — slot head arrays, the
// bounded copy_buf the unpinned payload rides, iovecs, msghdrs — so the
// TU's instrumented operator new must count ZERO steady-state heap
// allocations; the arm fails the bench if the audit finds any.
void BM_EgressDatapathUring(benchmark::State& state) {
  net::udp_config cfg;
  cfg.backend = net::udp_backend::uring;
  net::udp_endpoint tx(cfg);
  if (tx.backend() != net::udp_backend::uring) {
    state.SkipWithError("io_uring unavailable on this kernel");
    return;
  }
  net::udp_endpoint rx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const bytes head(24, 0x11);
  const bytes payload(256, 0x5a);
  std::vector<std::pair<net::peer_id, buf::pkt_view>> received;
  received.reserve(net::udp_endpoint::kBatchMax);

  auto round = [&] {
    for (std::size_t i = 0; i < batch; ++i) tx.send_gather(2, head, payload);
    tx.flush_tx();
    std::size_t got = 0;
    for (int spins = 0; got < batch && spins < 100000; ++spins) {
      received.clear();  // slab refs drop; the pool recycles them
      got += rx.recv_batch_views(net::udp_endpoint::kBatchMax, received);
    }
    tx.tx_drain();  // retire every completion before the next round
  };

  round();  // warm-up: slot free list, rx slab cache and vectors settle
  for (auto _ : state) round();
  const double allocs_per_round = audit_allocs(64, round);

  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
  state.counters["pkts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch), benchmark::Counter::kIsRate);
  state.counters["heap_allocs_per_pkt"] = allocs_per_round / static_cast<double>(batch);
  if (allocs_per_round != 0.0) {
    state.SkipWithError("steady-state heap allocations on the uring egress path");
  }
}

// UDP syscall batching in isolation: B datagrams over loopback, one
// sendto+recvfrom pair per packet versus one sendmmsg+recvmmsg per burst.
void udp_loopback(benchmark::State& state, bool batched) {
  net::udp_endpoint a, b;
  a.add_peer(2, "127.0.0.1", b.port());
  b.add_peer(1, "127.0.0.1", a.port());
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const std::vector<bytes> datagrams(count, bytes(256, 0x42));
  std::vector<std::pair<net::peer_id, bytes>> received;
  std::uint64_t moved = 0;

  for (auto _ : state) {
    std::size_t sent = 0;
    if (batched) {
      sent = a.send_batch(2, datagrams);
    } else {
      for (const bytes& d : datagrams) {
        if (a.send(2, d)) ++sent;
      }
    }
    std::size_t got = 0;
    for (int spins = 0; got < sent && spins < 10000; ++spins) {
      if (batched) {
        received.clear();
        got += b.recv_batch(net::udp_endpoint::kBatchMax, received);
      } else {
        if (b.poll()) ++got;
      }
    }
    moved += got;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}

void BM_UdpLoopback_PerPacket(benchmark::State& state) { udp_loopback(state, false); }
void BM_UdpLoopback_Batched(benchmark::State& state) { udp_loopback(state, true); }

}  // namespace

BENCHMARK(BM_IngressDatapath)->Arg(1)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapathCopying)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_IngressDatapathZeroCopy)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_IngressDatapath_Telemetry)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapath_Robustness)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapath_Profiled)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapath_PathTracing)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapath_PathTracingSampled)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_IngressDatapath_HealthPlane)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_EgressDatapathUring)->Arg(8)->Arg(32);
BENCHMARK(BM_UdpLoopback_PerPacket)->Arg(32);
BENCHMARK(BM_UdpLoopback_Batched)->Arg(32);

BENCHMARK_MAIN();
