// Ablation A5: enclave runtime overhead in isolation — boundary-crossing
// cost vs payload size, sealed-storage costs, and attestation quoting.
// Complements Table 1, which measures the enclave inside the full datapath.
#include <benchmark/benchmark.h>

#include "core/service_module.h"
#include "enclave/attestation.h"
#include "enclave/enclave.h"

using namespace interedge;

namespace {

// Minimal module and context for isolating the wrapper cost.
class noop_module final : public core::service_module {
 public:
  ilp::service_id id() const override { return 1; }
  std::string_view name() const override { return "noop"; }
  core::module_result on_packet(core::service_context&, const core::packet&) override {
    return core::module_result::deliver();
  }
};

class noop_context final : public core::service_context {
 public:
  core::peer_id node_id() const override { return 1; }
  std::uint16_t edomain() const override { return 1; }
  const interedge::clock& node_clock() const override { return clk_; }
  core::kv_store& storage() override { return kv_; }
  void send(core::peer_id, const ilp::ilp_header&, bytes) override {}
  void schedule(nanoseconds, std::function<void()>) override {}
  std::string config(const std::string&, const std::string& fallback) const override {
    return fallback;
  }
  void invalidate_connection(ilp::service_id, ilp::connection_id) override {}
  void invalidate_service(ilp::service_id) override {}
  std::uint64_t cache_hit_count(const core::cache_key&) const override { return 0; }
  std::optional<core::peer_id> next_hop(core::edge_addr d) const override { return d; }
  metrics_registry& metrics() override { return metrics_; }

 private:
  manual_clock clk_;
  core::kv_store kv_;
  metrics_registry metrics_;
};

core::packet packet_of(std::size_t payload) {
  core::packet p;
  p.l3_src = 1;
  p.header.service = 1;
  p.header.connection = 2;
  p.payload = bytes(payload, 0x5a);
  return p;
}

void BM_ModuleDirect(benchmark::State& state) {
  noop_module module;
  noop_context ctx;
  const core::packet pkt = packet_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.on_packet(ctx, pkt));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_ModuleInEnclave(benchmark::State& state) {
  enclave::enclave_config config;
  config.sealing_secret = to_bytes("bench");
  enclave::enclave_runtime wrapped(std::make_unique<noop_module>(), config);
  noop_context ctx;
  const core::packet pkt = packet_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrapped.on_packet(ctx, pkt));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_SealedCheckpoint(benchmark::State& state) {
  enclave::enclave_config config;
  config.sealing_secret = to_bytes("bench");
  enclave::enclave_runtime wrapped(std::make_unique<noop_module>(), config);
  const bytes blob(static_cast<std::size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    const bytes sealed = wrapped.seal(blob);
    benchmark::DoNotOptimize(wrapped.unseal(sealed));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_AttestationQuote(benchmark::State& state) {
  enclave::attestation_authority authority(1);
  enclave::tpm device(authority.provision(7));
  device.extend(enclave::measure_module("pubsub", "v1", to_bytes("code")));
  authority.expect("label", device.register_value());
  const bytes nonce = to_bytes("nonce-123");
  for (auto _ : state) {
    const bytes quote = device.quote(nonce);
    benchmark::DoNotOptimize(authority.verify(7, "label", nonce, quote));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ModuleDirect)->Arg(64)->Arg(1000)->Arg(9000);
BENCHMARK(BM_ModuleInEnclave)->Arg(64)->Arg(1000)->Arg(9000);
BENCHMARK(BM_SealedCheckpoint)->Arg(256)->Arg(65536);
BENCHMARK(BM_AttestationQuote);

BENCHMARK_MAIN();
