// The global lookup service (paper §3.2 "Name services" and §6 "Multipoint
// delivery"): "IANA or some other organization provides a durable and
// scalable lookup service that associates each address with the public key
// of the owner of that address", tracks which edomains have members of
// each group, and supports watches so edomain cores learn about changes.
//
// Substitution note: the paper assumes an external operated service; we
// implement it as an in-process object with the same interface semantics
// (records, authorization, watches). Point-to-point name resolution
// "returns not just the service-specific address but also one or more SNs
// associated with the destination host" — see host_record.
//
// Authorization uses designated-verifier MACs: a principal P authorizes a
// statement to verifier V with HMAC(X25519(sk_P, pk_V), statement). This
// gives the paper's "signature from the owner" semantics using only the
// primitives we implement from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/x25519.h"
#include "ilp/header.h"

namespace interedge::lookup {

using ilp::edge_addr;
using edomain_id = std::uint16_t;

// What name resolution returns for a host.
struct host_record {
  edge_addr addr = 0;
  crypto::x25519_key owner_public{};
  std::vector<ilp::peer_id> service_nodes;  // associated (first-hop) SNs
  edomain_id edomain = 0;
};

// A group (anycast/multicast/pub-sub topic) record.
struct group_record {
  std::string group;
  crypto::x25519_key owner_public{};
  bool open = false;  // owner posted a signed open-group statement
  std::set<edge_addr> granted;   // per-member authorizations
  std::set<edomain_id> member_edomains;
  std::set<edomain_id> sender_edomains;
};

enum class group_event { member_edomain_added, member_edomain_removed };
using group_watch =
    std::function<void(const std::string& group, edomain_id domain, group_event event)>;

// Designated-verifier authorization token.
bytes make_auth_token(const crypto::x25519_key& principal_secret,
                      const crypto::x25519_key& verifier_public, const_byte_span statement);

class lookup_service {
 public:
  lookup_service();

  const crypto::x25519_key& public_key() const { return keypair_.public_key; }

  // ---- host records ----
  void register_host(host_record record);
  std::optional<host_record> find_host(edge_addr addr) const;
  bool deregister_host(edge_addr addr);

  // ---- group lifecycle ----
  // Creates a group owned by `owner_public`. Fails if it already exists.
  bool create_group(const std::string& group, const crypto::x25519_key& owner_public);

  // Creates an ungoverned open group (no owner) if absent — the paper's
  // "some groups will be open to all" case for topics nobody claimed.
  // Returns true if the group now exists and is open.
  bool ensure_open_group(const std::string& group);

  // Owner posts a signed statement opening the group to all receivers.
  // `token` must be make_auth_token(owner_secret, service.public_key(),
  // "open:" + group).
  bool set_group_open(const std::string& group, const_byte_span token);

  // Owner grants a specific address the right to join.
  bool grant_membership(const std::string& group, edge_addr member, const_byte_span token);

  // Join authorization check used by SNs/cores when validating joins.
  bool can_join(const std::string& group, edge_addr member) const;

  // ---- edomain-level membership (maintained by edomain cores) ----
  // Returns true if this was the edomain's first membership.
  bool add_member_edomain(const std::string& group, edomain_id domain);
  bool remove_member_edomain(const std::string& group, edomain_id domain);
  // Registering a sender returns the current member-edomain list and
  // installs the core's watch (paper: "reads from the lookup service the
  // list of edomains with members (and puts a watch on that list)").
  std::vector<edomain_id> register_sender(const std::string& group, edomain_id domain,
                                          group_watch watch);
  void deregister_sender(const std::string& group, edomain_id domain);

  std::optional<group_record> find_group(const std::string& group) const;

  // ---- generic name registry ----
  // "Different services can be based on different name and address spaces"
  // (§3.2): services register service-specific names (e.g. a message
  // queue's home SN). First writer wins; returns false on collision with a
  // different value.
  bool register_name(const std::string& name, std::uint64_t value);
  std::optional<std::uint64_t> resolve_name(const std::string& name) const;
  bool unregister_name(const std::string& name);

  // Stats for tests/benchmarks.
  std::uint64_t queries() const { return queries_; }

 private:
  bool verify_owner_token(const group_record& rec, const_byte_span statement,
                          const_byte_span token) const;
  void notify(const std::string& group, edomain_id domain, group_event event);

  crypto::x25519_keypair keypair_;
  std::map<edge_addr, host_record> hosts_;
  std::map<std::string, group_record> groups_;
  // Watches installed by sender edomains: group -> (edomain -> watch).
  std::map<std::string, std::map<edomain_id, group_watch>> watches_;
  std::map<std::string, std::uint64_t> names_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace interedge::lookup
