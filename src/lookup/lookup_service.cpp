#include "lookup/lookup_service.h"

#include "crypto/kdf.h"
#include "crypto/random.h"

namespace interedge::lookup {

bytes make_auth_token(const crypto::x25519_key& principal_secret,
                      const crypto::x25519_key& verifier_public, const_byte_span statement) {
  const crypto::x25519_key shared = crypto::x25519(principal_secret, verifier_public);
  const auto mac = crypto::hmac_sha256(const_byte_span(shared.data(), shared.size()), statement);
  return bytes(mac.begin(), mac.end());
}

lookup_service::lookup_service() {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  keypair_ = crypto::x25519_keypair_from_seed(seed);
}

void lookup_service::register_host(host_record record) { hosts_[record.addr] = std::move(record); }

std::optional<host_record> lookup_service::find_host(edge_addr addr) const {
  ++queries_;
  auto it = hosts_.find(addr);
  if (it == hosts_.end()) return std::nullopt;
  return it->second;
}

bool lookup_service::deregister_host(edge_addr addr) { return hosts_.erase(addr) > 0; }

bool lookup_service::create_group(const std::string& group,
                                  const crypto::x25519_key& owner_public) {
  if (groups_.count(group)) return false;
  group_record rec;
  rec.group = group;
  rec.owner_public = owner_public;
  groups_.emplace(group, std::move(rec));
  return true;
}

bool lookup_service::ensure_open_group(const std::string& group) {
  auto it = groups_.find(group);
  if (it != groups_.end()) return it->second.open;
  group_record rec;
  rec.group = group;
  rec.open = true;
  groups_.emplace(group, std::move(rec));
  return true;
}

bool lookup_service::verify_owner_token(const group_record& rec, const_byte_span statement,
                                        const_byte_span token) const {
  // Designated-verifier check: recompute the MAC with our secret and the
  // owner's public key.
  const crypto::x25519_key shared = crypto::x25519(keypair_.secret, rec.owner_public);
  const auto mac = crypto::hmac_sha256(const_byte_span(shared.data(), shared.size()), statement);
  return ct_equal(const_byte_span(mac.data(), mac.size()), token);
}

bool lookup_service::set_group_open(const std::string& group, const_byte_span token) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  if (!verify_owner_token(it->second, to_bytes("open:" + group), token)) return false;
  it->second.open = true;
  return true;
}

bool lookup_service::grant_membership(const std::string& group, edge_addr member,
                                      const_byte_span token) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  if (!verify_owner_token(it->second, to_bytes("grant:" + group + ":" + std::to_string(member)),
                          token)) {
    return false;
  }
  it->second.granted.insert(member);
  return true;
}

bool lookup_service::can_join(const std::string& group, edge_addr member) const {
  ++queries_;
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  return it->second.open || it->second.granted.count(member) > 0;
}

bool lookup_service::add_member_edomain(const std::string& group, edomain_id domain) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  const bool inserted = it->second.member_edomains.insert(domain).second;
  if (inserted) notify(group, domain, group_event::member_edomain_added);
  return inserted;
}

bool lookup_service::remove_member_edomain(const std::string& group, edomain_id domain) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  const bool removed = it->second.member_edomains.erase(domain) > 0;
  if (removed) notify(group, domain, group_event::member_edomain_removed);
  return removed;
}

std::vector<edomain_id> lookup_service::register_sender(const std::string& group,
                                                        edomain_id domain, group_watch watch) {
  ++queries_;
  auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  it->second.sender_edomains.insert(domain);
  watches_[group][domain] = std::move(watch);
  return std::vector<edomain_id>(it->second.member_edomains.begin(),
                                 it->second.member_edomains.end());
}

void lookup_service::deregister_sender(const std::string& group, edomain_id domain) {
  auto it = groups_.find(group);
  if (it != groups_.end()) it->second.sender_edomains.erase(domain);
  auto w = watches_.find(group);
  if (w != watches_.end()) w->second.erase(domain);
}

std::optional<group_record> lookup_service::find_group(const std::string& group) const {
  ++queries_;
  auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  return it->second;
}

bool lookup_service::register_name(const std::string& name, std::uint64_t value) {
  auto [it, inserted] = names_.emplace(name, value);
  return inserted || it->second == value;
}

std::optional<std::uint64_t> lookup_service::resolve_name(const std::string& name) const {
  ++queries_;
  auto it = names_.find(name);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

bool lookup_service::unregister_name(const std::string& name) { return names_.erase(name) > 0; }

void lookup_service::notify(const std::string& group, edomain_id domain, group_event event) {
  auto w = watches_.find(group);
  if (w == watches_.end()) return;
  for (const auto& [watcher_domain, callback] : w->second) {
    if (callback) callback(group, domain, event);
  }
}

}  // namespace interedge::lookup
