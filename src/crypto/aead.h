// AEAD_CHACHA20_POLY1305 (RFC 8439 §2.8). The sealing primitive behind
// ILP header protection (via PSP-lite) and the peering tunnels.
//
// The *_into variants are the datapath entry points: they write into
// caller-provided scratch (no heap allocation) and take the AAD in two
// parts so PSP can bind spi||iv plus caller context without concatenating
// into a temporary. The bytes-returning wrappers keep the convenient API.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace interedge::crypto {

inline constexpr std::size_t kAeadKeySize = 32;
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 16;

// Encrypts `plaintext` into `out` as ciphertext || 16-byte tag. `out` must
// hold plaintext.size() + kAeadTagSize bytes; in-place operation
// (out.data() == plaintext.data()) is allowed. The effective AAD is the
// concatenation aad_a || aad_b.
void aead_seal_into(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                    const_byte_span aad_a, const_byte_span aad_b, const_byte_span plaintext,
                    byte_span out);

// Verifies ciphertext || tag and decrypts into `out` (which must hold
// sealed.size() - kAeadTagSize bytes); false on authentication failure, in
// which case `out` is untouched.
bool aead_open_into(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                    const_byte_span aad_a, const_byte_span aad_b, const_byte_span sealed,
                    byte_span out);

// Number of 64-byte ChaCha20 blocks a packet of `plaintext_len` (or
// decrypted `sealed_len - kAeadTagSize`) bytes consumes: block 0 yields
// the one-time Poly1305 key, blocks 1.. the cipher stream.
inline constexpr std::size_t aead_keystream_blocks(std::size_t plaintext_len) {
  return 1 + (plaintext_len + kChaChaBlockSize - 1) / kChaChaBlockSize;
}

// Keystream-supplied variants for the batched datapath: `keystream` holds
// aead_keystream_blocks(len) * 64 bytes generated for this packet's nonce
// with counters 0, 1, ... (see chacha20_keystream_blocks). Semantics match
// aead_seal_into / aead_open_into exactly; no ChaCha state is initialized
// per call, which is what lets a batch of small packets share the 4-block
// SIMD kernels.
void aead_seal_with_keystream(const_byte_span keystream, const_byte_span aad_a,
                              const_byte_span aad_b, const_byte_span plaintext, byte_span out);
bool aead_open_with_keystream(const_byte_span keystream, const_byte_span aad_a,
                              const_byte_span aad_b, const_byte_span sealed, byte_span out);

// Encrypts `plaintext` and returns ciphertext || 16-byte tag.
bytes aead_seal(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                const_byte_span aad, const_byte_span plaintext);

// Verifies and decrypts ciphertext || tag; nullopt on authentication failure.
std::optional<bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                               const std::uint8_t nonce[kAeadNonceSize], const_byte_span aad,
                               const_byte_span sealed);

}  // namespace interedge::crypto
