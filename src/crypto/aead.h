// AEAD_CHACHA20_POLY1305 (RFC 8439 §2.8). The sealing primitive behind
// ILP header protection (via PSP-lite) and the peering tunnels.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace interedge::crypto {

inline constexpr std::size_t kAeadKeySize = 32;
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 16;

// Encrypts `plaintext` and returns ciphertext || 16-byte tag.
bytes aead_seal(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                const_byte_span aad, const_byte_span plaintext);

// Verifies and decrypts ciphertext || tag; nullopt on authentication failure.
std::optional<bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                               const std::uint8_t nonce[kAeadNonceSize], const_byte_span aad,
                               const_byte_span sealed);

}  // namespace interedge::crypto
