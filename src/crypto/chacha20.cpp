#include "crypto/chacha20.h"

#include <cstring>

#include "crypto/cpu_features.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define INTEREDGE_CHACHA_SIMD 1
#include <immintrin.h>
#endif

namespace interedge::crypto {
namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

// 20 rounds + feed-forward over one block; `s` is the initial state.
void block_core(const std::uint32_t s[16], std::uint32_t w[16]) {
  std::memcpy(w, s, 16 * sizeof(std::uint32_t));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) w[i] += s[i];
}

void init_state(std::uint32_t s[16], const std::uint8_t key[kChaChaKeySize],
                std::uint32_t counter, const std::uint8_t nonce[kChaChaNonceSize]) {
  s[0] = 0x61707865;
  s[1] = 0x3320646e;
  s[2] = 0x79622d32;
  s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = load32(key + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = load32(nonce + 4 * i);
}

// XORs one full 64-byte block of `data` with keystream words, using
// word-wise loads/stores (unaligned-safe via memcpy).
void xor_block_words(std::uint8_t* data, const std::uint32_t w[16]) {
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v;
    std::memcpy(&v, data + 4 * i, 4);
    v ^= w[i];  // keystream words are little-endian on the wire
    std::memcpy(data + 4 * i, &v, 4);
  }
}

// Scalar engine starting from a prepared state; consumes all of `data`,
// advancing s[12] one block at a time. Runs four independent block cores
// per iteration so the multiplier chains of adjacent blocks overlap.
void xor_scalar_from_state(std::uint32_t s[16], std::uint8_t* data, std::size_t size) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  constexpr bool kLittleEndian = true;
#else
  constexpr bool kLittleEndian = false;
#endif
  std::size_t offset = 0;
  if (kLittleEndian) {
    while (size - offset >= 4 * 64) {
      std::uint32_t w0[16], w1[16], w2[16], w3[16];
      block_core(s, w0);
      s[12]++;
      block_core(s, w1);
      s[12]++;
      block_core(s, w2);
      s[12]++;
      block_core(s, w3);
      s[12]++;
      xor_block_words(data + offset, w0);
      xor_block_words(data + offset + 64, w1);
      xor_block_words(data + offset + 128, w2);
      xor_block_words(data + offset + 192, w3);
      offset += 4 * 64;
    }
    while (size - offset >= 64) {
      std::uint32_t w[16];
      block_core(s, w);
      s[12]++;
      xor_block_words(data + offset, w);
      offset += 64;
    }
  }
  while (offset < size) {
    std::uint32_t w[16];
    block_core(s, w);
    s[12]++;
    std::uint8_t block[64];
    for (int i = 0; i < 16; ++i) store32(block + 4 * i, w[i]);
    const std::size_t take = std::min<std::size_t>(64, size - offset);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= block[i];
    offset += take;
  }
}

#ifdef INTEREDGE_CHACHA_SIMD

// ---- SSE2: four independent blocks per iteration, rows as vectors ------

template <int N>
__attribute__((target("sse2"))) inline __m128i rotl128(__m128i v) {
  return _mm_or_si128(_mm_slli_epi32(v, N), _mm_srli_epi32(v, 32 - N));
}

struct qstate {
  __m128i a, b, c, d;
};

__attribute__((target("sse2"))) inline void double_round(qstate& s) {
  // Column round.
  s.a = _mm_add_epi32(s.a, s.b);
  s.d = rotl128<16>(_mm_xor_si128(s.d, s.a));
  s.c = _mm_add_epi32(s.c, s.d);
  s.b = rotl128<12>(_mm_xor_si128(s.b, s.c));
  s.a = _mm_add_epi32(s.a, s.b);
  s.d = rotl128<8>(_mm_xor_si128(s.d, s.a));
  s.c = _mm_add_epi32(s.c, s.d);
  s.b = rotl128<7>(_mm_xor_si128(s.b, s.c));
  // Diagonalize, diagonal round, undiagonalize.
  s.b = _mm_shuffle_epi32(s.b, _MM_SHUFFLE(0, 3, 2, 1));
  s.c = _mm_shuffle_epi32(s.c, _MM_SHUFFLE(1, 0, 3, 2));
  s.d = _mm_shuffle_epi32(s.d, _MM_SHUFFLE(2, 1, 0, 3));
  s.a = _mm_add_epi32(s.a, s.b);
  s.d = rotl128<16>(_mm_xor_si128(s.d, s.a));
  s.c = _mm_add_epi32(s.c, s.d);
  s.b = rotl128<12>(_mm_xor_si128(s.b, s.c));
  s.a = _mm_add_epi32(s.a, s.b);
  s.d = rotl128<8>(_mm_xor_si128(s.d, s.a));
  s.c = _mm_add_epi32(s.c, s.d);
  s.b = rotl128<7>(_mm_xor_si128(s.b, s.c));
  s.b = _mm_shuffle_epi32(s.b, _MM_SHUFFLE(2, 1, 0, 3));
  s.c = _mm_shuffle_epi32(s.c, _MM_SHUFFLE(1, 0, 3, 2));
  s.d = _mm_shuffle_epi32(s.d, _MM_SHUFFLE(0, 3, 2, 1));
}

__attribute__((target("sse2"))) inline void store_block_sse2(std::uint8_t* out, const qstate& w,
                                                             const qstate& init) {
  const __m128i rows[4] = {
      _mm_add_epi32(w.a, init.a),
      _mm_add_epi32(w.b, init.b),
      _mm_add_epi32(w.c, init.c),
      _mm_add_epi32(w.d, init.d),
  };
  for (int r = 0; r < 4; ++r) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + 16 * r));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * r), _mm_xor_si128(x, rows[r]));
  }
}

// Raw-keystream store: feed-forward add, no data XOR.
__attribute__((target("sse2"))) inline void store_keystream_sse2(std::uint8_t* out,
                                                                 const qstate& w,
                                                                 const qstate& init) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_add_epi32(w.a, init.a));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), _mm_add_epi32(w.b, init.b));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), _mm_add_epi32(w.c, init.c));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), _mm_add_epi32(w.d, init.d));
}

// Four independent-stream blocks per call: same key rows, each block's
// counter/nonce row supplied by the caller. Returns blocks consumed (a
// multiple of 4); the scalar caller finishes the tail.
__attribute__((target("sse2"))) std::size_t keystream_sse2(const std::uint32_t key_rows[12],
                                                           const std::uint32_t* counters,
                                                           const std::uint8_t* nonces,
                                                           std::size_t n, std::uint8_t* out) {
  const __m128i row_a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows));
  const __m128i row_b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows + 4));
  const __m128i row_c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows + 8));
  std::size_t done = 0;
  while (n - done >= 4) {
    qstate init[4], w[4];
    for (int b = 0; b < 4; ++b) {
      const std::uint8_t* nonce = nonces + 12 * (done + b);
      init[b].a = row_a;
      init[b].b = row_b;
      init[b].c = row_c;
      init[b].d = _mm_set_epi32(static_cast<int>(load32(nonce + 8)),
                                static_cast<int>(load32(nonce + 4)),
                                static_cast<int>(load32(nonce)),
                                static_cast<int>(counters[done + b]));
      w[b] = init[b];
    }
    for (int round = 0; round < 10; ++round) {
      double_round(w[0]);
      double_round(w[1]);
      double_round(w[2]);
      double_round(w[3]);
    }
    for (int b = 0; b < 4; ++b) store_keystream_sse2(out + 64 * (done + b), w[b], init[b]);
    done += 4;
  }
  return done;
}

// Consumes full 256-byte chunks; returns the new offset, s[12] advanced.
__attribute__((target("sse2"))) std::size_t xor_sse2_bulk(std::uint32_t s[16], std::uint8_t* data,
                                                          std::size_t size) {
  const __m128i row_a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
  const __m128i row_b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 4));
  const __m128i row_c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 8));
  std::size_t offset = 0;
  while (size - offset >= 4 * 64) {
    qstate init[4], w[4];
    for (int b = 0; b < 4; ++b) {
      init[b].a = row_a;
      init[b].b = row_b;
      init[b].c = row_c;
      init[b].d = _mm_set_epi32(static_cast<int>(s[15]), static_cast<int>(s[14]),
                                static_cast<int>(s[13]),
                                static_cast<int>(s[12] + static_cast<std::uint32_t>(b)));
      w[b] = init[b];
    }
    for (int round = 0; round < 10; ++round) {
      double_round(w[0]);
      double_round(w[1]);
      double_round(w[2]);
      double_round(w[3]);
    }
    for (int b = 0; b < 4; ++b) store_block_sse2(data + offset + 64 * b, w[b], init[b]);
    s[12] += 4;
    offset += 4 * 64;
  }
  return offset;
}

// ---- AVX2: two blocks per vector, four blocks per iteration ------------

struct wstate {
  __m256i a, b, c, d;
};

__attribute__((target("avx2"))) inline __m256i rot16_256(__m256i v) {
  const __m256i mask = _mm256_setr_epi8(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, 2, 3,
                                        0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  return _mm256_shuffle_epi8(v, mask);
}

__attribute__((target("avx2"))) inline __m256i rot8_256(__m256i v) {
  const __m256i mask = _mm256_setr_epi8(3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, 3, 0,
                                        1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
  return _mm256_shuffle_epi8(v, mask);
}

template <int N>
__attribute__((target("avx2"))) inline __m256i rotl256(__m256i v) {
  return _mm256_or_si256(_mm256_slli_epi32(v, N), _mm256_srli_epi32(v, 32 - N));
}

__attribute__((target("avx2"))) inline void double_round256(wstate& s) {
  s.a = _mm256_add_epi32(s.a, s.b);
  s.d = rot16_256(_mm256_xor_si256(s.d, s.a));
  s.c = _mm256_add_epi32(s.c, s.d);
  s.b = rotl256<12>(_mm256_xor_si256(s.b, s.c));
  s.a = _mm256_add_epi32(s.a, s.b);
  s.d = rot8_256(_mm256_xor_si256(s.d, s.a));
  s.c = _mm256_add_epi32(s.c, s.d);
  s.b = rotl256<7>(_mm256_xor_si256(s.b, s.c));
  s.b = _mm256_shuffle_epi32(s.b, _MM_SHUFFLE(0, 3, 2, 1));
  s.c = _mm256_shuffle_epi32(s.c, _MM_SHUFFLE(1, 0, 3, 2));
  s.d = _mm256_shuffle_epi32(s.d, _MM_SHUFFLE(2, 1, 0, 3));
  s.a = _mm256_add_epi32(s.a, s.b);
  s.d = rot16_256(_mm256_xor_si256(s.d, s.a));
  s.c = _mm256_add_epi32(s.c, s.d);
  s.b = rotl256<12>(_mm256_xor_si256(s.b, s.c));
  s.a = _mm256_add_epi32(s.a, s.b);
  s.d = rot8_256(_mm256_xor_si256(s.d, s.a));
  s.c = _mm256_add_epi32(s.c, s.d);
  s.b = rotl256<7>(_mm256_xor_si256(s.b, s.c));
  s.b = _mm256_shuffle_epi32(s.b, _MM_SHUFFLE(2, 1, 0, 3));
  s.c = _mm256_shuffle_epi32(s.c, _MM_SHUFFLE(1, 0, 3, 2));
  s.d = _mm256_shuffle_epi32(s.d, _MM_SHUFFLE(0, 3, 2, 1));
}

// Writes one block pair (128 bytes): low lanes are block n, high lanes
// block n+1.
__attribute__((target("avx2"))) inline void store_pair_avx2(std::uint8_t* out, const wstate& w,
                                                            const wstate& init) {
  const __m256i rows[4] = {
      _mm256_add_epi32(w.a, init.a),
      _mm256_add_epi32(w.b, init.b),
      _mm256_add_epi32(w.c, init.c),
      _mm256_add_epi32(w.d, init.d),
  };
  const __m256i out0 = _mm256_permute2x128_si256(rows[0], rows[1], 0x20);
  const __m256i out1 = _mm256_permute2x128_si256(rows[2], rows[3], 0x20);
  const __m256i out2 = _mm256_permute2x128_si256(rows[0], rows[1], 0x31);
  const __m256i out3 = _mm256_permute2x128_si256(rows[2], rows[3], 0x31);
  const __m256i chunks[4] = {out0, out1, out2, out3};
  for (int i = 0; i < 4; ++i) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + 32 * i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32 * i),
                        _mm256_xor_si256(x, chunks[i]));
  }
}

// Raw-keystream pair store (128 bytes, no data XOR).
__attribute__((target("avx2"))) inline void store_keystream_pair_avx2(std::uint8_t* out,
                                                                      const wstate& w,
                                                                      const wstate& init) {
  const __m256i rows[4] = {
      _mm256_add_epi32(w.a, init.a),
      _mm256_add_epi32(w.b, init.b),
      _mm256_add_epi32(w.c, init.c),
      _mm256_add_epi32(w.d, init.d),
  };
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permute2x128_si256(rows[0], rows[1], 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32),
                      _mm256_permute2x128_si256(rows[2], rows[3], 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64),
                      _mm256_permute2x128_si256(rows[0], rows[1], 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 96),
                      _mm256_permute2x128_si256(rows[2], rows[3], 0x31));
}

// Four independent-stream blocks per iteration, two per 256-bit vector.
__attribute__((target("avx2"))) std::size_t keystream_avx2(const std::uint32_t key_rows[12],
                                                           const std::uint32_t* counters,
                                                           const std::uint8_t* nonces,
                                                           std::size_t n, std::uint8_t* out) {
  const __m256i wa =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows)));
  const __m256i wb =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows + 4)));
  const __m256i wc =
      _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(key_rows + 8)));
  std::size_t done = 0;
  while (n - done >= 4) {
    wstate init[2], w[2];
    for (int p = 0; p < 2; ++p) {
      const std::size_t lo = done + 2 * static_cast<std::size_t>(p);
      const std::uint8_t* n0 = nonces + 12 * lo;
      const std::uint8_t* n1 = n0 + 12;
      init[p].a = wa;
      init[p].b = wb;
      init[p].c = wc;
      init[p].d = _mm256_set_epi32(
          static_cast<int>(load32(n1 + 8)), static_cast<int>(load32(n1 + 4)),
          static_cast<int>(load32(n1)), static_cast<int>(counters[lo + 1]),
          static_cast<int>(load32(n0 + 8)), static_cast<int>(load32(n0 + 4)),
          static_cast<int>(load32(n0)), static_cast<int>(counters[lo]));
      w[p] = init[p];
    }
    for (int round = 0; round < 10; ++round) {
      double_round256(w[0]);
      double_round256(w[1]);
    }
    store_keystream_pair_avx2(out + 64 * done, w[0], init[0]);
    store_keystream_pair_avx2(out + 64 * done + 128, w[1], init[1]);
    done += 4;
  }
  return done;
}

__attribute__((target("avx2"))) std::size_t xor_avx2_bulk(std::uint32_t s[16], std::uint8_t* data,
                                                          std::size_t size) {
  const __m128i row_a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
  const __m128i row_b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 4));
  const __m128i row_c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 8));
  const __m256i wa = _mm256_broadcastsi128_si256(row_a);
  const __m256i wb = _mm256_broadcastsi128_si256(row_b);
  const __m256i wc = _mm256_broadcastsi128_si256(row_c);
  std::size_t offset = 0;
  while (size - offset >= 4 * 64) {
    wstate init[2], w[2];
    for (int p = 0; p < 2; ++p) {
      const std::uint32_t c0 = s[12] + static_cast<std::uint32_t>(2 * p);
      const std::uint32_t c1 = s[12] + static_cast<std::uint32_t>(2 * p + 1);
      init[p].a = wa;
      init[p].b = wb;
      init[p].c = wc;
      init[p].d = _mm256_set_epi32(static_cast<int>(s[15]), static_cast<int>(s[14]),
                                   static_cast<int>(s[13]), static_cast<int>(c1),
                                   static_cast<int>(s[15]), static_cast<int>(s[14]),
                                   static_cast<int>(s[13]), static_cast<int>(c0));
      w[p] = init[p];
    }
    for (int round = 0; round < 10; ++round) {
      double_round256(w[0]);
      double_round256(w[1]);
    }
    store_pair_avx2(data + offset, w[0], init[0]);
    store_pair_avx2(data + offset + 128, w[1], init[1]);
    s[12] += 4;
    offset += 4 * 64;
  }
  return offset;
}

#endif  // INTEREDGE_CHACHA_SIMD

}  // namespace

void chacha20_block(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                    const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t out[64]) {
  std::uint32_t s[16], w[16];
  init_state(s, key, counter, nonce);
  block_core(s, w);
  for (int i = 0; i < 16; ++i) store32(out + 4 * i, w[i]);
}

void chacha20_xor_scalar(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                         const std::uint8_t nonce[kChaChaNonceSize], byte_span data) {
  if (data.empty()) return;
  std::uint32_t s[16];
  init_state(s, key, counter, nonce);
  xor_scalar_from_state(s, data.data(), data.size());
}

void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], byte_span data) {
  if (data.empty()) return;
  std::uint32_t s[16];
  init_state(s, key, counter, nonce);
  std::size_t offset = 0;
#ifdef INTEREDGE_CHACHA_SIMD
  const simd_level level = active_simd_level();
  if (level == simd_level::avx2) {
    offset = xor_avx2_bulk(s, data.data(), data.size());
  } else if (level == simd_level::sse2) {
    offset = xor_sse2_bulk(s, data.data(), data.size());
  }
#endif
  if (offset < data.size()) {
    xor_scalar_from_state(s, data.data() + offset, data.size() - offset);
  }
}

void chacha20_keystream_blocks(const std::uint8_t key[kChaChaKeySize],
                               const std::uint32_t* counters, const std::uint8_t* nonces,
                               std::size_t n, std::uint8_t* out) {
  std::size_t done = 0;
#ifdef INTEREDGE_CHACHA_SIMD
  if (n >= 4) {
    // Words 0..11 (constants + key) are shared by every stream.
    std::uint32_t key_rows[16];
    std::uint8_t zero_nonce[kChaChaNonceSize] = {};
    init_state(key_rows, key, 0, zero_nonce);  // only words 0..11 are used
    const simd_level level = active_simd_level();
    if (level == simd_level::avx2) {
      done = keystream_avx2(key_rows, counters, nonces, n, out);
    } else if (level == simd_level::sse2) {
      done = keystream_sse2(key_rows, counters, nonces, n, out);
    }
  }
#endif
  for (; done < n; ++done) {
    chacha20_block(key, counters[done], nonces + 12 * done, out + 64 * done);
  }
}

const char* chacha20_backend() {
#ifdef INTEREDGE_CHACHA_SIMD
  return simd_level_name(active_simd_level());
#else
  return "scalar";
#endif
}

}  // namespace interedge::crypto
