#include "crypto/chacha20.h"

#include <cstring>

namespace interedge::crypto {
namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

}  // namespace

void chacha20_block(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                    const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t out[64]) {
  std::uint32_t s[16];
  s[0] = 0x61707865;
  s[1] = 0x3320646e;
  s[2] = 0x79622d32;
  s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = load32(key + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = load32(nonce + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) store32(out + 4 * i, w[i] + s[i]);
}

void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], byte_span data) {
  std::uint8_t block[64];
  std::size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(key, counter++, nonce, block);
    const std::size_t take = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= block[i];
    offset += take;
  }
}

}  // namespace interedge::crypto
