#include "crypto/psp.h"

#include <cstring>

#include "crypto/aead.h"
#include "crypto/kdf.h"

namespace interedge::crypto {
namespace {

void make_nonce(std::uint8_t out[kAeadNonceSize], std::uint32_t spi, std::uint64_t iv) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(spi >> (8 * i));
  for (int i = 0; i < 8; ++i) out[4 + i] = static_cast<std::uint8_t>(iv >> (8 * i));
}

}  // namespace

psp_context::psp_context(const psp_master_key& master, std::uint32_t spi_base)
    : master_(master), spi_base_(spi_base & 0x7fffffffu) {
  current_ = derive(0);
  previous_ = current_;
}

psp_context::epoch_key psp_context::derive(std::uint64_t epoch) const {
  epoch_key ek;
  ek.spi = spi_base_ | (static_cast<std::uint32_t>(epoch & 1) << 31);
  std::uint8_t info[16 + 8 + 4];
  std::memcpy(info, "psp-lite pkt key", 16);
  for (int i = 0; i < 8; ++i) info[16 + i] = static_cast<std::uint8_t>(epoch >> (8 * i));
  for (int i = 0; i < 4; ++i) info[24 + i] = static_cast<std::uint8_t>(spi_base_ >> (8 * i));
  const bytes key = hkdf_expand(master_, const_byte_span(info, sizeof(info)), 32);
  std::memcpy(ek.key.data(), key.data(), 32);
  return ek;
}

bytes psp_context::seal(const_byte_span plaintext, const_byte_span aad) {
  const std::uint64_t iv = iv_counter_++;
  std::uint8_t nonce[kAeadNonceSize];
  make_nonce(nonce, current_.spi, iv);

  bytes out;
  out.reserve(kPspOverhead + plaintext.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(current_.spi >> (8 * i)));
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(iv >> (8 * i)));

  // Bind spi||iv into the AAD alongside the caller's context.
  bytes full_aad(out.begin(), out.end());
  full_aad.insert(full_aad.end(), aad.begin(), aad.end());

  const bytes sealed = aead_seal(current_.key.data(), nonce, full_aad, plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<bytes> psp_context::open(const_byte_span wire, const_byte_span aad) const {
  if (wire.size() < kPspOverhead) return std::nullopt;
  std::uint32_t spi = 0;
  std::uint64_t iv = 0;
  for (int i = 0; i < 4; ++i) spi |= static_cast<std::uint32_t>(wire[i]) << (8 * i);
  for (int i = 0; i < 8; ++i) iv |= static_cast<std::uint64_t>(wire[4 + i]) << (8 * i);

  const epoch_key* ek = nullptr;
  if (spi == current_.spi) {
    ek = &current_;
  } else if (spi == previous_.spi && epoch_ > 0) {
    ek = &previous_;
  } else {
    return std::nullopt;
  }

  std::uint8_t nonce[kAeadNonceSize];
  make_nonce(nonce, spi, iv);

  bytes full_aad(wire.begin(), wire.begin() + 12);
  full_aad.insert(full_aad.end(), aad.begin(), aad.end());
  return aead_open(ek->key.data(), nonce, full_aad, wire.subspan(12));
}

void psp_context::rotate() {
  previous_ = current_;
  ++epoch_;
  current_ = derive(epoch_);
  iv_counter_ = 0;
}

}  // namespace interedge::crypto
