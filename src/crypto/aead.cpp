#include "crypto/aead.h"

#include <cstring>

namespace interedge::crypto {
namespace {

poly_tag compute_tag(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                     const_byte_span aad, const_byte_span ciphertext) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  std::uint8_t block0[64];
  chacha20_block(key, 0, nonce, block0);

  poly1305 mac(block0);
  static constexpr std::uint8_t zeros[15] = {};
  mac.update(aad);
  if (aad.size() % 16 != 0) mac.update(const_byte_span(zeros, 16 - aad.size() % 16));
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) mac.update(const_byte_span(zeros, 16 - ciphertext.size() % 16));
  std::uint8_t lengths[16];
  const std::uint64_t aad_len = aad.size();
  const std::uint64_t ct_len = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(aad_len >> (8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_len >> (8 * i));
  }
  mac.update(lengths);
  return mac.finish();
}

}  // namespace

bytes aead_seal(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                const_byte_span aad, const_byte_span plaintext) {
  bytes out(plaintext.begin(), plaintext.end());
  chacha20_xor(key, 1, nonce, out);
  const poly_tag tag = compute_tag(key, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                               const std::uint8_t nonce[kAeadNonceSize], const_byte_span aad,
                               const_byte_span sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const const_byte_span ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const const_byte_span tag = sealed.last(kAeadTagSize);
  const poly_tag expected = compute_tag(key, nonce, aad, ciphertext);
  if (!ct_equal(const_byte_span(expected.data(), expected.size()), tag)) return std::nullopt;
  bytes out(ciphertext.begin(), ciphertext.end());
  chacha20_xor(key, 1, nonce, out);
  return out;
}

}  // namespace interedge::crypto
