#include "crypto/aead.h"

#include <cstring>

namespace interedge::crypto {
namespace {

poly_tag tag_with_poly_key(const std::uint8_t poly_key[kPolyKeySize], const_byte_span aad_a,
                           const_byte_span aad_b, const_byte_span ciphertext) {
  poly1305 mac(poly_key);
  static constexpr std::uint8_t zeros[15] = {};
  mac.update(aad_a);
  mac.update(aad_b);
  const std::size_t aad_len = aad_a.size() + aad_b.size();
  if (aad_len % 16 != 0) mac.update(const_byte_span(zeros, 16 - aad_len % 16));
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) mac.update(const_byte_span(zeros, 16 - ciphertext.size() % 16));
  std::uint8_t lengths[16];
  const std::uint64_t ct_len = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(aad_len) >> (8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_len >> (8 * i));
  }
  mac.update(lengths);
  return mac.finish();
}

poly_tag compute_tag(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                     const_byte_span aad_a, const_byte_span aad_b, const_byte_span ciphertext) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  std::uint8_t block0[64];
  chacha20_block(key, 0, nonce, block0);
  return tag_with_poly_key(block0, aad_a, aad_b, ciphertext);
}

// XORs `data` with the cipher-stream part of a precomputed keystream
// (blocks 1.., i.e. keystream + 64).
void xor_with_keystream(byte_span data, const_byte_span keystream) {
  const std::uint8_t* ks = keystream.data() + kChaChaBlockSize;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t v, k;
    std::memcpy(&v, data.data() + i, 8);
    std::memcpy(&k, ks + i, 8);
    v ^= k;
    std::memcpy(data.data() + i, &v, 8);
  }
  for (; i < data.size(); ++i) data[i] ^= ks[i];
}

}  // namespace

void aead_seal_into(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                    const_byte_span aad_a, const_byte_span aad_b, const_byte_span plaintext,
                    byte_span out) {
  if (out.data() != plaintext.data() && !plaintext.empty()) {
    std::memmove(out.data(), plaintext.data(), plaintext.size());
  }
  byte_span ciphertext = out.first(plaintext.size());
  chacha20_xor(key, 1, nonce, ciphertext);
  const poly_tag tag = compute_tag(key, nonce, aad_a, aad_b, ciphertext);
  std::memcpy(out.data() + plaintext.size(), tag.data(), tag.size());
}

bool aead_open_into(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                    const_byte_span aad_a, const_byte_span aad_b, const_byte_span sealed,
                    byte_span out) {
  if (sealed.size() < kAeadTagSize) return false;
  const const_byte_span ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const const_byte_span tag = sealed.last(kAeadTagSize);
  const poly_tag expected = compute_tag(key, nonce, aad_a, aad_b, ciphertext);
  if (!ct_equal(const_byte_span(expected.data(), expected.size()), tag)) return false;
  if (!ciphertext.empty()) std::memmove(out.data(), ciphertext.data(), ciphertext.size());
  chacha20_xor(key, 1, nonce, out.first(ciphertext.size()));
  return true;
}

void aead_seal_with_keystream(const_byte_span keystream, const_byte_span aad_a,
                              const_byte_span aad_b, const_byte_span plaintext, byte_span out) {
  if (out.data() != plaintext.data() && !plaintext.empty()) {
    std::memmove(out.data(), plaintext.data(), plaintext.size());
  }
  byte_span ciphertext = out.first(plaintext.size());
  xor_with_keystream(ciphertext, keystream);
  const poly_tag tag = tag_with_poly_key(keystream.data(), aad_a, aad_b, ciphertext);
  std::memcpy(out.data() + plaintext.size(), tag.data(), tag.size());
}

bool aead_open_with_keystream(const_byte_span keystream, const_byte_span aad_a,
                              const_byte_span aad_b, const_byte_span sealed, byte_span out) {
  if (sealed.size() < kAeadTagSize) return false;
  const const_byte_span ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const const_byte_span tag = sealed.last(kAeadTagSize);
  const poly_tag expected = tag_with_poly_key(keystream.data(), aad_a, aad_b, ciphertext);
  if (!ct_equal(const_byte_span(expected.data(), expected.size()), tag)) return false;
  if (!ciphertext.empty()) std::memmove(out.data(), ciphertext.data(), ciphertext.size());
  xor_with_keystream(out.first(ciphertext.size()), keystream);
  return true;
}

bytes aead_seal(const std::uint8_t key[kAeadKeySize], const std::uint8_t nonce[kAeadNonceSize],
                const_byte_span aad, const_byte_span plaintext) {
  bytes out(plaintext.size() + kAeadTagSize);
  aead_seal_into(key, nonce, aad, {}, plaintext, out);
  return out;
}

std::optional<bytes> aead_open(const std::uint8_t key[kAeadKeySize],
                               const std::uint8_t nonce[kAeadNonceSize], const_byte_span aad,
                               const_byte_span sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  bytes out(sealed.size() - kAeadTagSize);
  if (!aead_open_into(key, nonce, aad, {}, sealed, out)) return std::nullopt;
  return out;
}

}  // namespace interedge::crypto
