// Poly1305 with 26-bit limbs (donna-32 layout): products fit in 64 bits.
#include "crypto/poly1305.h"

#include <cstring>

namespace interedge::crypto {
namespace {
std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}
}  // namespace

poly1305::poly1305(const std::uint8_t key[kPolyKeySize]) {
  // r is clamped per the RFC.
  r_[0] = load32(key + 0) & 0x3ffffff;
  r_[1] = (load32(key + 3) >> 2) & 0x3ffff03;
  r_[2] = (load32(key + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (load32(key + 9) >> 6) & 0x3f03fff;
  r_[4] = (load32(key + 12) >> 8) & 0x00fffff;
  for (auto& h : h_) h = 0;
  for (int i = 0; i < 4; ++i) pad_[i] = load32(key + 16 + 4 * i);
}

void poly1305::blocks(const std::uint8_t* m, std::size_t count, std::uint32_t hibit) {
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  while (count-- > 0) {
    // h += m
    h0 += load32(m + 0) & 0x3ffffff;
    h1 += (load32(m + 3) >> 2) & 0x3ffffff;
    h2 += (load32(m + 6) >> 4) & 0x3ffffff;
    h3 += (load32(m + 9) >> 6) & 0x3ffffff;
    h4 += (load32(m + 12) >> 8) | hibit;
    m += 16;

    // h *= r mod 2^130 - 5
    const std::uint64_t d0 = static_cast<std::uint64_t>(h0) * r0 +
                             static_cast<std::uint64_t>(h1) * s4 +
                             static_cast<std::uint64_t>(h2) * s3 +
                             static_cast<std::uint64_t>(h3) * s2 +
                             static_cast<std::uint64_t>(h4) * s1;
    std::uint64_t d1 = static_cast<std::uint64_t>(h0) * r1 + static_cast<std::uint64_t>(h1) * r0 +
                       static_cast<std::uint64_t>(h2) * s4 + static_cast<std::uint64_t>(h3) * s3 +
                       static_cast<std::uint64_t>(h4) * s2;
    std::uint64_t d2 = static_cast<std::uint64_t>(h0) * r2 + static_cast<std::uint64_t>(h1) * r1 +
                       static_cast<std::uint64_t>(h2) * r0 + static_cast<std::uint64_t>(h3) * s4 +
                       static_cast<std::uint64_t>(h4) * s3;
    std::uint64_t d3 = static_cast<std::uint64_t>(h0) * r3 + static_cast<std::uint64_t>(h1) * r2 +
                       static_cast<std::uint64_t>(h2) * r1 + static_cast<std::uint64_t>(h3) * r0 +
                       static_cast<std::uint64_t>(h4) * s4;
    std::uint64_t d4 = static_cast<std::uint64_t>(h0) * r4 + static_cast<std::uint64_t>(h1) * r3 +
                       static_cast<std::uint64_t>(h2) * r2 + static_cast<std::uint64_t>(h3) * r1 +
                       static_cast<std::uint64_t>(h4) * r0;

    // Partial carry propagation.
    std::uint32_t c = static_cast<std::uint32_t>(d0 >> 26);
    h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
    d1 += c;
    c = static_cast<std::uint32_t>(d1 >> 26);
    h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
    d2 += c;
    c = static_cast<std::uint32_t>(d2 >> 26);
    h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
    d3 += c;
    c = static_cast<std::uint32_t>(d3 >> 26);
    h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
    d4 += c;
    c = static_cast<std::uint32_t>(d4 >> 26);
    h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += c;
  }

  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void poly1305::update(const_byte_span data) {
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      block(buffer_.data(), 1u << 24);
      buffered_ = 0;
    }
  }
  // One blocks() run for the whole full-block span: r, s and h stay in
  // registers instead of round-tripping through the object per block.
  const std::size_t full = (data.size() - offset) / 16;
  if (full > 0) {
    blocks(data.data() + offset, full, 1u << 24);
    offset += full * 16;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

poly_tag poly1305::finish() {
  if (buffered_ > 0) {
    buffer_[buffered_] = 1;
    for (std::size_t i = buffered_ + 1; i < 16; ++i) buffer_[i] = 0;
    block(buffer_.data(), 0);
    buffered_ = 0;
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  // Fully carry h.
  std::uint32_t c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // g = h + 5 - 2^130; select g if h >= p.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h = h % 2^128 in 32-bit words.
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // tag = (h + pad) % 2^128
  std::uint64_t f = static_cast<std::uint64_t>(h0) + pad_[0];
  h0 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h1) + pad_[1] + (f >> 32);
  h1 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h2) + pad_[2] + (f >> 32);
  h2 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h3) + pad_[3] + (f >> 32);
  h3 = static_cast<std::uint32_t>(f);

  poly_tag tag;
  const std::uint32_t words[4] = {h0, h1, h2, h3};
  for (int i = 0; i < 4; ++i) {
    tag[4 * i] = static_cast<std::uint8_t>(words[i]);
    tag[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 8);
    tag[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 16);
    tag[4 * i + 3] = static_cast<std::uint8_t>(words[i] >> 24);
  }
  return tag;
}

}  // namespace interedge::crypto
