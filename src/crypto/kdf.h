// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HKDF derives the directional
// PSP master keys from an X25519 shared secret during pipe establishment,
// and per-SPI packet keys from a PSP master key.
#pragma once

#include <array>
#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace interedge::crypto {

sha256::digest hmac_sha256(const_byte_span key, const_byte_span data);

// HKDF-Extract: PRK = HMAC(salt, ikm).
sha256::digest hkdf_extract(const_byte_span salt, const_byte_span ikm);

// HKDF-Expand: derives `length` (<= 255*32) output bytes from a PRK.
bytes hkdf_expand(const_byte_span prk, const_byte_span info, std::size_t length);

// Convenience one-shot: extract + expand.
bytes hkdf(const_byte_span salt, const_byte_span ikm, const_byte_span info, std::size_t length);

}  // namespace interedge::crypto
