// PSP-lite: per-packet transport encryption in the style of Google's PSP
// Security Protocol, which the paper selects for ILP because it "can operate
// on individual packets, even when they arrive out of order" and imposes no
// connection-establishment latency.
//
// Wire layout per packet:  spi(4) || iv(8) || ciphertext || tag(16)
//
// * The packet key is derived from a per-association master key and the SPI
//   (so rekeying = bumping the epoch bit in the SPI; no handshake).
// * The AEAD nonce is spi || iv, so each packet is independently sealed:
//   the receiver needs no per-packet ordering state.
// * The receiver accepts the current and the previous epoch, which lets a
//   sender rotate keys unilaterally without packet loss.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kPspMasterKeySize = 32;
inline constexpr std::size_t kPspOverhead = 4 + 8 + 16;  // spi + iv + tag

using psp_master_key = std::array<std::uint8_t, kPspMasterKeySize>;

// One direction of a security association. The two ends of an ILP pipe hold
// mirrored contexts (A's tx == B's rx) built from HKDF of the handshake
// secret.
class psp_context {
 public:
  psp_context(const psp_master_key& master, std::uint32_t spi_base);

  // Seals `plaintext`; `aad` binds cleartext context (e.g. outer addresses).
  bytes seal(const_byte_span plaintext, const_byte_span aad);

  // Opens a sealed packet; nullopt on unknown SPI or authentication failure.
  std::optional<bytes> open(const_byte_span wire, const_byte_span aad) const;

  // Scratch-buffer variant of seal(): writes spi || iv || ciphertext || tag
  // into `out`, which must hold plaintext.size() + kPspOverhead bytes. No
  // heap allocation. Returns the number of bytes written.
  std::size_t seal_into(const_byte_span plaintext, const_byte_span aad, byte_span out);

  // Scratch-buffer variant of open(): decrypts into `out`, which must hold
  // wire.size() - kPspOverhead bytes. Returns the plaintext length, or
  // nullopt on unknown SPI / authentication failure (out untouched).
  //
  // Aliasing guarantee (the zero-copy ingress path depends on it, here and
  // in open_batch): `out` MAY overlap the wire's ciphertext region
  // (wire.subspan(12, wire.size() - kPspOverhead)) — in particular it may
  // be exactly that region, decrypting the packet in place. The Poly1305
  // tag is verified over the ciphertext BEFORE any plaintext byte is
  // written, and the keystream xor tolerates dst == src (memmove
  // semantics), so a failed open leaves the wire intact and a successful
  // one never reads a byte it already overwrote.
  std::optional<std::size_t> open_into(const_byte_span wire, const_byte_span aad,
                                       byte_span out) const;

  // Batch variants: process many packets in one call. The burst's ChaCha20
  // blocks (Poly1305 key block + cipher stream, per packet) are generated
  // by the multi-stream SIMD kernels in one pass, and scratch buffers are
  // reused across calls — zero per-packet heap allocation. outs[i] must be
  // sized as for the *_into variants (plaintexts[i].size() + kPspOverhead
  // for seal; wires[i].size() - kPspOverhead for open). The aads[i]
  // overloads bind per-packet context; the single-aad overloads bind the
  // same context to every packet. open_batch records per-packet success in
  // ok[i]; both return the number of successful packets. open_batch's
  // outs[i] may alias wires[i]'s ciphertext region (in-place decrypt) —
  // see the aliasing guarantee on open_into.
  std::size_t seal_batch(std::span<const const_byte_span> plaintexts, const_byte_span aad,
                         std::span<const byte_span> outs);
  std::size_t seal_batch(std::span<const const_byte_span> plaintexts,
                         std::span<const const_byte_span> aads, std::span<const byte_span> outs);
  std::size_t open_batch(std::span<const const_byte_span> wires, const_byte_span aad,
                         std::span<const byte_span> outs, std::span<bool> ok) const;
  std::size_t open_batch(std::span<const const_byte_span> wires,
                         std::span<const const_byte_span> aads, std::span<const byte_span> outs,
                         std::span<bool> ok) const;

  // Unauthenticated decrypt of the first `out.size()` plaintext bytes of a
  // sealed packet — the flow-steering peek. Costs one ChaCha20 block (the
  // cipher stream starts at block 1; block 0 is the Poly1305 key), so a
  // steering stage can read a header prefix without paying for the full
  // authenticated open the owning worker will perform. out.size() must fit
  // in one cipher block (<= 64). Returns false on short wire or unknown
  // SPI. A tampered packet yields garbage here — that only mis-steers it;
  // the authenticated open still rejects it.
  bool peek_prefix(const_byte_span wire, byte_span out) const;

  // Batch peek: decrypts the first `prefix_len` bytes of each wire into
  // outs[i*prefix_len ..], generating the burst's first cipher blocks with
  // the multi-stream kernels in one pass (packets grouped by epoch key,
  // like open_batch). ok[i] records per-packet success; returns the number
  // peeked.
  std::size_t peek_prefix_batch(std::span<const const_byte_span> wires, std::size_t prefix_len,
                                byte_span outs, std::span<bool> ok) const;

  // Advances to the next key epoch (flips the SPI epoch bit, re-derives the
  // packet key). The previous epoch stays valid on the receive side.
  void rotate();

  std::uint32_t current_spi() const { return current_.spi; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t packets_sealed() const { return iv_counter_; }

 private:
  struct epoch_key {
    std::uint32_t spi = 0;
    std::array<std::uint8_t, 32> key{};
  };
  epoch_key derive(std::uint64_t epoch) const;

  psp_master_key master_;
  std::uint32_t spi_base_;
  std::uint64_t epoch_ = 0;
  epoch_key current_;
  epoch_key previous_;
  std::uint64_t iv_counter_ = 0;
  // Batch scratch, reused across calls so a steady-state batch performs no
  // per-packet allocation (mutable: open_batch is logically const).
  mutable bytes ks_scratch_;
  mutable bytes nonce_scratch_;
  mutable std::vector<std::uint32_t> counter_scratch_;
  mutable std::vector<const_byte_span> aad_scratch_;
};

}  // namespace interedge::crypto
