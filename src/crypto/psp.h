// PSP-lite: per-packet transport encryption in the style of Google's PSP
// Security Protocol, which the paper selects for ILP because it "can operate
// on individual packets, even when they arrive out of order" and imposes no
// connection-establishment latency.
//
// Wire layout per packet:  spi(4) || iv(8) || ciphertext || tag(16)
//
// * The packet key is derived from a per-association master key and the SPI
//   (so rekeying = bumping the epoch bit in the SPI; no handshake).
// * The AEAD nonce is spi || iv, so each packet is independently sealed:
//   the receiver needs no per-packet ordering state.
// * The receiver accepts the current and the previous epoch, which lets a
//   sender rotate keys unilaterally without packet loss.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kPspMasterKeySize = 32;
inline constexpr std::size_t kPspOverhead = 4 + 8 + 16;  // spi + iv + tag

using psp_master_key = std::array<std::uint8_t, kPspMasterKeySize>;

// One direction of a security association. The two ends of an ILP pipe hold
// mirrored contexts (A's tx == B's rx) built from HKDF of the handshake
// secret.
class psp_context {
 public:
  psp_context(const psp_master_key& master, std::uint32_t spi_base);

  // Seals `plaintext`; `aad` binds cleartext context (e.g. outer addresses).
  bytes seal(const_byte_span plaintext, const_byte_span aad);

  // Opens a sealed packet; nullopt on unknown SPI or authentication failure.
  std::optional<bytes> open(const_byte_span wire, const_byte_span aad) const;

  // Advances to the next key epoch (flips the SPI epoch bit, re-derives the
  // packet key). The previous epoch stays valid on the receive side.
  void rotate();

  std::uint32_t current_spi() const { return current_.spi; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t packets_sealed() const { return iv_counter_; }

 private:
  struct epoch_key {
    std::uint32_t spi = 0;
    std::array<std::uint8_t, 32> key{};
  };
  epoch_key derive(std::uint64_t epoch) const;

  psp_master_key master_;
  std::uint32_t spi_base_;
  std::uint64_t epoch_ = 0;
  epoch_key current_;
  epoch_key previous_;
  std::uint64_t iv_counter_ = 0;
};

}  // namespace interedge::crypto
