// SipHash-2-4 keyed hash. Used to key the decision cache's hash map so a
// third party cannot force pathological collisions with crafted
// connection IDs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

using siphash_key = std::array<std::uint8_t, 16>;

std::uint64_t siphash24(const siphash_key& key, const_byte_span data);

}  // namespace interedge::crypto
