#include "crypto/siphash.h"

namespace interedge::crypto {
namespace {
std::uint64_t rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2, std::uint64_t& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}
}  // namespace

std::uint64_t siphash24(const siphash_key& key, const_byte_span data) {
  const std::uint64_t k0 = load64(key.data());
  const std::uint64_t k1 = load64(key.data() + 8);
  std::uint64_t v0 = 0x736f6d6570736575ull ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dull ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ull ^ k0;
  std::uint64_t v3 = 0x7465646279746573ull ^ k1;

  const std::size_t full = data.size() / 8 * 8;
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load64(data.data() + i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(data.size() & 0xff) << 56;
  for (std::size_t i = full; i < data.size(); ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - full));
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  for (int i = 0; i < 4; ++i) sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace interedge::crypto
