// Poly1305 one-time authenticator (RFC 8439).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kPolyKeySize = 32;
inline constexpr std::size_t kPolyTagSize = 16;

using poly_tag = std::array<std::uint8_t, kPolyTagSize>;

class poly1305 {
 public:
  explicit poly1305(const std::uint8_t key[kPolyKeySize]);
  void update(const_byte_span data);
  poly_tag finish();

  static poly_tag mac(const std::uint8_t key[kPolyKeySize], const_byte_span data) {
    poly1305 p(key);
    p.update(data);
    return p.finish();
  }

 private:
  void block(const std::uint8_t* m, std::uint32_t hibit) { blocks(m, 1, hibit); }
  // Accumulates `count` consecutive 16-byte blocks with r, s and h held in
  // locals across the whole run (the hot loop of the AEAD tag).
  void blocks(const std::uint8_t* m, std::size_t count, std::uint32_t hibit);
  std::uint32_t r_[5];
  std::uint32_t h_[5];
  std::uint32_t pad_[4];
  std::array<std::uint8_t, 16> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace interedge::crypto
