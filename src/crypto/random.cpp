#include "crypto/random.h"

#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

namespace interedge::crypto {
namespace {
std::function<void(byte_span)>& test_source() {
  static std::function<void(byte_span)> source;
  return source;
}
}  // namespace

void random_bytes(byte_span out) {
  if (test_source()) {
    test_source()(out);
    return;
  }
  std::size_t offset = 0;
  while (offset < out.size()) {
    const std::size_t take = std::min<std::size_t>(256, out.size() - offset);
    if (::getentropy(out.data() + offset, take) != 0) {
      throw std::runtime_error("getentropy failed");
    }
    offset += take;
  }
}

void set_random_source_for_test(std::function<void(byte_span)> source) {
  test_source() = std::move(source);
}

}  // namespace interedge::crypto
