#include "crypto/cpu_features.h"

#include <atomic>

namespace interedge::crypto {
namespace {

simd_level probe() {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return simd_level::avx2;
  if (__builtin_cpu_supports("sse2")) return simd_level::sse2;
#endif
  return simd_level::scalar;
}

std::atomic<simd_level>& active_slot() {
  static std::atomic<simd_level> level{probe()};
  return level;
}

}  // namespace

simd_level detect_simd_level() {
  static const simd_level detected = probe();
  return detected;
}

simd_level active_simd_level() { return active_slot().load(std::memory_order_relaxed); }

void set_simd_level(simd_level level) {
  if (level > detect_simd_level()) level = detect_simd_level();
  active_slot().store(level, std::memory_order_relaxed);
}

const char* simd_level_name(simd_level level) {
  switch (level) {
    case simd_level::avx2:
      return "avx2";
    case simd_level::sse2:
      return "sse2";
    case simd_level::scalar:
      return "scalar";
  }
  return "scalar";
}

}  // namespace interedge::crypto
