// Secret randomness for key material. Production path reads the OS
// entropy source; tests can install a deterministic source.
#pragma once

#include <functional>

#include "common/bytes.h"

namespace interedge::crypto {

// Fills `out` with cryptographically secure random bytes (getentropy(2)
// in chunks), unless a test source is installed.
void random_bytes(byte_span out);

// Installs a deterministic source for tests; pass nullptr to restore the
// OS source. Not thread-safe with concurrent random_bytes calls.
void set_random_source_for_test(std::function<void(byte_span)> source);

}  // namespace interedge::crypto
