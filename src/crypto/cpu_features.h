// Runtime CPU feature probe for the vectorized crypto paths.
//
// The datapath picks its ChaCha20 backend once at startup: AVX2 when the
// CPU has it, else SSE2, else the portable scalar core. The probe is
// runtime (not compile-time only) so one binary runs correctly on any
// x86-64 machine, and non-x86 builds fall back to scalar automatically.
#pragma once

namespace interedge::crypto {

enum class simd_level {
  scalar = 0,
  sse2 = 1,
  avx2 = 2,
};

// Highest SIMD level the running CPU supports (scalar on non-x86).
simd_level detect_simd_level();

// The level the crypto dispatch actually uses. Defaults to
// detect_simd_level(); tests may force it lower via set_simd_level() to
// exercise every backend on one machine. Forcing a level above what the
// CPU supports is clamped to the detected level.
simd_level active_simd_level();
void set_simd_level(simd_level level);

// Human-readable backend name ("avx2", "sse2", "scalar") for logs/benches.
const char* simd_level_name(simd_level level);

}  // namespace interedge::crypto
