// X25519 Diffie-Hellman (RFC 7748). Used for the pipe-establishment
// handshake between hosts/SNs and for peering-tunnel rekeys.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kX25519KeySize = 32;
using x25519_key = std::array<std::uint8_t, kX25519KeySize>;

// out = scalar * point (Montgomery u-coordinate).
x25519_key x25519(const x25519_key& scalar, const x25519_key& point);

// Public key = scalar * base point (u = 9).
x25519_key x25519_base(const x25519_key& scalar);

struct x25519_keypair {
  x25519_key secret;
  x25519_key public_key;
};

// Derives a keypair from 32 bytes of secret randomness.
x25519_keypair x25519_keypair_from_seed(const x25519_key& seed);

}  // namespace interedge::crypto
