// Field arithmetic mod 2^255 - 19 with five 51-bit limbs and __int128
// accumulation; Montgomery ladder per RFC 7748.
#include "crypto/x25519.h"

#include <cstring>

namespace interedge::crypto {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask = (1ull << 51) - 1;

struct fe {
  u64 v[5];
};

fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
fe fe_one() { return {{1, 0, 0, 0, 0}}; }

fe fe_add(const fe& a, const fe& b) {
  fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with bias 2p added so limbs stay nonnegative.
fe fe_sub(const fe& a, const fe& b) {
  fe r;
  r.v[0] = a.v[0] + 0xfffffffffffdaull - b.v[0];
  r.v[1] = a.v[1] + 0xffffffffffffeull - b.v[1];
  r.v[2] = a.v[2] + 0xffffffffffffeull - b.v[2];
  r.v[3] = a.v[3] + 0xffffffffffffeull - b.v[3];
  r.v[4] = a.v[4] + 0xffffffffffffeull - b.v[4];
  return r;
}

fe fe_mul(const fe& f, const fe& g) {
  const u128 f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const u64 g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const u64 g1_19 = g1 * 19, g2_19 = g2 * 19, g3_19 = g3 * 19, g4_19 = g4 * 19;

  u128 r0 = f0 * g0 + f1 * g4_19 + f2 * g3_19 + f3 * g2_19 + f4 * g1_19;
  u128 r1 = f0 * g1 + f1 * g0 + f2 * g4_19 + f3 * g3_19 + f4 * g2_19;
  u128 r2 = f0 * g2 + f1 * g1 + f2 * g0 + f3 * g4_19 + f4 * g3_19;
  u128 r3 = f0 * g3 + f1 * g2 + f2 * g1 + f3 * g0 + f4 * g4_19;
  u128 r4 = f0 * g4 + f1 * g3 + f2 * g2 + f3 * g1 + f4 * g0;

  fe out;
  u64 c;
  c = static_cast<u64>(r0 >> 51);
  out.v[0] = static_cast<u64>(r0) & kMask;
  r1 += c;
  c = static_cast<u64>(r1 >> 51);
  out.v[1] = static_cast<u64>(r1) & kMask;
  r2 += c;
  c = static_cast<u64>(r2 >> 51);
  out.v[2] = static_cast<u64>(r2) & kMask;
  r3 += c;
  c = static_cast<u64>(r3 >> 51);
  out.v[3] = static_cast<u64>(r3) & kMask;
  r4 += c;
  c = static_cast<u64>(r4 >> 51);
  out.v[4] = static_cast<u64>(r4) & kMask;
  out.v[0] += c * 19;
  c = out.v[0] >> 51;
  out.v[0] &= kMask;
  out.v[1] += c;
  return out;
}

fe fe_sq(const fe& a) { return fe_mul(a, a); }

fe fe_mul_small(const fe& f, u64 s) {
  u128 r0 = static_cast<u128>(f.v[0]) * s;
  u128 r1 = static_cast<u128>(f.v[1]) * s;
  u128 r2 = static_cast<u128>(f.v[2]) * s;
  u128 r3 = static_cast<u128>(f.v[3]) * s;
  u128 r4 = static_cast<u128>(f.v[4]) * s;
  fe out;
  u64 c;
  c = static_cast<u64>(r0 >> 51);
  out.v[0] = static_cast<u64>(r0) & kMask;
  r1 += c;
  c = static_cast<u64>(r1 >> 51);
  out.v[1] = static_cast<u64>(r1) & kMask;
  r2 += c;
  c = static_cast<u64>(r2 >> 51);
  out.v[2] = static_cast<u64>(r2) & kMask;
  r3 += c;
  c = static_cast<u64>(r3 >> 51);
  out.v[3] = static_cast<u64>(r3) & kMask;
  r4 += c;
  c = static_cast<u64>(r4 >> 51);
  out.v[4] = static_cast<u64>(r4) & kMask;
  out.v[0] += c * 19;
  c = out.v[0] >> 51;
  out.v[0] &= kMask;
  out.v[1] += c;
  return out;
}

fe fe_from_bytes(const std::uint8_t s[32]) {
  auto load64 = [](const std::uint8_t* p) {
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
  };
  fe r;
  r.v[0] = load64(s) & kMask;
  r.v[1] = (load64(s + 6) >> 3) & kMask;
  r.v[2] = (load64(s + 12) >> 6) & kMask;
  r.v[3] = (load64(s + 19) >> 1) & kMask;
  r.v[4] = (load64(s + 24) >> 12) & kMask;  // top bit of s[31] is masked off
  return r;
}

void fe_to_bytes(std::uint8_t out[32], const fe& a) {
  // Canonical contraction (curve25519-donna-c64 fcontract).
  u64 t[5] = {a.v[0], a.v[1], a.v[2], a.v[3], a.v[4]};
  auto carry_pass = [&t] {
    t[1] += t[0] >> 51;
    t[0] &= kMask;
    t[2] += t[1] >> 51;
    t[1] &= kMask;
    t[3] += t[2] >> 51;
    t[2] &= kMask;
    t[4] += t[3] >> 51;
    t[3] &= kMask;
    t[0] += 19 * (t[4] >> 51);
    t[4] &= kMask;
  };
  carry_pass();
  carry_pass();
  // t is now in [0, 2^255 - 1]. Add 19 so values >= p wrap.
  t[0] += 19;
  carry_pass();
  // Offset by 2^255 - 19 (= p) so a final masked carry chain yields t mod p.
  t[0] += (1ull << 51) - 19;
  t[1] += (1ull << 51) - 1;
  t[2] += (1ull << 51) - 1;
  t[3] += (1ull << 51) - 1;
  t[4] += (1ull << 51) - 1;
  t[1] += t[0] >> 51;
  t[0] &= kMask;
  t[2] += t[1] >> 51;
  t[1] &= kMask;
  t[3] += t[2] >> 51;
  t[2] &= kMask;
  t[4] += t[3] >> 51;
  t[3] &= kMask;
  t[4] &= kMask;  // discard the 2^255 bit

  u64 lo = t[0] | (t[1] << 51);
  u64 mid = (t[1] >> 13) | (t[2] << 38);
  u64 hi = (t[2] >> 26) | (t[3] << 25);
  u64 top = (t[3] >> 39) | (t[4] << 12);
  auto store64 = [](std::uint8_t* p, u64 v) {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  store64(out, lo);
  store64(out + 8, mid);
  store64(out + 16, hi);
  store64(out + 24, top);
}

// Constant-time conditional swap.
void fe_cswap(fe& a, fe& b, u64 swap) {
  const u64 mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    const u64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

fe fe_invert(const fe& z) {
  // z^(p-2) via the standard curve25519 addition chain.
  fe z2 = fe_sq(z);
  fe t = fe_sq(z2);
  t = fe_sq(t);
  fe z9 = fe_mul(t, z);
  fe z11 = fe_mul(z9, z2);
  t = fe_sq(z11);
  fe z2_5_0 = fe_mul(t, z9);
  t = fe_sq(z2_5_0);
  for (int i = 0; i < 4; ++i) t = fe_sq(t);
  fe z2_10_0 = fe_mul(t, z2_5_0);
  t = fe_sq(z2_10_0);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  fe z2_20_0 = fe_mul(t, z2_10_0);
  t = fe_sq(z2_20_0);
  for (int i = 0; i < 19; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_20_0);
  t = fe_sq(t);
  for (int i = 0; i < 9; ++i) t = fe_sq(t);
  fe z2_50_0 = fe_mul(t, z2_10_0);
  t = fe_sq(z2_50_0);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  fe z2_100_0 = fe_mul(t, z2_50_0);
  t = fe_sq(z2_100_0);
  for (int i = 0; i < 99; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_100_0);
  t = fe_sq(t);
  for (int i = 0; i < 49; ++i) t = fe_sq(t);
  t = fe_mul(t, z2_50_0);
  t = fe_sq(t);
  for (int i = 0; i < 4; ++i) t = fe_sq(t);
  return fe_mul(t, z11);
}

}  // namespace

x25519_key x25519(const x25519_key& scalar, const x25519_key& point) {
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  const fe x1 = fe_from_bytes(point.data());
  fe x2 = fe_one(), z2 = fe_zero();
  fe x3 = x1, z3 = fe_one();
  u64 swap = 0;

  for (int pos = 254; pos >= 0; --pos) {
    const u64 bit = (e[pos / 8] >> (pos & 7)) & 1;
    swap ^= bit;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = bit;

    const fe a = fe_add(x2, z2);
    const fe aa = fe_sq(a);
    const fe b = fe_sub(x2, z2);
    const fe bb = fe_sq(b);
    const fe ee = fe_sub(aa, bb);
    const fe c = fe_add(x3, z3);
    const fe d = fe_sub(x3, z3);
    const fe da = fe_mul(d, a);
    const fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(ee, fe_add(aa, fe_mul_small(ee, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const fe out = fe_mul(x2, fe_invert(z2));
  x25519_key result;
  fe_to_bytes(result.data(), out);
  return result;
}

x25519_key x25519_base(const x25519_key& scalar) {
  x25519_key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

x25519_keypair x25519_keypair_from_seed(const x25519_key& seed) {
  x25519_keypair kp;
  kp.secret = seed;
  kp.secret[0] &= 248;
  kp.secret[31] &= 127;
  kp.secret[31] |= 64;
  kp.public_key = x25519_base(kp.secret);
  return kp;
}

}  // namespace interedge::crypto
