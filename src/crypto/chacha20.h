// ChaCha20 stream cipher (RFC 8439): 256-bit key, 96-bit nonce,
// 32-bit block counter.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

// Generates one 64-byte keystream block.
void chacha20_block(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                    const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t out[64]);

// XORs `data` in place with the keystream starting at `counter`.
void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], byte_span data);

}  // namespace interedge::crypto
