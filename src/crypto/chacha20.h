// ChaCha20 stream cipher (RFC 8439): 256-bit key, 96-bit nonce,
// 32-bit block counter.
//
// chacha20_xor is the datapath hot loop: it processes four keystream
// blocks per iteration and XORs word-wise, with SSE2/AVX2 backends
// selected at runtime via the cpu_features probe. The scalar core stays
// exported so tests can prove the vectorized paths bit-identical.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;
inline constexpr std::size_t kChaChaBlockSize = 64;

// Generates one 64-byte keystream block.
void chacha20_block(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                    const std::uint8_t nonce[kChaChaNonceSize], std::uint8_t out[64]);

// XORs `data` in place with the keystream starting at `counter`.
// Dispatches to the best backend for active_simd_level().
void chacha20_xor(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                  const std::uint8_t nonce[kChaChaNonceSize], byte_span data);

// Portable reference path (4-block unrolled, word-wise XOR, no SIMD).
void chacha20_xor_scalar(const std::uint8_t key[kChaChaKeySize], std::uint32_t counter,
                         const std::uint8_t nonce[kChaChaNonceSize], byte_span data);

// Generates `n` independent 64-byte keystream blocks sharing one key:
// block i uses counters[i] and the 12-byte nonce at nonces + 12*i. This is
// the batched-datapath entry point — it feeds the 4-block SIMD kernels
// with blocks from *different packets* of one pipe, so small-packet AEAD
// work vectorizes even though each packet needs only a block or two.
void chacha20_keystream_blocks(const std::uint8_t key[kChaChaKeySize],
                               const std::uint32_t* counters, const std::uint8_t* nonces,
                               std::size_t n, std::uint8_t* out);

// Backend chacha20_xor will use for the current active_simd_level().
const char* chacha20_backend();

}  // namespace interedge::crypto
