// SHA-256 (FIPS 180-4). Used by HMAC/HKDF, attestation quotes, and the
// lookup service's signed statements.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace interedge::crypto {

class sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using digest = std::array<std::uint8_t, kDigestSize>;

  sha256();
  void update(const_byte_span data);
  digest finish();

  static digest hash(const_byte_span data) {
    sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void compress(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace interedge::crypto
