#include "crypto/kdf.h"

#include <cstring>
#include <stdexcept>

namespace interedge::crypto {

sha256::digest hmac_sha256(const_byte_span key, const_byte_span data) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const auto d = sha256::hash(key);
    std::memcpy(block.data(), d.data(), d.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

sha256::digest hkdf_extract(const_byte_span salt, const_byte_span ikm) {
  static constexpr std::uint8_t zero_salt[sha256::kDigestSize] = {};
  if (salt.empty()) salt = const_byte_span(zero_salt, sizeof(zero_salt));
  return hmac_sha256(salt, ikm);
}

bytes hkdf_expand(const_byte_span prk, const_byte_span info, std::size_t length) {
  if (length > 255 * sha256::kDigestSize) throw std::invalid_argument("hkdf_expand: length too large");
  bytes out;
  out.reserve(length);
  sha256::digest t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    bytes msg;
    msg.insert(msg.end(), t.begin(), t.begin() + t_len);
    msg.insert(msg.end(), info.begin(), info.end());
    msg.push_back(counter++);
    t = hmac_sha256(prk, msg);
    t_len = t.size();
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

bytes hkdf(const_byte_span salt, const_byte_span ikm, const_byte_span info, std::size_t length) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace interedge::crypto
