#include "simnet/simulation.h"

#include <stdexcept>

namespace interedge::sim {

simulation::simulation(std::uint64_t seed) : rng_(seed) {}

node_id simulation::add_node(datagram_handler handler) {
  nodes_.push_back(std::move(handler));
  return static_cast<node_id>(nodes_.size() - 1);
}

void simulation::set_handler(node_id node, datagram_handler handler) {
  nodes_.at(node) = std::move(handler);
}

void simulation::set_link(node_id from, node_id to, link_properties props) {
  links_[{from, to}] = props;
}

void simulation::set_link_symmetric(node_id a, node_id b, link_properties props) {
  set_link(a, b, props);
  set_link(b, a, props);
}

const link_properties& simulation::link_between(node_id from, node_id to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

bool simulation::send(node_id from, node_id to, bytes payload) {
  if (to >= nodes_.size()) throw std::out_of_range("simulation::send: unknown destination");
  ++sent_;
  bytes_sent_ += payload.size();
  const link_properties& link = link_between(from, to);

  if (payload.size() > link.mtu) {
    ++dropped_;
    return false;
  }
  if (link.loss_rate > 0.0 && rng_.chance(link.loss_rate)) {
    ++dropped_;
    return false;
  }

  time_point depart = now();
  if (link.bandwidth_bps > 0) {
    // Serialize onto the wire: the pair's next free slot plus transmit time.
    auto& free_at = wire_free_[{from, to}];
    if (free_at > depart) depart = free_at;
    const auto transmit = nanoseconds(
        static_cast<std::int64_t>(payload.size() * 8 * 1.0e9 / static_cast<double>(link.bandwidth_bps)));
    depart += transmit;
    free_at = depart;
  }

  const time_point arrival = depart + link.latency;
  push(arrival, [this, from, to, p = std::move(payload)]() {
    ++delivered_;
    if (tap_) tap_(from, to, p);
    if (nodes_[to]) nodes_[to](from, p);
  });
  return true;
}

void simulation::at(time_point when, std::function<void()> fn) {
  push(when < now() ? now() : when, std::move(fn));
}

void simulation::after(nanoseconds delay, std::function<void()> fn) {
  push(now() + delay, std::move(fn));
}

void simulation::push(time_point when, std::function<void()> fn) {
  queue_.push(event{when, next_seq_++, std::move(fn)});
}

bool simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out before pop.
  event e = queue_.top();
  queue_.pop();
  clock_.set(e.when);
  e.fn();
  return true;
}

std::size_t simulation::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t simulation::run_until(time_point deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    ++executed;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return executed;
}

}  // namespace interedge::sim
