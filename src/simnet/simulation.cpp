#include "simnet/simulation.h"

#include <sstream>
#include <stdexcept>

namespace interedge::sim {

simulation::simulation(std::uint64_t seed) : rng_(seed) {}

node_id simulation::add_node(datagram_handler handler) {
  nodes_.push_back(std::move(handler));
  node_up_.push_back(true);
  return static_cast<node_id>(nodes_.size() - 1);
}

void simulation::set_handler(node_id node, datagram_handler handler) {
  nodes_.at(node) = std::move(handler);
}

void simulation::set_link(node_id from, node_id to, link_properties props) {
  links_[{from, to}] = props;
}

void simulation::set_link_symmetric(node_id a, node_id b, link_properties props) {
  set_link(a, b, props);
  set_link(b, a, props);
}

const link_properties& simulation::link_between(node_id from, node_id to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

// ---- fault injection ---------------------------------------------------

void simulation::crash_node(node_id node) {
  node_up_.at(node) = false;
  ++faults_applied_;
}

void simulation::restart_node(node_id node) {
  node_up_.at(node) = true;
  ++faults_applied_;
}

bool simulation::node_up(node_id node) const { return node_up_.at(node); }

void simulation::partition(node_id a, node_id b) {
  partitions_.insert(pair_key(a, b));
  ++faults_applied_;
}

void simulation::heal(node_id a, node_id b) {
  partitions_.erase(pair_key(a, b));
  ++faults_applied_;
}

bool simulation::partitioned(node_id a, node_id b) const {
  return partitions_.count(pair_key(a, b)) > 0;
}

void simulation::apply_fault(const fault_event& ev) {
  switch (ev.kind) {
    case fault_kind::crash:
      crash_node(ev.a);
      break;
    case fault_kind::restart:
      restart_node(ev.a);
      break;
    case fault_kind::partition:
      partition(ev.a, ev.b);
      break;
    case fault_kind::heal:
      heal(ev.a, ev.b);
      break;
    case fault_kind::loss: {
      link_properties forward = link_between(ev.a, ev.b);
      forward.loss_rate = ev.value;
      set_link(ev.a, ev.b, forward);
      link_properties back = link_between(ev.b, ev.a);
      back.loss_rate = ev.value;
      set_link(ev.b, ev.a, back);
      ++faults_applied_;
      break;
    }
    case fault_kind::latency: {
      // Degraded-path injection (brownout, reroute through a far PoP):
      // everything else about the link is preserved.
      const auto lat = nanoseconds(static_cast<std::int64_t>(ev.value * 1e6));
      link_properties forward = link_between(ev.a, ev.b);
      forward.latency = lat;
      set_link(ev.a, ev.b, forward);
      link_properties back = link_between(ev.b, ev.a);
      back.latency = lat;
      set_link(ev.b, ev.a, back);
      ++faults_applied_;
      break;
    }
  }
}

void simulation::schedule_faults(std::span<const fault_event> schedule) {
  for (const fault_event& ev : schedule) {
    at(time_point(ev.at), [this, ev] { apply_fault(ev); });
  }
}

simulation::fault_parse_result simulation::parse_fault_schedule_checked(const std::string& text,
                                                                        bool strict) {
  fault_parse_result out;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    bool bad = false;
    auto fail = [&](const std::string& message) {
      out.errors.push_back({line_no, message});
      bad = true;
    };

    std::istringstream fields(line);
    double at_ms = 0.0;
    std::string verb;
    if (!(fields >> at_ms >> verb)) {
      fail("expected '<time_ms> <verb> ...'");
      continue;
    }
    if (at_ms < 0.0) {
      fail("negative time " + std::to_string(at_ms) + "ms");
      continue;
    }
    fault_event ev;
    ev.at =
        std::chrono::duration_cast<nanoseconds>(std::chrono::duration<double, std::milli>(at_ms));
    auto need = [&](auto&... vals) {
      if (!((fields >> vals) && ...)) fail("missing or malformed operand for '" + verb + "'");
    };
    if (verb == "crash") {
      ev.kind = fault_kind::crash;
      need(ev.a);
    } else if (verb == "restart") {
      ev.kind = fault_kind::restart;
      need(ev.a);
    } else if (verb == "partition") {
      ev.kind = fault_kind::partition;
      need(ev.a, ev.b);
    } else if (verb == "heal") {
      ev.kind = fault_kind::heal;
      need(ev.a, ev.b);
    } else if (verb == "loss") {
      ev.kind = fault_kind::loss;
      need(ev.a, ev.b, ev.value);
      if (!bad && (ev.value < 0.0 || ev.value > 1.0)) {
        fail("loss rate " + std::to_string(ev.value) + " outside [0, 1]");
      }
    } else if (verb == "latency") {
      ev.kind = fault_kind::latency;
      need(ev.a, ev.b, ev.value);
      if (!bad && ev.value < 0.0) {
        fail("negative latency " + std::to_string(ev.value) + "ms");
      }
    } else {
      fail("unknown verb '" + verb + "'");
    }
    if (!bad) {
      // Anything left after the operands is garbage the old parser used to
      // swallow silently ("10 crash 1 2" scheduling a crash of node 1).
      std::string trailing;
      if (fields >> trailing) fail("trailing garbage '" + trailing + "'");
    }
    if (!bad) out.events.push_back(ev);
  }
  if (strict && !out.errors.empty()) out.events.clear();
  return out;
}

std::vector<fault_event> simulation::parse_fault_schedule(const std::string& text) {
  fault_parse_result parsed = parse_fault_schedule_checked(text, /*strict=*/true);
  if (!parsed.ok()) {
    std::ostringstream what;
    what << "fault schedule:";
    for (const fault_parse_error& e : parsed.errors) {
      what << " line " << e.line << ": " << e.message << ';';
    }
    throw std::invalid_argument(what.str());
  }
  return std::move(parsed.events);
}

// ---- datagram transport ------------------------------------------------

simulation::link_stats simulation::stats_between(node_id from, node_id to) const {
  auto it = link_stats_.find({from, to});
  return it != link_stats_.end() ? it->second : link_stats{};
}

bool simulation::send(node_id from, node_id to, bytes payload) {
  if (to >= nodes_.size()) throw std::out_of_range("simulation::send: unknown destination");
  ++sent_;
  bytes_sent_ += payload.size();
  link_stats& ls = link_stats_[{from, to}];
  ++ls.sent;
  const link_properties& link = link_between(from, to);

  if (!node_up_[from] || !node_up_[to] || partitioned(from, to)) {
    ++dropped_;
    ++dropped_faults_;
    ++ls.dropped;
    return false;
  }
  if (payload.size() > link.mtu) {
    ++dropped_;
    ++ls.dropped;
    return false;
  }
  if (link.loss_rate > 0.0 && rng_.chance(link.loss_rate)) {
    ++dropped_;
    ++ls.dropped;
    return false;
  }

  time_point depart = now();
  if (link.bandwidth_bps > 0) {
    // Serialize onto the wire: the pair's next free slot plus transmit time.
    auto& free_at = wire_free_[{from, to}];
    if (free_at > depart) depart = free_at;
    const auto transmit = nanoseconds(
        static_cast<std::int64_t>(payload.size() * 8 * 1.0e9 / static_cast<double>(link.bandwidth_bps)));
    depart += transmit;
    free_at = depart;
  }

  time_point arrival = depart + link.latency;
  // Reordering: hold this datagram back so later sends overtake it. The
  // draw happens only when the knob is on, so existing seeds replay
  // byte-identically with the default properties.
  if (link.reorder_rate > 0.0 && rng_.chance(link.reorder_rate)) {
    arrival += link.reorder_delay;
    ++reordered_;
  }
  const bool duplicate = link.duplicate_rate > 0.0 && rng_.chance(link.duplicate_rate);

  auto deliver = [this, from, to](const bytes& p) {
    // A partition raised — or a crash injected — while the datagram was in
    // flight still swallows it.
    link_stats& stats = link_stats_[{from, to}];
    if (!node_up_[to] || partitioned(from, to)) {
      ++dropped_;
      ++dropped_faults_;
      ++stats.dropped;
      return;
    }
    ++delivered_;
    ++stats.delivered;
    if (tap_) tap_(from, to, p);
    if (nodes_[to]) nodes_[to](from, p);
  };
  if (duplicate) {
    ++duplicated_;
    push(arrival + std::chrono::microseconds(1),
         [deliver, p = payload]() { deliver(p); });
  }
  push(arrival, [deliver, p = std::move(payload)]() { deliver(p); });
  return true;
}

void simulation::at(time_point when, std::function<void()> fn) {
  push(when < now() ? now() : when, std::move(fn));
}

void simulation::after(nanoseconds delay, std::function<void()> fn) {
  push(now() + delay, std::move(fn));
}

void simulation::push(time_point when, std::function<void()> fn) {
  queue_.push(event{when, next_seq_++, std::move(fn)});
}

bool simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out before pop.
  event e = queue_.top();
  queue_.pop();
  clock_.set(e.when);
  e.fn();
  return true;
}

std::size_t simulation::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t simulation::run_until(time_point deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    ++executed;
  }
  if (clock_.now() < deadline) clock_.set(deadline);
  return executed;
}

}  // namespace interedge::sim
