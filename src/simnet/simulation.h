// Deterministic event-driven network simulator.
//
// This is the substrate that stands in for the paper's multi-site testbed
// (CloudLab / Fabric): it models the L3 layer the InterEdge assumes — "the
// underlying Internet architecture is unchanged" — as best-effort datagram
// delivery between nodes with configurable latency, bandwidth, loss, and
// MTU. Everything above (ILP, SNs, edomains) runs unmodified on top.
//
// Determinism: all events (deliveries, timers) execute in (time, seq) order
// from a single priority queue; loss decisions come from a seeded PRNG.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"

namespace interedge::sim {

using node_id = std::uint32_t;
inline constexpr node_id kInvalidNode = 0xffffffffu;

// Path properties between a node pair. Defaults model an uncongested
// metro path; tests override per pair.
struct link_properties {
  nanoseconds latency = std::chrono::microseconds(500);
  // 0 = infinite bandwidth (no serialization delay).
  std::uint64_t bandwidth_bps = 0;
  double loss_rate = 0.0;
  std::size_t mtu = 1500;
};

// A node's receive hook: (source node, datagram payload).
using datagram_handler = std::function<void(node_id, const bytes&)>;

class simulation {
 public:
  explicit simulation(std::uint64_t seed = 1);

  // The virtual clock; production objects built on `clock&` take this.
  clock& sim_clock() { return clock_; }
  time_point now() const { return clock_.now(); }

  // Adds a node. The handler runs inside the event loop.
  node_id add_node(datagram_handler handler);
  // Replaces a node's handler (used to wire objects created after the node).
  void set_handler(node_id node, datagram_handler handler);

  // Overrides path properties for the ordered pair (from, to).
  void set_link(node_id from, node_id to, link_properties props);
  // Overrides both directions.
  void set_link_symmetric(node_id a, node_id b, link_properties props);
  // Default properties for unconfigured pairs.
  void set_default_link(link_properties props) { default_link_ = props; }
  const link_properties& link_between(node_id from, node_id to) const;

  // Sends a datagram; returns false if dropped immediately (oversized or
  // lossy path decided at send time — deterministic given the seed).
  bool send(node_id from, node_id to, bytes payload);

  // Timers.
  void at(time_point when, std::function<void()> fn);
  void after(nanoseconds delay, std::function<void()> fn);

  // Runs events until the queue is empty or `limit` events have executed.
  // Returns the number of events executed.
  std::size_t run(std::size_t limit = 1000000);
  // Runs events with time <= deadline.
  std::size_t run_until(time_point deadline);
  // Executes the next event; false if none pending.
  bool step();
  bool idle() const { return queue_.empty(); }

  // Counters for assertions.
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t datagrams_dropped() const { return dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Optional tap observing every delivered datagram (for tests/traces).
  void set_tap(std::function<void(node_id from, node_id to, const bytes&)> tap) {
    tap_ = std::move(tap);
  }

 private:
  struct event {
    time_point when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct event_order {
    bool operator()(const event& a, const event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void push(time_point when, std::function<void()> fn);

  manual_clock clock_;
  rng rng_;
  std::vector<datagram_handler> nodes_;
  std::map<std::pair<node_id, node_id>, link_properties> links_;
  // Earliest time each directed pair's "wire" is free (bandwidth modeling).
  std::map<std::pair<node_id, node_id>, time_point> wire_free_;
  link_properties default_link_;
  std::priority_queue<event, std::vector<event>, event_order> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::function<void(node_id, node_id, const bytes&)> tap_;
};

}  // namespace interedge::sim
