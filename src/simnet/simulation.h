// Deterministic event-driven network simulator.
//
// This is the substrate that stands in for the paper's multi-site testbed
// (CloudLab / Fabric): it models the L3 layer the InterEdge assumes — "the
// underlying Internet architecture is unchanged" — as best-effort datagram
// delivery between nodes with configurable latency, bandwidth, loss, and
// MTU. Everything above (ILP, SNs, edomains) runs unmodified on top.
//
// Determinism: all events (deliveries, timers) execute in (time, seq) order
// from a single priority queue; loss, duplication and reordering decisions
// come from a seeded PRNG, and fault injection (node crashes, partitions)
// rides the same event queue — a fixed seed plus a fixed fault schedule
// replays the identical run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"

namespace interedge::sim {

using node_id = std::uint32_t;
inline constexpr node_id kInvalidNode = 0xffffffffu;

// Path properties between a node pair. Defaults model an uncongested
// metro path; tests override per pair.
struct link_properties {
  nanoseconds latency = std::chrono::microseconds(500);
  // 0 = infinite bandwidth (no serialization delay).
  std::uint64_t bandwidth_bps = 0;
  double loss_rate = 0.0;
  // Probability a datagram is delivered twice (second copy arrives just
  // after the first) — best-effort underlays duplicate under rerouting.
  double duplicate_rate = 0.0;
  // Probability a datagram is held back by `reorder_delay`, letting later
  // sends overtake it.
  double reorder_rate = 0.0;
  nanoseconds reorder_delay = std::chrono::microseconds(200);
  std::size_t mtu = 1500;
};

// A scripted fault: one state change applied to the simulation at `at`.
// Schedules are plain data so tests can build them in code or parse them
// from the text format (see parse_fault_schedule / DESIGN.md §10).
enum class fault_kind : std::uint8_t {
  crash,      // node a stops sending and receiving
  restart,    // node a comes back (handler state is the owner's problem)
  partition,  // links a<->b blocked both directions
  heal,       // undo partition a<->b
  loss,       // set loss_rate=value on links a<->b (both directions)
  latency,    // set latency=value ms on links a<->b (both directions)
};

struct fault_event {
  nanoseconds at{0};
  fault_kind kind = fault_kind::crash;
  node_id a = kInvalidNode;
  node_id b = kInvalidNode;
  double value = 0.0;  // loss rate (loss) or latency in ms (latency)
};

// A node's receive hook: (source node, datagram payload).
using datagram_handler = std::function<void(node_id, const bytes&)>;

class simulation {
 public:
  explicit simulation(std::uint64_t seed = 1);

  // The virtual clock; production objects built on `clock&` take this.
  clock& sim_clock() { return clock_; }
  time_point now() const { return clock_.now(); }

  // Adds a node. The handler runs inside the event loop.
  node_id add_node(datagram_handler handler);
  // Replaces a node's handler (used to wire objects created after the node).
  void set_handler(node_id node, datagram_handler handler);

  // Overrides path properties for the ordered pair (from, to).
  void set_link(node_id from, node_id to, link_properties props);
  // Overrides both directions.
  void set_link_symmetric(node_id a, node_id b, link_properties props);
  // Default properties for unconfigured pairs.
  void set_default_link(link_properties props) { default_link_ = props; }
  const link_properties& link_between(node_id from, node_id to) const;

  // Sends a datagram; returns false if dropped immediately (oversized or
  // lossy path decided at send time — deterministic given the seed).
  bool send(node_id from, node_id to, bytes payload);

  // Timers.
  void at(time_point when, std::function<void()> fn);
  void after(nanoseconds delay, std::function<void()> fn);

  // ---- fault injection ----
  // A crashed node neither sends nor receives: sends from it fail, and
  // datagrams in flight toward it are dropped at delivery time. Restart
  // re-enables the node; whoever owns the node object decides what state
  // (checkpoint restore, handler swap) the revived node runs with.
  void crash_node(node_id node);
  void restart_node(node_id node);
  bool node_up(node_id node) const;

  // Blocks the a<->b path in both directions until heal(). Datagrams sent
  // into a partition are dropped (counted); in-flight datagrams are also
  // dropped if the partition is still up when they would arrive.
  void partition(node_id a, node_id b);
  void heal(node_id a, node_id b);
  bool partitioned(node_id a, node_id b) const;

  // Schedules every event of a fault script on the simulation timeline.
  void schedule_faults(std::span<const fault_event> schedule);

  // Parses the text schedule format: one event per line,
  //   <time_ms> crash <node>
  //   <time_ms> restart <node>
  //   <time_ms> partition <a> <b>
  //   <time_ms> heal <a> <b>
  //   <time_ms> loss <a> <b> <rate>
  //   <time_ms> latency <a> <b> <ms>
  // Blank lines and lines starting with '#' are ignored. Throws
  // std::invalid_argument on malformed input, naming every bad line and
  // its line number (the strict path — see parse_fault_schedule_checked
  // for the collecting variant).
  static std::vector<fault_event> parse_fault_schedule(const std::string& text);

  // Line-numbered diagnostics for one malformed schedule line.
  struct fault_parse_error {
    std::size_t line = 0;
    std::string message;
  };
  struct fault_parse_result {
    std::vector<fault_event> events;  // the well-formed lines, in order
    std::vector<fault_parse_error> errors;
    bool ok() const { return errors.empty(); }
  };
  // Checked parse: every malformed line (bad time, unknown verb, missing
  // operand, out-of-range value, trailing garbage) produces a
  // line-numbered error instead of being dropped on the floor. With
  // strict=false the well-formed lines are still returned alongside the
  // errors (a tool can warn and run what parsed); strict=true returns no
  // events unless the whole schedule is clean. Never throws.
  static fault_parse_result parse_fault_schedule_checked(const std::string& text,
                                                         bool strict = false);

  // Runs events until the queue is empty or `limit` events have executed.
  // Returns the number of events executed.
  std::size_t run(std::size_t limit = 1000000);
  // Runs events with time <= deadline.
  std::size_t run_until(time_point deadline);
  // Executes the next event; false if none pending.
  bool step();
  bool idle() const { return queue_.empty(); }

  // Per-directed-pair accounting (ISSUE 5): lets observability tests
  // attribute a trace's wire gaps to the link that actually carried — or
  // swallowed — the packet. Zeros for pairs that never exchanged one.
  struct link_stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
  };
  link_stats stats_between(node_id from, node_id to) const;

  // Counters for assertions.
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t datagrams_dropped() const { return dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  // Fault-attributable drops (crashed node / partition), a subset of
  // datagrams_dropped().
  std::uint64_t datagrams_dropped_faults() const { return dropped_faults_; }
  std::uint64_t datagrams_duplicated() const { return duplicated_; }
  std::uint64_t datagrams_reordered() const { return reordered_; }
  std::uint64_t faults_applied() const { return faults_applied_; }

  // Optional tap observing every delivered datagram (for tests/traces).
  void set_tap(std::function<void(node_id from, node_id to, const bytes&)> tap) {
    tap_ = std::move(tap);
  }

 private:
  struct event {
    time_point when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct event_order {
    bool operator()(const event& a, const event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void push(time_point when, std::function<void()> fn);
  void apply_fault(const fault_event& ev);
  static std::pair<node_id, node_id> pair_key(node_id a, node_id b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  manual_clock clock_;
  rng rng_;
  std::vector<datagram_handler> nodes_;
  std::vector<bool> node_up_;
  std::set<std::pair<node_id, node_id>> partitions_;  // pair_key-normalized
  std::map<std::pair<node_id, node_id>, link_properties> links_;
  // Earliest time each directed pair's "wire" is free (bandwidth modeling).
  std::map<std::pair<node_id, node_id>, time_point> wire_free_;
  link_properties default_link_;
  std::priority_queue<event, std::vector<event>, event_order> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_faults_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t faults_applied_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::map<std::pair<node_id, node_id>, link_stats> link_stats_;  // directed
  std::function<void(node_id, node_id, const bytes&)> tap_;
};

}  // namespace interedge::sim
