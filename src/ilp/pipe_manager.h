// Pipe manager: owns all ILP pipes of one InterEdge element (a host stack
// or a service node) and runs the establishment handshake.
//
// Handshake: single round trip. Each side contributes an ephemeral X25519
// key and an SPI base; the shared secret plus direction labels yield the
// two directional PSP master keys ("created when the sender and the
// receiver first connect with each other" — §4). Once a pipe exists, data
// packets carry zero handshake overhead.
//
// Transport-agnostic: the owner supplies a send function and feeds received
// datagrams in via on_datagram(), so the same code runs over the simulator,
// a real socket, or a benchmark loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "crypto/x25519.h"
#include "ilp/pipe.h"

namespace interedge::ilp {

// Liveness policy for established pipes (see DESIGN.md §10): the owner
// calls liveness_tick() every keepalive_interval; a peer that misses
// `miss_budget` consecutive probes is declared down, its pipe torn down,
// and reconnection attempted with exponential backoff + jitter. The fresh
// handshake on re-establishment is the forced rekey — a revived peer never
// resumes the old keys.
struct liveness_config {
  nanoseconds keepalive_interval = std::chrono::milliseconds(100);
  std::uint32_t miss_budget = 3;
  nanoseconds reconnect_backoff = std::chrono::milliseconds(50);
  nanoseconds reconnect_backoff_max = std::chrono::seconds(2);
  // Jitter is deterministic given the seed (simulator-friendly).
  std::uint64_t jitter_seed = 0x11fe11fe;
};

struct liveness_stats {
  std::uint64_t probes_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t missed = 0;  // total probe intervals with no ack
  std::uint64_t rtt_ns = 0;  // EWMA over acked probes
  std::uint64_t times_down = 0;
  std::uint64_t reconnect_attempts = 0;
  bool down = false;
};

class pipe_manager {
 public:
  using send_fn = std::function<void(peer_id peer, bytes datagram)>;
  using deliver_fn = std::function<void(peer_id peer, const ilp_header&, bytes payload)>;
  // Batch delivery: every data packet of one ingress batch in one call.
  // Packets are mutable so the receiver can move the headers out; payload
  // spans alias the datagram buffers passed to on_datagram_batch.
  using deliver_batch_fn = std::function<void(peer_id peer, std::span<opened_packet> packets)>;

  // Zero-copy egress hooks (optional). send_raw passes the sealed datagram
  // as a span into the manager's reused seal scratch — valid only for the
  // duration of the call (a socket send copies into the kernel before
  // returning, so udp_endpoint::send qualifies). send_gather goes further:
  // the sealed message head and the payload stay separate buffers, to be
  // glued by scatter-gather I/O (udp_endpoint::send_gather). Resolution
  // order in send_span: gather, then raw, then the owning send_fn.
  using send_raw_fn = std::function<void(peer_id peer, const_byte_span datagram)>;
  using send_gather_fn =
      std::function<void(peer_id peer, const_byte_span head, const_byte_span payload)>;

  pipe_manager(peer_id self, send_fn send, deliver_fn deliver);

  // Sends over the pipe to `peer`, establishing it first if needed
  // (packets queue behind the handshake).
  void send(peer_id peer, const ilp_header& header, bytes payload);

  // Zero-copy send: seals into reused scratch and hands the result to the
  // gather/raw hook (falling back to an owned copy through send_fn when
  // neither is set). The payload is only read during the call. Queues an
  // owned copy behind a pending handshake — the cold path still copies.
  void send_span(peer_id peer, const ilp_header& header, const_byte_span payload);

  void set_send_raw(send_raw_fn f) { send_raw_ = std::move(f); }
  void set_send_gather(send_gather_fn f) { send_gather_ = std::move(f); }

  // Feeds a received datagram (handshake or data) into the manager.
  void on_datagram(peer_id peer, const_byte_span datagram);

  // Batch ingress: feeds a burst of datagrams from one peer. Runs of data
  // messages are decrypted via pipe::decrypt_batch and handed to the batch
  // deliver callback in one call (falling back to per-packet deliver when
  // none is set); handshake messages are handled inline in arrival order.
  void on_datagram_batch(peer_id peer, std::span<const const_byte_span> datagrams);

  // Zero-copy batch ingress over MUTABLE datagram buffers (pool slabs):
  // data runs are decrypted in place via pipe::decrypt_batch_mut — the
  // delivered packets' headers were decrypted over their own ciphertext
  // and payload spans alias the slabs, which must stay live (and unmoved)
  // until the deliver callback returns. Handshake messages are handled
  // inline in arrival order, exactly like on_datagram_batch.
  void on_datagram_batch_mut(peer_id peer, std::span<const byte_span> datagrams);

  // Installs the batch delivery path used by on_datagram_batch.
  void set_batch_deliver(deliver_batch_fn deliver_batch) {
    deliver_batch_ = std::move(deliver_batch);
  }

  // Observer fired whenever a peer's receive keys change: pipe established
  // (or re-established after a peer restart) and rx epoch rotation. The
  // sharded datapath uses this to push fresh pipe_rx replicas to worker
  // shards; the hook runs on the owner's thread, before any packet that
  // needs the new keys can be processed.
  using rx_keys_fn = std::function<void(peer_id peer, const pipe& p)>;
  void set_rx_keys_hook(rx_keys_fn hook) { rx_keys_ = std::move(hook); }

  // The established pipe for `peer`, if any — steering peeks and replica
  // snapshots; owner-thread only.
  pipe* pipe_for(peer_id peer);

  // Resolves drop/error counters once so rejected datagrams are counted
  // and logged in the same place — ingress drops are never silent.
  void set_metrics(metrics_registry& reg);

  // Proactively establishes a pipe (used for the long-lived inter-edomain
  // peering pipes of §3.2).
  void connect(peer_id peer);

  bool has_pipe(peer_id peer) const;
  std::size_t pipe_count() const { return pipes_.size(); }
  std::size_t pending_handshakes() const { return pending_.size(); }

  // ---- liveness ----
  // Arms keepalive probing. The manager does not own a timer; the owner
  // calls liveness_tick() every cfg.keepalive_interval (the clock is only
  // read, so any clock& — simulated or real — works).
  void enable_liveness(const clock& clk, liveness_config cfg = {});
  bool liveness_enabled() const { return liveness_clock_ != nullptr; }
  const liveness_config& liveness_cfg() const { return liveness_cfg_; }

  // One probe interval: counts outstanding probes as misses, declares
  // peers past the miss budget down (pipe torn down, status hook fired,
  // reconnect scheduled), sends the next round of probes, and drives
  // pending reconnects whose backoff has elapsed.
  void liveness_tick();

  // Observer fired on peer transitions: up=true when a pipe (re)establishes
  // while liveness is enabled, up=false when the miss budget declares the
  // peer dead. Runs on the owner's thread.
  using peer_status_fn = std::function<void(peer_id peer, bool up)>;
  void set_peer_status_hook(peer_status_fn hook) { peer_status_ = std::move(hook); }

  // Liveness stats for `peer`; nullptr if no probe state exists yet.
  const liveness_stats* liveness_for(peer_id peer) const;

  // Rotates the tx key of every established pipe (rekey schedule).
  void rotate_all();

  // Re-sends the initiation for every handshake still pending — datagrams
  // (including handshakes) can be lost; owners call this on a timer.
  // Queued packets are preserved; the responder side is stateless until it
  // answers, so duplicate inits are harmless.
  void retry_pending();

  const pipe_stats* stats_for(peer_id peer) const;
  std::uint64_t handshakes_completed() const { return handshakes_completed_; }

 private:
  struct pending_state {
    crypto::x25519_keypair keypair;
    std::uint32_t local_spi = 0;
    std::vector<std::pair<ilp_header, bytes>> queued;
  };
  // Responder-side memo: lets a duplicate init (our response was lost) be
  // re-answered idempotently instead of deadlocking the initiator.
  struct responder_memo {
    bytes init_body;
    bytes response;
  };

  // Per-peer probe/reconnect state. `stats.down` flips the entry from
  // probing mode into reconnect mode until the next establish().
  struct liveness_state {
    liveness_stats stats;
    bool awaiting_ack = false;
    std::uint32_t consecutive_misses = 0;
    std::uint64_t probe_seq = 0;
    nanoseconds backoff{0};
    time_point next_attempt{};
  };

  void start_handshake(peer_id peer);
  void flush_data_run(peer_id peer, std::span<const const_byte_span> bodies);
  void flush_data_run_mut(peer_id peer, std::span<const byte_span> bodies);
  void deliver_opened_batch(peer_id peer, std::size_t rejected);
  void handle_init(peer_id peer, const_byte_span body);
  void handle_resp(peer_id peer, const_byte_span body);
  void handle_data(peer_id peer, const_byte_span body);
  void handle_keepalive(peer_id peer, const_byte_span body);
  void handle_keepalive_ack(peer_id peer, const_byte_span body);
  void send_probe(peer_id peer, pipe& p, liveness_state& st);
  void note_peer_alive(peer_id peer);
  void declare_down(peer_id peer, liveness_state& st, time_point now);
  void attempt_reconnect(peer_id peer, liveness_state& st, time_point now);
  void establish(peer_id peer, const crypto::x25519_key& secret_scalar,
                 const crypto::x25519_key& peer_public, std::uint32_t local_spi,
                 std::uint32_t remote_spi, bool initiator,
                 std::vector<std::pair<ilp_header, bytes>> queued);
  std::uint32_t fresh_spi();

  peer_id self_;
  send_fn send_;
  send_raw_fn send_raw_;
  send_gather_fn send_gather_;
  deliver_fn deliver_;
  deliver_batch_fn deliver_batch_;
  rx_keys_fn rx_keys_;
  peer_status_fn peer_status_;
  counter* rejected_pkts_ = nullptr;  // auth/parse failures (see set_metrics)
  counter* no_pipe_drops_ = nullptr;  // data before any pipe exists
  counter* peer_down_ = nullptr;
  counter* keepalive_sent_ = nullptr;
  counter* keepalive_acked_ = nullptr;
  counter* reconnects_ = nullptr;
  const clock* liveness_clock_ = nullptr;
  liveness_config liveness_cfg_;
  std::optional<rng> jitter_rng_;
  std::map<peer_id, liveness_state> liveness_;
  // Batch-path scratch, reused across on_datagram_batch calls.
  std::vector<const_byte_span> run_scratch_;
  std::vector<byte_span> run_mut_scratch_;
  std::vector<std::optional<opened_packet>> opened_scratch_;
  std::vector<opened_packet> batch_scratch_;
  bytes seal_scratch_;  // send_span's sealed-message reuse
  std::map<peer_id, std::unique_ptr<pipe>> pipes_;
  std::map<peer_id, pending_state> pending_;
  std::map<peer_id, responder_memo> responder_memos_;
  std::uint32_t next_spi_ = 1;
  std::uint64_t handshakes_completed_ = 0;
};

}  // namespace interedge::ilp
