#include "ilp/pipe.h"

#include <cstring>

#include "common/prof.h"
#include "common/serial.h"
#include "common/trace.h"
#include "crypto/kdf.h"

namespace interedge::ilp {
namespace {

crypto::psp_master_key derive_master(const_byte_span secret, std::string_view label) {
  const bytes key =
      crypto::hkdf(to_bytes("interedge-ilp-pipe-v1"), secret, to_bytes(label), 32);
  crypto::psp_master_key master;
  std::memcpy(master.data(), key.data(), master.size());
  return master;
}

// AAD binds the payload length so header and payload cannot be recombined
// across packets without detection. Stack variant of the old length_aad()
// writer (same little-endian u64 encoding).
void length_aad(std::uint8_t out[8], std::size_t payload_size) {
  const std::uint64_t v = payload_size;
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void append_varint(bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Exception-free varint parse for the steering peek. Returns the bytes
// consumed, 0 on truncation/overflow.
std::size_t parse_varint(const_byte_span data, std::uint64_t& value) {
  value = 0;
  std::size_t off = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (off >= data.size()) return 0;
    const std::uint8_t b = data[off++];
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return off;
  }
  return 0;
}

}  // namespace

namespace detail {

std::optional<std::pair<ilp_header, bytes>> rx_core::open(const_byte_span body,
                                                          pipe_stats& stats) {
  try {
    reader r(body);
    const const_byte_span sealed = r.blob();
    const const_byte_span payload = r.raw(r.remaining());
    if (sealed.size() < crypto::kPspOverhead) {
      ++stats.rejected;
      return std::nullopt;
    }
    std::uint8_t aad[8];
    length_aad(aad, payload.size());
    open_scratch_.resize(sealed.size() - crypto::kPspOverhead);
    if (!ctx_.open_into(sealed, const_byte_span(aad, 8), open_scratch_)) {
      ++stats.rejected;
      return std::nullopt;
    }
    ilp_header header = ilp_header::decode(open_scratch_);
    ++stats.opened;
    return std::make_pair(std::move(header), bytes(payload.begin(), payload.end()));
  } catch (const serial_error&) {
    ++stats.rejected;
    return std::nullopt;
  }
}

std::size_t rx_core::decrypt_batch(std::span<const const_byte_span> bodies,
                                   std::vector<std::optional<opened_packet>>& out,
                                   pipe_stats& stats) {
  prof::cycle_scope cyc(prof::cycle_stage::decrypt);
  const std::size_t n = bodies.size();
  out.clear();
  out.resize(n);

  // Stage timing is batch-granular — four clock reads per batch, so the
  // telemetry cost amortizes to ~nothing per packet (DESIGN.md §8).
  trace::tracer* tr = trace::current();
  std::uint64_t t0 = 0, t1 = 0, t2 = 0;
  if (tr) t0 = trace::now_ns();

  // Pass 1: parse every body, recording the sealed-header span, the
  // payload span and the per-packet length AAD. A parse failure leaves the
  // sealed span empty, which open_batch skips.
  sealed_scratch_.assign(n, {});
  payload_scratch_.assign(n, {});
  aad_bytes_scratch_.resize(8 * n);
  aad_scratch_.assign(n, {});
  std::size_t arena_size = 0;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      reader r(bodies[i]);
      const const_byte_span sealed = r.blob();
      const const_byte_span payload = r.raw(r.remaining());
      if (sealed.size() < crypto::kPspOverhead) {
        ++stats.rejected;
        continue;
      }
      length_aad(&aad_bytes_scratch_[8 * i], payload.size());
      aad_scratch_[i] = const_byte_span(&aad_bytes_scratch_[8 * i], 8);
      sealed_scratch_[i] = sealed;
      payload_scratch_[i] = payload;
      arena_size += sealed.size() - crypto::kPspOverhead;
    } catch (const serial_error&) {
      ++stats.rejected;
    }
  }

  if (tr) t1 = trace::now_ns();

  // Pass 2: decrypt every header in one multi-stream batch, each into its
  // slice of the shared arena.
  open_scratch_.resize(arena_size);
  dst_scratch_.assign(n, {});
  std::size_t arena_offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sealed_scratch_[i].empty()) continue;
    const std::size_t len = sealed_scratch_[i].size() - crypto::kPspOverhead;
    dst_scratch_[i] = byte_span(open_scratch_).subspan(arena_offset, len);
    arena_offset += len;
  }
  if (ok_capacity_ < n) {
    ok_scratch_ = std::make_unique<bool[]>(n);
    ok_capacity_ = n;
  }
  ctx_.open_batch(sealed_scratch_, aad_scratch_, dst_scratch_,
                  std::span<bool>(ok_scratch_.get(), n));
  if (tr) t2 = trace::now_ns();

  // Pass 3: decode the authenticated headers.
  std::size_t opened = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sealed_scratch_[i].empty()) continue;  // already counted rejected
    if (!ok_scratch_[i]) {
      ++stats.rejected;
      continue;
    }
    try {
      out[i] = opened_packet{ilp_header::decode(dst_scratch_[i]), payload_scratch_[i]};
      ++stats.opened;
      ++opened;
    } catch (const serial_error&) {
      ++stats.rejected;
    }
  }
  if (tr) {
    const std::uint64_t t3 = trace::now_ns();
    // Parse = wire parse (pass 1) + header decode (pass 3).
    tr->record_stage(trace::stage::parse, (t1 - t0) + (t3 - t2));
    tr->record_stage(trace::stage::decrypt, t2 - t1);
  }
  return opened;
}

std::size_t rx_core::decrypt_batch_mut(std::span<const byte_span> bodies,
                                       std::vector<std::optional<opened_packet>>& out,
                                       pipe_stats& stats) {
  prof::cycle_scope cyc(prof::cycle_stage::decrypt);
  const std::size_t n = bodies.size();
  out.clear();
  out.resize(n);

  trace::tracer* tr = trace::current();
  std::uint64_t t0 = 0, t1 = 0, t2 = 0;
  if (tr) t0 = trace::now_ns();

  // Pass 1: parse framing. Identical to decrypt_batch, except the decrypt
  // destination is computed inside the body itself: the plaintext header
  // (sealed_len - kPspOverhead bytes) lands over its own ciphertext, which
  // starts 12 bytes (spi + iv) into the sealed region. No arena.
  sealed_scratch_.assign(n, {});
  payload_scratch_.assign(n, {});
  aad_bytes_scratch_.resize(8 * n);
  aad_scratch_.assign(n, {});
  dst_scratch_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    try {
      reader r(bodies[i]);
      const const_byte_span sealed = r.blob();
      const const_byte_span payload = r.raw(r.remaining());
      if (sealed.size() < crypto::kPspOverhead) {
        ++stats.rejected;
        continue;
      }
      length_aad(&aad_bytes_scratch_[8 * i], payload.size());
      aad_scratch_[i] = const_byte_span(&aad_bytes_scratch_[8 * i], 8);
      sealed_scratch_[i] = sealed;
      payload_scratch_[i] = payload;
      const std::size_t sealed_off =
          static_cast<std::size_t>(sealed.data() - bodies[i].data());
      dst_scratch_[i] =
          bodies[i].subspan(sealed_off + 12, sealed.size() - crypto::kPspOverhead);
    } catch (const serial_error&) {
      ++stats.rejected;
    }
  }

  if (tr) t1 = trace::now_ns();

  // Pass 2: one multi-stream batch decrypt, in place. psp::open_batch
  // permits dst aliasing the wire's ciphertext (tag is verified before any
  // plaintext byte is written).
  if (ok_capacity_ < n) {
    ok_scratch_ = std::make_unique<bool[]>(n);
    ok_capacity_ = n;
  }
  ctx_.open_batch(sealed_scratch_, aad_scratch_, dst_scratch_,
                  std::span<bool>(ok_scratch_.get(), n));
  if (tr) t2 = trace::now_ns();

  // Pass 3: decode the authenticated headers out of the bodies.
  std::size_t opened = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sealed_scratch_[i].empty()) continue;  // already counted rejected
    if (!ok_scratch_[i]) {
      ++stats.rejected;
      continue;
    }
    try {
      out[i] = opened_packet{ilp_header::decode(dst_scratch_[i]), payload_scratch_[i]};
      ++stats.opened;
      ++opened;
    } catch (const serial_error&) {
      ++stats.rejected;
    }
  }
  if (tr) {
    const std::uint64_t t3 = trace::now_ns();
    tr->record_stage(trace::stage::parse, (t1 - t0) + (t3 - t2));
    tr->record_stage(trace::stage::decrypt, t2 - t1);
  }
  return opened;
}

}  // namespace detail

pipe::pipe(const_byte_span secret, std::uint32_t local_spi, std::uint32_t remote_spi,
           bool initiator)
    : tx_(derive_master(secret, initiator ? "init->resp" : "resp->init"), local_spi),
      rx_(crypto::psp_context(derive_master(secret, initiator ? "resp->init" : "init->resp"),
                              remote_spi)) {}

void pipe::seal_into(const ilp_header& header, const_byte_span payload, bytes& out) {
  header_scratch_.clear();
  header.encode_into(header_scratch_);
  const const_byte_span header_bytes = header_scratch_.data();
  const std::size_t sealed_len = header_bytes.size() + crypto::kPspOverhead;

  std::uint8_t aad[8];
  length_aad(aad, payload.size());

  out.clear();
  out.reserve(1 + 10 + sealed_len + payload.size());
  out.push_back(static_cast<std::uint8_t>(msg_kind::data));
  append_varint(out, sealed_len);
  const std::size_t seal_offset = out.size();
  out.resize(seal_offset + sealed_len);
  tx_.seal_into(header_bytes, const_byte_span(aad, 8),
                byte_span(out).subspan(seal_offset, sealed_len));
  out.insert(out.end(), payload.begin(), payload.end());
  ++stats_.sealed;
}

void pipe::seal_head_into(const ilp_header& header, std::size_t payload_len, bytes& head) {
  header_scratch_.clear();
  header.encode_into(header_scratch_);
  const const_byte_span header_bytes = header_scratch_.data();
  const std::size_t sealed_len = header_bytes.size() + crypto::kPspOverhead;

  std::uint8_t aad[8];
  length_aad(aad, payload_len);

  head.clear();
  head.reserve(1 + 10 + sealed_len);
  head.push_back(static_cast<std::uint8_t>(msg_kind::data));
  append_varint(head, sealed_len);
  const std::size_t seal_offset = head.size();
  head.resize(seal_offset + sealed_len);
  tx_.seal_into(header_bytes, const_byte_span(aad, 8),
                byte_span(head).subspan(seal_offset, sealed_len));
  ++stats_.sealed;
}

bytes pipe::seal(const ilp_header& header, const_byte_span payload) {
  bytes out;
  seal_into(header, payload, out);
  return out;
}

std::optional<std::pair<ilp_header, bytes>> pipe::open(const_byte_span body) {
  return rx_.open(body, stats_);
}

std::size_t pipe::decrypt_batch(std::span<const const_byte_span> bodies,
                                std::vector<std::optional<opened_packet>>& out) {
  return rx_.decrypt_batch(bodies, out, stats_);
}

std::size_t pipe::decrypt_batch_mut(std::span<const byte_span> bodies,
                                    std::vector<std::optional<opened_packet>>& out) {
  return rx_.decrypt_batch_mut(bodies, out, stats_);
}

std::size_t pipe::peek_flow_batch(std::span<const const_byte_span> bodies,
                                  std::vector<flow_peek>& out) {
  // The encoded ILP header leads with service(u32 LE) || connection(u64 LE)
  // — 12 plaintext bytes, all inside the first cipher block.
  constexpr std::size_t kPeekLen = 12;
  const std::size_t n = bodies.size();
  out.clear();
  out.resize(n);

  peek_sealed_scratch_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sealed_len = 0;
    const std::size_t consumed = parse_varint(bodies[i], sealed_len);
    if (consumed == 0 || sealed_len > bodies[i].size() - consumed) continue;  // malformed framing
    peek_sealed_scratch_[i] = bodies[i].subspan(consumed, sealed_len);
  }
  peek_prefix_scratch_.resize(n * kPeekLen);
  if (peek_ok_capacity_ < n) {
    peek_ok_scratch_ = std::make_unique<bool[]>(n);
    peek_ok_capacity_ = n;
  }
  rx_.ctx().peek_prefix_batch(peek_sealed_scratch_, kPeekLen, peek_prefix_scratch_,
                              std::span<bool>(peek_ok_scratch_.get(), n));
  std::size_t peeked = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!peek_ok_scratch_[i]) continue;
    const std::uint8_t* p = peek_prefix_scratch_.data() + i * kPeekLen;
    flow_peek& fp = out[i];
    fp.ok = true;
    for (int b = 0; b < 4; ++b) fp.service |= static_cast<std::uint32_t>(p[b]) << (8 * b);
    for (int b = 0; b < 8; ++b) fp.connection |= static_cast<std::uint64_t>(p[4 + b]) << (8 * b);
    ++peeked;
  }
  return peeked;
}

}  // namespace interedge::ilp
