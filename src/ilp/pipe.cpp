#include "ilp/pipe.h"

#include <cstring>

#include "common/serial.h"
#include "crypto/kdf.h"

namespace interedge::ilp {
namespace {

crypto::psp_master_key derive_master(const_byte_span secret, std::string_view label) {
  const bytes key =
      crypto::hkdf(to_bytes("interedge-ilp-pipe-v1"), secret, to_bytes(label), 32);
  crypto::psp_master_key master;
  std::memcpy(master.data(), key.data(), master.size());
  return master;
}

// AAD binds the payload length so header and payload cannot be recombined
// across packets without detection.
bytes length_aad(std::size_t payload_size) {
  writer w(8);
  w.u64(payload_size);
  return w.take();
}

}  // namespace

pipe::pipe(const_byte_span secret, std::uint32_t local_spi, std::uint32_t remote_spi,
           bool initiator)
    : tx_(derive_master(secret, initiator ? "init->resp" : "resp->init"), local_spi),
      rx_(derive_master(secret, initiator ? "resp->init" : "init->resp"), remote_spi) {}

bytes pipe::seal(const ilp_header& header, const_byte_span payload) {
  const bytes sealed = tx_.seal(header.encode(), length_aad(payload.size()));
  writer w(1 + 4 + sealed.size() + payload.size());
  w.u8(static_cast<std::uint8_t>(msg_kind::data));
  w.blob(sealed);
  w.raw(payload);
  ++stats_.sealed;
  return w.take();
}

std::optional<std::pair<ilp_header, bytes>> pipe::open(const_byte_span body) {
  try {
    reader r(body);
    const const_byte_span sealed = r.blob();
    const const_byte_span payload = r.raw(r.remaining());
    const auto header_bytes = rx_.open(sealed, length_aad(payload.size()));
    if (!header_bytes) {
      ++stats_.rejected;
      return std::nullopt;
    }
    ilp_header header = ilp_header::decode(*header_bytes);
    ++stats_.opened;
    return std::make_pair(std::move(header), bytes(payload.begin(), payload.end()));
  } catch (const serial_error&) {
    ++stats_.rejected;
    return std::nullopt;
  }
}

}  // namespace interedge::ilp
