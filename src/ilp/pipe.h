// An established ILP pipe: the encrypted channel between two adjacent
// InterEdge elements (host<->SN or SN<->SN).
//
// Per the paper's trust model (§4), only the ILP *header* is sealed with the
// pipe's hop key; the application payload is protected end-to-end with a key
// the pipe never sees. The seal binds the payload length (splice detection)
// but intentionally not its contents — payload integrity is the endpoints'
// concern.
//
// Wire format of a data message (after the 1-byte message kind):
//   varint sealed_len || psp_wire(sealed ILP header) || payload
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/serial.h"
#include "crypto/psp.h"
#include "ilp/header.h"

namespace interedge::ilp {

// Message kinds on the wire between two elements.
enum class msg_kind : std::uint8_t {
  handshake_init = 1,
  handshake_resp = 2,
  data = 3,
  // Liveness probes (pipe_manager): a sealed ILP header authenticated with
  // the pipe's hop key, distinguished from data only by the kind byte so an
  // off-path attacker can neither forge nor replay them across pipes.
  keepalive = 4,
  keepalive_ack = 5,
};

struct pipe_stats {
  std::uint64_t sealed = 0;
  std::uint64_t opened = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rekeys = 0;
};

// One decrypted ingress packet from a batch. The payload is a view into
// the caller's datagram buffer — valid only until those buffers change.
struct opened_packet {
  ilp_header header;
  const_byte_span payload;
};

// Steering peek result: the flow tuple read from a sealed data message
// without authenticating it (see pipe::peek_flow_batch).
struct flow_peek {
  bool ok = false;
  std::uint32_t service = 0;
  std::uint64_t connection = 0;
};

namespace detail {

// Receive-side decrypt engine: the PSP rx context plus the scratch the
// batched open needs. Shared by pipe (the control-thread rx path) and
// pipe_rx (worker-shard replicas), so a replica runs the identical
// datapath the pipe itself would.
class rx_core {
 public:
  explicit rx_core(crypto::psp_context ctx) : ctx_(std::move(ctx)) {}

  std::optional<std::pair<ilp_header, bytes>> open(const_byte_span body, pipe_stats& stats);
  std::size_t decrypt_batch(std::span<const const_byte_span> bodies,
                            std::vector<std::optional<opened_packet>>& out, pipe_stats& stats);
  // In-place variant for the zero-copy path: bodies are MUTABLE buffers
  // (pool slabs) and each authenticated header is decrypted over its own
  // ciphertext inside the buffer — no plaintext arena, no allocation.
  // out[i]'s payload span aliases the body; the body's sealed region is
  // destroyed (overwritten with plaintext) for every packet that passed
  // authentication, so a body cannot be re-opened. Safe because psp's
  // open verifies the tag before any byte is written (see psp.h).
  std::size_t decrypt_batch_mut(std::span<const byte_span> bodies,
                                std::vector<std::optional<opened_packet>>& out,
                                pipe_stats& stats);
  void rotate() { ctx_.rotate(); }
  const crypto::psp_context& ctx() const { return ctx_; }

 private:
  crypto::psp_context ctx_;
  bytes open_scratch_;  // decrypted-header arena, reused across opens
  // decrypt_batch scratch, reused across calls.
  std::vector<const_byte_span> sealed_scratch_;
  std::vector<const_byte_span> payload_scratch_;
  std::vector<const_byte_span> aad_scratch_;
  std::vector<byte_span> dst_scratch_;
  bytes aad_bytes_scratch_;
  std::unique_ptr<bool[]> ok_scratch_;
  std::size_t ok_capacity_ = 0;
};

}  // namespace detail

// A decrypt-only replica of one pipe's receive side, private to a worker
// shard: same keys (current + previous epoch at copy time), own scratch,
// own stats — no state is shared with the originating pipe, so a replica
// is usable from another thread with no synchronization. Key epochs do
// not follow the pipe automatically; the owner re-replicates (or calls
// rotate()) on the same schedule it rotates the pipe.
class pipe_rx {
 public:
  explicit pipe_rx(crypto::psp_context rx) : core_(std::move(rx)) {}

  // Batch ingress: semantics of pipe::decrypt_batch.
  std::size_t decrypt_batch(std::span<const const_byte_span> bodies,
                            std::vector<std::optional<opened_packet>>& out) {
    return core_.decrypt_batch(bodies, out, stats_);
  }
  // Zero-copy ingress: decrypts headers in place inside the (mutable)
  // bodies — see rx_core::decrypt_batch_mut.
  std::size_t decrypt_batch_mut(std::span<const byte_span> bodies,
                                std::vector<std::optional<opened_packet>>& out) {
    return core_.decrypt_batch_mut(bodies, out, stats_);
  }
  void rotate() { core_.rotate(); }
  const pipe_stats& stats() const { return stats_; }

 private:
  detail::rx_core core_;
  pipe_stats stats_;
};

class pipe {
 public:
  // `secret` is the X25519 shared secret; `initiator` selects the key
  // direction so the two ends derive mirrored tx/rx contexts.
  pipe(const_byte_span secret, std::uint32_t local_spi, std::uint32_t remote_spi, bool initiator);

  // Builds a full data message (kind byte included).
  bytes seal(const ilp_header& header, const_byte_span payload);

  // Scratch-reuse variant: clears `out` and writes the full data message
  // into it. With a reused `out` the only steady-state heap traffic is the
  // header metadata map — the seal itself allocates nothing.
  void seal_into(const ilp_header& header, const_byte_span payload, bytes& out);

  // Gather-send variant: writes only the message head (kind byte, varint
  // framing, sealed header — with the AAD binding `payload_len`) into
  // `head`, leaving the payload to be supplied as a second iovec at send
  // time (udp_endpoint::send_gather). The egress path never concatenates
  // head and payload into one buffer.
  void seal_head_into(const ilp_header& header, std::size_t payload_len, bytes& head);

  // Parses a data message body (kind byte already consumed).
  // nullopt if the header fails to authenticate or the message is malformed.
  std::optional<std::pair<ilp_header, bytes>> open(const_byte_span body);

  // Batch ingress: opens every data-message body in one call, reusing one
  // scratch buffer for the decrypted headers. `out` is resized to
  // bodies.size(); out[i] is nullopt where authentication or parsing
  // failed, and payload spans alias the caller's buffers. Returns the
  // number of packets opened.
  std::size_t decrypt_batch(std::span<const const_byte_span> bodies,
                            std::vector<std::optional<opened_packet>>& out);

  // In-place batch ingress over mutable buffers (pool slabs): plaintext
  // headers overwrite their ciphertext, payload spans alias the bodies,
  // nothing is copied. See detail::rx_core::decrypt_batch_mut.
  std::size_t decrypt_batch_mut(std::span<const byte_span> bodies,
                                std::vector<std::optional<opened_packet>>& out);

  // Flow-steering peek over a batch of data-message bodies: reads each
  // packet's leading (service, connection) header fields with one
  // unauthenticated cipher block per packet (multi-stream batched), no
  // full open. out[i].ok is false on malformed framing or unknown SPI —
  // such packets can be steered anywhere (or handled inline); whoever
  // performs the authenticated open makes the accept/reject decision.
  std::size_t peek_flow_batch(std::span<const const_byte_span> bodies,
                              std::vector<flow_peek>& out);

  // Snapshot of the receive side for a worker shard (see pipe_rx).
  pipe_rx rx_replica() const { return pipe_rx(rx_.ctx()); }

  // Unilateral sender-side rekey; the peer keeps accepting the previous
  // epoch, so no coordination round-trip is needed.
  void rotate_tx() {
    tx_.rotate();
    ++stats_.rekeys;
  }
  // Receive-side epoch advance (driven by observing the peer's new SPI or by
  // the same schedule).
  void rotate_rx() { rx_.rotate(); }

  const pipe_stats& stats() const { return stats_; }
  std::uint64_t tx_epoch() const { return tx_.epoch(); }

 private:
  crypto::psp_context tx_;
  detail::rx_core rx_;
  pipe_stats stats_;
  writer header_scratch_;  // encoded-header reuse across seals
  // peek_flow_batch scratch, reused across calls.
  std::vector<const_byte_span> peek_sealed_scratch_;
  bytes peek_prefix_scratch_;
  std::unique_ptr<bool[]> peek_ok_scratch_;
  std::size_t peek_ok_capacity_ = 0;
};

}  // namespace interedge::ilp
