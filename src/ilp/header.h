// ILP header (paper §4, Figure 2).
//
// "Other than requiring that the initial portion of the ILP header contain a
// service ID and connection ID, we place no limits on the length or contents
// of a packet's ILP header."  We therefore model the service-specific
// portion as TLV metadata: services may attach arbitrary blobs, and may vary
// them per packet within a connection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "common/trace_context.h"

namespace interedge {
class writer;
}

namespace interedge::ilp {

using service_id = std::uint32_t;
using connection_id = std::uint64_t;

// Flat endpoint address (the paper's name services map service-specific
// names to an address plus the SNs associated with the destination host).
using edge_addr = std::uint64_t;
inline constexpr edge_addr kInvalidAddr = 0;

// L3-level identifier of an adjacent InterEdge element (host or SN). In
// this implementation a host's peer_id and edge_addr coincide numerically.
using peer_id = std::uint64_t;

// Well-known service IDs for the standardized service modules (§6).
// The governance body assigns these; experimental services use >= 0x8000.
namespace svc {
inline constexpr service_id null_service = 1;
inline constexpr service_id delivery = 2;       // IP-like bundle (+ optional caching)
inline constexpr service_id pubsub = 3;
inline constexpr service_id multicast = 4;
inline constexpr service_id anycast = 5;
inline constexpr service_id last_hop_qos = 6;
inline constexpr service_id odns = 7;
inline constexpr service_id mixnet = 8;
inline constexpr service_id ddos_protect = 9;
inline constexpr service_id vpn = 10;
inline constexpr service_id message_queue = 11;
inline constexpr service_id ordered_delivery = 12;
inline constexpr service_id bulk_delivery = 13;
inline constexpr service_id firewall = 14;      // operator-imposed pass-through
inline constexpr service_id streaming = 15;     // bitrate-adaptive media delivery
inline constexpr service_id mobility = 16;      // mobility lookup service
inline constexpr service_id cluster = 17;       // cluster interconnection

// Human-readable name for metric labels and logs; "other" for ids outside
// the standardized range (experimental services, malformed headers).
const char* name(service_id id);
}  // namespace svc

// Header flags.
inline constexpr std::uint16_t kFlagControl = 1 << 0;   // out-of-band host<->SN control
inline constexpr std::uint16_t kFlagToHost = 1 << 1;    // delivery leg toward a host
inline constexpr std::uint16_t kFlagFromHost = 1 << 2;  // first leg from a host

// Well-known metadata keys. Values >= 0x100 are service-private.
enum class meta_key : std::uint16_t {
  dest_addr = 1,       // u64: final destination host
  src_addr = 2,        // u64: originating host
  payer = 3,           // payment-context token (who arranged the service)
  bundle_options = 4,  // u64 bitmask of optional bundle settings
  service_data = 5,    // opaque service-specific blob
  control_op = 6,      // control-plane operation name
  reply_to = 7,        // u64: address control replies should target
  trace_ctx = 8,       // cross-hop trace context (common/trace_context.h);
                       // versioned — un-upgraded peers ignore it like any
                       // unknown TLV key, upgraded peers ignore unknown
                       // versions
};

struct ilp_header {
  service_id service = 0;
  connection_id connection = 0;
  std::uint16_t flags = 0;
  std::map<std::uint16_t, bytes> metadata;

  bytes encode() const;
  // Appends the encoding to `w` (scratch-reuse variant for the datapath).
  void encode_into(writer& w) const;
  // Throws interedge::serial_error on malformed input.
  static ilp_header decode(const_byte_span data);

  // Typed metadata accessors.
  void set_meta(meta_key key, const_byte_span value);
  void set_meta_u64(meta_key key, std::uint64_t value);
  void set_meta_str(meta_key key, std::string_view value);
  std::optional<const_byte_span> meta(meta_key key) const;
  std::optional<std::uint64_t> meta_u64(meta_key key) const;
  std::optional<std::string> meta_str(meta_key key) const;

  // Trace-context carriage (ISSUE 5). Only sampled packets carry one, so
  // trace_ctx() on the common path is a single failed map lookup.
  void set_trace(const trace::trace_context& ctx) {
    metadata[static_cast<std::uint16_t>(meta_key::trace_ctx)] = ctx.encode();
  }
  std::optional<trace::trace_context> trace_ctx() const {
    const auto raw = meta(meta_key::trace_ctx);
    if (!raw) return std::nullopt;
    return trace::trace_context::decode(*raw);
  }

  bool operator==(const ilp_header&) const = default;
};

}  // namespace interedge::ilp
