#include "ilp/header.h"

#include "common/serial.h"

namespace interedge::ilp {

namespace svc {
const char* name(service_id id) {
  switch (id) {
    case null_service: return "null";
    case delivery: return "delivery";
    case pubsub: return "pubsub";
    case multicast: return "multicast";
    case anycast: return "anycast";
    case last_hop_qos: return "qos";
    case odns: return "odns";
    case mixnet: return "mixnet";
    case ddos_protect: return "ddos";
    case vpn: return "vpn";
    case message_queue: return "mq";
    case ordered_delivery: return "ordered";
    case bulk_delivery: return "bulk";
    case firewall: return "firewall";
    case streaming: return "streaming";
    case mobility: return "mobility";
    case cluster: return "cluster";
    default: return "other";
  }
}
}  // namespace svc

bytes ilp_header::encode() const {
  writer w(32);
  encode_into(w);
  return w.take();
}

void ilp_header::encode_into(writer& w) const {
  w.u32(service);
  w.u64(connection);
  w.u16(flags);
  w.varint(metadata.size());
  for (const auto& [key, value] : metadata) {
    w.u16(key);
    w.blob(value);
  }
}

ilp_header ilp_header::decode(const_byte_span data) {
  reader r(data);
  ilp_header h;
  h.service = r.u32();
  h.connection = r.u64();
  h.flags = r.u16();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint16_t key = r.u16();
    const const_byte_span value = r.blob();
    h.metadata[key] = bytes(value.begin(), value.end());
  }
  if (!r.done()) throw serial_error("trailing bytes after ILP header");
  return h;
}

void ilp_header::set_meta(meta_key key, const_byte_span value) {
  metadata[static_cast<std::uint16_t>(key)] = bytes(value.begin(), value.end());
}

void ilp_header::set_meta_u64(meta_key key, std::uint64_t value) {
  writer w(8);
  w.u64(value);
  metadata[static_cast<std::uint16_t>(key)] = w.take();
}

void ilp_header::set_meta_str(meta_key key, std::string_view value) {
  metadata[static_cast<std::uint16_t>(key)] = to_bytes(value);
}

std::optional<const_byte_span> ilp_header::meta(meta_key key) const {
  auto it = metadata.find(static_cast<std::uint16_t>(key));
  if (it == metadata.end()) return std::nullopt;
  return const_byte_span(it->second);
}

std::optional<std::uint64_t> ilp_header::meta_u64(meta_key key) const {
  auto v = meta(key);
  if (!v || v->size() != 8) return std::nullopt;
  reader r(*v);
  return r.u64();
}

std::optional<std::string> ilp_header::meta_str(meta_key key) const {
  auto v = meta(key);
  if (!v) return std::nullopt;
  return to_string(*v);
}

}  // namespace interedge::ilp
