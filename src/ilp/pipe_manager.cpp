#include "ilp/pipe_manager.h"

#include "common/logging.h"
#include "common/serial.h"
#include "crypto/random.h"

namespace interedge::ilp {
namespace {

crypto::x25519_keypair fresh_keypair() {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  return crypto::x25519_keypair_from_seed(seed);
}

bytes handshake_message(msg_kind kind, std::uint32_t spi, const crypto::x25519_key& pub) {
  writer w(1 + 4 + 32);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(spi);
  w.raw(const_byte_span(pub.data(), pub.size()));
  return w.take();
}

}  // namespace

pipe_manager::pipe_manager(peer_id self, send_fn send, deliver_fn deliver)
    : self_(self), send_(std::move(send)), deliver_(std::move(deliver)) {}

void pipe_manager::set_metrics(metrics_registry& reg) {
  rejected_pkts_ = &reg.get_counter("ilp.rx.rejected");
  no_pipe_drops_ = &reg.get_counter("ilp.rx.no_pipe");
  peer_down_ = &reg.get_counter("sn.pipe.peer_down");
  keepalive_sent_ = &reg.get_counter("sn.pipe.keepalive_sent");
  keepalive_acked_ = &reg.get_counter("sn.pipe.keepalive_acked");
  reconnects_ = &reg.get_counter("sn.pipe.reconnects");
}

std::uint32_t pipe_manager::fresh_spi() {
  // SPI bases are 31-bit (the top bit is the PSP epoch bit). Mix in the
  // element id so SPIs from different elements rarely collide in logs.
  const std::uint32_t spi =
      (next_spi_++ ^ static_cast<std::uint32_t>(self_ * 2654435761u)) & 0x7fffffffu;
  return spi == 0 ? 1 : spi;
}

void pipe_manager::connect(peer_id peer) {
  if (pipes_.count(peer) || pending_.count(peer)) return;
  start_handshake(peer);
}

void pipe_manager::start_handshake(peer_id peer) {
  pending_state state;
  state.keypair = fresh_keypair();
  state.local_spi = fresh_spi();
  send_(peer, handshake_message(msg_kind::handshake_init, state.local_spi, state.keypair.public_key));
  pending_.emplace(peer, std::move(state));
}

void pipe_manager::send(peer_id peer, const ilp_header& header, bytes payload) {
  auto it = pipes_.find(peer);
  if (it != pipes_.end()) {
    send_(peer, it->second->seal(header, payload));
    return;
  }
  auto pending_it = pending_.find(peer);
  if (pending_it == pending_.end()) {
    start_handshake(peer);
    pending_it = pending_.find(peer);
  }
  pending_it->second.queued.emplace_back(header, std::move(payload));
}

void pipe_manager::send_span(peer_id peer, const ilp_header& header, const_byte_span payload) {
  auto it = pipes_.find(peer);
  if (it != pipes_.end()) {
    if (send_gather_) {
      it->second->seal_head_into(header, payload.size(), seal_scratch_);
      send_gather_(peer, seal_scratch_, payload);
      return;
    }
    it->second->seal_into(header, payload, seal_scratch_);
    if (send_raw_) {
      send_raw_(peer, seal_scratch_);
      return;
    }
    send_(peer, seal_scratch_);  // no zero-copy hook: compat copy
    return;
  }
  // Cold path: the packet queues behind the handshake, so it needs to own
  // its payload.
  auto pending_it = pending_.find(peer);
  if (pending_it == pending_.end()) {
    start_handshake(peer);
    pending_it = pending_.find(peer);
  }
  pending_it->second.queued.emplace_back(header, bytes(payload.begin(), payload.end()));
}

void pipe_manager::on_datagram(peer_id peer, const_byte_span datagram) {
  if (datagram.empty()) return;
  const auto kind = static_cast<msg_kind>(datagram[0]);
  const const_byte_span body = datagram.subspan(1);
  switch (kind) {
    case msg_kind::handshake_init:
      handle_init(peer, body);
      break;
    case msg_kind::handshake_resp:
      handle_resp(peer, body);
      break;
    case msg_kind::data:
      handle_data(peer, body);
      break;
    case msg_kind::keepalive:
      handle_keepalive(peer, body);
      break;
    case msg_kind::keepalive_ack:
      handle_keepalive_ack(peer, body);
      break;
    default:
      IE_LOG(warn) << "pipe_manager " << self_ << ": unknown message kind from " << peer;
  }
}

void pipe_manager::handle_init(peer_id peer, const_byte_span body) {
  try {
    reader r(body);
    const std::uint32_t remote_spi = r.u32();
    crypto::x25519_key remote_pub;
    const const_byte_span pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), remote_pub.begin());

    // Duplicate of an init we already answered (our response was lost):
    // resend the identical response so the initiator can complete.
    auto memo_it = responder_memos_.find(peer);
    if (memo_it != responder_memos_.end() &&
        memo_it->second.init_body.size() == body.size() &&
        std::equal(body.begin(), body.end(), memo_it->second.init_body.begin())) {
      send_(peer, memo_it->second.response);
      return;
    }
    // A *different* init while a pipe exists means the peer restarted its
    // handshake state: fall through and re-establish.

    // Simultaneous-open tie-break: the element with the larger id yields
    // (acts as responder); the smaller id's init is the one answered.
    auto pending_it = pending_.find(peer);
    if (pending_it != pending_.end() && self_ < peer) {
      return;  // our init outranks theirs; they will answer it
    }

    std::vector<std::pair<ilp_header, bytes>> queued;
    if (pending_it != pending_.end()) {
      queued = std::move(pending_it->second.queued);
      pending_.erase(pending_it);
    }

    const crypto::x25519_keypair keypair = fresh_keypair();
    const std::uint32_t local_spi = fresh_spi();
    bytes response =
        handshake_message(msg_kind::handshake_resp, local_spi, keypair.public_key);
    send_(peer, response);
    responder_memos_[peer] =
        responder_memo{bytes(body.begin(), body.end()), std::move(response)};
    establish(peer, keypair.secret, remote_pub, local_spi, remote_spi, /*initiator=*/false,
              std::move(queued));
  } catch (const serial_error&) {
    IE_LOG(warn) << "pipe_manager " << self_ << ": malformed handshake init from " << peer;
  }
}

void pipe_manager::handle_resp(peer_id peer, const_byte_span body) {
  auto pending_it = pending_.find(peer);
  if (pending_it == pending_.end()) return;  // stale or duplicate response
  try {
    reader r(body);
    const std::uint32_t remote_spi = r.u32();
    crypto::x25519_key remote_pub;
    const const_byte_span pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), remote_pub.begin());

    pending_state state = std::move(pending_it->second);
    pending_.erase(pending_it);
    establish(peer, state.keypair.secret, remote_pub, state.local_spi, remote_spi,
              /*initiator=*/true, std::move(state.queued));
  } catch (const serial_error&) {
    IE_LOG(warn) << "pipe_manager " << self_ << ": malformed handshake resp from " << peer;
  }
}

void pipe_manager::establish(peer_id peer, const crypto::x25519_key& secret_scalar,
                             const crypto::x25519_key& peer_public, std::uint32_t local_spi,
                             std::uint32_t remote_spi, bool initiator,
                             std::vector<std::pair<ilp_header, bytes>> queued) {
  const crypto::x25519_key shared = crypto::x25519(secret_scalar, peer_public);
  auto p = std::make_unique<pipe>(const_byte_span(shared.data(), shared.size()), local_spi,
                                  remote_spi, initiator);
  ++handshakes_completed_;
  // Overwrite any existing pipe: a re-handshake (peer restart) supersedes
  // the old keys.
  auto& slot = pipes_[peer];
  slot = std::move(p);
  // New receive keys exist before any data sealed with them can arrive;
  // the observer propagates them (e.g. to worker-shard replicas) first.
  if (rx_keys_) rx_keys_(peer, *slot);
  // A (re)established pipe resets the peer's liveness state: probing
  // resumes from a clean slate and any reconnect backoff is cancelled.
  // The handshake we just completed used fresh X25519 ephemerals, so a
  // re-establishment is by construction a full rekey.
  if (liveness_clock_) {
    liveness_state& st = liveness_[peer];
    const bool was_down = st.stats.down;
    st.stats.down = false;
    st.awaiting_ack = false;
    st.consecutive_misses = 0;
    st.backoff = nanoseconds{0};
    if (was_down) {
      IE_LOG(info) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                   << kv("liveness", "recovered");
    }
    if (peer_status_) peer_status_(peer, true);
  }
  for (auto& [header, payload] : queued) {
    send_(peer, slot->seal(header, payload));
  }
}

void pipe_manager::on_datagram_batch(peer_id peer, std::span<const const_byte_span> datagrams) {
  // Without a batch deliver path there is nothing to amortize — reuse the
  // single-datagram path for simplicity.
  if (!deliver_batch_) {
    for (const const_byte_span& d : datagrams) on_datagram(peer, d);
    return;
  }
  run_scratch_.clear();
  auto flush = [&] {
    if (!run_scratch_.empty()) {
      flush_data_run(peer, run_scratch_);
      run_scratch_.clear();
    }
  };
  for (const const_byte_span& datagram : datagrams) {
    if (datagram.empty()) continue;
    if (static_cast<msg_kind>(datagram[0]) == msg_kind::data) {
      run_scratch_.push_back(datagram.subspan(1));
      continue;
    }
    // Handshake (or unknown) message: preserve arrival order relative to
    // the data packets around it, then handle inline.
    flush();
    on_datagram(peer, datagram);
  }
  flush();
}

void pipe_manager::on_datagram_batch_mut(peer_id peer, std::span<const byte_span> datagrams) {
  // Same run-splitting as on_datagram_batch, but data runs decrypt in
  // place inside the caller's (mutable) buffers.
  if (!deliver_batch_) {
    for (const byte_span& d : datagrams) on_datagram(peer, d);
    return;
  }
  run_mut_scratch_.clear();
  auto flush = [&] {
    if (!run_mut_scratch_.empty()) {
      flush_data_run_mut(peer, run_mut_scratch_);
      run_mut_scratch_.clear();
    }
  };
  for (const byte_span& datagram : datagrams) {
    if (datagram.empty()) continue;
    if (static_cast<msg_kind>(datagram[0]) == msg_kind::data) {
      run_mut_scratch_.push_back(datagram.subspan(1));
      continue;
    }
    flush();
    on_datagram(peer, datagram);
  }
  flush();
}

void pipe_manager::flush_data_run(peer_id peer, std::span<const const_byte_span> bodies) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add(bodies.size());
    IE_LOG(debug) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                  << kv("drop", "data-before-pipe") << kv("pkts", bodies.size());
    return;
  }
  const std::size_t opened = it->second->decrypt_batch(bodies, opened_scratch_);
  deliver_opened_batch(peer, opened == bodies.size() ? 0 : bodies.size() - opened);
}

void pipe_manager::flush_data_run_mut(peer_id peer, std::span<const byte_span> bodies) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add(bodies.size());
    IE_LOG(debug) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                  << kv("drop", "data-before-pipe") << kv("pkts", bodies.size());
    return;
  }
  const std::size_t opened = it->second->decrypt_batch_mut(bodies, opened_scratch_);
  deliver_opened_batch(peer, opened == bodies.size() ? 0 : bodies.size() - opened);
}

// Common tail of the two flush paths: count rejects, compact the opened
// packets out of opened_scratch_ and hand them to the batch deliverer.
void pipe_manager::deliver_opened_batch(peer_id peer, std::size_t rejected) {
  if (rejected > 0) {
    if (rejected_pkts_) rejected_pkts_->add(rejected);
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "auth-reject") << kv("pkts", rejected);
  }
  batch_scratch_.clear();
  for (auto& opened : opened_scratch_) {
    if (opened) batch_scratch_.push_back(std::move(*opened));
  }
  if (!batch_scratch_.empty()) {
    note_peer_alive(peer);  // authenticated traffic counts as liveness
    deliver_batch_(peer, batch_scratch_);
  }
}

void pipe_manager::handle_data(peer_id peer, const_byte_span body) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add();
    IE_LOG(debug) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                  << kv("drop", "data-before-pipe");
    return;
  }
  auto opened = it->second->open(body);
  if (!opened) {
    if (rejected_pkts_) rejected_pkts_->add();
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "auth-reject");
    return;
  }
  note_peer_alive(peer);  // authenticated traffic counts as liveness
  deliver_(peer, opened->first, std::move(opened->second));
}

// ---- liveness ----------------------------------------------------------

void pipe_manager::enable_liveness(const clock& clk, liveness_config cfg) {
  liveness_clock_ = &clk;
  liveness_cfg_ = cfg;
  jitter_rng_.emplace(cfg.jitter_seed);
  // Pipes established before liveness was armed get tracked from now on;
  // establish() only creates entries once liveness_clock_ is set.
  for (const auto& [peer, p] : pipes_) liveness_.try_emplace(peer);
}

const liveness_stats* pipe_manager::liveness_for(peer_id peer) const {
  auto it = liveness_.find(peer);
  return it == liveness_.end() ? nullptr : &it->second.stats;
}

void pipe_manager::note_peer_alive(peer_id peer) {
  if (!liveness_clock_) return;
  auto it = liveness_.find(peer);
  if (it == liveness_.end()) return;
  it->second.awaiting_ack = false;
  it->second.consecutive_misses = 0;
}

void pipe_manager::send_probe(peer_id peer, pipe& p, liveness_state& st) {
  // A probe is a normal sealed data message with the kind byte rewritten:
  // the receiver authenticates it with pipe::open(), so probes inherit the
  // pipe's anti-forgery and epoch handling with zero new crypto surface.
  ilp_header h;
  h.service = 0;  // below the standardized range: never a service packet
  h.connection = ++st.probe_seq;
  h.set_meta_u64(meta_key::service_data,
                 static_cast<std::uint64_t>(
                     liveness_clock_->now().time_since_epoch().count()));
  bytes msg = p.seal(h, {});
  msg[0] = static_cast<std::uint8_t>(msg_kind::keepalive);
  st.awaiting_ack = true;
  ++st.stats.probes_sent;
  if (keepalive_sent_) keepalive_sent_->add();
  send_(peer, std::move(msg));
}

void pipe_manager::handle_keepalive(peer_id peer, const_byte_span body) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add();
    return;
  }
  auto opened = it->second->open(body);
  if (!opened) {
    if (rejected_pkts_) rejected_pkts_->add();
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "keepalive-auth-reject");
    return;
  }
  note_peer_alive(peer);
  // Echo the probe header (sequence + sender timestamp) back under our own
  // tx key so the prober can authenticate the ack and compute RTT.
  bytes ack = it->second->seal(opened->first, {});
  ack[0] = static_cast<std::uint8_t>(msg_kind::keepalive_ack);
  send_(peer, std::move(ack));
}

void pipe_manager::handle_keepalive_ack(peer_id peer, const_byte_span body) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add();
    return;
  }
  auto opened = it->second->open(body);
  if (!opened) {
    if (rejected_pkts_) rejected_pkts_->add();
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "keepalive-ack-auth-reject");
    return;
  }
  note_peer_alive(peer);
  auto lv = liveness_.find(peer);
  if (lv == liveness_.end()) return;
  ++lv->second.stats.acks_received;
  if (keepalive_acked_) keepalive_acked_->add();
  if (liveness_clock_) {
    if (auto sent_ns = opened->first.meta_u64(meta_key::service_data)) {
      const std::int64_t now_ns = liveness_clock_->now().time_since_epoch().count();
      const std::int64_t rtt = now_ns - static_cast<std::int64_t>(*sent_ns);
      if (rtt >= 0) {
        std::uint64_t& ewma = lv->second.stats.rtt_ns;
        ewma = ewma == 0 ? static_cast<std::uint64_t>(rtt)
                         : (ewma * 7 + static_cast<std::uint64_t>(rtt)) / 8;
      }
    }
  }
}

void pipe_manager::declare_down(peer_id peer, liveness_state& st, time_point now) {
  st.stats.down = true;
  ++st.stats.times_down;
  st.awaiting_ack = false;
  st.consecutive_misses = 0;
  // Tear the pipe (and the responder memo) down: stale keys must not
  // accept traffic from whatever comes back claiming to be this peer, and
  // the reconnect handshake below rekeys from scratch.
  pipes_.erase(peer);
  responder_memos_.erase(peer);
  pending_.erase(peer);
  if (peer_down_) peer_down_->add();
  IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
               << kv("liveness", "peer-down") << kv("missed", st.stats.missed);
  if (peer_status_) peer_status_(peer, false);
  st.backoff = liveness_cfg_.reconnect_backoff;
  attempt_reconnect(peer, st, now);
}

void pipe_manager::attempt_reconnect(peer_id peer, liveness_state& st, time_point now) {
  ++st.stats.reconnect_attempts;
  if (reconnects_) reconnects_->add();
  auto pending_it = pending_.find(peer);
  if (pending_it != pending_.end()) {
    // Re-send the outstanding init (responders are stateless until they
    // answer, so duplicates are harmless).
    send_(peer, handshake_message(msg_kind::handshake_init, pending_it->second.local_spi,
                                  pending_it->second.keypair.public_key));
  } else {
    start_handshake(peer);
  }
  // Exponential backoff with additive jitter so a fleet of peers probing a
  // recovered node doesn't synchronize its retries.
  nanoseconds jitter{0};
  if (jitter_rng_ && st.backoff.count() > 0) {
    jitter = nanoseconds(static_cast<std::int64_t>(
        jitter_rng_->below(static_cast<std::uint64_t>(st.backoff.count() / 4) + 1)));
  }
  st.next_attempt = now + st.backoff + jitter;
  st.backoff = std::min(st.backoff * 2, liveness_cfg_.reconnect_backoff_max);
}

void pipe_manager::liveness_tick() {
  if (!liveness_clock_) return;
  const time_point now = liveness_clock_->now();
  for (auto& [peer, st] : liveness_) {
    if (st.stats.down) {
      if (now >= st.next_attempt) attempt_reconnect(peer, st, now);
      continue;
    }
    auto it = pipes_.find(peer);
    if (it == pipes_.end()) continue;  // handshake in flight; not probed yet
    if (st.awaiting_ack) {
      ++st.stats.missed;
      ++st.consecutive_misses;
      if (st.consecutive_misses >= liveness_cfg_.miss_budget) {
        declare_down(peer, st, now);
        continue;
      }
    }
    send_probe(peer, *it->second, st);
  }
}

bool pipe_manager::has_pipe(peer_id peer) const { return pipes_.count(peer) > 0; }

void pipe_manager::retry_pending() {
  for (auto& [peer, state] : pending_) {
    send_(peer,
          handshake_message(msg_kind::handshake_init, state.local_spi, state.keypair.public_key));
  }
}

void pipe_manager::rotate_all() {
  for (auto& [peer, p] : pipes_) {
    p->rotate_tx();
    p->rotate_rx();
    if (rx_keys_) rx_keys_(peer, *p);
  }
}

ilp::pipe* pipe_manager::pipe_for(peer_id peer) {
  auto it = pipes_.find(peer);
  return it == pipes_.end() ? nullptr : it->second.get();
}

const pipe_stats* pipe_manager::stats_for(peer_id peer) const {
  auto it = pipes_.find(peer);
  return it == pipes_.end() ? nullptr : &it->second->stats();
}

}  // namespace interedge::ilp
