#include "ilp/pipe_manager.h"

#include "common/logging.h"
#include "common/serial.h"
#include "crypto/random.h"

namespace interedge::ilp {
namespace {

crypto::x25519_keypair fresh_keypair() {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  return crypto::x25519_keypair_from_seed(seed);
}

bytes handshake_message(msg_kind kind, std::uint32_t spi, const crypto::x25519_key& pub) {
  writer w(1 + 4 + 32);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(spi);
  w.raw(const_byte_span(pub.data(), pub.size()));
  return w.take();
}

}  // namespace

pipe_manager::pipe_manager(peer_id self, send_fn send, deliver_fn deliver)
    : self_(self), send_(std::move(send)), deliver_(std::move(deliver)) {}

void pipe_manager::set_metrics(metrics_registry& reg) {
  rejected_pkts_ = &reg.get_counter("ilp.rx.rejected");
  no_pipe_drops_ = &reg.get_counter("ilp.rx.no_pipe");
}

std::uint32_t pipe_manager::fresh_spi() {
  // SPI bases are 31-bit (the top bit is the PSP epoch bit). Mix in the
  // element id so SPIs from different elements rarely collide in logs.
  const std::uint32_t spi =
      (next_spi_++ ^ static_cast<std::uint32_t>(self_ * 2654435761u)) & 0x7fffffffu;
  return spi == 0 ? 1 : spi;
}

void pipe_manager::connect(peer_id peer) {
  if (pipes_.count(peer) || pending_.count(peer)) return;
  start_handshake(peer);
}

void pipe_manager::start_handshake(peer_id peer) {
  pending_state state;
  state.keypair = fresh_keypair();
  state.local_spi = fresh_spi();
  send_(peer, handshake_message(msg_kind::handshake_init, state.local_spi, state.keypair.public_key));
  pending_.emplace(peer, std::move(state));
}

void pipe_manager::send(peer_id peer, const ilp_header& header, bytes payload) {
  auto it = pipes_.find(peer);
  if (it != pipes_.end()) {
    send_(peer, it->second->seal(header, payload));
    return;
  }
  auto pending_it = pending_.find(peer);
  if (pending_it == pending_.end()) {
    start_handshake(peer);
    pending_it = pending_.find(peer);
  }
  pending_it->second.queued.emplace_back(header, std::move(payload));
}

void pipe_manager::on_datagram(peer_id peer, const_byte_span datagram) {
  if (datagram.empty()) return;
  const auto kind = static_cast<msg_kind>(datagram[0]);
  const const_byte_span body = datagram.subspan(1);
  switch (kind) {
    case msg_kind::handshake_init:
      handle_init(peer, body);
      break;
    case msg_kind::handshake_resp:
      handle_resp(peer, body);
      break;
    case msg_kind::data:
      handle_data(peer, body);
      break;
    default:
      IE_LOG(warn) << "pipe_manager " << self_ << ": unknown message kind from " << peer;
  }
}

void pipe_manager::handle_init(peer_id peer, const_byte_span body) {
  try {
    reader r(body);
    const std::uint32_t remote_spi = r.u32();
    crypto::x25519_key remote_pub;
    const const_byte_span pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), remote_pub.begin());

    // Duplicate of an init we already answered (our response was lost):
    // resend the identical response so the initiator can complete.
    auto memo_it = responder_memos_.find(peer);
    if (memo_it != responder_memos_.end() &&
        memo_it->second.init_body.size() == body.size() &&
        std::equal(body.begin(), body.end(), memo_it->second.init_body.begin())) {
      send_(peer, memo_it->second.response);
      return;
    }
    // A *different* init while a pipe exists means the peer restarted its
    // handshake state: fall through and re-establish.

    // Simultaneous-open tie-break: the element with the larger id yields
    // (acts as responder); the smaller id's init is the one answered.
    auto pending_it = pending_.find(peer);
    if (pending_it != pending_.end() && self_ < peer) {
      return;  // our init outranks theirs; they will answer it
    }

    std::vector<std::pair<ilp_header, bytes>> queued;
    if (pending_it != pending_.end()) {
      queued = std::move(pending_it->second.queued);
      pending_.erase(pending_it);
    }

    const crypto::x25519_keypair keypair = fresh_keypair();
    const std::uint32_t local_spi = fresh_spi();
    bytes response =
        handshake_message(msg_kind::handshake_resp, local_spi, keypair.public_key);
    send_(peer, response);
    responder_memos_[peer] =
        responder_memo{bytes(body.begin(), body.end()), std::move(response)};
    establish(peer, keypair.secret, remote_pub, local_spi, remote_spi, /*initiator=*/false,
              std::move(queued));
  } catch (const serial_error&) {
    IE_LOG(warn) << "pipe_manager " << self_ << ": malformed handshake init from " << peer;
  }
}

void pipe_manager::handle_resp(peer_id peer, const_byte_span body) {
  auto pending_it = pending_.find(peer);
  if (pending_it == pending_.end()) return;  // stale or duplicate response
  try {
    reader r(body);
    const std::uint32_t remote_spi = r.u32();
    crypto::x25519_key remote_pub;
    const const_byte_span pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), remote_pub.begin());

    pending_state state = std::move(pending_it->second);
    pending_.erase(pending_it);
    establish(peer, state.keypair.secret, remote_pub, state.local_spi, remote_spi,
              /*initiator=*/true, std::move(state.queued));
  } catch (const serial_error&) {
    IE_LOG(warn) << "pipe_manager " << self_ << ": malformed handshake resp from " << peer;
  }
}

void pipe_manager::establish(peer_id peer, const crypto::x25519_key& secret_scalar,
                             const crypto::x25519_key& peer_public, std::uint32_t local_spi,
                             std::uint32_t remote_spi, bool initiator,
                             std::vector<std::pair<ilp_header, bytes>> queued) {
  const crypto::x25519_key shared = crypto::x25519(secret_scalar, peer_public);
  auto p = std::make_unique<pipe>(const_byte_span(shared.data(), shared.size()), local_spi,
                                  remote_spi, initiator);
  ++handshakes_completed_;
  // Overwrite any existing pipe: a re-handshake (peer restart) supersedes
  // the old keys.
  auto& slot = pipes_[peer];
  slot = std::move(p);
  // New receive keys exist before any data sealed with them can arrive;
  // the observer propagates them (e.g. to worker-shard replicas) first.
  if (rx_keys_) rx_keys_(peer, *slot);
  for (auto& [header, payload] : queued) {
    send_(peer, slot->seal(header, payload));
  }
}

void pipe_manager::on_datagram_batch(peer_id peer, std::span<const const_byte_span> datagrams) {
  // Without a batch deliver path there is nothing to amortize — reuse the
  // single-datagram path for simplicity.
  if (!deliver_batch_) {
    for (const const_byte_span& d : datagrams) on_datagram(peer, d);
    return;
  }
  run_scratch_.clear();
  auto flush = [&] {
    if (!run_scratch_.empty()) {
      flush_data_run(peer, run_scratch_);
      run_scratch_.clear();
    }
  };
  for (const const_byte_span& datagram : datagrams) {
    if (datagram.empty()) continue;
    if (static_cast<msg_kind>(datagram[0]) == msg_kind::data) {
      run_scratch_.push_back(datagram.subspan(1));
      continue;
    }
    // Handshake (or unknown) message: preserve arrival order relative to
    // the data packets around it, then handle inline.
    flush();
    on_datagram(peer, datagram);
  }
  flush();
}

void pipe_manager::flush_data_run(peer_id peer, std::span<const const_byte_span> bodies) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add(bodies.size());
    IE_LOG(debug) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                  << kv("drop", "data-before-pipe") << kv("pkts", bodies.size());
    return;
  }
  const std::size_t opened = it->second->decrypt_batch(bodies, opened_scratch_);
  if (opened < bodies.size()) {
    const std::size_t rejected = bodies.size() - opened;
    if (rejected_pkts_) rejected_pkts_->add(rejected);
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "auth-reject") << kv("pkts", rejected);
  }
  batch_scratch_.clear();
  for (auto& opened : opened_scratch_) {
    if (opened) batch_scratch_.push_back(std::move(*opened));
  }
  if (!batch_scratch_.empty()) deliver_batch_(peer, batch_scratch_);
}

void pipe_manager::handle_data(peer_id peer, const_byte_span body) {
  auto it = pipes_.find(peer);
  if (it == pipes_.end()) {
    if (no_pipe_drops_) no_pipe_drops_->add();
    IE_LOG(debug) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                  << kv("drop", "data-before-pipe");
    return;
  }
  auto opened = it->second->open(body);
  if (!opened) {
    if (rejected_pkts_) rejected_pkts_->add();
    IE_LOG(warn) << "pipe_manager" << kv("self", self_) << kv("peer", peer)
                 << kv("drop", "auth-reject");
    return;
  }
  deliver_(peer, opened->first, std::move(opened->second));
}

bool pipe_manager::has_pipe(peer_id peer) const { return pipes_.count(peer) > 0; }

void pipe_manager::retry_pending() {
  for (auto& [peer, state] : pending_) {
    send_(peer,
          handshake_message(msg_kind::handshake_init, state.local_spi, state.keypair.public_key));
  }
}

void pipe_manager::rotate_all() {
  for (auto& [peer, p] : pipes_) {
    p->rotate_tx();
    p->rotate_rx();
    if (rx_keys_) rx_keys_(peer, *p);
  }
}

ilp::pipe* pipe_manager::pipe_for(peer_id peer) {
  auto it = pipes_.find(peer);
  return it == pipes_.end() ? nullptr : it->second.get();
}

const pipe_stats* pipe_manager::stats_for(peer_id peer) const {
  auto it = pipes_.find(peer);
  return it == pipes_.end() ? nullptr : &it->second->stats();
}

}  // namespace interedge::ilp
