#include "edomain/observability.h"

#include <sstream>

namespace interedge::edomain {

namespace {

constexpr std::uint16_t kErrorMask =
    trace::kAnnoShed | trace::kAnnoDrop | trace::kAnnoDeadlineExpired;

}  // namespace

observability_plane::observability_plane(config cfg)
    : cfg_(cfg), collector_(cfg.max_traces) {
  // End-to-end latency rollup: the first time a trace holds both its
  // origin and terminal delivery, its total lands in a per-service
  // histogram — the series the latency SLOs key on. The hook fires after
  // the collector drops its lock; rollup_reg_ has its own.
  collector_.set_completion_hook([this](std::uint32_t service, std::uint64_t /*connection*/,
                                        std::uint64_t total_ns, std::uint16_t annotations) {
    const label_list labels{{"service", ilp::svc::name(service)}};
    rollup_reg_.get_histogram("edomain.path.total_ns", labels).record(total_ns);
    rollup_reg_.get_counter("edomain.path.completed", labels).add();
    if ((annotations & kErrorMask) != 0) {
      rollup_reg_.get_counter("edomain.path.errors", labels).add();
    }
  });
}

observability_plane::rollup_entry& observability_plane::entry_for(ilp::service_id service,
                                                                  ilp::peer_id node) {
  auto it = rollups_.find({service, node});
  if (it != rollups_.end()) return it->second;
  const label_list labels{{"node", std::to_string(node)},
                          {"service", ilp::svc::name(service)}};
  rollup_entry e;
  e.hop_ns = &rollup_reg_.get_histogram("edomain.hop.ns", labels);
  e.spans = &rollup_reg_.get_counter("edomain.hop.spans", labels);
  e.errors = &rollup_reg_.get_counter("edomain.hop.errors", labels);
  return rollups_.emplace(std::make_pair(service, node), e).first->second;
}

void observability_plane::ingest(ilp::peer_id node, const metrics_registry& snapshot,
                                 std::span<const trace::path_span> spans) {
  std::lock_guard lk(mu_);
  ++pushes_;
  // Replace-on-push: the snapshot is cumulative (counters are monotone),
  // so the latest one is the node's whole story.
  auto fresh = std::make_unique<metrics_registry>();
  fresh->merge_from(snapshot);
  node_metrics_[node] = std::move(fresh);
  // Rollups key on the collector's accept verdict: a replayed batch (an SN
  // restarting mid-window and re-draining, a duplicated push) is rejected
  // span-by-span as duplicates, so window aggregates never double-count.
  for (const trace::path_span& s : spans) {
    if (!collector_.ingest(s)) continue;
    if (s.trace_id == 0) continue;  // node events roll up via the collector
    if (s.kind == trace::span_kind::forward) continue;  // sub-span of its hop
    rollup_entry& e = entry_for(s.service, s.node);
    e.hop_ns->record(s.duration_ns);
    e.spans->add();
    if ((s.annotations & kErrorMask) != 0) e.errors->add();
  }
}

observability_plane::hop_rollup observability_plane::rollup(ilp::service_id service,
                                                            ilp::peer_id node) const {
  std::lock_guard lk(mu_);
  hop_rollup r;
  auto it = rollups_.find({service, node});
  if (it == rollups_.end()) return r;
  r.spans = it->second.spans->value();
  r.errors = it->second.errors->value();
  r.p50_ns = it->second.hop_ns->quantile(0.5);
  r.p99_ns = it->second.hop_ns->quantile(0.99);
  return r;
}

void observability_plane::refresh_trace_gauges_locked() {
  // Cumulative collector accounting as gauges (the plane cannot re-add to
  // a counter it doesn't own the increments of): trace loss and dedup
  // visibility for the exposition and the SLO window store.
  rollup_reg_.get_gauge("edomain.traces.spans_seen")
      .set(static_cast<std::int64_t>(collector_.spans_seen()));
  rollup_reg_.get_gauge("edomain.traces.duplicates_ignored")
      .set(static_cast<std::int64_t>(collector_.duplicates_ignored()));
  rollup_reg_.get_gauge("edomain.traces.evicted")
      .set(static_cast<std::int64_t>(collector_.evicted_traces()));
  rollup_reg_.get_gauge("edomain.traces.retained")
      .set(static_cast<std::int64_t>(collector_.trace_count()));
}

void observability_plane::merged_view_locked(metrics_registry& out) {
  refresh_trace_gauges_locked();
  if (slo_) slo_->expose(rollup_reg_);
  out.merge_from(rollup_reg_);
  for (const auto& [node, reg] : node_metrics_) out.merge_from(*reg);
}

std::string observability_plane::export_prometheus() {
  std::lock_guard lk(mu_);
  metrics_registry merged;
  merged_view_locked(merged);
  return merged.export_prometheus();
}

std::string observability_plane::export_json(std::size_t limit) {
  return collector_.export_json(limit);
}

std::string observability_plane::render_top(std::size_t limit) {
  std::ostringstream os;
  {
    std::lock_guard lk(mu_);
    os << "edomain " << cfg_.domain << " observability: " << node_metrics_.size()
       << " nodes, " << pushes_ << " pushes\n";
    os << "  service        node        spans   errors   p50(us)   p99(us)\n";
    for (const auto& [key, e] : rollups_) {
      const auto& [service, node] = key;
      char line[160];
      std::snprintf(line, sizeof(line), "  %-14s %-11llu %-7llu %-8llu %-9.1f %-9.1f\n",
                    ilp::svc::name(service),
                    static_cast<unsigned long long>(node),
                    static_cast<unsigned long long>(e.spans->value()),
                    static_cast<unsigned long long>(e.errors->value()),
                    static_cast<double>(e.hop_ns->quantile(0.5)) / 1e3,
                    static_cast<double>(e.hop_ns->quantile(0.99)) / 1e3);
      os << line;
    }
  }
  os << collector_.render_text(limit);
  return os.str();
}

// ---- SLO health surface (ISSUE 7) -------------------------------------

void observability_plane::enable_health(timeseries_store::config series,
                                        slo::burn_windows windows) {
  std::lock_guard lk(mu_);
  ts_ = std::make_unique<timeseries_store>(series);
  slo_ = std::make_unique<slo::slo_monitor>(*ts_, windows);
}

void observability_plane::add_slo(slo::slo_target target) {
  std::lock_guard lk(mu_);
  if (slo_) slo_->add_target(std::move(target));
}

void observability_plane::set_alert_hook(std::function<void(const slo::slo_alert&)> hook) {
  std::lock_guard lk(mu_);
  alert_hook_ = std::move(hook);
}

std::size_t observability_plane::health_tick(time_point now) {
  std::function<void(const slo::slo_alert&)> hook;
  {
    std::lock_guard lk(mu_);
    if (!ts_) return 0;
    metrics_registry merged;
    merged_view_locked(merged);
    ts_->tick(merged, now);
    alert_scratch_.clear();
    slo_->evaluate(now, &alert_scratch_);
    if (alert_scratch_.empty()) return 0;
    hook = alert_hook_;
  }
  // Fan out after dropping the plane lock: a hook re-entering the plane
  // (exposition, a black-box dump through an SN) must not deadlock.
  if (hook) {
    for (const slo::slo_alert& a : alert_scratch_) hook(a);
  }
  return alert_scratch_.size();
}

std::string observability_plane::export_alerts_json() const {
  std::lock_guard lk(mu_);
  return slo_ ? slo_->export_json() : std::string("{\"alerts\":[]}");
}

}  // namespace interedge::edomain
