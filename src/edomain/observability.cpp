#include "edomain/observability.h"

#include <sstream>

namespace interedge::edomain {

namespace {

constexpr std::uint16_t kErrorMask =
    trace::kAnnoShed | trace::kAnnoDrop | trace::kAnnoDeadlineExpired;

}  // namespace

observability_plane::observability_plane(config cfg)
    : cfg_(cfg), collector_(cfg.max_traces) {}

observability_plane::rollup_entry& observability_plane::entry_for(ilp::service_id service,
                                                                  ilp::peer_id node) {
  auto it = rollups_.find({service, node});
  if (it != rollups_.end()) return it->second;
  const label_list labels{{"node", std::to_string(node)},
                          {"service", ilp::svc::name(service)}};
  rollup_entry e;
  e.hop_ns = &rollup_reg_.get_histogram("edomain.hop.ns", labels);
  e.spans = &rollup_reg_.get_counter("edomain.hop.spans", labels);
  e.errors = &rollup_reg_.get_counter("edomain.hop.errors", labels);
  return rollups_.emplace(std::make_pair(service, node), e).first->second;
}

void observability_plane::ingest(ilp::peer_id node, const metrics_registry& snapshot,
                                 std::span<const trace::path_span> spans) {
  std::lock_guard lk(mu_);
  ++pushes_;
  // Replace-on-push: the snapshot is cumulative (counters are monotone),
  // so the latest one is the node's whole story.
  auto fresh = std::make_unique<metrics_registry>();
  fresh->merge_from(snapshot);
  node_metrics_[node] = std::move(fresh);
  for (const trace::path_span& s : spans) {
    if (s.trace_id == 0) continue;  // node events roll up via the collector
    if (s.kind == trace::span_kind::forward) continue;  // sub-span of its hop
    rollup_entry& e = entry_for(s.service, s.node);
    e.hop_ns->record(s.duration_ns);
    e.spans->add();
    if ((s.annotations & kErrorMask) != 0) e.errors->add();
  }
  collector_.ingest(spans);
}

observability_plane::hop_rollup observability_plane::rollup(ilp::service_id service,
                                                            ilp::peer_id node) const {
  std::lock_guard lk(mu_);
  hop_rollup r;
  auto it = rollups_.find({service, node});
  if (it == rollups_.end()) return r;
  r.spans = it->second.spans->value();
  r.errors = it->second.errors->value();
  r.p50_ns = it->second.hop_ns->quantile(0.5);
  r.p99_ns = it->second.hop_ns->quantile(0.99);
  return r;
}

std::string observability_plane::export_prometheus() {
  std::lock_guard lk(mu_);
  metrics_registry merged;
  merged.merge_from(rollup_reg_);
  for (const auto& [node, reg] : node_metrics_) merged.merge_from(*reg);
  return merged.export_prometheus();
}

std::string observability_plane::export_json(std::size_t limit) {
  return collector_.export_json(limit);
}

std::string observability_plane::render_top(std::size_t limit) {
  std::ostringstream os;
  {
    std::lock_guard lk(mu_);
    os << "edomain " << cfg_.domain << " observability: " << node_metrics_.size()
       << " nodes, " << pushes_ << " pushes\n";
    os << "  service        node        spans   errors   p50(us)   p99(us)\n";
    for (const auto& [key, e] : rollups_) {
      const auto& [service, node] = key;
      char line[160];
      std::snprintf(line, sizeof(line), "  %-14s %-11llu %-7llu %-8llu %-9.1f %-9.1f\n",
                    ilp::svc::name(service),
                    static_cast<unsigned long long>(node),
                    static_cast<unsigned long long>(e.spans->value()),
                    static_cast<unsigned long long>(e.errors->value()),
                    static_cast<double>(e.hop_ns->quantile(0.5)) / 1e3,
                    static_cast<double>(e.hop_ns->quantile(0.99)) / 1e3);
      os << line;
    }
  }
  os << collector_.render_text(limit);
  return os.str();
}

}  // namespace interedge::edomain
