#include "edomain/peering.h"

namespace interedge::edomain {

void settlement_ledger::record_transfer(edomain_id from, edomain_id to,
                                        std::uint64_t transfer_bytes) {
  traffic_[{from, to}] += transfer_bytes;
  total_ += transfer_bytes;
}

std::uint64_t settlement_ledger::traffic(edomain_id from, edomain_id to) const {
  auto it = traffic_.find({from, to});
  return it == traffic_.end() ? 0 : it->second;
}

money settlement_ledger::settlement_due(edomain_id /*from*/, edomain_id /*to*/) const {
  return 0;  // settlement-free by architectural requirement (§5)
}

std::vector<std::pair<edomain_id, edomain_id>> settlement_ledger::active_pairs() const {
  std::vector<std::pair<edomain_id, edomain_id>> out;
  out.reserve(traffic_.size());
  for (const auto& [pair, bytes] : traffic_) out.push_back(pair);
  return out;
}

}  // namespace interedge::edomain
