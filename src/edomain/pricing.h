// Neutrality machinery (paper §5): "we propose that each IESP be forced to
// publish their standard rates and make their services available to all on
// nondiscriminatory terms ... These prices might depend on the volume and
// location of service, but cannot vary based on the customer."
//
// And the broker ecosystem: "with standard rates being published openly, we
// believe that a set of 'brokers' will arise that can do the stitching on
// behalf of customers", letting collections of small IESPs compete with
// global providers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "edomain/peering.h"  // money
#include "ilp/header.h"

namespace interedge::edomain {

// Volume-tiered pricing: tiers are cumulative step rates — the first
// tier.up_to_gb gigabytes cost tier.per_gb each, and so on; the final tier
// must have up_to_gb == 0 (unbounded).
struct rate_tier {
  std::uint64_t up_to_gb = 0;  // 0 = unbounded (must be last)
  money per_gb = 0;
};

// A published rate card: service x region -> tier schedule. Pure data, and
// the price function is deliberately a function of (service, region,
// volume) only.
class rate_card {
 public:
  void set_rate(ilp::service_id service, const std::string& region, std::vector<rate_tier> tiers);
  // Total price for `volume_gb` of service in region; nullopt if the
  // (service, region) combination is not offered.
  std::optional<money> price(ilp::service_id service, const std::string& region,
                             std::uint64_t volume_gb) const;
  bool offers(ilp::service_id service, const std::string& region) const;
  std::vector<std::string> regions_for(ilp::service_id service) const;

 private:
  std::map<ilp::service_id, std::map<std::string, std::vector<rate_tier>>> rates_;
};

// An InterEdge Service Provider's published listing. quote() receives the
// customer identity because a *non-compliant* provider could discriminate
// on it; the compliant base class ignores it, and the auditor below
// verifies that empirically for any provider.
class iesp {
 public:
  iesp(std::string name, rate_card card) : name_(std::move(name)), card_(std::move(card)) {}
  virtual ~iesp() = default;

  const std::string& name() const { return name_; }
  const rate_card& card() const { return card_; }

  virtual std::optional<money> quote(const std::string& customer, ilp::service_id service,
                                     const std::string& region, std::uint64_t volume_gb) const {
    (void)customer;  // neutrality: identity cannot influence the price
    return card_.price(service, region, volume_gb);
  }

 private:
  std::string name_;
  rate_card card_;
};

// Public registry of published rates.
class marketplace {
 public:
  void add(std::shared_ptr<iesp> provider);
  const std::vector<std::shared_ptr<iesp>>& providers() const { return providers_; }
  std::shared_ptr<iesp> find(const std::string& name) const;

 private:
  std::vector<std::shared_ptr<iesp>> providers_;
};

// Empirical nondiscrimination check: probes a provider's quote() with many
// distinct customer identities over a grid of (service, region, volume)
// and reports any quote that varied by identity.
struct neutrality_violation {
  ilp::service_id service = 0;
  std::string region;
  std::uint64_t volume_gb = 0;
  std::string customer_a;
  std::string customer_b;
  money price_a = 0;
  money price_b = 0;
};

class neutrality_auditor {
 public:
  struct probe {
    ilp::service_id service;
    std::string region;
    std::uint64_t volume_gb;
  };
  std::vector<neutrality_violation> audit(const iesp& provider, const std::vector<probe>& probes,
                                          const std::vector<std::string>& customers) const;
};

// Coverage broker: given the regions a customer needs, assembles the
// cheapest per-region assignment of providers from the marketplace.
class broker {
 public:
  struct assignment {
    std::string region;
    std::shared_ptr<iesp> provider;
    money price = 0;
  };
  struct plan {
    std::vector<assignment> assignments;
    money total = 0;
  };

  explicit broker(const marketplace& market) : market_(market) {}

  // nullopt if any region cannot be covered by any provider.
  std::optional<plan> stitch(const std::string& customer, ilp::service_id service,
                             const std::map<std::string, std::uint64_t>& volume_by_region) const;

 private:
  const marketplace& market_;
};

}  // namespace interedge::edomain
