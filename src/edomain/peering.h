// Settlement-free peering accounting (paper §5): "when an SN in one
// edomain sends packets via ILP to an SN in another edomain, no money
// changes hands."
//
// The ledger records traffic per directed edomain pair (for capacity
// planning and the Appendix C peering benchmark) and exposes the
// settlement computation — identically zero by architecture — so the
// neutrality test suite can assert the invariant rather than assume it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "lookup/lookup_service.h"

namespace interedge::edomain {

using lookup::edomain_id;

// Money in micro-currency units.
using money = std::int64_t;

class settlement_ledger {
 public:
  void record_transfer(edomain_id from, edomain_id to, std::uint64_t transfer_bytes);

  std::uint64_t traffic(edomain_id from, edomain_id to) const;
  std::uint64_t total_traffic() const { return total_; }

  // The settlement owed by `from` to `to` for peering traffic. Always 0:
  // "neither edomain is offering transport, and each is being paid
  // directly by their respective customers."
  money settlement_due(edomain_id from, edomain_id to) const;

  std::vector<std::pair<edomain_id, edomain_id>> active_pairs() const;

 private:
  std::map<std::pair<edomain_id, edomain_id>, std::uint64_t> traffic_;
  std::uint64_t total_ = 0;
};

}  // namespace interedge::edomain
