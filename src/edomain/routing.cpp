#include "edomain/routing.h"

#include <algorithm>

namespace interedge::edomain {

std::optional<core::peer_id> sn_router::next_hop(core::edge_addr dest) const {
  const auto record = global_.find_host(dest);
  if (!record || record->service_nodes.empty()) return std::nullopt;

  // Destination host hangs off this SN: deliver to the host. (Host L3
  // identifiers and edge addresses coincide in this implementation; see
  // DESIGN.md.)
  const auto& sns = record->service_nodes;
  if (std::find(sns.begin(), sns.end(), self_) != sns.end()) {
    return dest;
  }

  if (record->edomain == core_.id()) {
    return sns.front();
  }

  if (direct_interdomain_) {
    // On-demand direct pipe to the destination's SN in the remote edomain.
    return sns.front();
  }

  const auto gateway = core_.gateway_to(record->edomain);
  if (!gateway) return std::nullopt;
  const auto [local_gateway, remote_gateway] = *gateway;
  if (local_gateway == self_) {
    // We are the gateway: cross the long-lived inter-edomain pipe.
    return remote_gateway;
  }
  return local_gateway;
}

}  // namespace interedge::edomain
