// Edomain observability plane (ISSUE 5).
//
// The paper's edomain core already hosts the SDN-like management plane
// (§6); this extends it with the observability half: every SN in the
// edomain periodically pushes (a) a merged snapshot of its metric
// registries and (b) the path spans it buffered since the last push
// (service_node::start_observability_push). The plane keeps the latest
// snapshot per SN, reassembles cross-hop path traces in an edomain-wide
// collector, and folds span durations into per-(service, node) rollups —
// p50/p99 hop latency and an error budget (the fraction of traced hops
// that shed, dropped or aged out).
//
// Exposition mirrors the SN's own: Prometheus text (rollups plus every
// node's counters, node-labelled), a JSON path-trace dump, and an
// ie_top-style text renderer for humans.
//
// ISSUE 7 adds the SLO health surface: enable_health() arms a sliding-
// window timeseries store over the plane's own rollups (end-to-end path
// latency, hop errors) plus every node snapshot, and add_slo() declares
// burn-rate targets evaluated on health_tick(). Alerts fan out through
// set_alert_hook() and the slo.state gauges ride export_prometheus().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "common/trace_collector.h"
#include "ilp/header.h"
#include "lookup/lookup_service.h"

namespace interedge::edomain {

class observability_plane {
 public:
  struct config {
    lookup::edomain_id domain = 0;
    // Bound on retained traces (and, transitively, correlated events) in
    // the edomain collector.
    std::size_t max_traces = 1024;
  };
  explicit observability_plane(config cfg);

  // One SN push: replaces `node`'s metric snapshot and ingests its spans
  // into the collector and the rollups. Runs on the pushing SN's control
  // thread; the plane serializes internally.
  void ingest(ilp::peer_id node, const metrics_registry& snapshot,
              std::span<const trace::path_span> spans);

  // The edomain-wide trace collector (tests and tooling read it directly).
  trace::trace_collector& traces() { return collector_; }

  std::uint64_t pushes() const { return pushes_; }
  std::size_t nodes() const { return node_metrics_.size(); }

  // Rollup readout for one (service, node) pair; zeros if never seen.
  struct hop_rollup {
    std::uint64_t spans = 0;
    std::uint64_t errors = 0;  // shed / drop / deadline-expired hops
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
  };
  hop_rollup rollup(ilp::service_id service, ilp::peer_id node) const;

  // Merged Prometheus exposition: rollup families (edomain.hop.*,
  // edomain.path.*, edomain.traces.*, slo.*) plus every node's latest
  // snapshot, all additively merged.
  std::string export_prometheus();
  // JSON path-trace dump (trace_collector::export_json).
  std::string export_json(std::size_t limit = 0);
  // Human-readable summary: rollup table + recent traces.
  std::string render_top(std::size_t limit = 8);

  // ---- SLO health surface (ISSUE 7) ----

  // Arms the sliding-window store + burn-rate monitor. Call once, before
  // add_slo / health_tick.
  void enable_health(timeseries_store::config series, slo::burn_windows windows = {});
  // Declares one burn-rate target (no-op before enable_health). Latency
  // targets usually key on the plane's own rollups, e.g. series
  // edomain.path.total_ns{service="pass_through"}.
  void add_slo(slo::slo_target target);
  // Alert fan-out for every SLO state transition, fired outside the plane
  // lock (a pager bridge, a test, an SN black-box trigger).
  void set_alert_hook(std::function<void(const slo::slo_alert&)> hook);
  // One health evaluation at `now`: folds the merged exposition view into
  // the window ring and evaluates every target. Returns the number of
  // state transitions. Call on the edomain core's control tick.
  std::size_t health_tick(time_point now);

  const timeseries_store* series() const { return ts_.get(); }
  const slo::slo_monitor* slos() const { return slo_.get(); }
  // Bounded structured-alert log (slo_monitor::export_json).
  std::string export_alerts_json() const;

 private:
  struct rollup_entry {
    histogram* hop_ns = nullptr;
    counter* spans = nullptr;
    counter* errors = nullptr;
  };
  rollup_entry& entry_for(ilp::service_id service, ilp::peer_id node);
  // Trace-loss accounting (collector evictions/duplicates, satellite of
  // ISSUE 7) mirrored into gauges so the exposition carries it.
  void refresh_trace_gauges_locked();
  void merged_view_locked(metrics_registry& out);

  config cfg_;
  mutable std::mutex mu_;
  std::uint64_t pushes_ = 0;
  std::map<ilp::peer_id, std::unique_ptr<metrics_registry>> node_metrics_;
  metrics_registry rollup_reg_;
  std::map<std::pair<ilp::service_id, ilp::peer_id>, rollup_entry> rollups_;
  trace::trace_collector collector_;
  std::unique_ptr<timeseries_store> ts_;
  std::unique_ptr<slo::slo_monitor> slo_;
  std::function<void(const slo::slo_alert&)> alert_hook_;
  std::vector<slo::slo_alert> alert_scratch_;
};

}  // namespace interedge::edomain
