#include "edomain/domain_core.h"

namespace interedge::edomain {

domain_core::domain_core(edomain_id id, lookup::lookup_service& global)
    : id_(id), global_(global) {}

observability_plane& domain_core::observability() {
  if (!observability_) {
    observability_ =
        std::make_unique<observability_plane>(observability_plane::config{.domain = id_});
  }
  return *observability_;
}

void domain_core::set_gateway(edomain_id remote, peer_id local_gateway, peer_id remote_gateway) {
  gateways_[remote] = {local_gateway, remote_gateway};
}

std::optional<std::pair<peer_id, peer_id>> domain_core::gateway_to(edomain_id remote) const {
  auto it = gateways_.find(remote);
  if (it == gateways_.end()) return std::nullopt;
  return it->second;
}

std::vector<edomain_id> domain_core::peered_edomains() const {
  std::vector<edomain_id> out;
  out.reserve(gateways_.size());
  for (const auto& [domain, gw] : gateways_) out.push_back(domain);
  return out;
}

void domain_core::group_join(const std::string& group, peer_id sn) {
  auto& by_sn = members_[group];
  const bool sn_was_empty = by_sn.find(sn) == by_sn.end() || by_sn[sn] == 0;
  const bool domain_was_empty = !has_local_members(group);
  ++by_sn[sn];
  if (sn_was_empty) notify_watchers(group, sn, /*added=*/true);
  if (domain_was_empty) {
    // "Whenever an SN receives a join message for a group for which it
    // does not currently have a member, it sends a notice to the edomain's
    // core ... If the edomain did not currently have a member, the core
    // forwards this message to the IANA lookup service."
    global_.add_member_edomain(group, id_);
  }
}

void domain_core::group_leave(const std::string& group, peer_id sn) {
  auto git = members_.find(group);
  if (git == members_.end()) return;
  auto sit = git->second.find(sn);
  if (sit == git->second.end() || sit->second == 0) return;
  if (--sit->second == 0) {
    git->second.erase(sit);
    notify_watchers(group, sn, /*added=*/false);
  }
  if (!has_local_members(group)) {
    global_.remove_member_edomain(group, id_);
  }
}

domain_core::sender_info domain_core::register_sender(const std::string& group, peer_id sn) {
  senders_[group].insert(sn);
  // Register with the lookup service, installing our watch for remote
  // membership changes (idempotent re-registration refreshes the view).
  const auto remote = global_.register_sender(
      group, id_, [this](const std::string& g, edomain_id domain, lookup::group_event event) {
        on_lookup_event(g, domain, event);
      });
  auto& cache = remote_members_[group];
  cache.clear();
  for (edomain_id d : remote) {
    if (d != id_) cache.insert(d);
  }
  sender_info info;
  info.local_member_sns = member_sns(group);
  info.remote_member_edomains.assign(cache.begin(), cache.end());
  return info;
}

void domain_core::deregister_sender(const std::string& group, peer_id sn) {
  auto it = senders_.find(group);
  if (it == senders_.end()) return;
  it->second.erase(sn);
  if (it->second.empty()) {
    senders_.erase(it);
    global_.deregister_sender(group, id_);
    remote_members_.erase(group);
  }
}

void domain_core::watch_members(const std::string& group, peer_id watcher, member_watch watch) {
  watches_[group][watcher] = std::move(watch);
}

void domain_core::unwatch_members(const std::string& group, peer_id watcher) {
  auto it = watches_.find(group);
  if (it != watches_.end()) it->second.erase(watcher);
}

std::vector<peer_id> domain_core::member_sns(const std::string& group) const {
  std::vector<peer_id> out;
  auto it = members_.find(group);
  if (it == members_.end()) return out;
  for (const auto& [sn, count] : it->second) {
    if (count > 0) out.push_back(sn);
  }
  return out;
}

std::vector<edomain_id> domain_core::remote_member_edomains(const std::string& group) const {
  auto it = remote_members_.find(group);
  if (it == remote_members_.end()) return {};
  return std::vector<edomain_id>(it->second.begin(), it->second.end());
}

bool domain_core::has_local_members(const std::string& group) const {
  auto it = members_.find(group);
  if (it == members_.end()) return false;
  for (const auto& [sn, count] : it->second) {
    if (count > 0) return true;
  }
  return false;
}

void domain_core::on_lookup_event(const std::string& group, edomain_id domain,
                                  lookup::group_event event) {
  if (domain == id_) return;  // our own membership change echoed back
  auto& cache = remote_members_[group];
  if (event == lookup::group_event::member_edomain_added) {
    cache.insert(domain);
  } else {
    cache.erase(domain);
  }
}

void domain_core::notify_watchers(const std::string& group, peer_id sn, bool added) {
  auto it = watches_.find(group);
  if (it == watches_.end()) return;
  for (const auto& [watcher, callback] : it->second) {
    if (callback) callback(group, sn, added);
  }
}

}  // namespace interedge::edomain
