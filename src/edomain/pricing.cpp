#include "edomain/pricing.h"

#include <algorithm>

namespace interedge::edomain {

void rate_card::set_rate(ilp::service_id service, const std::string& region,
                         std::vector<rate_tier> tiers) {
  rates_[service][region] = std::move(tiers);
}

std::optional<money> rate_card::price(ilp::service_id service, const std::string& region,
                                      std::uint64_t volume_gb) const {
  auto sit = rates_.find(service);
  if (sit == rates_.end()) return std::nullopt;
  auto rit = sit->second.find(region);
  if (rit == sit->second.end()) return std::nullopt;

  money total = 0;
  std::uint64_t charged = 0;
  for (const rate_tier& tier : rit->second) {
    const std::uint64_t tier_span =
        tier.up_to_gb == 0 ? volume_gb - charged
                           : std::min(volume_gb, tier.up_to_gb) - std::min(volume_gb, charged);
    total += static_cast<money>(tier_span) * tier.per_gb;
    charged += tier_span;
    if (charged >= volume_gb) break;
  }
  return total;
}

bool rate_card::offers(ilp::service_id service, const std::string& region) const {
  auto sit = rates_.find(service);
  return sit != rates_.end() && sit->second.count(region) > 0;
}

std::vector<std::string> rate_card::regions_for(ilp::service_id service) const {
  std::vector<std::string> out;
  auto sit = rates_.find(service);
  if (sit == rates_.end()) return out;
  for (const auto& [region, tiers] : sit->second) out.push_back(region);
  return out;
}

void marketplace::add(std::shared_ptr<iesp> provider) { providers_.push_back(std::move(provider)); }

std::shared_ptr<iesp> marketplace::find(const std::string& name) const {
  for (const auto& p : providers_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

std::vector<neutrality_violation> neutrality_auditor::audit(
    const iesp& provider, const std::vector<probe>& probes,
    const std::vector<std::string>& customers) const {
  std::vector<neutrality_violation> violations;
  for (const probe& p : probes) {
    std::optional<money> reference;
    std::string reference_customer;
    for (const std::string& customer : customers) {
      const auto quoted = provider.quote(customer, p.service, p.region, p.volume_gb);
      const money value = quoted.value_or(-1);  // "not offered" must also be uniform
      if (!reference) {
        reference = value;
        reference_customer = customer;
        continue;
      }
      if (value != *reference) {
        violations.push_back(neutrality_violation{p.service, p.region, p.volume_gb,
                                                  reference_customer, customer, *reference,
                                                  value});
      }
    }
  }
  return violations;
}

std::optional<broker::plan> broker::stitch(
    const std::string& customer, ilp::service_id service,
    const std::map<std::string, std::uint64_t>& volume_by_region) const {
  plan result;
  for (const auto& [region, volume] : volume_by_region) {
    std::shared_ptr<iesp> best;
    money best_price = 0;
    for (const auto& provider : market_.providers()) {
      const auto quoted = provider->quote(customer, service, region, volume);
      if (!quoted) continue;
      if (!best || *quoted < best_price) {
        best = provider;
        best_price = *quoted;
      }
    }
    if (!best) return std::nullopt;  // region uncoverable
    result.assignments.push_back(assignment{region, best, best_price});
    result.total += best_price;
  }
  return result;
}

}  // namespace interedge::edomain
