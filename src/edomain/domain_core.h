// The edomain "core" (paper §6): "we assume that edomains use SDN-like
// network management tools with a persistent and scalable store that we
// refer to as the core (which will be used in anycast, multicast, and
// pub/sub)".
//
// Per edomain it tracks: the SN registry, which local SNs have members of
// each group, the inter-edomain gateway map (§3.2: "each SN has a mapping
// between each edomain and an SN in their edomain that has a direct
// connection to that edomain"), and the remote edomains with group members
// (learned from the global lookup service, kept fresh via a watch).
//
// Substitution note: the core is an in-process object reachable by its
// edomain's SNs (the paper's SDN management network); its interactions with
// the lookup service follow the paper's join/register-sender protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "edomain/observability.h"
#include "ilp/header.h"
#include "lookup/lookup_service.h"

namespace interedge::edomain {

using ilp::peer_id;
using lookup::edomain_id;

class domain_core {
 public:
  domain_core(edomain_id id, lookup::lookup_service& global);

  edomain_id id() const { return id_; }
  lookup::lookup_service& global() { return global_; }
  const lookup::lookup_service& global() const { return global_; }

  // ---- observability plane (ISSUE 5) ----
  // Per-SN metric snapshots and path spans land here via each SN's
  // observability push (service_node::start_observability_push wired to
  // observability().ingest). Lazily constructed, so edomains that never
  // push pay nothing.
  observability_plane& observability();

  // ---- SN registry ----
  void add_sn(peer_id sn) { sns_.insert(sn); }
  const std::set<peer_id>& sns() const { return sns_; }

  // ---- inter-edomain gateways ----
  // Remote edomain -> (local gateway SN, remote gateway SN).
  void set_gateway(edomain_id remote, peer_id local_gateway, peer_id remote_gateway);
  std::optional<std::pair<peer_id, peer_id>> gateway_to(edomain_id remote) const;
  std::vector<edomain_id> peered_edomains() const;

  // ---- group membership (the §6 join/sender protocol) ----
  // An SN reports a local member joined the group. If this is the
  // edomain's first member, the core notifies the global lookup service.
  void group_join(const std::string& group, peer_id sn);
  // Member left; if the edomain's last member, the lookup service is told.
  void group_leave(const std::string& group, peer_id sn);

  struct sender_info {
    std::vector<peer_id> local_member_sns;
    std::vector<edomain_id> remote_member_edomains;
  };
  // An SN registers as sender for a group: the core registers with the
  // lookup service (installing the watch) and returns the current view.
  sender_info register_sender(const std::string& group, peer_id sn);
  void deregister_sender(const std::string& group, peer_id sn);

  // SNs put watches on the local member list (§6: "puts a watch on this
  // list so the core will send updates").
  using member_watch = std::function<void(const std::string& group, peer_id sn, bool added)>;
  void watch_members(const std::string& group, peer_id watcher, member_watch watch);
  void unwatch_members(const std::string& group, peer_id watcher);

  // Queries.
  std::vector<peer_id> member_sns(const std::string& group) const;
  std::vector<edomain_id> remote_member_edomains(const std::string& group) const;
  bool has_local_members(const std::string& group) const;

 private:
  void on_lookup_event(const std::string& group, edomain_id domain, lookup::group_event event);
  void notify_watchers(const std::string& group, peer_id sn, bool added);

  edomain_id id_;
  lookup::lookup_service& global_;
  std::set<peer_id> sns_;
  std::map<edomain_id, std::pair<peer_id, peer_id>> gateways_;
  // group -> SN -> local member count on that SN.
  std::map<std::string, std::map<peer_id, std::uint32_t>> members_;
  // group -> remote edomains with members (lookup-sourced cache).
  std::map<std::string, std::set<edomain_id>> remote_members_;
  std::map<std::string, std::set<peer_id>> senders_;
  std::map<std::string, std::map<peer_id, member_watch>> watches_;
  std::unique_ptr<observability_plane> observability_;
};

}  // namespace interedge::edomain
