// Per-SN router (paper §3.2 "Inter-edomain connectivity"):
//
// * destination attached to this SN            -> the host itself
// * destination in this edomain                -> its first-hop SN
// * destination in a remote edomain            -> the local gateway SN for
//   that edomain; the gateway itself forwards over its direct pipe to the
//   remote gateway ("SNs can route inter-edomain traffic through the
//   appropriate SN in their edomain")
// * with direct_interdomain enabled            -> the destination's SN
//   directly ("or, as an optimization, they can establish, on demand, a
//   connection directly to the destination's associated SN in another
//   edomain")
#pragma once

#include "core/router.h"
#include "edomain/domain_core.h"
#include "lookup/lookup_service.h"

namespace interedge::edomain {

class sn_router final : public core::router {
 public:
  sn_router(peer_id self, const domain_core& core, const lookup::lookup_service& global,
            bool direct_interdomain = false)
      : self_(self), core_(core), global_(global), direct_interdomain_(direct_interdomain) {}

  std::optional<core::peer_id> next_hop(core::edge_addr dest) const override;

 private:
  peer_id self_;
  const domain_core& core_;
  const lookup::lookup_service& global_;
  bool direct_interdomain_;
};

}  // namespace interedge::edomain
