#include "core/channel.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/serial.h"
#include "common/trace.h"

namespace interedge::core {
namespace {

void encode_decision(writer& w, const decision& d) {
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.varint(static_cast<std::uint64_t>(d.ttl.count()));
  w.varint(d.next_hops.size());
  for (peer_id hop : d.next_hops) w.u64(hop);
}

decision decode_decision(reader& r) {
  decision d;
  d.kind = static_cast<decision::verdict>(r.u8());
  d.ttl = nanoseconds(static_cast<std::int64_t>(r.varint()));
  const std::uint64_t n = r.varint();
  // n is attacker-influenced: validate against the bytes actually present
  // before any allocation (8 bytes per hop).
  if (n > r.remaining() / 8) throw serial_error("decision hop count exceeds input");
  d.next_hops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) d.next_hops.push_back(r.u64());
  return d;
}

void encode_key(writer& w, const cache_key& k) {
  w.u64(k.l3_src);
  w.u32(k.service);
  w.u64(k.connection);
}

cache_key decode_key(reader& r) {
  cache_key k;
  k.l3_src = r.u64();
  k.service = r.u32();
  k.connection = r.u64();
  return k;
}

}  // namespace

bytes slowpath_request::encode() const {
  writer w(40 + header_bytes.size() + payload.size());
  w.u64(token);
  w.u64(l3_src);
  w.u64(deadline_ns);
  w.blob(header_bytes);
  w.blob(payload);
  return w.take();
}

slowpath_request slowpath_request::decode(const_byte_span data) {
  reader r(data);
  slowpath_request req;
  req.token = r.u64();
  req.l3_src = r.u64();
  req.deadline_ns = r.u64();
  const const_byte_span h = r.blob();
  req.header_bytes.assign(h.begin(), h.end());
  const const_byte_span p = r.blob();
  req.payload.assign(p.begin(), p.end());
  return req;
}

bytes slowpath_response::encode() const {
  writer w(64);
  w.u64(token);
  w.u16(annotations);
  encode_decision(w, verdict);
  w.varint(cache_inserts.size());
  for (const auto& [key, value] : cache_inserts) {
    encode_key(w, key);
    encode_decision(w, value);
  }
  w.varint(sends.size());
  for (const outbound& o : sends) {
    w.u64(o.to);
    w.blob(o.header.encode());
    w.blob(o.payload);
  }
  return w.take();
}

slowpath_response slowpath_response::decode(const_byte_span data) {
  reader r(data);
  slowpath_response resp;
  resp.token = r.u64();
  resp.annotations = r.u16();
  resp.verdict = decode_decision(r);
  const std::uint64_t n_inserts = r.varint();
  for (std::uint64_t i = 0; i < n_inserts; ++i) {
    cache_key key = decode_key(r);
    decision value = decode_decision(r);
    resp.cache_inserts.emplace_back(key, std::move(value));
  }
  const std::uint64_t n_sends = r.varint();
  for (std::uint64_t i = 0; i < n_sends; ++i) {
    outbound o;
    o.to = r.u64();
    o.header = ilp::ilp_header::decode(r.blob());
    const const_byte_span p = r.blob();
    o.payload.assign(p.begin(), p.end());
    resp.sends.push_back(std::move(o));
  }
  return resp;
}

// ---- ring_channel ----------------------------------------------------

ring_channel::ring_channel(slowpath_handler handler, std::size_t depth)
    : requests_(depth), responses_(depth) {
  worker_ = std::thread([this, h = std::move(handler)]() mutable { worker_loop(std::move(h)); });
}

ring_channel::~ring_channel() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(doorbell_mu_);
    request_doorbell_.notify_one();
  }
  worker_.join();
}

namespace {
// Busy-wait hint: cheap spin before falling back to yielding, so the ring
// stays on the fast path when the producer is active but does not burn a
// core forever when idle.
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#else
  asm volatile("" ::: "memory");
#endif
}
}  // namespace

void ring_channel::worker_loop(slowpath_handler handler) {
  std::uint32_t idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    auto req = requests_.try_pop();
    if (!req) {
      if (++idle_spins < 1024) {
        spin_pause();
        continue;
      }
      // Park until the producer rings the doorbell.
      std::unique_lock lock(doorbell_mu_);
      worker_parked_.store(true, std::memory_order_release);
      request_doorbell_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return !requests_.empty() || stop_.load(std::memory_order_acquire);
      });
      worker_parked_.store(false, std::memory_order_release);
      idle_spins = 0;
      continue;
    }
    idle_spins = 0;
    slowpath_response resp = handler(std::move(*req));
    while (!responses_.try_push(std::move(resp))) {
      if (stop_.load(std::memory_order_acquire)) return;
      spin_pause();
    }
    if (consumer_parked_.load(std::memory_order_acquire)) {
      std::lock_guard lock(doorbell_mu_);
      response_doorbell_.notify_one();
    }
  }
}

bool ring_channel::submit(slowpath_request request) {
  if (!requests_.try_push(std::move(request))) return false;
  if (worker_parked_.load(std::memory_order_acquire)) {
    std::lock_guard lock(doorbell_mu_);
    request_doorbell_.notify_one();
  }
  return true;
}

std::optional<slowpath_response> ring_channel::poll() { return responses_.try_pop(); }

std::optional<slowpath_response> ring_channel::poll_wait() {
  for (std::uint32_t spins = 0; spins < 1024; ++spins) {
    if (auto r = responses_.try_pop()) return r;
    spin_pause();
  }
  std::unique_lock lock(doorbell_mu_);
  consumer_parked_.store(true, std::memory_order_release);
  response_doorbell_.wait_for(lock, std::chrono::milliseconds(1),
                              [this] { return !responses_.empty(); });
  consumer_parked_.store(false, std::memory_order_release);
  return responses_.try_pop();
}

// ---- slowpath_hub ----------------------------------------------------

slowpath_hub::slowpath_hub(slowpath_handler handler, std::size_t shards, std::size_t depth,
                           wake_fn wake)
    : handler_(std::move(handler)), wake_(std::move(wake)) {
  endpoints_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    endpoints_.push_back(std::make_unique<endpoint_impl>(depth));
  }
}

std::size_t slowpath_hub::pump() {
  std::size_t served = 0;
  std::vector<bool> touched(endpoints_.size(), false);
  for (std::size_t src = 0; src < endpoints_.size(); ++src) {
    while (auto req = endpoints_[src]->requests.try_pop()) {
      slowpath_response resp;
      if (deadline_clock_ && req->deadline_ns != 0 &&
          static_cast<std::uint64_t>(
              deadline_clock_->now().time_since_epoch().count()) > req->deadline_ns) {
        // Dead on arrival: the request aged out in the ring. Synthesize a
        // drop so the shard's in-flight window drains without stale work.
        resp.token = req->token;
        resp.verdict = decision::drop_packet();
        resp.annotations |= trace::kAnnoDeadlineExpired;
        ++expired_;
        if (expired_counter_) expired_counter_->add();
      } else {
        resp = handler_(std::move(*req));
      }
      // The terminus seeds its tokens with token_seed(shard), so the
      // response routes itself; fall back to the requesting shard for
      // tokenless (synthetic) traffic.
      std::size_t dst = src;
      if (resp.token >= (std::uint64_t{1} << kShardTokenShift)) {
        const std::size_t by_token = shard_of_token(resp.token);
        if (by_token < endpoints_.size()) dst = by_token;
      }
      while (!endpoints_[dst]->responses.try_push(std::move(resp))) {
        // Ring momentarily full: the owning worker drains responses every
        // loop iteration, so ring its doorbell and wait it out.
        if (wake_) wake_(dst);
        spin_pause();
      }
      touched[dst] = true;
      ++served;
    }
  }
  if (wake_) {
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (touched[i]) wake_(i);
    }
  }
  return served;
}

bool slowpath_hub::idle() const {
  for (const auto& ep : endpoints_) {
    if (!ep->requests.empty() || !ep->responses.empty()) return false;
  }
  return true;
}

// ---- ipc_channel -----------------------------------------------------

namespace {

// Length-prefixed frame write as a single syscall (short writes handled).
void write_frame(int fd, const bytes& frame) {
  bytes buffer(4 + frame.size());
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) buffer[i] = static_cast<std::uint8_t>(n >> (8 * i));
  std::memcpy(buffer.data() + 4, frame.data(), frame.size());

  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t w = ::write(fd, buffer.data() + done, buffer.size() - done);
    if (w < 0) {
      // The terminus end is non-blocking: spin briefly when the socket
      // buffer is full (the worker is draining it).
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw std::runtime_error(std::string("ipc write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

// Extracts one complete frame from the front of `buffer`, if present.
std::optional<bytes> take_frame(bytes& buffer) {
  if (buffer.size() < 4) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(buffer[i]) << (8 * i);
  if (buffer.size() < 4 + n) return std::nullopt;
  bytes frame(buffer.begin() + 4, buffer.begin() + 4 + n);
  buffer.erase(buffer.begin(), buffer.begin() + 4 + n);
  return frame;
}

// Blocking buffered frame read; nullopt on EOF.
std::optional<bytes> read_frame_buffered(int fd, bytes& buffer) {
  for (;;) {
    if (auto frame = take_frame(buffer)) return frame;
    std::uint8_t chunk[16384];
    const ssize_t r = ::read(fd, chunk, sizeof(chunk));
    if (r == 0) return std::nullopt;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    buffer.insert(buffer.end(), chunk, chunk + r);
  }
}

}  // namespace

ipc_channel::ipc_channel(slowpath_handler handler) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("socketpair failed");
  }
  terminus_fd_ = fds[0];
  service_fd_ = fds[1];
  // The terminus polls; its end is non-blocking.
  const int fl = ::fcntl(terminus_fd_, F_GETFL, 0);
  ::fcntl(terminus_fd_, F_SETFL, fl | O_NONBLOCK);
  worker_ = std::thread([this, h = std::move(handler)]() mutable { worker_loop(std::move(h)); });
}

ipc_channel::~ipc_channel() {
  ::shutdown(terminus_fd_, SHUT_WR);  // worker sees EOF and exits
  worker_.join();
  ::close(terminus_fd_);
  ::close(service_fd_);
}

void ipc_channel::worker_loop(slowpath_handler handler) {
  bytes buffer;
  for (;;) {
    auto frame = read_frame_buffered(service_fd_, buffer);
    if (!frame) return;  // EOF: terminus shut down
    slowpath_response resp = handler(slowpath_request::decode(*frame));
    write_frame(service_fd_, resp.encode());
  }
}

bool ipc_channel::submit(slowpath_request request) {
  write_frame(terminus_fd_, request.encode());
  return true;
}

std::optional<slowpath_response> ipc_channel::poll() {
  // Drain whatever the worker has written (non-blocking), then hand back
  // one buffered frame at a time.
  if (auto frame = take_frame(rx_buffer_)) return slowpath_response::decode(*frame);
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t r = ::read(terminus_fd_, chunk, sizeof(chunk));
    if (r > 0) {
      rx_buffer_.insert(rx_buffer_.end(), chunk, chunk + r);
      if (static_cast<std::size_t>(r) < sizeof(chunk)) break;
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // EAGAIN (nothing available) or EOF
  }
  if (auto frame = take_frame(rx_buffer_)) return slowpath_response::decode(*frame);
  return std::nullopt;
}

}  // namespace interedge::core
