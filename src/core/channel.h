// Slow-path channels: how the pipe-terminus reaches service modules.
//
// The paper's prototype "used IPC to send and receive data from services
// which obviously adds overhead, but this approach makes it trivial to
// prototype services", and names shared-memory rings as the obvious
// alternative. Table 1's no-service row is the datapath with no channel
// crossing at all. We implement all three so the benchmarks can measure
// exactly that design space:
//
//   inline_channel — direct function call (no crossing; used by the
//                    single-threaded simulation and the no-upcall bound)
//   ring_channel   — SPSC shared-memory rings to a dedicated service
//                    thread (no syscalls on the hot path)
//   ipc_channel    — a real socketpair(2) to a service thread, one
//                    write+read syscall pair per packet (the prototype's
//                    design measured in Table 1)
//
// All channels carry the same serialized request/response, so switching
// transports changes cost, never semantics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/ring.h"
#include "core/service_module.h"

namespace interedge::core {

// What the terminus hands the service layer. Per §4 the terminus forwards
// "the packet's L3 header and decrypted ILP header"; the payload rides
// along for services (e.g. caching) that need it.
struct slowpath_request {
  std::uint64_t token = 0;  // correlates the async response
  peer_id l3_src = 0;
  // Absolute expiry (clock ns since epoch); 0 = no deadline. A request
  // still queued past its deadline is expired by whoever dequeues it
  // (slowpath_hub::pump or the SN handler) instead of doing stale work.
  std::uint64_t deadline_ns = 0;
  bytes header_bytes;  // encoded ILP header
  bytes payload;

  bytes encode() const;
  static slowpath_request decode(const_byte_span data);
};

struct slowpath_response {
  std::uint64_t token = 0;
  decision verdict;
  // trace::kAnno* bits describing how the verdict came about (e.g.
  // kAnnoDeadlineExpired for a hub-synthesized drop); the terminus folds
  // them into the packet's path span.
  std::uint16_t annotations = 0;
  std::vector<std::pair<cache_key, decision>> cache_inserts;
  std::vector<outbound> sends;

  bytes encode() const;
  static slowpath_response decode(const_byte_span data);
};

using slowpath_handler = std::function<slowpath_response(slowpath_request)>;

class slowpath_channel {
 public:
  virtual ~slowpath_channel() = default;
  // Submits a request; false if the channel is momentarily full (caller
  // retries — models bounded outstanding-packet windows).
  virtual bool submit(slowpath_request request) = 0;
  // Retrieves one completed response, if any.
  virtual std::optional<slowpath_response> poll() = 0;
};

// Direct call in the caller's thread.
class inline_channel final : public slowpath_channel {
 public:
  explicit inline_channel(slowpath_handler handler) : handler_(std::move(handler)) {}
  bool submit(slowpath_request request) override {
    done_.push_back(handler_(std::move(request)));
    return true;
  }
  std::optional<slowpath_response> poll() override {
    if (done_.empty()) return std::nullopt;
    slowpath_response r = std::move(done_.front());
    done_.pop_front();
    return r;
  }

 private:
  slowpath_handler handler_;
  std::deque<slowpath_response> done_;
};

// SPSC rings to a dedicated service thread. The data path is lock-free;
// when a side runs dry it spins briefly and then parks on a condition
// variable (the software analogue of an eventfd doorbell), so the channel
// is fast on dedicated cores and correct on shared ones.
class ring_channel final : public slowpath_channel {
 public:
  ring_channel(slowpath_handler handler, std::size_t depth = 256);
  ~ring_channel() override;
  bool submit(slowpath_request request) override;
  std::optional<slowpath_response> poll() override;
  // Blocking variant of poll() for callers with nothing else to do.
  std::optional<slowpath_response> poll_wait();

 private:
  void worker_loop(slowpath_handler handler);
  spsc_ring<slowpath_request> requests_;
  spsc_ring<slowpath_response> responses_;
  std::atomic<bool> stop_{false};
  std::mutex doorbell_mu_;
  std::condition_variable request_doorbell_;   // producer -> worker
  std::condition_variable response_doorbell_;  // worker -> producer
  std::atomic<bool> worker_parked_{false};
  std::atomic<bool> consumer_parked_{false};
  std::thread worker_;
};

// Slow-path fan-in for the sharded datapath: N worker-shard termini on
// one side, the control thread that owns the execution environment on the
// other. Each shard gets an SPSC endpoint (requests toward control,
// responses back) implementing slowpath_channel, so a per-shard
// pipe_terminus uses it unchanged. pump() runs on the control thread —
// service modules, timers and slow-path dispatch therefore all share one
// thread, exactly as in the single-threaded SN — and routes every
// response back to the shard encoded in its token (each terminus is
// seeded with token_seed(shard), so tokens carry their owner).
class slowpath_hub {
 public:
  // Shard id lives in the token's top bits; 2^48 slow-path packets per
  // shard before wrap, which is out of reach for one process lifetime.
  static constexpr int kShardTokenShift = 48;
  static std::uint64_t token_seed(std::size_t shard) {
    return static_cast<std::uint64_t>(shard + 1) << kShardTokenShift;
  }
  static std::size_t shard_of_token(std::uint64_t token) {
    return static_cast<std::size_t>(token >> kShardTokenShift) - 1;
  }

  // `wake` (optional) is invoked after responses are routed to a shard —
  // and while spinning on a momentarily full response ring — so a parked
  // worker gets its doorbell rung.
  using wake_fn = std::function<void(std::size_t shard)>;
  slowpath_hub(slowpath_handler handler, std::size_t shards, std::size_t depth = 1024,
               wake_fn wake = nullptr);

  // The channel a shard's pipe_terminus talks to. Worker-thread side.
  slowpath_channel& endpoint(std::size_t shard) { return *endpoints_[shard]; }

  // Control thread: dispatches every pending request and routes responses.
  // Returns the number of requests served.
  std::size_t pump();

  // Arms deadline enforcement: a request dequeued after its deadline_ns
  // is answered with a synthesized drop (the shard's in-flight accounting
  // still drains) instead of invoking the handler. Expiry can only happen
  // while a request sits in the ring, which is exactly the overload case
  // deadlines exist for.
  void set_deadline_clock(const clock* clk) { deadline_clock_ = clk; }
  // Optional counter bumped per expired request (sn.slowpath.expired).
  void set_expired_counter(counter* c) { expired_counter_ = c; }
  std::uint64_t expired() const { return expired_; }

  // True when no request or response is in flight in any ring.
  bool idle() const;

  std::size_t shards() const { return endpoints_.size(); }

 private:
  struct endpoint_impl final : slowpath_channel {
    explicit endpoint_impl(std::size_t depth) : requests(depth), responses(depth) {}
    bool submit(slowpath_request request) override {
      return requests.try_push(std::move(request));
    }
    std::optional<slowpath_response> poll() override { return responses.try_pop(); }
    spsc_ring<slowpath_request> requests;
    spsc_ring<slowpath_response> responses;
  };

  slowpath_handler handler_;
  wake_fn wake_;
  const clock* deadline_clock_ = nullptr;
  counter* expired_counter_ = nullptr;
  std::uint64_t expired_ = 0;
  std::vector<std::unique_ptr<endpoint_impl>> endpoints_;
};

// socketpair(2) + service thread: one syscall per direction per packet,
// with full serialize/deserialize — the paper's prototype transport.
class ipc_channel final : public slowpath_channel {
 public:
  explicit ipc_channel(slowpath_handler handler);
  ~ipc_channel() override;
  bool submit(slowpath_request request) override;
  std::optional<slowpath_response> poll() override;

 private:
  void worker_loop(slowpath_handler handler);
  int terminus_fd_ = -1;
  int service_fd_ = -1;
  bytes rx_buffer_;
  std::thread worker_;
};

}  // namespace interedge::core
