// In-SN packet representation and the match-action vocabulary shared by the
// pipe-terminus, the decision cache, and service modules.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "ilp/header.h"
#include "ilp/pipe_manager.h"

namespace interedge::core {

using ilp::edge_addr;
using ilp::peer_id;

// A packet as seen inside an SN: the outer (L3) source it arrived from,
// the decrypted ILP header, and the (endpoint-encrypted, opaque) payload.
struct packet {
  peer_id l3_src = 0;
  ilp::ilp_header header;
  bytes payload;
};

// Zero-copy variant: the payload is a view into the ingress buffer (a
// pool slab) rather than an owned copy. Valid only while that buffer is
// live and unmoved — the fast path processes a batch of these and is done
// with them before the buffers recycle; anything that must outlive the
// batch (the slow-path pending table) copies into an owned `packet`.
struct packet_view {
  peer_id l3_src = 0;
  ilp::ilp_header header;
  const_byte_span payload;
};

// The decision-cache key (§4: "the pipe-terminus uses the packet's L3
// header, service ID, and connection ID to query the decision cache").
struct cache_key {
  peer_id l3_src = 0;
  ilp::service_id service = 0;
  ilp::connection_id connection = 0;

  bool operator==(const cache_key&) const = default;
};

// A match-action decision. "The decision can specify multiple forwarding
// destinations, in which case a copy of the packet is forwarded to each."
struct decision {
  enum class verdict : std::uint8_t {
    forward = 0,        // send a copy to each next hop
    deliver_local = 1,  // packet terminates at this SN (service consumed it)
    drop = 2,
  };
  verdict kind = verdict::drop;
  std::vector<peer_id> next_hops;
  // Optional lifetime: 0 = live until LRU eviction / invalidation; > 0 =
  // the cache expires the entry `ttl` after insertion (requires the cache
  // to have a clock — see decision_cache::set_clock). Shed/default
  // verdicts and verdicts for degraded services set this so they age out.
  nanoseconds ttl{0};

  static decision forward_to(peer_id hop) { return {verdict::forward, {hop}}; }
  static decision forward_all(std::vector<peer_id> hops) {
    return {verdict::forward, std::move(hops)};
  }
  static decision deliver() { return {verdict::deliver_local, {}}; }
  static decision drop_packet() { return {verdict::drop, {}}; }

  bool operator==(const decision&) const = default;
};

}  // namespace interedge::core
