#include "core/offpath.h"

#include "common/serial.h"

namespace interedge::core {

void kv_store::put(const std::string& key, bytes value) {
  ++writes_;
  data_[key] = std::move(value);
}

std::optional<bytes> kv_store::get(const std::string& key) const {
  ++reads_;
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool kv_store::erase(const std::string& key) {
  ++writes_;
  return data_.erase(key) > 0;
}

bool kv_store::contains(const std::string& key) const { return data_.count(key) > 0; }

std::vector<std::string> kv_store::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

bytes kv_store::snapshot() const {
  writer w;
  w.varint(data_.size());
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.blob(value);
  }
  return w.take();
}

void kv_store::restore(const_byte_span snapshot) {
  reader r(snapshot);
  std::map<std::string, bytes> restored;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    const const_byte_span value = r.blob();
    restored.emplace(std::move(key), bytes(value.begin(), value.end()));
  }
  data_ = std::move(restored);
}

}  // namespace interedge::core
