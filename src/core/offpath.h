// Off-path persistent storage (paper §3.1: "off-path functions, such as
// access to persistent storage, that are substantially slower than packet
// forwarding").
//
// In-memory key-value store with an injectable access-latency model; the
// latency is charged to the simulated clock by callers that care (service
// modules run single-threaded inside the simulation).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace interedge::core {

class kv_store {
 public:
  kv_store() = default;

  void put(const std::string& key, bytes value);
  std::optional<bytes> get(const std::string& key) const;
  bool erase(const std::string& key);
  bool contains(const std::string& key) const;
  std::size_t size() const { return data_.size(); }

  // Keys with the given prefix, in lexicographic order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // Serializes the full store for SN checkpointing.
  bytes snapshot() const;
  void restore(const_byte_span snapshot);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  std::map<std::string, bytes> data_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace interedge::core
