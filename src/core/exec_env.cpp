#include "core/exec_env.h"

#include "common/logging.h"
#include "common/serial.h"
#include "common/trace.h"

namespace interedge::core {

// Per-module view of the node: namespaced storage and config, shared
// clock/cache/metrics.
class exec_env::context_impl final : public service_context {
 public:
  context_impl(node_services& node, ilp::service_id service) : node_(node), service_(service) {}

  peer_id node_id() const override { return node_.node_id(); }
  std::uint16_t edomain() const override { return node_.edomain(); }
  const clock& node_clock() const override { return node_.node_clock(); }
  kv_store& storage() override { return storage_; }

  void send(peer_id to, const ilp::ilp_header& header, bytes payload) override {
    node_.send(to, header, std::move(payload));
  }

  void schedule(nanoseconds delay, std::function<void()> fn) override {
    node_.schedule(delay, std::move(fn));
  }

  std::string config(const std::string& key, const std::string& fallback) const override {
    auto it = config_.find(key);
    return it == config_.end() ? fallback : it->second;
  }

  void invalidate_connection(ilp::service_id service, ilp::connection_id conn) override {
    node_.invalidate_connection(service, conn);
  }

  void invalidate_service(ilp::service_id service) override { node_.invalidate_service(service); }

  std::uint64_t cache_hit_count(const cache_key& key) const override {
    return node_.cache().hit_count(key);
  }

  std::optional<peer_id> next_hop(edge_addr dest) const override { return node_.next_hop(dest); }

  metrics_registry& metrics() override { return node_.metrics(); }

  void set_config(const std::string& key, const std::string& value) { config_[key] = value; }
  ilp::service_id service() const { return service_; }
  bytes storage_snapshot() const { return storage_.snapshot(); }
  void storage_restore(const_byte_span s) { storage_.restore(s); }

 private:
  node_services& node_;
  ilp::service_id service_;
  kv_store storage_;
  std::map<std::string, std::string> config_;
};

exec_env::exec_env(node_services& node) : node_(node) {
  unknown_drop_counter_ = &node_.metrics().get_counter("sn.drop.unknown_service");
  retry_counter_ = &node_.metrics().get_counter("sn.slowpath.retries");
  retry_exhausted_counter_ = &node_.metrics().get_counter("sn.slowpath.retry_exhausted");
  module_error_counter_ = &node_.metrics().get_counter("sn.slowpath.module_errors");
}
exec_env::~exec_env() = default;

void exec_env::deploy(std::unique_ptr<service_module> module) {
  const ilp::service_id id = module->id();
  deployed_module dm;
  dm.context = std::make_unique<context_impl>(node_, id);
  dm.module = std::move(module);
  dm.dispatch_counter = &node_.metrics().get_counter(
      "sn.slowpath.dispatch", {{"service", std::string(dm.module->name())}});
  dm.module->start(*dm.context);
  modules_[id] = std::move(dm);
}

bool exec_env::has_module(ilp::service_id service) const { return modules_.count(service) > 0; }

service_module* exec_env::module_for(ilp::service_id service) {
  auto it = modules_.find(service);
  return it == modules_.end() ? nullptr : it->second.module.get();
}

std::vector<ilp::service_id> exec_env::deployed() const {
  std::vector<ilp::service_id> out;
  out.reserve(modules_.size());
  for (const auto& [id, dm] : modules_) out.push_back(id);
  return out;
}

void exec_env::set_interceptor(std::unique_ptr<service_module> interceptor) {
  interceptor_.context = std::make_unique<context_impl>(node_, interceptor->id());
  interceptor_.module = std::move(interceptor);
  interceptor_.module->start(*interceptor_.context);
}

// Invokes a module with failure containment: transient_error buys the
// packet up to transient_retries_ immediate re-attempts (the slow-path
// handler is synchronous, so the "backoff" is a capped attempt budget);
// anything else a module throws is swallowed into a drop — a buggy or
// degraded module costs its own packets, never the SN.
module_result exec_env::invoke(deployed_module& dm, const packet& pkt) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return dm.module->on_packet(*dm.context, pkt);
    } catch (const transient_error& e) {
      if (attempt >= transient_retries_) {
        ++retries_exhausted_;
        retry_exhausted_counter_->add();
        IE_LOG(warn) << "exec_env" << kv("drop", "retry-exhausted")
                     << kv("service", pkt.header.service) << kv("node", node_.node_id())
                     << kv("what", e.what());
        return module_result::drop();
      }
      ++retries_attempted_;
      retry_counter_->add();
    } catch (const std::exception& e) {
      ++module_errors_;
      module_error_counter_->add();
      IE_LOG(warn) << "exec_env" << kv("drop", "module-error")
                   << kv("service", pkt.header.service) << kv("node", node_.node_id())
                   << kv("what", e.what());
      return module_result::drop();
    }
  }
}

module_result exec_env::dispatch(const packet& pkt) {
  ++dispatches_;
  if (interceptor_.module) {
    module_result imposed = invoke(interceptor_, pkt);
    if (imposed.verdict.kind != decision::verdict::deliver_local) {
      ++intercepted_;
      return imposed;  // blocked, or forwarded past this SN's services
    }
    // deliver_local = "continue": fall through to the addressed module.
    // (A purely observing interceptor returns deliver() with no sends;
    // side effects it produced via ctx.send() have already happened.)
  }
  auto it = modules_.find(pkt.header.service);
  if (it == modules_.end()) {
    ++unknown_drops_;
    unknown_drop_counter_->add();
    IE_LOG(debug) << "exec_env" << kv("drop", "unknown-service")
                  << kv("service", pkt.header.service) << kv("node", node_.node_id());
    return module_result::drop();
  }
  it->second.dispatch_counter->add();
  trace::span service_span(trace::stage::service);
  module_result result = invoke(it->second, pkt);
  if (interceptor_.module && interceptor_.module->content_dependent()) {
    // A payload-inspecting interceptor must see every packet: no module may
    // install a fast-path entry that would route around it.
    result.cache_inserts.clear();
  }
  return result;
}

void exec_env::set_config(ilp::service_id service, const std::string& key,
                          const std::string& value) {
  auto it = modules_.find(service);
  if (it == modules_.end()) return;
  it->second.context->set_config(key, value);
}

bytes exec_env::checkpoint() {
  writer w;
  w.varint(modules_.size());
  for (auto& [id, dm] : modules_) {
    w.u32(id);
    w.blob(dm.module->checkpoint(*dm.context));
    w.blob(dm.context->storage_snapshot());
  }
  return w.take();
}

void exec_env::restore(const_byte_span snapshot) {
  reader r(snapshot);
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const ilp::service_id id = r.u32();
    const const_byte_span module_state = r.blob();
    const const_byte_span storage_state = r.blob();
    auto it = modules_.find(id);
    if (it == modules_.end()) continue;  // module not deployed here
    it->second.context->storage_restore(storage_state);
    it->second.module->restore(*it->second.context, module_state);
  }
}

}  // namespace interedge::core
