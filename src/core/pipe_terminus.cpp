#include "core/pipe_terminus.h"

namespace interedge::core {

pipe_terminus::pipe_terminus(decision_cache& cache, slowpath_channel& channel, forward_fn forward)
    : cache_(cache), channel_(channel), forward_(std::move(forward)) {}

void pipe_terminus::handle(packet pkt) {
  ++stats_.received;

  // Control-plane packets always reach the service module: they mutate
  // service state and must not be short-circuited by a stale decision.
  const bool is_control = (pkt.header.flags & ilp::kFlagControl) != 0;
  if (!is_control) {
    const cache_key key{pkt.l3_src, pkt.header.service, pkt.header.connection};
    if (auto d = cache_.lookup(key)) {
      ++stats_.fast_path;
      apply(*d, pkt.header, pkt.payload);
      return;
    }
  }

  ++stats_.slow_path;
  slowpath_request req;
  req.token = next_token_++;
  req.l3_src = pkt.l3_src;
  req.header_bytes = pkt.header.encode();
  req.payload = pkt.payload;  // services like caching need it; §4 fidelity note in DESIGN.md

  const std::uint64_t token = req.token;
  while (!channel_.submit(req)) {
    // Bounded channel full: drain completions to make room.
    ++stats_.backpressure;
    pump();
  }
  in_flight_.emplace(token, std::move(pkt));
  pump();
}

void pipe_terminus::handle_batch(std::span<packet> pkts) {
  // Same-key run memo: bursts from one flow pay for one cache lookup.
  bool have_memo = false;
  cache_key memo_key{};
  decision memo_decision;
  bool submitted = false;

  for (packet& pkt : pkts) {
    ++stats_.received;
    const bool is_control = (pkt.header.flags & ilp::kFlagControl) != 0;
    if (!is_control) {
      const cache_key key{pkt.l3_src, pkt.header.service, pkt.header.connection};
      if (have_memo && key == memo_key) {
        ++stats_.fast_path;
        apply(memo_decision, pkt.header, pkt.payload);
        continue;
      }
      if (auto d = cache_.lookup(key)) {
        ++stats_.fast_path;
        apply(*d, pkt.header, pkt.payload);
        memo_key = key;
        memo_decision = std::move(*d);
        have_memo = true;
        continue;
      }
    }

    ++stats_.slow_path;
    slowpath_request req;
    req.token = next_token_++;
    req.l3_src = pkt.l3_src;
    req.header_bytes = pkt.header.encode();
    req.payload = pkt.payload;

    const std::uint64_t token = req.token;
    while (!channel_.submit(req)) {
      ++stats_.backpressure;
      pump();
    }
    in_flight_.emplace(token, std::move(pkt));
    submitted = true;
  }

  // Drain the slow-path channel once per batch, not once per packet.
  if (submitted) pump();
}

std::size_t pipe_terminus::pump() {
  std::size_t applied = 0;
  while (auto resp = channel_.poll()) {
    complete(std::move(*resp));
    ++applied;
  }
  return applied;
}

void pipe_terminus::complete(slowpath_response resp) {
  auto it = in_flight_.find(resp.token);
  if (it == in_flight_.end()) return;  // spurious / duplicate token
  packet pkt = std::move(it->second);
  in_flight_.erase(it);

  for (auto& [key, value] : resp.cache_inserts) {
    cache_.insert(key, std::move(value));
  }
  for (const outbound& o : resp.sends) {
    forward_(o.to, o.header, o.payload);
    ++stats_.forwarded;
  }
  apply(resp.verdict, pkt.header, pkt.payload);
}

void pipe_terminus::apply(const decision& d, const ilp::ilp_header& header, const bytes& payload) {
  switch (d.kind) {
    case decision::verdict::forward:
      for (peer_id hop : d.next_hops) {
        forward_(hop, header, payload);
        ++stats_.forwarded;
      }
      break;
    case decision::verdict::deliver_local:
      ++stats_.delivered;
      break;
    case decision::verdict::drop:
      ++stats_.dropped;
      break;
  }
}

}  // namespace interedge::core
