#include "core/pipe_terminus.h"

#include "common/logging.h"
#include "common/prof.h"

namespace interedge::core {

namespace {

char verdict_char(decision::verdict v) {
  switch (v) {
    case decision::verdict::forward: return trace::kVerdictForward;
    case decision::verdict::deliver_local: return trace::kVerdictDeliver;
    case decision::verdict::drop: return trace::kVerdictDrop;
  }
  return trace::kVerdictNone;
}

// The slow-path pending table outlives the batch that filled it, so a
// packet_view detouring there is copied into an owned packet; an owned
// packet just moves.
packet to_owned(packet&& p) { return std::move(p); }
packet to_owned(packet_view&& p) {
  return packet{p.l3_src, std::move(p.header), bytes(p.payload.begin(), p.payload.end())};
}

}  // namespace

pipe_terminus::pipe_terminus(decision_cache& cache, slowpath_channel& channel, forward_fn forward)
    : cache_(cache), channel_(channel), forward_(std::move(forward)) {}

void pipe_terminus::enable_telemetry(metrics_registry& reg, trace::tracer* tracer) {
  reg_ = &reg;
  tracer_ = tracer;
  m_fast_ = &reg.get_counter("sn.fastpath.pkts");
  m_slow_ = &reg.get_counter("sn.slowpath.pkts");
  m_forwarded_ = &reg.get_counter("sn.tx.forwarded");
  m_delivered_ = &reg.get_counter("sn.rx.delivered");
  m_dropped_ = &reg.get_counter("sn.drop.pkts");
  m_backpressure_ = &reg.get_counter("sn.slowpath.backpressure");
  m_shed_ = &reg.get_counter("sn.slowpath.shed");
  m_inflight_ = &reg.get_gauge("sn.slowpath.in_flight");
}

counter& pipe_terminus::service_rx_counter(ilp::service_id service) {
  const std::size_t slot = service < kServiceSlots ? service : 0;
  counter*& c = rx_by_service_[slot];
  if (c == nullptr) {
    c = &reg_->get_counter("sn.rx.pkts", {{"service", ilp::svc::name(service)}});
  }
  return *c;
}

void pipe_terminus::flush_telemetry() {
  if (reg_ == nullptr) return;
  // Watermark deltas rather than a caller-captured `before`: verdicts a
  // bare pump() applies between handle() calls land above the watermark
  // and get picked up by whichever flush runs next.
  m_fast_->add(stats_.fast_path - flushed_.fast_path);
  m_slow_->add(stats_.slow_path - flushed_.slow_path);
  m_forwarded_->add(stats_.forwarded - flushed_.forwarded);
  m_delivered_->add(stats_.delivered - flushed_.delivered);
  m_dropped_->add(stats_.dropped - flushed_.dropped);
  m_backpressure_->add(stats_.backpressure - flushed_.backpressure);
  m_shed_->add(stats_.shed - flushed_.shed);
  m_inflight_->set(static_cast<std::int64_t>(in_flight_.size()));
  flushed_ = stats_;
}

void pipe_terminus::shed_packet(peer_id l3_src, const ilp::ilp_header& header,
                                const_byte_span payload, bool sampled) {
  decision d = decision::drop_packet();  // fail closed unless policy says pass
  auto it = shed_verdicts_.find(header.service);
  if (it != shed_verdicts_.end()) d = it->second;
  d.ttl = policy_.shed_ttl;
  // The TTL'd entry absorbs the rest of the burst on the fast path; when
  // it expires the flow falls back to the (hopefully recovered) slow path.
  cache_.insert(cache_key{l3_src, header.service, header.connection}, d);
  ++stats_.shed;
  IE_LOG(debug) << "terminus" << kv("shed", ilp::svc::name(header.service))
                << kv("conn", header.connection)
                << kv("in_flight", in_flight_.size());
  apply_or_trace(d, header, payload, sampled, trace::kAnnoShed);
}

void pipe_terminus::apply_or_trace(const decision& d, const ilp::ilp_header& header,
                                   const_byte_span payload, bool sampled, std::uint16_t anno) {
  if (auto tc = sampled_ctx(header)) {
    apply_with_path(d, header, payload, *tc, anno, trace::span_kind::hop_fast,
                    path_rec_->now(), path_rec_->next_span_id());
    return;
  }
  apply_traced(d, header, payload, sampled);
}

void pipe_terminus::apply_with_path(const decision& d, const ilp::ilp_header& header,
                                    const_byte_span payload, const trace::trace_context& tc,
                                    std::uint16_t anno, trace::span_kind kind,
                                    std::uint64_t start_ns, std::uint64_t span_id) {
  if (d.kind == decision::verdict::forward) {
    // Forwarded copies carry the context on: next hop's spans parent to
    // this hop's span, one level deeper on the path.
    ilp::ilp_header fwd = header;
    trace::trace_context next = tc;
    next.hop_count = static_cast<std::uint8_t>(tc.hop_count + 1);
    next.parent_span = span_id;
    fwd.set_trace(next);
    for (peer_id hop : d.next_hops) {
      const std::uint64_t fstart = path_rec_->now();
      forward_(hop, fwd, payload);
      ++stats_.forwarded;
      path_rec_->emit(trace::path_span{
          .trace_id = tc.trace_id,
          .span_id = path_rec_->next_span_id(),
          .parent_span = span_id,
          .node = path_rec_->node(),
          .connection = header.connection,
          .service = header.service,
          .hop_count = tc.hop_count,
          .kind = trace::span_kind::forward,
          .verdict = trace::kVerdictForward,
          .annotations = 0,
          .start_ns = fstart,
          .duration_ns = path_rec_->now() - fstart,
      });
    }
  } else {
    apply(d, header, payload);
  }
  if (d.kind == decision::verdict::drop) anno |= trace::kAnnoDrop;
  path_rec_->emit(trace::path_span{
      .trace_id = tc.trace_id,
      .span_id = span_id,
      .parent_span = tc.parent_span,
      .node = path_rec_->node(),
      .connection = header.connection,
      .service = header.service,
      .hop_count = tc.hop_count,
      .kind = kind,
      .verdict = verdict_char(d.kind),
      .annotations = anno,
      .start_ns = start_ns,
      .duration_ns = path_rec_->now() - start_ns,
  });
}

bool pipe_terminus::submit_bounded(const slowpath_request& req, bool is_control) {
  std::size_t attempts = 0;
  while (!channel_.submit(req)) {
    ++stats_.backpressure;
    if (backpressure_hook_) backpressure_hook_();
    pump();
    if (!is_control && policy_.high_water > 0 && ++attempts >= policy_.submit_retries) {
      return false;
    }
  }
  return true;
}

void pipe_terminus::handle(packet pkt) {
  ++stats_.received;
  const bool sampled = tracer_ != nullptr && tracer_->sample_tick();

  // Control-plane packets always reach the service module: they mutate
  // service state and must not be short-circuited by a stale decision.
  const bool is_control = (pkt.header.flags & ilp::kFlagControl) != 0;
  if (!is_control) {
    const cache_key key{pkt.l3_src, pkt.header.service, pkt.header.connection};
    if (auto d = cache_.lookup(key)) {
      ++stats_.fast_path;
      apply_or_trace(*d, pkt.header, pkt.payload, sampled, 0);
      if (reg_ != nullptr) {
        service_rx_counter(pkt.header.service).add();
        flush_telemetry();
      }
      return;
    }
  }

  if (!is_control && should_shed()) {
    shed_packet(pkt.l3_src, pkt.header, pkt.payload, sampled);
    if (reg_ != nullptr) {
      service_rx_counter(pkt.header.service).add();
      flush_telemetry();
    }
    return;
  }

  ++stats_.slow_path;
  slowpath_request req;
  req.token = next_token_++;
  req.l3_src = pkt.l3_src;
  req.deadline_ns = deadline_for_now();
  req.header_bytes = pkt.header.encode();
  req.payload = pkt.payload;  // services like caching need it; §4 fidelity note in DESIGN.md

  const std::uint64_t token = req.token;
  if (!submit_bounded(req, is_control)) {
    // Channel stayed full through the retry budget: shed instead of
    // blocking the fast path behind a wedged slow path.
    shed_packet(pkt.l3_src, pkt.header, pkt.payload, sampled);
    if (reg_ != nullptr) {
      service_rx_counter(pkt.header.service).add();
      flush_telemetry();
    }
    return;
  }
  auto ptc = sampled_ctx(pkt.header);
  in_flight_.emplace(token, pending{std::move(pkt), ptc.value_or(trace::trace_context{}),
                                    ptc ? path_rec_->now() : 0});
  pump();
  if (reg_ != nullptr) {
    service_rx_counter(pkt.header.service).add();
    flush_telemetry();
  }
}

void pipe_terminus::handle_batch(std::span<packet> pkts) { handle_batch_impl(pkts); }

void pipe_terminus::handle_batch(std::span<packet_view> pkts) { handle_batch_impl(pkts); }

template <typename P>
void pipe_terminus::handle_batch_impl(std::span<P> pkts) {
  trace::span batch_span(trace::stage::ingress);
  prof::cycle_scope cyc(prof::cycle_stage::terminus);
  // One atomic claims the whole batch's sampler sequence range; per packet
  // the sampling decision is then a mask compare on a register.
  std::uint64_t sample_base = 0;
  if (tracer_ != nullptr) sample_base = tracer_->sample_tick_batch(pkts.size());

  // Same-key run memo: bursts from one flow pay for one cache lookup.
  bool have_memo = false;
  cache_key memo_key{};
  decision memo_decision;
  bool submitted = false;

  // Per-service rx tally: same-service runs (the common case) fold into
  // one handle add at flush.
  ilp::service_id tally_service = 0;
  std::uint64_t tally_count = 0;
  auto tally_rx = [&](ilp::service_id service) {
    if (reg_ == nullptr) return;
    if (tally_count > 0 && service == tally_service) {
      ++tally_count;
      return;
    }
    if (tally_count > 0) service_rx_counter(tally_service).add(tally_count);
    tally_service = service;
    tally_count = 1;
  };

  std::uint64_t pkt_index = 0;
  for (P& pkt : pkts) {
    ++stats_.received;
    tally_rx(pkt.header.service);
    const bool sampled =
        tracer_ != nullptr && tracer_->sample_hit(sample_base + pkt_index);
    ++pkt_index;
    const bool is_control = (pkt.header.flags & ilp::kFlagControl) != 0;
    if (!is_control) {
      const cache_key key{pkt.l3_src, pkt.header.service, pkt.header.connection};
      if (have_memo && key == memo_key) {
        ++stats_.fast_path;
        apply_or_trace(memo_decision, pkt.header, pkt.payload, sampled, 0);
        continue;
      }
      std::uint64_t lookup_start = 0;
      if (sampled) lookup_start = trace::now_ns();
      auto d = cache_.lookup(key);
      if (sampled) {
        const std::uint64_t dur = trace::now_ns() - lookup_start;
        tracer_->record_stage(trace::stage::cache, dur);
        tracer_->capture(trace::stage::cache, lookup_start, dur);
      }
      if (d) {
        ++stats_.fast_path;
        apply_or_trace(*d, pkt.header, pkt.payload, sampled, 0);
        memo_key = key;
        memo_decision = std::move(*d);
        have_memo = true;
        continue;
      }
    }

    if (!is_control && should_shed()) {
      shed_packet(pkt.l3_src, pkt.header, pkt.payload, sampled);
      // The shed verdict just became a cache entry; let same-flow
      // packets later in this batch hit it via the memo.
      memo_key = cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection};
      memo_decision = decision::drop_packet();
      if (auto d = cache_.lookup(memo_key)) memo_decision = std::move(*d);
      have_memo = true;
      continue;
    }

    ++stats_.slow_path;
    slowpath_request req;
    req.token = next_token_++;
    req.l3_src = pkt.l3_src;
    req.deadline_ns = deadline_for_now();
    req.header_bytes = pkt.header.encode();
    req.payload.assign(pkt.payload.begin(), pkt.payload.end());

    const std::uint64_t token = req.token;
    if (!submit_bounded(req, is_control)) {
      shed_packet(pkt.l3_src, pkt.header, pkt.payload, sampled);
      continue;
    }
    auto ptc = sampled_ctx(pkt.header);
    in_flight_.emplace(token,
                       pending{to_owned(std::move(pkt)), ptc.value_or(trace::trace_context{}),
                               ptc ? path_rec_->now() : 0});
    submitted = true;
  }

  // Drain the slow-path channel once per batch, not once per packet.
  if (submitted) {
    trace::span drain_span(trace::stage::slowpath);
    prof::cycle_scope cys(prof::cycle_stage::slowpath);
    pump();
  }

  if (reg_ != nullptr) {
    if (tally_count > 0) service_rx_counter(tally_service).add(tally_count);
    flush_telemetry();
  }
}

std::size_t pipe_terminus::pump() {
  std::size_t applied = 0;
  while (auto resp = channel_.poll()) {
    complete(std::move(*resp));
    ++applied;
  }
  return applied;
}

void pipe_terminus::complete(slowpath_response resp) {
  auto it = in_flight_.find(resp.token);
  if (it == in_flight_.end()) return;  // spurious / duplicate token
  pending p = std::move(it->second);
  in_flight_.erase(it);

  for (auto& [key, value] : resp.cache_inserts) {
    cache_.insert(key, std::move(value));
  }

  if (p.trace_start_ns != 0 && path_rec_ != nullptr) {
    // The hop_slow span id is allocated up front so the service-generated
    // sends (cached-content responses) can parent to it.
    const std::uint64_t span_id = path_rec_->next_span_id();
    trace::trace_context child = p.tc;
    child.hop_count = static_cast<std::uint8_t>(p.tc.hop_count + 1);
    child.parent_span = span_id;
    for (outbound& o : resp.sends) {
      if (!o.header.trace_ctx()) o.header.set_trace(child);
      const std::uint64_t fstart = path_rec_->now();
      forward_(o.to, o.header, o.payload);
      ++stats_.forwarded;
      path_rec_->emit(trace::path_span{
          .trace_id = p.tc.trace_id,
          .span_id = path_rec_->next_span_id(),
          .parent_span = span_id,
          .node = path_rec_->node(),
          .connection = o.header.connection,
          .service = o.header.service,
          .hop_count = p.tc.hop_count,
          .kind = trace::span_kind::forward,
          .verdict = trace::kVerdictForward,
          .annotations = 0,
          .start_ns = fstart,
          .duration_ns = path_rec_->now() - fstart,
      });
    }
    apply_with_path(resp.verdict, p.pkt.header, p.pkt.payload, p.tc, resp.annotations,
                    trace::span_kind::hop_slow, p.trace_start_ns, span_id);
    return;
  }

  for (const outbound& o : resp.sends) {
    forward_(o.to, o.header, o.payload);
    ++stats_.forwarded;
  }
  apply(resp.verdict, p.pkt.header, p.pkt.payload);
}

void pipe_terminus::apply_traced(const decision& d, const ilp::ilp_header& header,
                                 const_byte_span payload, bool sampled) {
  if (!sampled) {
    apply(d, header, payload);
    return;
  }
  const std::uint64_t start = trace::now_ns();
  apply(d, header, payload);
  const std::uint64_t dur = trace::now_ns() - start;
  tracer_->record_stage(trace::stage::emit, dur);
  tracer_->capture(trace::stage::emit, start, dur, verdict_char(d.kind));
}

void pipe_terminus::apply(const decision& d, const ilp::ilp_header& header,
                          const_byte_span payload) {
  switch (d.kind) {
    case decision::verdict::forward:
      for (peer_id hop : d.next_hops) forward_(hop, header, payload);
      stats_.forwarded += d.next_hops.size();
      break;
    case decision::verdict::deliver_local:
      ++stats_.delivered;
      break;
    case decision::verdict::drop:
      ++stats_.dropped;
      // The counter (sn.drop.pkts, via flush_telemetry) and the log line move
      // together so no drop is ever silent.
      IE_LOG(debug) << "terminus" << kv("drop", "verdict")
                    << kv("service", ilp::svc::name(header.service))
                    << kv("conn", header.connection);
      break;
  }
}

}  // namespace interedge::core
