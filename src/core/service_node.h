// Service Node (SN): the commodity-cluster element of the InterEdge
// (paper §3). Assembles the pipe layer, the pipe-terminus fast path with
// its decision cache, and the common execution environment hosting the
// standardized service modules.
//
// Transport-agnostic like pipe_manager: the owner supplies datagram send
// and timer callbacks, so the same SN runs over the simulator or a real
// UDP socket.
//
// Two datapath modes (sn_config::workers):
//   workers == 0  — the inline single-threaded SN: pipe decrypt, terminus
//                   dispatch and service modules all run on the caller's
//                   thread over the inline channel. Byte-for-byte the
//                   behavior the simulator and the earlier benchmarks
//                   measure.
//   workers == N  — the multi-core datapath (DESIGN.md §9): the caller's
//                   thread becomes the control thread. It steers each data
//                   packet to one of N worker shards by SipHashing the
//                   packet's (L3 src, service, connection) cache key — the
//                   same keyed hash the decision cache uses — read via an
//                   unauthenticated batched header peek. Each shard owns a
//                   private decision cache, PSP decrypt replicas, terminus,
//                   tracer and metrics registry, so the packet fast path is
//                   lock-free by construction; SPSC rings carry packets in
//                   (ingress), forwarded packets out (egress), slow-path
//                   traffic (slowpath_hub) and cache invalidations
//                   (cache_invalidation_bus). Service modules, timers and
//                   the slow path still run on the control thread.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/buf_pool.h"
#include "common/clock.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/prof.h"
#include "common/ring.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "common/trace_collector.h"
#include "core/channel.h"
#include "core/decision_cache.h"
#include "core/exec_env.h"
#include "core/pipe_terminus.h"
#include "core/router.h"
#include "ilp/pipe_manager.h"

namespace interedge::core {

struct sn_config {
  peer_id id = 0;
  std::uint16_t edomain = 0;
  std::size_t cache_capacity = 4096;
  std::uint64_t cache_hash_seed = 0;
  // Packet tracing: sample 1 in 2^trace_sample_shift packets into the
  // per-packet trace ring (stage histograms are always on; see DESIGN §8).
  std::uint32_t trace_sample_shift = 8;
  std::size_t trace_ring_capacity = 512;
  // Cross-hop path tracing (ISSUE 5): ring slots for the per-shard path
  // span recorders. 0 disables span emission entirely (packets still carry
  // any trace context they arrived with — it is ordinary sealed metadata).
  std::size_t path_span_capacity = 1024;
  // Multi-core datapath. 0 = inline single-threaded SN (unchanged);
  // N > 0 spawns N worker shards fed by flow steering.
  std::size_t workers = 0;
  // Slots per shard for the ingress and egress rings. A full ingress ring
  // is backpressure: the packet is dropped and counted
  // (sn.shard.ingress_drops{shard=k}), never silently lost.
  std::size_t shard_ring_depth = 1024;
  // Per-shard decision-cache capacity; 0 derives cache_capacity / workers
  // (floor 64), keeping the aggregate working set comparable to the
  // single-threaded cache.
  std::size_t shard_cache_capacity = 0;
  // Egress ring slots per shard; 0 inherits shard_ring_depth.
  std::size_t egress_ring_depth = 0;
  // High-water mark for the worker-private egress spill deque. A stalled
  // control thread otherwise grows the spill without bound (every deferred
  // forward is an owned payload copy); past the cap, forwards are dropped
  // and counted (sn.shard.egress_spill_drops{shard=k}) — UDP egress is
  // lossy by contract, unbounded memory growth is not. 0 = unbounded.
  std::size_t egress_spill_max = 4096;

  // ---- placement (ISSUE 8) ----
  // Explicit worker pinning: shard k runs on worker_cpus[k % size()].
  // Empty + numa_aware derives an assignment from the machine topology
  // (shards striped across NUMA nodes); empty otherwise leaves the
  // scheduler in charge.
  std::vector<int> worker_cpus{};
  // Pin the control thread (the caller of start_workers / the event loop)
  // to this CPU; -1 leaves it unpinned. Also the natural home for the
  // uring SQPOLL thread (udp_config::sq_aff_cpu).
  int control_cpu = -1;
  // NUMA-aware placement: derive worker CPUs per node (when worker_cpus is
  // empty) and mbind each shard's ingress/egress ring storage onto the
  // node its worker runs on. Advisory — a single-node box is a no-op.
  bool numa_aware = false;

  // ---- robustness (DESIGN.md §10) ----
  // Pipe keepalives: 0 disables. When set, the SN arms pipe_manager
  // liveness at construction and drives liveness_tick() off its scheduler
  // every interval until stop_liveness().
  nanoseconds keepalive_interval{0};
  std::uint32_t keepalive_miss_budget = 3;
  nanoseconds reconnect_backoff = std::chrono::milliseconds(50);
  nanoseconds reconnect_backoff_max = std::chrono::seconds(2);
  // Liveness keepalive-jitter seed. 0 derives a node-unique default from
  // the SN id; deployments that plumb one root seed everywhere (scenario
  // suites) set it explicitly so the jitter stream is part of the seed.
  std::uint64_t liveness_jitter_seed = 0;
  // Slow-path degradation: deadline stamped on every slow-path request
  // (0 = none) and the in-flight high-water mark past which the terminus
  // sheds with a TTL'd default verdict (0 = legacy blocking behavior).
  nanoseconds slowpath_deadline{0};
  std::size_t slowpath_high_water = 0;
  nanoseconds shed_ttl = std::chrono::milliseconds(50);

  // ---- SLO health plane (ISSUE 7) ----
  // Black-box flight recorder ring slots (0 disables). The recorder is
  // passive until events are fed to it (span drains, lifecycle events,
  // triggers), so the default costs nothing on the packet path.
  std::size_t blackbox_capacity = 1024;
  // Which faults freeze the black box (common/flight_recorder.h bits).
  std::uint32_t blackbox_triggers = kTrigPeerDown | kTrigFailover | kTrigShed | kTrigSloPage |
                                    kTrigWatchdog | kTrigManual;

  // ---- continuous profiling plane (ISSUE 10, DESIGN.md §15) ----
  // On-CPU sampling rate in Hz per thread; 0 disables the profiler
  // entirely (no signal handler, no slot claims, no datapath cost beyond
  // the always-compiled cycle scopes' TLS checks). The prime default in
  // prof.h (97) is what deployments that arm it should use.
  std::uint32_t profiler_hz = 0;
  // Per-thread raw-sample ring slots (a full ring is a counted drop).
  std::size_t profiler_ring_slots = 256;
  // Aggregated stack-table cap across all threads.
  std::size_t profiler_max_stacks = 2048;
  // Hot stacks embedded in the black-box postmortem / snapshot JSON.
  std::size_t profiler_top_n = 10;
  // Skip the perf_event_open probe and use the CPU-clock timer backend
  // (deterministic backend choice for tests; see prof.h).
  bool profiler_force_timer = false;
};

class service_node final : public node_services {
 public:
  using send_datagram_fn = std::function<void(peer_id to, bytes datagram)>;
  using scheduler_fn = std::function<void(nanoseconds delay, std::function<void()> fn)>;

  service_node(sn_config config, const clock& clk, send_datagram_fn send_datagram,
               scheduler_fn scheduler, const router* route);
  ~service_node() override;

  // Wire this to the underlying network (simulator node handler / socket).
  void on_datagram(peer_id from, const_byte_span datagram);

  // Batched ingress from one peer: pipe decryption, terminus dispatch and
  // the slow-path drain all run once per batch instead of once per packet.
  void on_datagram_batch(peer_id from, std::span<const const_byte_span> datagrams);

  // Batched ingress from mixed sources (what a udp recv_batch or an event
  // loop hands over): consecutive runs from the same peer are fed through
  // the batched path together, preserving arrival order.
  void on_datagrams(std::span<const std::pair<peer_id, bytes>> datagrams);

  // Mutable-buffer variant: in parallel mode the datagram bytes are moved
  // into the shard rings instead of copied (the event loop's batch handler
  // hands over exactly this shape). Identical to the const overload when
  // workers == 0.
  void on_datagrams(std::span<std::pair<peer_id, bytes>> datagrams);

  // Zero-copy ingress (ISSUE 6): datagrams arrive as refcounted slab views
  // straight from udp_endpoint::recv_batch_views. Data messages are
  // decrypted in place inside the slab (pipe_manager::on_datagram_batch_mut
  // inline; decrypt_batch_mut on the shards) and the terminus consumes
  // packet_views aliasing the slab — no per-packet payload copy anywhere on
  // the fast path. In parallel mode the slab reference itself rides the
  // shard ring, so the slab stays alive (and unrecycled) until the worker
  // is done with it. The views are consumed (moved from).
  void on_datagram_views(std::span<std::pair<peer_id, buf::pkt_view>> datagrams);

  // Parallel-mode service: dispatches pending slow-path requests on this
  // (the control) thread and drains shard egress into the pipes. Safe and
  // a near no-op when workers == 0 (drains the inline terminus). Returns
  // the number of items serviced. Called automatically at the end of every
  // ingress batch; owners with idle periods call it from a timer.
  std::size_t poll();

  // Blocks (spinning + polling) until every steered packet has been
  // consumed, every slow-path exchange completed, every invalidation
  // applied and every forwarded packet sent — or until `timeout`. After a
  // true return, shard caches/stats may be inspected race-free.
  bool wait_idle(std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

  // node_services (what the execution environment sees).
  peer_id node_id() const override { return config_.id; }
  std::uint16_t edomain() const override { return config_.edomain; }
  const clock& node_clock() const override { return clock_; }
  void send(peer_id to, const ilp::ilp_header& header, bytes payload) override;
  void schedule(nanoseconds delay, std::function<void()> fn) override;
  std::optional<peer_id> next_hop(edge_addr dest) const override;
  decision_cache& cache() override { return cache_; }
  metrics_registry& metrics() override { return metrics_; }
  // Shard-aware invalidation: with workers, publishes on the invalidation
  // bus so every shard's private cache drops the entries; inline mode hits
  // the node cache directly (the node_services default).
  void invalidate_connection(ilp::service_id service, ilp::connection_id conn) override;
  void invalidate_service(ilp::service_id service) override;
  // Purges every cached forward naming `hop` — liveness calls this when a
  // peer goes down so established flows re-resolve on the slow path
  // instead of blackholing into the dead adjacency until LRU eviction.
  void invalidate_next_hop(peer_id hop);

  exec_env& env() { return *env_; }
  ilp::pipe_manager& pipes() { return pipes_; }
  pipe_terminus& terminus() { return *terminus_; }
  const terminus_stats& datapath_stats() const { return terminus_->stats(); }
  trace::tracer& packet_tracer() { return tracer_; }

  // ---- cross-hop path tracing (ISSUE 5) ----

  // The control-thread recorder (inline terminus, service dispatch, node
  // events). Shard termini own private recorders drained alongside it.
  trace::path_recorder& path_recorder() { return path_rec_; }

  // Appends every span buffered in the control and shard recorders to
  // `out`; returns how many were drained. Control-thread only (each ring
  // is SPSC with this thread as the consumer).
  std::size_t drain_path_spans(std::vector<trace::path_span>& out);

  // The node-local collector fed by export_trace_json() and the
  // observability push; mostly useful to tests and introspection tooling.
  trace::trace_collector& traces() { return collector_; }

  // Drains pending spans into the local collector and returns its JSON
  // path-trace dump (newest first, `limit` 0 = all retained traces).
  std::string export_trace_json(std::size_t limit = 0);

  // Observability push (edomain plane): every `interval` the node merges
  // its metric registries and drains its span recorders, handing both to
  // `sink` (domain_core's observability plane, a test, a file writer).
  // max_pushes == 0 runs until stop_observability_push().
  using observe_sink =
      std::function<void(const metrics_registry& merged, std::span<const trace::path_span> spans)>;
  void start_observability_push(nanoseconds interval, observe_sink sink,
                                std::uint64_t max_pushes = 0);
  void stop_observability_push() { observe_running_ = false; }

  // Multi-core introspection (parallel mode; see wait_idle for when the
  // worker-owned state is safe to read).
  std::size_t worker_count() const { return shards_.size(); }
  const flow_steerer* steerer() const { return steerer_.get(); }
  const cache_stats& shard_cache_stats(std::size_t shard) const;
  const terminus_stats& shard_terminus_stats(std::size_t shard) const;
  decision_cache& shard_cache(std::size_t shard);
  metrics_registry& shard_metrics(std::size_t shard);

  // Stats snapshot: every registered metric with per-second rates for the
  // monotone kinds, computed against the previous snapshot (the paper's
  // "operable at scale" requirement — ISSUE 2). In parallel mode the
  // control registry and every shard registry are merged into one view.
  std::string stats_snapshot();

  // Prometheus exposition of the same merged view.
  std::string export_prometheus();

  // Merges the control registry plus every shard registry into `out`
  // (call with a fresh registry; merging is additive).
  void merge_metrics_into(metrics_registry& out) const;

  // Periodic exposition over the node's scheduler. max_reports == 0 runs
  // until stop_stats_reporting(); a bound makes it usable under the
  // run-until-quiet simulator loop.
  void start_stats_reporting(nanoseconds interval, std::function<void(const std::string&)> sink,
                             std::uint64_t max_reports = 0);
  void stop_stats_reporting() { stats_running_ = false; }

  // Establishes a long-lived pipe (inter-edomain peering, §3.2).
  void peer_with(peer_id other) { pipes_.connect(other); }

  // Rekey schedule hook. In parallel mode the fresh receive contexts are
  // replicated to every shard before any packet sealed under them can be
  // steered (the replicas ride the FIFO ingress rings).
  void rotate_keys() {
    pipes_.rotate_all();
    emit_node_event(trace::kAnnoRekey, config_.id);
  }

  // Fault-tolerance: checkpoint covers service-module state and off-path
  // storage. The decision cache is deliberately NOT checkpointed — it is
  // soft state, and correctness never depends on it (Appendix B).
  bytes checkpoint() { return env_->checkpoint(); }
  void restore(const_byte_span snapshot) { env_->restore(snapshot); }

  // ---- fault-tolerant lifecycle (DESIGN.md §10) ----

  // Stops the recurring keepalive tick armed by keepalive_interval > 0
  // (lets deterministic tests drain the simulator event queue).
  void stop_liveness() { liveness_running_ = false; }

  // Per-service shed verdict (pass or drop) applied when the slow path
  // saturates; propagated to the inline terminus and every worker shard's.
  // Call before traffic flows (shard termini are worker-owned afterward).
  void set_shed_verdict(ilp::service_id service, const decision& d);

  std::uint64_t slowpath_expired() const { return slowpath_expired_; }

  // Full warm-state checkpoint: the exec_env envelope (module state +
  // off-path storage) plus the decision cache's warm entries (soft state,
  // but restoring it lets a standby take over without a cold-start miss
  // storm). In parallel mode the snapshot covers the control cache; shard
  // caches refill from traffic.
  bytes checkpoint_full();
  // Restores a checkpoint_full() snapshot into this (standby) SN. Throws
  // interedge::serial_error on malformed input.
  void restore_full(const_byte_span snapshot);

  // Checkpoint scheduler: every `interval`, takes checkpoint_full() and
  // hands it to `sink` (the failover store). max_checkpoints == 0 runs
  // until stop_checkpointing(); a bound keeps the simulator's event queue
  // drainable. Metrics: sn.checkpoint.taken / sn.checkpoint.bytes.
  void start_checkpointing(nanoseconds interval, std::function<void(bytes)> sink,
                           std::uint64_t max_checkpoints = 0);
  void stop_checkpointing() { checkpoint_running_ = false; }

  // ---- SLO health plane (ISSUE 7, DESIGN.md §13) ----

  struct health_config {
    nanoseconds interval = std::chrono::milliseconds(100);
    // Sliding-window store fed from the merged registry every tick.
    timeseries_store::config series;
    // Burn-rate policy + per-service targets evaluated every tick.
    slo::burn_windows windows;
    std::vector<slo::slo_target> targets;
    // Health ticks a shard may sit with pending work and an unmoving
    // heartbeat before the watchdog flags it stalled.
    std::uint32_t watchdog_grace = 2;
    // Structured alert fan-out (every SLO state transition).
    std::function<void(const slo::slo_alert&)> alert_sink;
    // Receives the frozen black-box JSON dump, once per freeze.
    std::function<void(const std::string& json)> blackbox_sink;
  };

  // Arms the health tick: per-shard watchdog + saturation gauges, merged
  // snapshot into the timeseries ring, SLO evaluation, black-box triggers.
  // max_ticks == 0 runs until stop_health_plane() (bound it under the
  // run-until-quiet simulator loop, like every other recurring tick).
  void start_health_plane(health_config cfg, std::uint64_t max_ticks = 0);
  void stop_health_plane() { health_running_ = false; }

  // Health-plane introspection (null/zero before start_health_plane).
  const timeseries_store* health_series() const { return health_ts_.get(); }
  const slo::slo_monitor* health_slos() const { return health_slo_.get(); }
  std::uint64_t watchdog_stalls() const { return watchdog_stalls_; }

  // The black-box flight recorder (null when blackbox_capacity == 0).
  flight_recorder* blackbox() { return blackbox_.get(); }
  // Postmortem dump (empty JSON object when the recorder is disabled).
  // With the profiler armed, the dump carries a "hot_stacks" table — the
  // top-N snapshot last rendered by a health tick / profile_refresh(),
  // read lock-free so a freeze-path dump never blocks on profiler state.
  std::string dump_blackbox_json() const;

  // ---- continuous profiling plane (ISSUE 10, DESIGN.md §15) ----

  // Null when profiler_hz == 0. Worker shards self-register as shard<k>;
  // the constructing (control) thread registers as "control".
  prof::profiler* profiler() { return profiler_.get(); }

  // Drains pending samples and refreshes the postmortem hot-stack
  // snapshot — what a health tick does, callable on demand (tools, tests,
  // pre-dump). Control-thread side; no-op without a profiler.
  void profile_refresh();

  // FlameGraph-collapsed folded stacks / profile JSON after an implicit
  // drain (empty string / "{}" without a profiler). The exposition
  // counterparts of export_prometheus for the profiling plane.
  std::string export_profile_folded();
  std::string export_profile_json();

  // Fault-injection hook (tests, chaos drills): while on, shard
  // `shard`'s worker spins without advancing its heartbeat or consuming
  // work — exactly the live-lock shape the watchdog exists to catch.
  void inject_worker_stall(std::size_t shard, bool on);

  // Fault-injection hook: while on, drain_egress() leaves forwards in the
  // shard egress rings — the stalled-control-thread shape that engages the
  // workers' bounded spill (egress_spill_max).
  void pause_egress_drain(bool on) { egress_paused_.store(on, std::memory_order_release); }

 private:
  // One unit over a shard's ingress ring: a steered data datagram (full
  // wire bytes, kind byte included) as either an owned copy (`datagram`) or
  // a refcounted slab view (`view` — the zero-copy ingress path; the slab
  // recycles when the worker drops the last reference), or a receive-key
  // update for one peer. Updates ride the same FIFO ring as data, so a
  // replica is always installed before any packet that needs it is
  // decrypted.
  struct shard_msg {
    peer_id from = 0;
    bytes datagram;
    buf::pkt_view view;
    std::unique_ptr<ilp::pipe_rx> rx_update;
  };

  struct worker_shard {
    worker_shard(std::size_t index, const sn_config& cfg, std::size_t cache_cap,
                 const clock* clk);

    std::size_t index;
    decision_cache cache;     // private: only this shard's thread touches it
    metrics_registry reg;     // merged into the global view on exposition
    trace::tracer tracer;
    trace::path_recorder path_rec;  // worker produces, control drains (SPSC)
    spsc_ring<shard_msg> ingress;  // control -> worker
    spsc_ring<outbound> egress;    // worker -> control (forwards)
    // Worker-private spill for a momentarily full egress ring: the worker
    // never blocks, so the control thread can never deadlock against it.
    std::deque<outbound> egress_overflow;
    std::unique_ptr<pipe_terminus> terminus;
    std::map<peer_id, ilp::pipe_rx> replicas;

    // Shard-registry handles + delta baselines, worker-thread only.
    counter* m_rejected = nullptr;    // ilp.rx.rejected (replica auth failures)
    counter* m_no_replica = nullptr;  // data raced ahead of its key update
    counter* m_hits = nullptr;
    counter* m_misses = nullptr;
    counter* m_inserts = nullptr;
    counter* m_evictions = nullptr;
    counter* m_invalidations = nullptr;
    counter* m_expired = nullptr;  // sn.cache.expired (TTL lapses)
    counter* m_spill_drops = nullptr;  // sn.shard.egress_spill_drops
    cache_stats last_cache{};

    // Cross-thread accounting for wait_idle: pushed is written by the
    // control thread, the rest by the worker (release), read by control
    // (acquire) — the acquire reads are also the happens-before edges that
    // make post-idle inspection of worker-owned state race-free.
    alignas(64) std::atomic<std::uint64_t> pushed{0};
    alignas(64) std::atomic<std::uint64_t> consumed{0};
    alignas(64) std::atomic<std::uint64_t> inflight{0};
    alignas(64) std::atomic<std::uint64_t> spill{0};
    // Liveness sequence: bumped once per worker-loop iteration; the health
    // tick samples it to tell "stalled with pending work" from "parked
    // idle" (DESIGN.md §13). stall is the fault-injection hook — while
    // set, the loop spins without advancing the heartbeat.
    alignas(64) std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<bool> stall{false};

    // Per-stage rdtsc self-time, written by this shard's cycle scopes,
    // read by the health tick (relaxed atomics inside).
    prof::cycle_set cycles;

    std::atomic<bool> stop{false};
    std::atomic<bool> parked{false};
    std::mutex doorbell_mu;
    std::condition_variable doorbell;
    std::thread thread;

    // Worker-loop scratch, reused across iterations.
    std::vector<shard_msg> batch_scratch;
    std::vector<const_byte_span> body_scratch;
    std::vector<byte_span> mut_body_scratch;  // zero-copy runs (in-place decrypt)
    std::vector<std::optional<ilp::opened_packet>> opened_scratch;
    std::vector<packet> pkt_scratch;
    std::vector<packet_view> view_pkt_scratch;
  };

  slowpath_response handle_slowpath(slowpath_request req);
  // Emits a trace_id == 0 node event span (peer-down, failover, rekey) the
  // collector time-correlates with traces crossing this node. No-op with
  // path tracing disabled.
  void emit_node_event(std::uint16_t annotations, std::uint64_t correlate);
  void schedule_observe_tick(nanoseconds interval, std::shared_ptr<observe_sink> sink,
                             std::uint64_t remaining);
  void schedule_stats_tick(nanoseconds interval,
                           std::shared_ptr<std::function<void(const std::string&)>> sink,
                           std::uint64_t remaining);
  void schedule_liveness_tick();
  void schedule_checkpoint_tick(nanoseconds interval,
                                std::shared_ptr<std::function<void(bytes)>> sink,
                                std::uint64_t remaining);
  void schedule_health_tick(std::uint64_t remaining);
  void health_tick();
  // Point-in-time saturation/loss gauges (ring depths, slow-path lag,
  // tracer drop accounting) refreshed before any snapshot leaves the node.
  void refresh_health_gauges();
  // Profiler drain + hot-stack snapshot + per-stage cycle-share gauges,
  // folded into every health tick before the merged snapshot is taken.
  void profile_tick();

  // Parallel-mode plumbing.
  void start_workers();
  void worker_main(std::size_t shard);
  std::size_t worker_drain_aux(worker_shard& sh);  // bus + egress spill (backpressure-safe)
  void worker_flush_telemetry(worker_shard& sh);
  void wake_shard(std::size_t shard);
  void steer(std::span<std::pair<peer_id, bytes>> datagrams);
  void steer_data_run(peer_id from, std::span<std::pair<peer_id, bytes>> run);
  void steer_views(std::span<std::pair<peer_id, buf::pkt_view>> datagrams);
  void steer_data_run_views(peer_id from, std::span<std::pair<peer_id, buf::pkt_view>> run);
  void push_rx_update(peer_id peer, const ilp::pipe& p);
  std::size_t drain_egress();

  sn_config config_;
  const clock& clock_;
  send_datagram_fn send_datagram_;
  scheduler_fn scheduler_;
  const router* router_;

  decision_cache cache_;
  metrics_registry metrics_;
  trace::tracer tracer_;
  trace::path_recorder path_rec_;
  trace::trace_collector collector_;
  stats_reporter stats_reporter_;
  bool stats_running_ = false;
  bool have_snapshot_ = false;
  bool liveness_running_ = false;
  bool checkpoint_running_ = false;
  bool observe_running_ = false;
  bool health_running_ = false;
  std::uint64_t slowpath_expired_ = 0;
  counter* m_slowpath_expired_ = nullptr;
  counter* m_checkpoint_taken_ = nullptr;
  counter* m_checkpoint_bytes_ = nullptr;
  time_point last_snapshot_{};
  std::unique_ptr<exec_env> env_;
  std::unique_ptr<inline_channel> channel_;
  std::unique_ptr<pipe_terminus> terminus_;
  ilp::pipe_manager pipes_;

  // Multi-core datapath state (unset when config_.workers == 0; none of it
  // is touched on the inline path).
  std::unique_ptr<flow_steerer> steerer_;
  std::unique_ptr<cache_invalidation_bus> bus_;
  std::unique_ptr<slowpath_hub> hub_;
  std::vector<std::unique_ptr<worker_shard>> shards_;
  std::vector<counter*> m_steered_;        // sn.steer.pkts{shard=k}
  std::vector<counter*> m_ingress_drops_;  // sn.shard.ingress_drops{shard=k}
  std::vector<int> worker_cpu_assign_;     // per-shard CPU, -1 = unpinned
  std::atomic<bool> egress_paused_{false};

  // ---- SLO health plane state (ISSUE 7) ----
  std::unique_ptr<flight_recorder> blackbox_;
  std::unique_ptr<timeseries_store> health_ts_;
  std::unique_ptr<slo::slo_monitor> health_slo_;
  health_config health_cfg_;
  // Per-shard watchdog bookkeeping (control thread only).
  std::vector<std::uint64_t> wd_last_heartbeat_;
  std::vector<std::uint32_t> wd_stalled_ticks_;
  std::vector<bool> wd_flagged_;
  std::uint64_t watchdog_stalls_ = 0;
  std::uint64_t last_shed_total_ = 0;  // shed-watermark trigger edge detector
  std::vector<slo::slo_alert> health_alert_scratch_;

  // ---- continuous profiling plane state (ISSUE 10) ----
  std::unique_ptr<prof::profiler> profiler_;
  prof::cycle_set control_cycles_;  // control-thread stage cycles
  // Rendered top-N hot-stack JSON, refreshed by profile_tick(). The
  // freeze-path postmortem dump loads it lock-free — rendering (which
  // takes the profiler mutex) never happens on a freeze path.
  std::atomic<std::shared_ptr<const std::string>> hot_stacks_snapshot_;
  // Per-stage cycle baselines for the share gauges (control thread only).
  std::array<std::uint64_t, prof::kCycleStageCount> last_stage_cycles_{};

  // Batch-path scratch, reused across calls.
  std::vector<trace::path_span> span_drain_scratch_;
  std::vector<packet> batch_scratch_;
  std::vector<packet_view> view_batch_scratch_;
  std::vector<const_byte_span> span_scratch_;
  std::vector<byte_span> mut_span_scratch_;
  std::vector<ilp::flow_peek> peek_scratch_;
  std::vector<std::pair<peer_id, bytes>> copy_scratch_;
};

// Bridges a module_result into the channel response format. Shared with the
// bench harness, which runs exec_env behind threaded channels.
slowpath_response to_response(std::uint64_t token, module_result result);

}  // namespace interedge::core
