// Service Node (SN): the commodity-cluster element of the InterEdge
// (paper §3). Assembles the pipe layer, the pipe-terminus fast path with
// its decision cache, and the common execution environment hosting the
// standardized service modules.
//
// Transport-agnostic like pipe_manager: the owner supplies datagram send
// and timer callbacks, so the same SN runs over the simulator or a real
// UDP socket. Inside the simulator an SN is single-threaded, so the
// slow path uses the inline channel; the benchmark harness builds the
// threaded channels around the same terminus and exec_env types.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/channel.h"
#include "core/decision_cache.h"
#include "core/exec_env.h"
#include "core/pipe_terminus.h"
#include "core/router.h"
#include "ilp/pipe_manager.h"

namespace interedge::core {

struct sn_config {
  peer_id id = 0;
  std::uint16_t edomain = 0;
  std::size_t cache_capacity = 4096;
  std::uint64_t cache_hash_seed = 0;
  // Packet tracing: sample 1 in 2^trace_sample_shift packets into the
  // per-packet trace ring (stage histograms are always on; see DESIGN §8).
  std::uint32_t trace_sample_shift = 8;
  std::size_t trace_ring_capacity = 512;
};

class service_node final : public node_services {
 public:
  using send_datagram_fn = std::function<void(peer_id to, bytes datagram)>;
  using scheduler_fn = std::function<void(nanoseconds delay, std::function<void()> fn)>;

  service_node(sn_config config, const clock& clk, send_datagram_fn send_datagram,
               scheduler_fn scheduler, const router* route);

  // Wire this to the underlying network (simulator node handler / socket).
  void on_datagram(peer_id from, const_byte_span datagram);

  // Batched ingress from one peer: pipe decryption, terminus dispatch and
  // the slow-path drain all run once per batch instead of once per packet.
  void on_datagram_batch(peer_id from, std::span<const const_byte_span> datagrams);

  // Batched ingress from mixed sources (what a udp recv_batch or an event
  // loop hands over): consecutive runs from the same peer are fed through
  // the batched path together, preserving arrival order.
  void on_datagrams(std::span<const std::pair<peer_id, bytes>> datagrams);

  // node_services (what the execution environment sees).
  peer_id node_id() const override { return config_.id; }
  std::uint16_t edomain() const override { return config_.edomain; }
  const clock& node_clock() const override { return clock_; }
  void send(peer_id to, const ilp::ilp_header& header, bytes payload) override;
  void schedule(nanoseconds delay, std::function<void()> fn) override;
  std::optional<peer_id> next_hop(edge_addr dest) const override;
  decision_cache& cache() override { return cache_; }
  metrics_registry& metrics() override { return metrics_; }

  exec_env& env() { return *env_; }
  ilp::pipe_manager& pipes() { return pipes_; }
  pipe_terminus& terminus() { return *terminus_; }
  const terminus_stats& datapath_stats() const { return terminus_->stats(); }
  trace::tracer& packet_tracer() { return tracer_; }

  // Stats snapshot: every registered metric with per-second rates for the
  // monotone kinds, computed against the previous snapshot (the paper's
  // "operable at scale" requirement — ISSUE 2).
  std::string stats_snapshot();

  // Periodic exposition over the node's scheduler. max_reports == 0 runs
  // until stop_stats_reporting(); a bound makes it usable under the
  // run-until-quiet simulator loop.
  void start_stats_reporting(nanoseconds interval, std::function<void(const std::string&)> sink,
                             std::uint64_t max_reports = 0);
  void stop_stats_reporting() { stats_running_ = false; }

  // Establishes a long-lived pipe (inter-edomain peering, §3.2).
  void peer_with(peer_id other) { pipes_.connect(other); }

  // Rekey schedule hook.
  void rotate_keys() { pipes_.rotate_all(); }

  // Fault-tolerance: checkpoint covers service-module state and off-path
  // storage. The decision cache is deliberately NOT checkpointed — it is
  // soft state, and correctness never depends on it (Appendix B).
  bytes checkpoint() { return env_->checkpoint(); }
  void restore(const_byte_span snapshot) { env_->restore(snapshot); }

 private:
  slowpath_response handle_slowpath(slowpath_request req);
  void schedule_stats_tick(nanoseconds interval,
                           std::shared_ptr<std::function<void(const std::string&)>> sink,
                           std::uint64_t remaining);

  sn_config config_;
  const clock& clock_;
  send_datagram_fn send_datagram_;
  scheduler_fn scheduler_;
  const router* router_;

  decision_cache cache_;
  metrics_registry metrics_;
  trace::tracer tracer_;
  stats_reporter stats_reporter_;
  bool stats_running_ = false;
  bool have_snapshot_ = false;
  time_point last_snapshot_{};
  std::unique_ptr<exec_env> env_;
  std::unique_ptr<inline_channel> channel_;
  std::unique_ptr<pipe_terminus> terminus_;
  ilp::pipe_manager pipes_;
  // Batch-path scratch, reused across calls.
  std::vector<packet> batch_scratch_;
  std::vector<const_byte_span> span_scratch_;
};

// Bridges a module_result into the channel response format. Shared with the
// bench harness, which runs exec_env behind threaded channels.
slowpath_response to_response(std::uint64_t token, module_result result);

}  // namespace interedge::core
