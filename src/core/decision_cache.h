// The pipe-terminus decision cache (paper §4 and Appendix B).
//
// Match-action entries keyed by (L3 source, service ID, connection ID).
// Implementations "can arbitrarily evict entries, even when the connections
// they are associated with are active" — correctness never depends on an
// entry being present, because a miss falls back to the service module.
// This implementation evicts least-recently-used entries at capacity.
//
// Appendix B also requires an API "that services can use to determine
// whether or not a decision cache entry has been recently used" by
// "retrieving the hit-count for an entry" — see hit_count().
//
// The hash is SipHash-keyed so an adversary choosing connection IDs cannot
// force pathological collisions.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/packet.h"
#include "crypto/siphash.h"

namespace interedge::core {

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
};

class decision_cache {
 public:
  explicit decision_cache(std::size_t capacity, std::uint64_t hash_seed = 0);

  // Looks up a decision; bumps recency and the entry's hit count.
  std::optional<decision> lookup(const cache_key& key);
  // Read-only probe: no recency/hit-count side effects.
  bool contains(const cache_key& key) const;

  // Inserts or replaces. Evicts the LRU entry at capacity.
  void insert(const cache_key& key, decision d);

  // Targeted invalidation.
  bool erase(const cache_key& key);
  // Drops every entry for (service, connection) regardless of L3 source —
  // used when a service tears down a connection.
  std::size_t erase_connection(ilp::service_id service, ilp::connection_id connection);
  // Drops every entry installed by a service (service reconfiguration).
  std::size_t erase_service(ilp::service_id service);
  void clear();

  // Appendix B hit-count API. 0 if the entry is not resident.
  std::uint64_t hit_count(const cache_key& key) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const cache_stats& stats() const { return stats_; }

 private:
  struct entry {
    cache_key key;
    decision value;
    std::uint64_t hits = 0;
  };
  struct key_hash {
    crypto::siphash_key seed;
    std::size_t operator()(const cache_key& k) const;
  };

  using lru_list = std::list<entry>;
  lru_list entries_;  // front = most recent
  std::unordered_map<cache_key, lru_list::iterator, key_hash> index_;
  std::size_t capacity_;
  cache_stats stats_;
};

}  // namespace interedge::core
