// The pipe-terminus decision cache (paper §4 and Appendix B).
//
// Match-action entries keyed by (L3 source, service ID, connection ID).
// Implementations "can arbitrarily evict entries, even when the connections
// they are associated with are active" — correctness never depends on an
// entry being present, because a miss falls back to the service module.
// This implementation evicts least-recently-used entries at capacity.
//
// Appendix B also requires an API "that services can use to determine
// whether or not a decision cache entry has been recently used" by
// "retrieving the hit-count for an entry" — see hit_count().
//
// The hash is SipHash-keyed so an adversary choosing connection IDs cannot
// force pathological collisions. The same keyed hash drives flow_steerer,
// which assigns flows to worker shards in the multi-core datapath — one
// flow's packets always land on one shard (DESIGN.md §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ring.h"
#include "core/packet.h"
#include "crypto/siphash.h"

namespace interedge::core {

// The keyed-hash key shared by the decision cache and the flow steerer,
// derived from a 64-bit seed (sn_config.cache_hash_seed).
crypto::siphash_key cache_hash_key(std::uint64_t seed);

// SipHash of the packed (l3_src, service, connection) tuple.
std::uint64_t cache_key_hash(const crypto::siphash_key& k, const cache_key& key);

struct cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t expired = 0;  // TTL lapses (counted as misses too on lookup)
};

class decision_cache {
 public:
  explicit decision_cache(std::size_t capacity, std::uint64_t hash_seed = 0);

  // Arms per-entry TTLs: inserts whose decision carries ttl > 0 expire
  // that long after insertion. Without a clock TTLs are ignored and
  // entries live until LRU eviction/invalidation, as before. The clock
  // must outlive the cache; a worker shard may read it while another
  // thread advances it (manual_clock is atomic).
  void set_clock(const clock* clk) { clock_ = clk; }

  // Looks up a decision; bumps recency and the entry's hit count. An
  // expired entry is erased and reported as a miss (stats().expired).
  std::optional<decision> lookup(const cache_key& key);
  // Read-only probe: no recency/hit-count side effects.
  bool contains(const cache_key& key) const;

  // Inserts or replaces. Evicts the LRU entry at capacity.
  void insert(const cache_key& key, decision d);

  // Targeted invalidation.
  bool erase(const cache_key& key);
  // Drops every entry for (service, connection) regardless of L3 source —
  // used when a service tears down a connection. O(entries of that
  // service) via the secondary index, not O(cache size).
  std::size_t erase_connection(ilp::service_id service, ilp::connection_id connection);
  // Drops every entry installed by a service (service reconfiguration).
  std::size_t erase_service(ilp::service_id service);
  // Drops every forward verdict that names `hop` as a next hop — called
  // when liveness declares a peer down, so flows re-resolve on the slow
  // path instead of blackholing into the dead adjacency. O(cache size):
  // peer-down is a rare control event, not a packet-path operation.
  std::size_t erase_forwards_to(peer_id hop);
  void clear();

  // Sweeps all expired entries now (checkpoint hygiene); returns the
  // number removed. No-op without a clock.
  std::size_t purge_expired();

  // Warm-state snapshot for checkpointed failover: entries serialized
  // LRU-first so a restore replays them as inserts and reproduces the
  // same recency order; TTLs are stored as remaining time relative to
  // `now`, hit counts ride along (Appendix B queries survive failover).
  // Entries already expired at `now` are omitted.
  bytes snapshot(time_point now) const;
  // Replays a snapshot into this cache (keeping this cache's capacity —
  // overflow evicts LRU as usual). Returns entries restored. Throws
  // interedge::serial_error on malformed input.
  std::size_t restore_warm(const_byte_span data, time_point now);

  // Appendix B hit-count API. 0 if the entry is not resident.
  std::uint64_t hit_count(const cache_key& key) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const cache_stats& stats() const { return stats_; }

 private:
  struct entry;
  using lru_list = std::list<entry>;
  // Secondary index: service -> its resident entries, so slow-path
  // invalidations (erase_connection / erase_service) never scan the whole
  // LRU list (ISSUE 3 satellite: at 1M entries a linear scan stalls the
  // shard).
  using svc_bucket = std::list<lru_list::iterator>;
  struct entry {
    cache_key key;
    decision value;
    std::uint64_t hits = 0;
    time_point expires = time_point::max();  // max() = no TTL
    svc_bucket::iterator svc_it{};  // back-pointer into by_service_[key.service]
  };
  struct key_hash {
    crypto::siphash_key seed;
    std::size_t operator()(const cache_key& k) const {
      return static_cast<std::size_t>(cache_key_hash(seed, k));
    }
  };

  void svc_index_add(lru_list::iterator it);
  void svc_index_remove(lru_list::iterator it);
  bool expired_at(const entry& e, time_point now) const {
    return e.expires != time_point::max() && now >= e.expires;
  }

  lru_list entries_;  // front = most recent
  std::unordered_map<cache_key, lru_list::iterator, key_hash> index_;
  std::unordered_map<ilp::service_id, svc_bucket> by_service_;
  std::size_t capacity_;
  const clock* clock_ = nullptr;
  cache_stats stats_;
};

// RSS-style flow steering for the multi-core datapath: maps a packet's
// cache key to one of N worker shards with the same SipHash family the
// decision cache keys on. Deterministic for a fixed seed (a flow lands on
// the same shard across restarts) and adversarially unpredictable (an
// attacker choosing connection IDs cannot aim all flows at one shard).
class flow_steerer {
 public:
  flow_steerer(std::uint64_t seed, std::size_t shards)
      : key_(cache_hash_key(seed)), shards_(shards == 0 ? 1 : shards) {}

  std::size_t shard_of(const cache_key& key) const {
    return static_cast<std::size_t>(cache_key_hash(key_, key) % shards_);
  }
  std::size_t shards() const { return shards_; }

 private:
  crypto::siphash_key key_;
  std::size_t shards_;
};

// A cache invalidation to fan out to every shard. erase_next_hop carries
// the dead peer in `hop` (liveness peer-down purging stale forwards).
enum class cache_op : std::uint8_t { erase_connection, erase_service, erase_next_hop, clear };
struct cache_command {
  cache_op op = cache_op::clear;
  ilp::service_id service = 0;
  ilp::connection_id connection = 0;
  peer_id hop = 0;
  std::uint64_t seq = 0;  // stamped by the bus
};

// Shard-aware invalidation fan-out. Services invalidate from the slow
// path (control thread); each worker shard owns a private decision cache
// it alone touches. The bus carries commands over per-shard SPSC rings:
// publish() runs on the control thread, drain() on each worker at batch
// boundaries — the caches themselves are never shared, so the whole
// scheme is lock-free by construction. Sequence epochs let an idle check
// confirm every shard has applied every published command.
class cache_invalidation_bus {
 public:
  explicit cache_invalidation_bus(std::size_t shards, std::size_t depth = 1024);

  // Control side: stamps and fans the command out to every shard. Spins
  // while a shard's ring is momentarily full (workers drain every loop
  // iteration, so the wait is bounded).
  void publish(cache_command cmd);

  // Worker side: applies every pending command to the shard's cache.
  // Returns the number applied.
  std::size_t drain(std::size_t shard, decision_cache& cache);

  std::uint64_t published() const { return published_.load(std::memory_order_acquire); }
  std::uint64_t applied(std::size_t shard) const {
    return lanes_[shard]->applied.load(std::memory_order_acquire);
  }
  // True when every shard has applied every published command.
  bool quiesced() const;

  std::size_t shards() const { return lanes_.size(); }

 private:
  struct lane {
    explicit lane(std::size_t depth) : ring(depth) {}
    spsc_ring<cache_command> ring;
    alignas(64) std::atomic<std::uint64_t> applied{0};
  };
  std::atomic<std::uint64_t> published_{0};
  std::vector<std::unique_ptr<lane>> lanes_;
};

}  // namespace interedge::core
