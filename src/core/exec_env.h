// The common execution environment (paper §3.1): hosts service modules,
// provides each a service_context over the node's primitives, dispatches
// slow-path packets, and checkpoints module state.
//
// "All service modules are written to this common execution environment,
// creating a Write-Once-Run-Anywhere (WORA) ecosystem for InterEdge
// services."
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/service_module.h"

namespace interedge::core {

// The node facilities the execution environment builds contexts from;
// implemented by service_node (and by bench harnesses directly).
class node_services {
 public:
  virtual ~node_services() = default;
  virtual peer_id node_id() const = 0;
  virtual std::uint16_t edomain() const = 0;
  virtual const clock& node_clock() const = 0;
  virtual void send(peer_id to, const ilp::ilp_header& header, bytes payload) = 0;
  virtual void schedule(nanoseconds delay, std::function<void()> fn) = 0;
  virtual std::optional<peer_id> next_hop(edge_addr dest) const = 0;
  virtual decision_cache& cache() = 0;
  virtual metrics_registry& metrics() = 0;

  // Decision-cache invalidation entry points. The defaults act on the
  // node's own cache; the sharded service_node overrides them to fan the
  // invalidation out to every worker shard's private cache (DESIGN.md §9),
  // so service modules stay oblivious to how many caches exist.
  virtual void invalidate_connection(ilp::service_id service, ilp::connection_id conn) {
    cache().erase_connection(service, conn);
  }
  virtual void invalidate_service(ilp::service_id service) { cache().erase_service(service); }
};

class exec_env {
 public:
  explicit exec_env(node_services& node);
  ~exec_env();

  // Deploys a module and calls its start() hook. The InterEdge service
  // model requires every SN to run every standardized module.
  void deploy(std::unique_ptr<service_module> module);

  // Installs an operator-imposed interceptor (paper §3.2, third invocation
  // mode: a "pass-through" SN at an enterprise boundary "terminates ILP
  // and executes the operator-imposed services, and then forwards to the
  // next-hop SN where the client-invoked InterEdge services would be
  // implemented"). The interceptor sees every packet before dispatch; its
  // verdict means:
  //   drop          -> packet blocked by operator policy
  //   forward       -> operator pushed it onward (local services bypassed)
  //   deliver_local -> continue to the addressed service module here
  void set_interceptor(std::unique_ptr<service_module> interceptor);
  service_module* interceptor() { return interceptor_.module.get(); }

  bool has_module(ilp::service_id service) const;
  service_module* module_for(ilp::service_id service);
  std::vector<ilp::service_id> deployed() const;

  // Slow-path dispatch: routes the packet to its service module.
  // Unknown service => drop (the uniform service model means a correctly
  // configured SN never sees one; a misbehaving peer might).
  module_result dispatch(const packet& pkt);

  // Per-service configuration, standardized per §5.
  void set_config(ilp::service_id service, const std::string& key, const std::string& value);

  // Whole-environment checkpoint (module states + their storage).
  bytes checkpoint();
  void restore(const_byte_span snapshot);

  // Retry budget for dispatches that throw transient_error: the packet is
  // re-offered to the module up to `retries` more times (inline — the
  // slow path is synchronous, so this is the capped backoff) and dropped
  // when the budget runs out. Any other exception drops immediately; a
  // throwing module never takes the SN down.
  void set_transient_retry_limit(std::uint32_t retries) { transient_retries_ = retries; }
  std::uint64_t retries_attempted() const { return retries_attempted_; }
  std::uint64_t retries_exhausted() const { return retries_exhausted_; }
  std::uint64_t module_errors() const { return module_errors_; }

  std::uint64_t dispatches() const { return dispatches_; }
  std::uint64_t unknown_service_drops() const { return unknown_drops_; }

 private:
  class context_impl;
  struct deployed_module {
    std::unique_ptr<service_module> module;
    std::unique_ptr<context_impl> context;
    // Handle resolved at deploy: sn.slowpath.dispatch{service=<name>}.
    counter* dispatch_counter = nullptr;
  };

  module_result invoke(deployed_module& dm, const packet& pkt);

  node_services& node_;
  std::map<ilp::service_id, deployed_module> modules_;
  deployed_module interceptor_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t unknown_drops_ = 0;
  std::uint64_t intercepted_ = 0;
  std::uint32_t transient_retries_ = 2;
  std::uint64_t retries_attempted_ = 0;
  std::uint64_t retries_exhausted_ = 0;
  std::uint64_t module_errors_ = 0;
  counter* unknown_drop_counter_ = nullptr;
  counter* retry_counter_ = nullptr;
  counter* retry_exhausted_counter_ = nullptr;
  counter* module_error_counter_ = nullptr;
};

}  // namespace interedge::core
