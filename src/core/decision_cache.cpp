#include "core/decision_cache.h"

#include <algorithm>

#include "common/serial.h"

namespace interedge::core {

crypto::siphash_key cache_hash_key(std::uint64_t seed) {
  crypto::siphash_key k{};
  for (int i = 0; i < 8; ++i) {
    k[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    k[8 + i] = static_cast<std::uint8_t>(~seed >> (8 * i));
  }
  return k;
}

std::uint64_t cache_key_hash(const crypto::siphash_key& k, const cache_key& key) {
  std::uint8_t packed[8 + 4 + 8];
  for (int i = 0; i < 8; ++i) packed[i] = static_cast<std::uint8_t>(key.l3_src >> (8 * i));
  for (int i = 0; i < 4; ++i) packed[8 + i] = static_cast<std::uint8_t>(key.service >> (8 * i));
  for (int i = 0; i < 8; ++i) {
    packed[12 + i] = static_cast<std::uint8_t>(key.connection >> (8 * i));
  }
  return crypto::siphash24(k, const_byte_span(packed, sizeof(packed)));
}

decision_cache::decision_cache(std::size_t capacity, std::uint64_t hash_seed)
    : index_(16, key_hash{cache_hash_key(hash_seed)}), capacity_(capacity == 0 ? 1 : capacity) {
  // Size the index for the full working set up front so steady-state
  // lookups and inserts never trigger a rehash on the fast path.
  index_.reserve(capacity_);
}

void decision_cache::svc_index_add(lru_list::iterator it) {
  svc_bucket& bucket = by_service_[it->key.service];
  bucket.push_front(it);
  it->svc_it = bucket.begin();
}

void decision_cache::svc_index_remove(lru_list::iterator it) {
  auto bit = by_service_.find(it->key.service);
  bit->second.erase(it->svc_it);
  if (bit->second.empty()) by_service_.erase(bit);
}

std::optional<decision> decision_cache::lookup(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (clock_ && expired_at(*it->second, clock_->now())) {
    svc_index_remove(it->second);
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.expired;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second->hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // bump recency
  return it->second->value;
}

bool decision_cache::contains(const cache_key& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  return !(clock_ && expired_at(*it->second, clock_->now()));
}

void decision_cache::insert(const cache_key& key, decision d) {
  const time_point expires =
      (clock_ && d.ttl.count() > 0) ? clock_->now() + d.ttl : time_point::max();
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(d);
    it->second->expires = expires;
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.inserts;
    return;
  }
  if (entries_.size() >= capacity_) {
    // Recycle the LRU node in place instead of pop+push: an insert at
    // capacity (the steady state) performs no list-node allocation. The
    // victim may belong to a different service, so its secondary-index
    // slot moves too.
    auto victim = std::prev(entries_.end());
    svc_index_remove(victim);
    index_.erase(victim->key);
    victim->key = key;
    victim->value = std::move(d);
    victim->hits = 0;
    victim->expires = expires;
    entries_.splice(entries_.begin(), entries_, victim);
    index_[key] = entries_.begin();
    svc_index_add(entries_.begin());
    ++stats_.evictions;
    ++stats_.inserts;
    return;
  }
  entries_.push_front(entry{key, std::move(d), 0, expires, {}});
  index_[key] = entries_.begin();
  svc_index_add(entries_.begin());
  ++stats_.inserts;
}

bool decision_cache::erase(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  svc_index_remove(it->second);
  entries_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t decision_cache::erase_connection(ilp::service_id service,
                                             ilp::connection_id connection) {
  auto bit = by_service_.find(service);
  if (bit == by_service_.end()) return 0;
  std::size_t erased = 0;
  svc_bucket& bucket = bit->second;
  for (auto sit = bucket.begin(); sit != bucket.end();) {
    const lru_list::iterator lit = *sit;
    if (lit->key.connection == connection) {
      index_.erase(lit->key);
      entries_.erase(lit);
      sit = bucket.erase(sit);
      ++erased;
    } else {
      ++sit;
    }
  }
  if (bucket.empty()) by_service_.erase(bit);
  stats_.invalidations += erased;
  return erased;
}

std::size_t decision_cache::erase_service(ilp::service_id service) {
  auto bit = by_service_.find(service);
  if (bit == by_service_.end()) return 0;
  std::size_t erased = 0;
  for (const lru_list::iterator lit : bit->second) {
    index_.erase(lit->key);
    entries_.erase(lit);
    ++erased;
  }
  by_service_.erase(bit);
  stats_.invalidations += erased;
  return erased;
}

std::size_t decision_cache::erase_forwards_to(peer_id hop) {
  std::size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool names_hop =
        it->value.kind == decision::verdict::forward &&
        std::find(it->value.next_hops.begin(), it->value.next_hops.end(), hop) !=
            it->value.next_hops.end();
    if (names_hop) {
      svc_index_remove(it);
      index_.erase(it->key);
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  stats_.invalidations += erased;
  return erased;
}

void decision_cache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  index_.clear();
  by_service_.clear();
}

std::uint64_t decision_cache::hit_count(const cache_key& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  if (clock_ && expired_at(*it->second, clock_->now())) return 0;
  return it->second->hits;
}

std::size_t decision_cache::purge_expired() {
  if (!clock_) return 0;
  const time_point now = clock_->now();
  std::size_t purged = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired_at(*it, now)) {
      svc_index_remove(it);
      index_.erase(it->key);
      it = entries_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  stats_.expired += purged;
  return purged;
}

bytes decision_cache::snapshot(time_point now) const {
  writer w;
  w.u8(1);  // snapshot format version
  // Count live entries first (expired ones are omitted).
  std::uint64_t live = 0;
  for (const entry& e : entries_) {
    if (!expired_at(e, now)) ++live;
  }
  w.varint(live);
  // LRU-first so restore's inserts replay recency in order and the MRU
  // entry lands at the front again.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const entry& e = *it;
    if (expired_at(e, now)) continue;
    w.u64(e.key.l3_src);
    w.u32(e.key.service);
    w.u64(e.key.connection);
    w.u64(e.hits);
    const std::uint64_t remaining_ns =
        e.expires == time_point::max()
            ? 0
            : static_cast<std::uint64_t>((e.expires - now).count());
    w.u64(remaining_ns);
    w.u8(static_cast<std::uint8_t>(e.value.kind));
    w.varint(e.value.next_hops.size());
    for (const peer_id hop : e.value.next_hops) w.u64(hop);
  }
  return w.take();
}

std::size_t decision_cache::restore_warm(const_byte_span data, time_point now) {
  reader r(data);
  const std::uint8_t version = r.u8();
  if (version != 1) throw serial_error("decision_cache snapshot: unknown version");
  const std::uint64_t count = r.varint();
  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    cache_key key;
    key.l3_src = r.u64();
    key.service = r.u32();
    key.connection = r.u64();
    const std::uint64_t hits = r.u64();
    const std::uint64_t remaining_ns = r.u64();
    decision d;
    d.kind = static_cast<decision::verdict>(r.u8());
    const std::uint64_t hop_count = r.varint();
    d.next_hops.reserve(hop_count);
    for (std::uint64_t h = 0; h < hop_count; ++h) d.next_hops.push_back(r.u64());
    d.ttl = nanoseconds(static_cast<std::int64_t>(remaining_ns));
    insert(key, std::move(d));
    // insert() computes expires = now + remaining and zeroes the hit
    // count; re-apply the snapshot's count so Appendix B queries see the
    // pre-failover value.
    auto it = index_.find(key);
    if (it != index_.end()) it->second->hits = hits;
    ++restored;
  }
  (void)now;
  return restored;
}

// ---- cache_invalidation_bus -------------------------------------------

namespace {
inline void bus_spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#else
  asm volatile("" ::: "memory");
#endif
}
}  // namespace

cache_invalidation_bus::cache_invalidation_bus(std::size_t shards, std::size_t depth) {
  lanes_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) lanes_.push_back(std::make_unique<lane>(depth));
}

void cache_invalidation_bus::publish(cache_command cmd) {
  cmd.seq = published_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& l : lanes_) {
    while (!l->ring.try_push(cmd)) bus_spin_pause();
  }
}

std::size_t cache_invalidation_bus::drain(std::size_t shard, decision_cache& cache) {
  lane& l = *lanes_[shard];
  std::size_t applied = 0;
  std::uint64_t last_seq = 0;
  while (auto cmd = l.ring.try_pop()) {
    switch (cmd->op) {
      case cache_op::erase_connection:
        cache.erase_connection(cmd->service, cmd->connection);
        break;
      case cache_op::erase_service:
        cache.erase_service(cmd->service);
        break;
      case cache_op::erase_next_hop:
        cache.erase_forwards_to(cmd->hop);
        break;
      case cache_op::clear:
        cache.clear();
        break;
    }
    last_seq = cmd->seq;
    ++applied;
  }
  if (applied > 0) l.applied.store(last_seq, std::memory_order_release);
  return applied;
}

bool cache_invalidation_bus::quiesced() const {
  const std::uint64_t p = published_.load(std::memory_order_acquire);
  for (const auto& l : lanes_) {
    if (l->applied.load(std::memory_order_acquire) < p) return false;
  }
  return true;
}

}  // namespace interedge::core
