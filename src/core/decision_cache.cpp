#include "core/decision_cache.h"

namespace interedge::core {
namespace {

crypto::siphash_key seed_to_key(std::uint64_t seed) {
  crypto::siphash_key k{};
  for (int i = 0; i < 8; ++i) {
    k[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    k[8 + i] = static_cast<std::uint8_t>(~seed >> (8 * i));
  }
  return k;
}

}  // namespace

std::size_t decision_cache::key_hash::operator()(const cache_key& k) const {
  std::uint8_t packed[8 + 4 + 8];
  for (int i = 0; i < 8; ++i) packed[i] = static_cast<std::uint8_t>(k.l3_src >> (8 * i));
  for (int i = 0; i < 4; ++i) packed[8 + i] = static_cast<std::uint8_t>(k.service >> (8 * i));
  for (int i = 0; i < 8; ++i) packed[12 + i] = static_cast<std::uint8_t>(k.connection >> (8 * i));
  return static_cast<std::size_t>(crypto::siphash24(seed, const_byte_span(packed, sizeof(packed))));
}

decision_cache::decision_cache(std::size_t capacity, std::uint64_t hash_seed)
    : index_(16, key_hash{seed_to_key(hash_seed)}), capacity_(capacity == 0 ? 1 : capacity) {
  // Size the index for the full working set up front so steady-state
  // lookups and inserts never trigger a rehash on the fast path.
  index_.reserve(capacity_);
}

std::optional<decision> decision_cache::lookup(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second->hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // bump recency
  return it->second->value;
}

bool decision_cache::contains(const cache_key& key) const { return index_.count(key) > 0; }

void decision_cache::insert(const cache_key& key, decision d) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(d);
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.inserts;
    return;
  }
  if (entries_.size() >= capacity_) {
    // Recycle the LRU node in place instead of pop+push: an insert at
    // capacity (the steady state) performs no list-node allocation.
    auto victim = std::prev(entries_.end());
    index_.erase(victim->key);
    victim->key = key;
    victim->value = std::move(d);
    victim->hits = 0;
    entries_.splice(entries_.begin(), entries_, victim);
    index_[key] = entries_.begin();
    ++stats_.evictions;
    ++stats_.inserts;
    return;
  }
  entries_.push_front(entry{key, std::move(d), 0});
  index_[key] = entries_.begin();
  ++stats_.inserts;
}

bool decision_cache::erase(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  entries_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t decision_cache::erase_connection(ilp::service_id service,
                                             ilp::connection_id connection) {
  std::size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key.service == service && it->key.connection == connection) {
      index_.erase(it->key);
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  stats_.invalidations += erased;
  return erased;
}

std::size_t decision_cache::erase_service(ilp::service_id service) {
  std::size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key.service == service) {
      index_.erase(it->key);
      it = entries_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  stats_.invalidations += erased;
  return erased;
}

void decision_cache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  index_.clear();
}

std::uint64_t decision_cache::hit_count(const cache_key& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second->hits;
}

}  // namespace interedge::core
