#include "core/decision_cache.h"

namespace interedge::core {

crypto::siphash_key cache_hash_key(std::uint64_t seed) {
  crypto::siphash_key k{};
  for (int i = 0; i < 8; ++i) {
    k[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    k[8 + i] = static_cast<std::uint8_t>(~seed >> (8 * i));
  }
  return k;
}

std::uint64_t cache_key_hash(const crypto::siphash_key& k, const cache_key& key) {
  std::uint8_t packed[8 + 4 + 8];
  for (int i = 0; i < 8; ++i) packed[i] = static_cast<std::uint8_t>(key.l3_src >> (8 * i));
  for (int i = 0; i < 4; ++i) packed[8 + i] = static_cast<std::uint8_t>(key.service >> (8 * i));
  for (int i = 0; i < 8; ++i) {
    packed[12 + i] = static_cast<std::uint8_t>(key.connection >> (8 * i));
  }
  return crypto::siphash24(k, const_byte_span(packed, sizeof(packed)));
}

decision_cache::decision_cache(std::size_t capacity, std::uint64_t hash_seed)
    : index_(16, key_hash{cache_hash_key(hash_seed)}), capacity_(capacity == 0 ? 1 : capacity) {
  // Size the index for the full working set up front so steady-state
  // lookups and inserts never trigger a rehash on the fast path.
  index_.reserve(capacity_);
}

void decision_cache::svc_index_add(lru_list::iterator it) {
  svc_bucket& bucket = by_service_[it->key.service];
  bucket.push_front(it);
  it->svc_it = bucket.begin();
}

void decision_cache::svc_index_remove(lru_list::iterator it) {
  auto bit = by_service_.find(it->key.service);
  bit->second.erase(it->svc_it);
  if (bit->second.empty()) by_service_.erase(bit);
}

std::optional<decision> decision_cache::lookup(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  ++it->second->hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // bump recency
  return it->second->value;
}

bool decision_cache::contains(const cache_key& key) const { return index_.count(key) > 0; }

void decision_cache::insert(const cache_key& key, decision d) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(d);
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.inserts;
    return;
  }
  if (entries_.size() >= capacity_) {
    // Recycle the LRU node in place instead of pop+push: an insert at
    // capacity (the steady state) performs no list-node allocation. The
    // victim may belong to a different service, so its secondary-index
    // slot moves too.
    auto victim = std::prev(entries_.end());
    svc_index_remove(victim);
    index_.erase(victim->key);
    victim->key = key;
    victim->value = std::move(d);
    victim->hits = 0;
    entries_.splice(entries_.begin(), entries_, victim);
    index_[key] = entries_.begin();
    svc_index_add(entries_.begin());
    ++stats_.evictions;
    ++stats_.inserts;
    return;
  }
  entries_.push_front(entry{key, std::move(d), 0, {}});
  index_[key] = entries_.begin();
  svc_index_add(entries_.begin());
  ++stats_.inserts;
}

bool decision_cache::erase(const cache_key& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  svc_index_remove(it->second);
  entries_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
  return true;
}

std::size_t decision_cache::erase_connection(ilp::service_id service,
                                             ilp::connection_id connection) {
  auto bit = by_service_.find(service);
  if (bit == by_service_.end()) return 0;
  std::size_t erased = 0;
  svc_bucket& bucket = bit->second;
  for (auto sit = bucket.begin(); sit != bucket.end();) {
    const lru_list::iterator lit = *sit;
    if (lit->key.connection == connection) {
      index_.erase(lit->key);
      entries_.erase(lit);
      sit = bucket.erase(sit);
      ++erased;
    } else {
      ++sit;
    }
  }
  if (bucket.empty()) by_service_.erase(bit);
  stats_.invalidations += erased;
  return erased;
}

std::size_t decision_cache::erase_service(ilp::service_id service) {
  auto bit = by_service_.find(service);
  if (bit == by_service_.end()) return 0;
  std::size_t erased = 0;
  for (const lru_list::iterator lit : bit->second) {
    index_.erase(lit->key);
    entries_.erase(lit);
    ++erased;
  }
  by_service_.erase(bit);
  stats_.invalidations += erased;
  return erased;
}

void decision_cache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  index_.clear();
  by_service_.clear();
}

std::uint64_t decision_cache::hit_count(const cache_key& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second->hits;
}

// ---- cache_invalidation_bus -------------------------------------------

namespace {
inline void bus_spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#else
  asm volatile("" ::: "memory");
#endif
}
}  // namespace

cache_invalidation_bus::cache_invalidation_bus(std::size_t shards, std::size_t depth) {
  lanes_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) lanes_.push_back(std::make_unique<lane>(depth));
}

void cache_invalidation_bus::publish(cache_command cmd) {
  cmd.seq = published_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& l : lanes_) {
    while (!l->ring.try_push(cmd)) bus_spin_pause();
  }
}

std::size_t cache_invalidation_bus::drain(std::size_t shard, decision_cache& cache) {
  lane& l = *lanes_[shard];
  std::size_t applied = 0;
  std::uint64_t last_seq = 0;
  while (auto cmd = l.ring.try_pop()) {
    switch (cmd->op) {
      case cache_op::erase_connection:
        cache.erase_connection(cmd->service, cmd->connection);
        break;
      case cache_op::erase_service:
        cache.erase_service(cmd->service);
        break;
      case cache_op::clear:
        cache.clear();
        break;
    }
    last_seq = cmd->seq;
    ++applied;
  }
  if (applied > 0) l.applied.store(last_seq, std::memory_order_release);
  return applied;
}

bool cache_invalidation_bus::quiesced() const {
  const std::uint64_t p = published_.load(std::memory_order_acquire);
  for (const auto& l : lanes_) {
    if (l->applied.load(std::memory_order_acquire) < p) return false;
  }
  return true;
}

}  // namespace interedge::core
