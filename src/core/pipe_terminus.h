// The pipe-terminus fast path (paper §3.1, §4, Figure 2).
//
// Every packet entering an SN lands here after its ILP header is decrypted
// by the pipe layer. The terminus:
//   1. queries the decision cache with (L3 src, service ID, connection ID);
//   2. on a hit, applies the match-action decision directly (fast path);
//   3. on a miss, upcalls the service module over the slow-path channel and
//      applies the returned decision, installing any cache entries the
//      module requested.
//
// The channel may be asynchronous (service on another thread/process), so
// the terminus keeps a bounded in-flight table and drains completions via
// pump(). With the inline channel a submit completes immediately and
// handle() drains it before returning.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/channel.h"
#include "core/decision_cache.h"
#include "core/packet.h"

namespace interedge::core {

struct terminus_stats {
  std::uint64_t received = 0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t forwarded = 0;   // copies sent
  std::uint64_t delivered = 0;   // consumed locally by a service
  std::uint64_t dropped = 0;
  std::uint64_t backpressure = 0;  // submit retries due to a full channel
};

class pipe_terminus {
 public:
  // `forward` sends a packet to an adjacent element over the node's pipes.
  using forward_fn = std::function<void(peer_id to, const ilp::ilp_header&, const bytes& payload)>;

  pipe_terminus(decision_cache& cache, slowpath_channel& channel, forward_fn forward);

  // Processes one decrypted ingress packet.
  void handle(packet pkt);

  // Processes a whole ingress batch. Consecutive packets sharing a cache
  // key reuse one decision-cache lookup (one recency bump per run — the
  // cache is soft state, so batched accounting is within its contract),
  // and the slow-path channel is drained once at the end of the batch
  // instead of once per packet. Packets are consumed (moved from).
  void handle_batch(std::span<packet> pkts);

  // Drains completed slow-path responses; returns how many were applied.
  std::size_t pump();

  // Observability (ISSUE 2): resolves lock-free metric handles in `reg`
  // (per-service rx families, path counters, drop counters, an in-flight
  // gauge) and installs the tracer used for sampled per-packet stage
  // captures. Without this call the terminus maintains only its plain
  // stats struct. Handle increments are batched per handle_batch call, so
  // the per-packet telemetry cost is a couple of register increments.
  void enable_telemetry(metrics_registry& reg, trace::tracer* tracer);

  // Seeds the slow-path token counter. The sharded datapath gives each
  // shard's terminus a disjoint token range (slowpath_hub::token_seed) so
  // the hub can route a response back to the terminus that issued it.
  void set_token_seed(std::uint64_t seed) { next_token_ = seed; }

  // Invoked on every submit retry while the slow-path channel is full, in
  // addition to pump(). A worker shard uses it to keep servicing its other
  // obligations (invalidation bus, egress spill) so the control thread —
  // whose progress the full channel is waiting on — can never deadlock
  // against a worker stuck in this loop.
  void set_backpressure_hook(std::function<void()> hook) {
    backpressure_hook_ = std::move(hook);
  }

  // True while slow-path responses are outstanding.
  bool busy() const { return !in_flight_.empty(); }
  std::size_t in_flight() const { return in_flight_.size(); }

  const terminus_stats& stats() const { return stats_; }

 private:
  void apply(const decision& d, const ilp::ilp_header& header, const bytes& payload);
  // apply() plus sampled emit-stage timing and a ring capture.
  void apply_traced(const decision& d, const ilp::ilp_header& header, const bytes& payload,
                    bool sampled);
  void complete(slowpath_response resp);
  counter& service_rx_counter(ilp::service_id service);
  // Adds the stats_ movement since `before` to the metric handles.
  void flush_deltas(const terminus_stats& before);

  decision_cache& cache_;
  slowpath_channel& channel_;
  forward_fn forward_;
  std::function<void()> backpressure_hook_;
  std::unordered_map<std::uint64_t, packet> in_flight_;
  std::uint64_t next_token_ = 1;
  terminus_stats stats_;

  // Telemetry (null until enable_telemetry). Slot 0 of the per-service
  // table aggregates ids outside the well-known range.
  static constexpr std::size_t kServiceSlots = 32;
  metrics_registry* reg_ = nullptr;
  trace::tracer* tracer_ = nullptr;
  counter* m_fast_ = nullptr;
  counter* m_slow_ = nullptr;
  counter* m_forwarded_ = nullptr;
  counter* m_delivered_ = nullptr;
  counter* m_dropped_ = nullptr;
  counter* m_backpressure_ = nullptr;
  gauge* m_inflight_ = nullptr;
  std::array<counter*, kServiceSlots> rx_by_service_{};
};

}  // namespace interedge::core
