// The pipe-terminus fast path (paper §3.1, §4, Figure 2).
//
// Every packet entering an SN lands here after its ILP header is decrypted
// by the pipe layer. The terminus:
//   1. queries the decision cache with (L3 src, service ID, connection ID);
//   2. on a hit, applies the match-action decision directly (fast path);
//   3. on a miss, upcalls the service module over the slow-path channel and
//      applies the returned decision, installing any cache entries the
//      module requested.
//
// The channel may be asynchronous (service on another thread/process), so
// the terminus keeps a bounded in-flight table and drains completions via
// pump(). With the inline channel a submit completes immediately and
// handle() drains it before returning.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/channel.h"
#include "core/decision_cache.h"
#include "core/packet.h"

namespace interedge::core {

struct terminus_stats {
  std::uint64_t received = 0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::uint64_t forwarded = 0;   // copies sent
  std::uint64_t delivered = 0;   // consumed locally by a service
  std::uint64_t dropped = 0;
  std::uint64_t backpressure = 0;  // submit retries due to a full channel
  std::uint64_t shed = 0;  // packets given a temporary default verdict
};

// Degradation policy for a saturated or wedged slow path (DESIGN.md §10).
// With high_water configured the terminus never blocks on the channel:
// past the mark (or after submit_retries failed submits) it sheds load by
// installing a short-TTL default verdict in the decision cache and
// applying it, so the fast path keeps flowing while the slow path drains.
// Control packets are exempt — they mutate service state and always wait.
struct slowpath_policy {
  const clock* clk = nullptr;  // time source for deadlines and shed TTLs
  // Per-request deadline stamped into slowpath_request.deadline_ns;
  // 0 = no deadline.
  nanoseconds deadline{0};
  // In-flight slow-path packets that trigger shedding; 0 = legacy
  // behavior (block until the channel accepts).
  std::size_t high_water = 0;
  // Failed submit attempts (channel full) before the packet sheds.
  std::size_t submit_retries = 64;
  // Lifetime of shed verdicts; they age out so recovered services regain
  // their flows without explicit invalidation.
  nanoseconds shed_ttl = std::chrono::milliseconds(50);
};

class pipe_terminus {
 public:
  // `forward` sends a packet to an adjacent element over the node's pipes.
  // The payload span is readable only for the duration of the call — on the
  // zero-copy path it aliases an ingress slab; implementations that defer
  // the send (egress rings, the uring tx path's completion-pinned slabs)
  // must copy or take a slab reference before returning.
  using forward_fn =
      std::function<void(peer_id to, const ilp::ilp_header&, const_byte_span payload)>;

  pipe_terminus(decision_cache& cache, slowpath_channel& channel, forward_fn forward);

  // Processes one decrypted ingress packet.
  void handle(packet pkt);

  // Processes a whole ingress batch. Consecutive packets sharing a cache
  // key reuse one decision-cache lookup (one recency bump per run — the
  // cache is soft state, so batched accounting is within its contract),
  // and the slow-path channel is drained once at the end of the batch
  // instead of once per packet. Packets are consumed (moved from).
  void handle_batch(std::span<packet> pkts);

  // Zero-copy batch: payload spans alias ingress buffers owned by the
  // caller, valid for the duration of the call. The fast path never copies
  // a byte; only packets detouring to the slow path (the in-flight pending
  // table outlives the batch) are copied into owned packets.
  void handle_batch(std::span<packet_view> pkts);

  // Drains completed slow-path responses; returns how many were applied.
  std::size_t pump();

  // Observability (ISSUE 2): resolves lock-free metric handles in `reg`
  // (per-service rx families, path counters, drop counters, an in-flight
  // gauge) and installs the tracer used for sampled per-packet stage
  // captures. Without this call the terminus maintains only its plain
  // stats struct. Handle increments are batched per handle_batch call, so
  // the per-packet telemetry cost is a couple of register increments.
  void enable_telemetry(metrics_registry& reg, trace::tracer* tracer);

  // Cross-hop path tracing (ISSUE 5): packets whose sealed header carries
  // a sampled trace context emit hop spans (fast path, slow path, shed,
  // egress forward) into `rec`, and forwarded copies carry the context on
  // with hop_count bumped and this hop's span as parent. Packets without a
  // context — the overwhelming majority — pay one failed metadata lookup.
  void enable_path_tracing(trace::path_recorder* rec) { path_rec_ = rec; }

  // Installs the degradation policy (see slowpath_policy).
  void set_slowpath_policy(slowpath_policy policy) { policy_ = policy; }
  const slowpath_policy& policy() const { return policy_; }

  // Per-service shed verdict ("pass or drop, per service policy"): the
  // temporary decision installed when this service's slow-path work is
  // shed. Unset services shed to drop (fail closed).
  void set_shed_verdict(ilp::service_id service, decision d) {
    shed_verdicts_[service] = std::move(d);
  }

  // Seeds the slow-path token counter. The sharded datapath gives each
  // shard's terminus a disjoint token range (slowpath_hub::token_seed) so
  // the hub can route a response back to the terminus that issued it.
  void set_token_seed(std::uint64_t seed) { next_token_ = seed; }

  // Invoked on every submit retry while the slow-path channel is full, in
  // addition to pump(). A worker shard uses it to keep servicing its other
  // obligations (invalidation bus, egress spill) so the control thread —
  // whose progress the full channel is waiting on — can never deadlock
  // against a worker stuck in this loop.
  void set_backpressure_hook(std::function<void()> hook) {
    backpressure_hook_ = std::move(hook);
  }

  // True while slow-path responses are outstanding.
  bool busy() const { return !in_flight_.empty(); }
  std::size_t in_flight() const { return in_flight_.size(); }

  const terminus_stats& stats() const { return stats_; }

  // Pushes any stats movement not yet reflected in the metric handles.
  // handle()/handle_batch() flush on exit, but verdicts applied by a bare
  // pump() between packets (the worker loop, the control thread's poll)
  // would otherwise slip under the next flush's watermark and vanish from
  // the metrics view.
  void flush_telemetry();

 private:
  // A slow-path packet parked until its response arrives; trace_start_ns
  // is 0 unless the packet carries a sampled trace context, in which case
  // the eventual hop_slow span covers submit → completed verdict.
  struct pending {
    packet pkt;
    trace::trace_context tc{};
    std::uint64_t trace_start_ns = 0;
  };

  // Shared implementation behind the two handle_batch overloads (P is
  // packet or packet_view; instantiated in the .cpp).
  template <typename P>
  void handle_batch_impl(std::span<P> pkts);

  void apply(const decision& d, const ilp::ilp_header& header, const_byte_span payload);
  // apply() plus sampled emit-stage timing and a ring capture.
  void apply_traced(const decision& d, const ilp::ilp_header& header, const_byte_span payload,
                    bool sampled);
  // Decodes a sampled trace context, if the packet carries one and path
  // tracing is enabled.
  std::optional<trace::trace_context> sampled_ctx(const ilp::ilp_header& header) const {
    if (path_rec_ == nullptr) return std::nullopt;
    auto tc = header.trace_ctx();
    if (!tc || !tc->sampled()) return std::nullopt;
    return tc;
  }
  // Fast-path verdict application: routes through the path-span emitter
  // when the packet is traced, plain apply_traced otherwise.
  void apply_or_trace(const decision& d, const ilp::ilp_header& header,
                      const_byte_span payload, bool sampled, std::uint16_t anno);
  // Applies `d` emitting one `kind` span (id `span_id`, covering
  // start_ns → now) plus one forward span per egress copy; forwarded
  // headers carry the context on with hop_count + 1.
  void apply_with_path(const decision& d, const ilp::ilp_header& header, const_byte_span payload,
                       const trace::trace_context& tc, std::uint16_t anno,
                       trace::span_kind kind, std::uint64_t start_ns, std::uint64_t span_id);
  void complete(slowpath_response resp);
  bool should_shed() const {
    return policy_.high_water > 0 && in_flight_.size() >= policy_.high_water;
  }
  // Installs the service's default verdict (TTL'd) and applies it now.
  void shed_packet(peer_id l3_src, const ilp::ilp_header& header, const_byte_span payload,
                   bool sampled);
  // Submits with the policy's retry bound; false = caller sheds. Control
  // packets (and the legacy no-policy mode) retry until accepted.
  bool submit_bounded(const slowpath_request& req, bool is_control);
  std::uint64_t deadline_for_now() const {
    if (policy_.clk == nullptr || policy_.deadline.count() <= 0) return 0;
    return static_cast<std::uint64_t>(
        (policy_.clk->now() + policy_.deadline).time_since_epoch().count());
  }
  counter& service_rx_counter(ilp::service_id service);

  decision_cache& cache_;
  slowpath_channel& channel_;
  forward_fn forward_;
  std::function<void()> backpressure_hook_;
  std::unordered_map<std::uint64_t, pending> in_flight_;
  std::uint64_t next_token_ = 1;
  terminus_stats stats_;
  terminus_stats flushed_;  // watermark of stats already in the metric handles
  slowpath_policy policy_;
  std::unordered_map<ilp::service_id, decision> shed_verdicts_;

  // Telemetry (null until enable_telemetry). Slot 0 of the per-service
  // table aggregates ids outside the well-known range.
  static constexpr std::size_t kServiceSlots = 32;
  metrics_registry* reg_ = nullptr;
  trace::tracer* tracer_ = nullptr;
  trace::path_recorder* path_rec_ = nullptr;
  counter* m_fast_ = nullptr;
  counter* m_slow_ = nullptr;
  counter* m_forwarded_ = nullptr;
  counter* m_delivered_ = nullptr;
  counter* m_dropped_ = nullptr;
  counter* m_backpressure_ = nullptr;
  counter* m_shed_ = nullptr;
  gauge* m_inflight_ = nullptr;
  std::array<counter*, kServiceSlots> rx_by_service_{};
};

}  // namespace interedge::core
