// Routing interface the edomain layer provides to an SN: given a
// destination host address, which adjacent element (host, intra-edomain SN,
// or inter-edomain gateway SN) should the packet go to next?
#pragma once

#include <optional>

#include "core/packet.h"

namespace interedge::core {

class router {
 public:
  virtual ~router() = default;
  virtual std::optional<peer_id> next_hop(edge_addr dest) const = 0;
};

}  // namespace interedge::core
