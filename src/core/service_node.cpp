#include "core/service_node.h"

#include "common/logging.h"
#include "common/serial.h"

namespace interedge::core {

slowpath_response to_response(std::uint64_t token, module_result result) {
  slowpath_response resp;
  resp.token = token;
  resp.verdict = std::move(result.verdict);
  resp.cache_inserts = std::move(result.cache_inserts);
  resp.sends = std::move(result.sends);
  return resp;
}

service_node::service_node(sn_config config, const clock& clk, send_datagram_fn send_datagram,
                           scheduler_fn scheduler, const router* route)
    : config_(config),
      clock_(clk),
      send_datagram_(std::move(send_datagram)),
      scheduler_(std::move(scheduler)),
      router_(route),
      cache_(config.cache_capacity, config.cache_hash_seed),
      tracer_(metrics_, trace::tracer::config{.hop = config.id,
                                              .sample_shift = config.trace_sample_shift,
                                              .ring_capacity = config.trace_ring_capacity}),
      pipes_(
          config.id,
          [this](peer_id to, bytes datagram) { send_datagram_(to, std::move(datagram)); },
          [this](peer_id from, const ilp::ilp_header& header, bytes payload) {
            terminus_->handle(packet{from, header, std::move(payload)});
          }) {
  env_ = std::make_unique<exec_env>(*this);
  channel_ = std::make_unique<inline_channel>(
      [this](slowpath_request req) { return handle_slowpath(std::move(req)); });
  terminus_ = std::make_unique<pipe_terminus>(
      cache_, *channel_,
      [this](peer_id to, const ilp::ilp_header& header, const bytes& payload) {
        pipes_.send(to, header, payload);
      });
  terminus_->enable_telemetry(metrics_, &tracer_);
  pipes_.set_metrics(metrics_);
  pipes_.set_batch_deliver([this](peer_id from, std::span<ilp::opened_packet> pkts) {
    batch_scratch_.clear();
    batch_scratch_.reserve(pkts.size());
    for (ilp::opened_packet& p : pkts) {
      batch_scratch_.push_back(
          packet{from, std::move(p.header), bytes(p.payload.begin(), p.payload.end())});
    }
    terminus_->handle_batch(batch_scratch_);
  });
}

void service_node::on_datagram(peer_id from, const_byte_span datagram) {
  trace::scoped_tracer st(&tracer_);
  pipes_.on_datagram(from, datagram);
}

void service_node::on_datagram_batch(peer_id from,
                                     std::span<const const_byte_span> datagrams) {
  trace::scoped_tracer st(&tracer_);
  pipes_.on_datagram_batch(from, datagrams);
}

void service_node::on_datagrams(std::span<const std::pair<peer_id, bytes>> datagrams) {
  trace::scoped_tracer st(&tracer_);
  // Feed maximal same-peer runs through the batched path; order across
  // peers is preserved because runs are flushed in arrival order.
  std::size_t i = 0;
  while (i < datagrams.size()) {
    const peer_id from = datagrams[i].first;
    std::size_t j = i;
    span_scratch_.clear();
    while (j < datagrams.size() && datagrams[j].first == from) {
      span_scratch_.emplace_back(datagrams[j].second.data(), datagrams[j].second.size());
      ++j;
    }
    pipes_.on_datagram_batch(from, span_scratch_);
    i = j;
  }
}

void service_node::send(peer_id to, const ilp::ilp_header& header, bytes payload) {
  pipes_.send(to, header, std::move(payload));
}

void service_node::schedule(nanoseconds delay, std::function<void()> fn) {
  scheduler_(delay, std::move(fn));
}

std::optional<peer_id> service_node::next_hop(edge_addr dest) const {
  if (!router_) return std::nullopt;
  return router_->next_hop(dest);
}

std::string service_node::stats_snapshot() {
  const time_point now = clock_.now();
  double elapsed = 0;
  if (have_snapshot_) {
    elapsed = static_cast<double>((now - last_snapshot_).count()) / 1e9;
  }
  last_snapshot_ = now;
  have_snapshot_ = true;
  return stats_reporter_.delta_report(metrics_, elapsed);
}

void service_node::start_stats_reporting(nanoseconds interval,
                                         std::function<void(const std::string&)> sink,
                                         std::uint64_t max_reports) {
  stats_running_ = true;
  schedule_stats_tick(
      interval, std::make_shared<std::function<void(const std::string&)>>(std::move(sink)),
      max_reports);
}

void service_node::schedule_stats_tick(
    nanoseconds interval, std::shared_ptr<std::function<void(const std::string&)>> sink,
    std::uint64_t remaining) {
  scheduler_(interval, [this, interval, sink, remaining] {
    if (!stats_running_) return;
    (*sink)(stats_snapshot());
    if (remaining == 1) {
      stats_running_ = false;
      return;
    }
    schedule_stats_tick(interval, sink, remaining == 0 ? 0 : remaining - 1);
  });
}

slowpath_response service_node::handle_slowpath(slowpath_request req) {
  packet pkt;
  pkt.l3_src = req.l3_src;
  try {
    pkt.header = ilp::ilp_header::decode(req.header_bytes);
  } catch (const serial_error&) {
    IE_LOG(warn) << "service_node " << config_.id << ": undecodable slow-path header";
    return to_response(req.token, module_result::drop());
  }
  pkt.payload = std::move(req.payload);
  return to_response(req.token, env_->dispatch(pkt));
}

}  // namespace interedge::core
