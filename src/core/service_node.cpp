#include "core/service_node.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cpu_topology.h"
#include "common/logging.h"
#include "common/serial.h"
#include "ilp/pipe.h"

namespace interedge::core {
namespace {

constexpr std::size_t kWorkerBatch = 32;

inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace

slowpath_response to_response(std::uint64_t token, module_result result) {
  slowpath_response resp;
  resp.token = token;
  resp.verdict = std::move(result.verdict);
  resp.cache_inserts = std::move(result.cache_inserts);
  resp.sends = std::move(result.sends);
  return resp;
}

service_node::worker_shard::worker_shard(std::size_t idx, const sn_config& cfg,
                                         std::size_t cache_cap, const clock* clk)
    : index(idx),
      cache(cache_cap, cfg.cache_hash_seed),
      tracer(reg, trace::tracer::config{.hop = cfg.id,
                                        .sample_shift = cfg.trace_sample_shift,
                                        .ring_capacity = cfg.trace_ring_capacity}),
      path_rec(trace::path_recorder::config{.node = cfg.id,
                                            .sample_shift = cfg.trace_sample_shift,
                                            .capacity = cfg.path_span_capacity,
                                            .clk = clk}),
      ingress(cfg.shard_ring_depth),
      egress(cfg.egress_ring_depth != 0 ? cfg.egress_ring_depth : cfg.shard_ring_depth) {
  m_rejected = &reg.get_counter("ilp.rx.rejected");
  m_no_replica = &reg.get_counter("sn.shard.no_replica");
  m_hits = &reg.get_counter("sn.cache.hits");
  m_misses = &reg.get_counter("sn.cache.misses");
  m_inserts = &reg.get_counter("sn.cache.inserts");
  m_evictions = &reg.get_counter("sn.cache.evictions");
  m_invalidations = &reg.get_counter("sn.cache.invalidations");
  m_expired = &reg.get_counter("sn.cache.expired");
  m_spill_drops = &reg.get_counter("sn.shard.egress_spill_drops");
}

service_node::service_node(sn_config config, const clock& clk, send_datagram_fn send_datagram,
                           scheduler_fn scheduler, const router* route)
    : config_(config),
      clock_(clk),
      send_datagram_(std::move(send_datagram)),
      scheduler_(std::move(scheduler)),
      router_(route),
      cache_(config.cache_capacity, config.cache_hash_seed),
      tracer_(metrics_, trace::tracer::config{.hop = config.id,
                                              .sample_shift = config.trace_sample_shift,
                                              .ring_capacity = config.trace_ring_capacity}),
      path_rec_(trace::path_recorder::config{.node = config.id,
                                             .sample_shift = config.trace_sample_shift,
                                             .capacity = config.path_span_capacity,
                                             .clk = &clk}),
      pipes_(
          config.id,
          [this](peer_id to, bytes datagram) { send_datagram_(to, std::move(datagram)); },
          [this](peer_id from, const ilp::ilp_header& header, bytes payload) {
            terminus_->handle(packet{from, header, std::move(payload)});
          }) {
  env_ = std::make_unique<exec_env>(*this);
  channel_ = std::make_unique<inline_channel>(
      [this](slowpath_request req) { return handle_slowpath(std::move(req)); });
  terminus_ = std::make_unique<pipe_terminus>(
      cache_, *channel_,
      [this](peer_id to, const ilp::ilp_header& header, const_byte_span payload) {
        // send_span seals straight out of the terminus' payload view (which
        // may alias an ingress slab) — no owned copy on the forward path.
        pipes_.send_span(to, header, payload);
      });
  terminus_->enable_telemetry(metrics_, &tracer_);
  if (config_.path_span_capacity > 0) terminus_->enable_path_tracing(&path_rec_);
  pipes_.set_metrics(metrics_);
  if (config_.blackbox_capacity > 0) {
    blackbox_ = std::make_unique<flight_recorder>(
        flight_recorder::config{.capacity = config_.blackbox_capacity,
                                .trigger_mask = config_.blackbox_triggers});
  }
  // Liveness transitions become node event spans the collector correlates
  // with in-flight traces (a failover mid-trace shows up annotated, not as
  // a dangling path) — and black-box triggers, so the flight recorder
  // freezes with the pre-fault tail intact.
  pipes_.set_peer_status_hook([this](peer_id peer, bool up) {
    if (!up) {
      emit_node_event(trace::kAnnoPeerDown, peer);
      if (blackbox_) {
        blackbox_->trigger(kTrigPeerDown, path_rec_.now(), peer);
      }
      // A dead adjacency invalidates every cached forward that names it:
      // otherwise established flows blackhole until LRU eviction while
      // the slow path would happily re-resolve around the failure.
      invalidate_next_hop(peer);
    }
  });
  m_slowpath_expired_ = &metrics_.get_counter("sn.slowpath.expired");
  m_checkpoint_taken_ = &metrics_.get_counter("sn.checkpoint.taken");
  m_checkpoint_bytes_ = &metrics_.get_counter("sn.checkpoint.bytes");
  // TTL'd entries (shed verdicts, degraded-service defaults) age out
  // against the node clock.
  cache_.set_clock(&clock_);
  {
    slowpath_policy pol;
    pol.clk = &clock_;
    pol.deadline = config_.slowpath_deadline;
    pol.high_water = config_.slowpath_high_water;
    pol.shed_ttl = config_.shed_ttl;
    terminus_->set_slowpath_policy(pol);
  }
  if (config_.keepalive_interval.count() > 0) {
    ilp::liveness_config lcfg;
    lcfg.keepalive_interval = config_.keepalive_interval;
    lcfg.miss_budget = config_.keepalive_miss_budget;
    lcfg.reconnect_backoff = config_.reconnect_backoff;
    lcfg.reconnect_backoff_max = config_.reconnect_backoff_max;
    // Node-unique jitter seed: peers of one recovered SN desynchronize.
    // An explicitly configured seed wins (root-seed plumbing).
    lcfg.jitter_seed = config_.liveness_jitter_seed != 0
                           ? config_.liveness_jitter_seed
                           : config_.id * 0x9e3779b97f4a7c15ull + 1;
    pipes_.enable_liveness(clock_, lcfg);
    liveness_running_ = true;
    schedule_liveness_tick();
  }
  if (config_.profiler_hz > 0) {
    profiler_ = std::make_unique<prof::profiler>(
        prof::profiler_config{.sample_hz = config_.profiler_hz,
                              .ring_slots = config_.profiler_ring_slots,
                              .max_stacks = config_.profiler_max_stacks,
                              .force_timer = config_.profiler_force_timer});
    // The constructing thread is the control thread (it owns the event
    // loop, the slow path and the egress drain); bind it now, arm
    // immediately — worker shards self-register as they start.
    profiler_->register_current_thread("control");
    profiler_->arm();
  }
  pipes_.set_batch_deliver([this](peer_id from, std::span<ilp::opened_packet> pkts) {
    // Zero-copy dispatch: the terminus consumes views aliasing the opened
    // payloads (decrypt arena or ingress slab). Only slow-path detours copy
    // into owned packets; the fast path never duplicates a payload byte.
    view_batch_scratch_.clear();
    view_batch_scratch_.reserve(pkts.size());
    for (ilp::opened_packet& p : pkts) {
      view_batch_scratch_.push_back(packet_view{from, std::move(p.header), p.payload});
    }
    terminus_->handle_batch(std::span<packet_view>(view_batch_scratch_));
  });
  if (config_.workers > 0) start_workers();
}

service_node::~service_node() {
  for (auto& sh : shards_) sh->stop.store(true, std::memory_order_release);
  for (auto& sh : shards_) {
    {
      std::lock_guard lk(sh->doorbell_mu);
      sh->doorbell.notify_one();
    }
    if (sh->thread.joinable()) sh->thread.join();
  }
  // Workers unregistered themselves on the way out; release the control
  // thread's slot too (the destructing thread is the one that registered
  // in the constructor — the SN lifecycle contract).
  if (profiler_) profiler_->unregister_current_thread();
}

// ---- multi-core datapath (DESIGN.md §9) ------------------------------

void service_node::start_workers() {
  const std::size_t n = config_.workers;
  const std::size_t cache_cap =
      config_.shard_cache_capacity != 0
          ? config_.shard_cache_capacity
          : std::max<std::size_t>(std::size_t{64}, config_.cache_capacity / n);
  // Placement (ISSUE 8): explicit worker_cpus wins; numa_aware derives an
  // assignment by striping shards across NUMA nodes (each shard then gets
  // its ring storage mbind'd onto its node below). Everything is advisory —
  // on a single-node box or without the syscalls this degrades to the
  // scheduler's choice, never to a failure.
  worker_cpu_assign_.assign(n, -1);
  if (!config_.worker_cpus.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      worker_cpu_assign_[i] = config_.worker_cpus[i % config_.worker_cpus.size()];
    }
  } else if (config_.numa_aware) {
    const auto& topo = sys::topology::get();
    for (std::size_t i = 0; i < n; ++i) {
      const auto& node = topo.nodes[i % topo.nodes.size()];
      if (!node.cpus.empty()) {
        worker_cpu_assign_[i] = node.cpus[(i / topo.nodes.size()) % node.cpus.size()];
      }
    }
  }
  if (config_.control_cpu >= 0) sys::pin_thread_to_cpu(config_.control_cpu);
  const std::size_t spill_max = config_.egress_spill_max;
  steerer_ = std::make_unique<flow_steerer>(config_.cache_hash_seed, n);
  bus_ = std::make_unique<cache_invalidation_bus>(n);
  hub_ = std::make_unique<slowpath_hub>(
      [this](slowpath_request req) { return handle_slowpath(std::move(req)); }, n, 1024,
      [this](std::size_t s) { wake_shard(s); });
  // Requests that age out while queued in the hub rings expire there (the
  // handler-side check in handle_slowpath covers the inline mode).
  hub_->set_deadline_clock(&clock_);
  hub_->set_expired_counter(m_slowpath_expired_);
  shards_.reserve(n);
  m_steered_.reserve(n);
  m_ingress_drops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<worker_shard>(i, config_, cache_cap, &clock_));
    worker_shard& sh = *shards_[i];
    if (config_.numa_aware && worker_cpu_assign_[i] >= 0) {
      // Land the shard's rings on its worker's node: the ingress slots are
      // the worker's hottest read set, the egress slots its hottest writes.
      const int node = sys::topology::get().node_of_cpu(worker_cpu_assign_[i]);
      if (node >= 0) {
        sys::bind_memory_to_node(sh.ingress.storage(), sh.ingress.storage_bytes(), node);
        sys::bind_memory_to_node(sh.egress.storage(), sh.egress.storage_bytes(), node);
      }
    }
    sh.terminus = std::make_unique<pipe_terminus>(
        sh.cache, hub_->endpoint(i),
        [&sh, spill_max](peer_id to, const ilp::ilp_header& header, const_byte_span payload) {
          // Never block the worker: a momentarily full egress ring spills
          // into the worker-private overflow, drained next iteration. The
          // spill is bounded (sn_config::egress_spill_max): past the cap
          // the forward is dropped and counted BEFORE paying the payload
          // copy — a stalled control thread costs packets (UDP is lossy by
          // contract), not unbounded memory.
          const bool ring_ok = sh.egress_overflow.empty() &&
                               sh.egress.size_approx() < sh.egress.capacity();
          if (!ring_ok && spill_max != 0 && sh.egress_overflow.size() >= spill_max) {
            sh.m_spill_drops->add();
            return;
          }
          outbound o;
          o.to = to;
          o.header = header;
          // The egress ring outlives the batch (and the slab the span may
          // alias), so the deferred send takes an owned copy here — the one
          // copy the sharded forward path still pays (DESIGN.md §12).
          o.payload.assign(payload.begin(), payload.end());
          if (ring_ok) {
            sh.egress.try_push(std::move(o));
          } else {
            sh.egress_overflow.push_back(std::move(o));
            sh.spill.store(sh.egress_overflow.size(), std::memory_order_release);
          }
        });
    sh.terminus->set_token_seed(slowpath_hub::token_seed(i));
    sh.terminus->enable_telemetry(sh.reg, &sh.tracer);
    if (config_.path_span_capacity > 0) sh.terminus->enable_path_tracing(&sh.path_rec);
    sh.cache.set_clock(&clock_);
    {
      slowpath_policy pol;
      pol.clk = &clock_;
      pol.deadline = config_.slowpath_deadline;
      pol.high_water = config_.slowpath_high_water;
      pol.shed_ttl = config_.shed_ttl;
      sh.terminus->set_slowpath_policy(pol);
    }
    // While the shard waits on a full slow-path ring it keeps applying
    // invalidations and flushing egress spill — the control thread's
    // progress (which empties that ring) can depend on both.
    sh.terminus->set_backpressure_hook([this, i] { worker_drain_aux(*shards_[i]); });
    m_steered_.push_back(&metrics_.get_counter("sn.steer.pkts", {{"shard", std::to_string(i)}}));
    m_ingress_drops_.push_back(
        &metrics_.get_counter("sn.shard.ingress_drops", {{"shard", std::to_string(i)}}));
  }
  // Receive-key replicas ride the FIFO ingress rings, so a replica is
  // always installed before any data sealed under those keys reaches the
  // shard (establish() fires the hook before flushing queued sends).
  pipes_.set_rx_keys_hook([this](peer_id peer, const ilp::pipe& p) { push_rx_update(peer, p); });
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

void service_node::wake_shard(std::size_t shard) {
  worker_shard& sh = *shards_[shard];
  if (sh.parked.load(std::memory_order_acquire)) {
    std::lock_guard lk(sh.doorbell_mu);
    sh.doorbell.notify_one();
  }
}

void service_node::push_rx_update(peer_id peer, const ilp::pipe& p) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    worker_shard& sh = *shards_[i];
    shard_msg msg;
    msg.from = peer;
    msg.rx_update = std::make_unique<ilp::pipe_rx>(p.rx_replica());
    // Key updates are never dropped: wait out a full ring, servicing the
    // hub and egress meanwhile so the worker can always make progress.
    while (sh.ingress.size_approx() >= sh.ingress.capacity()) {
      wake_shard(i);
      poll();
      spin_pause();
    }
    sh.ingress.try_push(std::move(msg));
    sh.pushed.fetch_add(1, std::memory_order_release);
    wake_shard(i);
  }
}

void service_node::steer(std::span<std::pair<peer_id, bytes>> datagrams) {
  trace::scoped_tracer st(&tracer_);
  std::size_t i = 0;
  while (i < datagrams.size()) {
    const peer_id from = datagrams[i].first;
    // Maximal same-peer run of data messages; anything else (handshakes,
    // unknown kinds, empties) flushes the run and is handled inline.
    std::size_t j = i;
    while (j < datagrams.size() && datagrams[j].first == from &&
           !datagrams[j].second.empty() &&
           static_cast<ilp::msg_kind>(datagrams[j].second[0]) == ilp::msg_kind::data) {
      ++j;
    }
    if (j > i) {
      steer_data_run(from, datagrams.subspan(i, j - i));
      i = j;
      continue;
    }
    pipes_.on_datagram(from, datagrams[i].second);
    ++i;
  }
  poll();
}

void service_node::steer_data_run(peer_id from, std::span<std::pair<peer_id, bytes>> run) {
  prof::cycle_scope sc(prof::cycle_stage::peek_steer);
  ilp::pipe* p = pipes_.pipe_for(from);
  if (p == nullptr) {
    // Data before any pipe: the inline path counts and logs the drop.
    for (auto& [peer, datagram] : run) pipes_.on_datagram(peer, datagram);
    return;
  }
  span_scratch_.clear();
  for (auto& [peer, datagram] : run) {
    span_scratch_.emplace_back(datagram.data() + 1, datagram.size() - 1);
  }
  p->peek_flow_batch(span_scratch_, peek_scratch_);
  for (std::size_t k = 0; k < run.size(); ++k) {
    if (!peek_scratch_[k].ok) {
      // Malformed framing or unknown SPI: the inline open makes — and
      // counts — the reject decision, exactly as the single-threaded path
      // would. (A tampered packet that peeks fine merely mis-steers; the
      // shard's authenticated open still rejects it.)
      pipes_.on_datagram(from, run[k].second);
      continue;
    }
    const cache_key key{from, peek_scratch_[k].service, peek_scratch_[k].connection};
    const std::size_t s = steerer_->shard_of(key);
    worker_shard& sh = *shards_[s];
    if (sh.ingress.size_approx() >= sh.ingress.capacity()) {
      // Ring-full backpressure: drop, counted per shard, never silent.
      m_ingress_drops_[s]->add();
      continue;
    }
    shard_msg msg;
    msg.from = from;
    msg.datagram = std::move(run[k].second);
    sh.ingress.try_push(std::move(msg));
    sh.pushed.fetch_add(1, std::memory_order_release);
    m_steered_[s]->add();
    wake_shard(s);
  }
}

void service_node::steer_views(std::span<std::pair<peer_id, buf::pkt_view>> datagrams) {
  trace::scoped_tracer st(&tracer_);
  std::size_t i = 0;
  while (i < datagrams.size()) {
    const peer_id from = datagrams[i].first;
    std::size_t j = i;
    while (j < datagrams.size() && datagrams[j].first == from &&
           !datagrams[j].second.empty() &&
           static_cast<ilp::msg_kind>(datagrams[j].second.span()[0]) == ilp::msg_kind::data) {
      ++j;
    }
    if (j > i) {
      steer_data_run_views(from, datagrams.subspan(i, j - i));
      i = j;
      continue;
    }
    // Handshakes / unknown kinds / empties run inline off the slab view;
    // the slab recycles when the caller clears its batch.
    pipes_.on_datagram(from, datagrams[i].second.span());
    ++i;
  }
  poll();
}

void service_node::steer_data_run_views(peer_id from,
                                        std::span<std::pair<peer_id, buf::pkt_view>> run) {
  prof::cycle_scope sc(prof::cycle_stage::peek_steer);
  ilp::pipe* p = pipes_.pipe_for(from);
  if (p == nullptr) {
    for (auto& [peer, view] : run) pipes_.on_datagram(peer, view.span());
    return;
  }
  span_scratch_.clear();
  for (auto& [peer, view] : run) {
    span_scratch_.push_back(view.span().subspan(1));
  }
  p->peek_flow_batch(span_scratch_, peek_scratch_);
  for (std::size_t k = 0; k < run.size(); ++k) {
    if (!peek_scratch_[k].ok) {
      pipes_.on_datagram(from, run[k].second.span());
      continue;
    }
    const cache_key key{from, peek_scratch_[k].service, peek_scratch_[k].connection};
    const std::size_t s = steerer_->shard_of(key);
    worker_shard& sh = *shards_[s];
    if (sh.ingress.size_approx() >= sh.ingress.capacity()) {
      m_ingress_drops_[s]->add();
      run[k].second.reset();  // drop the slab reference now, not at batch end
      continue;
    }
    // The slab reference itself crosses the ring: the slab stays pinned
    // until the worker finishes the batch and drops the view.
    shard_msg msg;
    msg.from = from;
    msg.view = std::move(run[k].second);
    sh.ingress.try_push(std::move(msg));
    sh.pushed.fetch_add(1, std::memory_order_release);
    m_steered_[s]->add();
    wake_shard(s);
  }
}

std::size_t service_node::drain_egress() {
  if (egress_paused_.load(std::memory_order_acquire)) return 0;
  prof::cycle_scope sc(prof::cycle_stage::egress);
  std::size_t n = 0;
  for (auto& shp : shards_) {
    worker_shard& sh = *shp;
    while (auto o = sh.egress.try_pop()) {
      // send_span seals into the manager's reused scratch and, when the
      // owner installed a raw/gather hook, goes out without building an
      // owned datagram at all.
      pipes_.send_span(o->to, o->header, o->payload);
      ++n;
    }
    if (sh.spill.load(std::memory_order_acquire) > 0) wake_shard(sh.index);
  }
  return n;
}

std::size_t service_node::poll() {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (shards_.empty()) {
    const std::size_t n = terminus_->pump();
    if (n > 0) terminus_->flush_telemetry();
    return n;
  }
  std::size_t n = hub_->pump();
  n += drain_egress();
  return n;
}

bool service_node::wait_idle(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  if (shards_.empty()) {
    for (;;) {
      if (terminus_->pump() > 0) terminus_->flush_telemetry();
      if (!terminus_->busy()) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
    }
  }
  int settled = 0;
  for (;;) {
    poll();
    bool idle = hub_->idle() && bus_->quiesced();
    if (idle) {
      for (auto& shp : shards_) {
        worker_shard& sh = *shp;
        // Read order matters: consumed (acquire) first — its release pairs
        // with everything the worker published before it, so the inflight /
        // spill / ring reads that follow cannot miss derived work.
        if (sh.consumed.load(std::memory_order_acquire) !=
                sh.pushed.load(std::memory_order_acquire) ||
            sh.inflight.load(std::memory_order_acquire) != 0 ||
            sh.spill.load(std::memory_order_acquire) != 0 || !sh.ingress.empty() ||
            !sh.egress.empty()) {
          idle = false;
          break;
        }
      }
    }
    if (idle) {
      // Two consecutive clean sweeps guard the remaining in-transition
      // windows (e.g. a worker between popping a response and publishing).
      if (++settled >= 2) return true;
    } else {
      settled = 0;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::yield();
  }
}

std::size_t service_node::worker_drain_aux(worker_shard& sh) {
  std::size_t n = bus_ ? bus_->drain(sh.index, sh.cache) : 0;
  while (!sh.egress_overflow.empty() && sh.egress.size_approx() < sh.egress.capacity()) {
    sh.egress.try_push(std::move(sh.egress_overflow.front()));
    sh.egress_overflow.pop_front();
    ++n;
  }
  sh.spill.store(sh.egress_overflow.size(), std::memory_order_release);
  return n;
}

void service_node::worker_flush_telemetry(worker_shard& sh) {
  // Verdicts the loop's bare pump() applied since the last handle_batch
  // (slow-path completions) carry their own stats movement.
  sh.terminus->flush_telemetry();
  const cache_stats& cs = sh.cache.stats();
  if (cs.hits != sh.last_cache.hits) sh.m_hits->add(cs.hits - sh.last_cache.hits);
  if (cs.misses != sh.last_cache.misses) sh.m_misses->add(cs.misses - sh.last_cache.misses);
  if (cs.inserts != sh.last_cache.inserts) sh.m_inserts->add(cs.inserts - sh.last_cache.inserts);
  if (cs.evictions != sh.last_cache.evictions) {
    sh.m_evictions->add(cs.evictions - sh.last_cache.evictions);
  }
  if (cs.invalidations != sh.last_cache.invalidations) {
    sh.m_invalidations->add(cs.invalidations - sh.last_cache.invalidations);
  }
  if (cs.expired != sh.last_cache.expired) sh.m_expired->add(cs.expired - sh.last_cache.expired);
  sh.last_cache = cs;
}

void service_node::worker_main(std::size_t shard) {
  worker_shard& sh = *shards_[shard];
  if (shard < worker_cpu_assign_.size() && worker_cpu_assign_[shard] >= 0) {
    sys::pin_thread_to_cpu(worker_cpu_assign_[shard]);
  }
  trace::scoped_tracer st(&sh.tracer);
  prof::scoped_cycle_set cycles(&sh.cycles);
  if (profiler_) {
    char name[16];
    std::snprintf(name, sizeof(name), "shard%zu", shard);
    profiler_->register_current_thread(name);
  }
  std::uint32_t idle_spins = 0;
  while (!sh.stop.load(std::memory_order_acquire)) {
    // Fault-injection stall: spin without advancing the heartbeat or
    // consuming work — the live-lock shape the watchdog detects.
    if (sh.stall.load(std::memory_order_acquire)) {
      spin_pause();
      continue;
    }
    sh.heartbeat.fetch_add(1, std::memory_order_relaxed);
    bool busy = worker_drain_aux(sh) > 0;

    sh.batch_scratch.clear();
    const std::size_t n = sh.ingress.try_pop_batch(sh.batch_scratch, kWorkerBatch);
    if (n > 0) {
      busy = true;
      auto& batch = sh.batch_scratch;
      std::size_t i = 0;
      while (i < batch.size()) {
        shard_msg& m = batch[i];
        if (m.rx_update) {
          sh.replicas.insert_or_assign(m.from, std::move(*m.rx_update));
          ++i;
          continue;
        }
        // Same-peer, same-storage run (no interleaved key update): one
        // batched decrypt, one terminus batch. Slab-view runs decrypt in
        // place inside the slabs and the terminus consumes packet_views
        // aliasing them; owned-bytes runs keep the copying decrypt.
        const peer_id from = m.from;
        const bool is_view = static_cast<bool>(m.view);
        std::size_t j = i;
        sh.body_scratch.clear();
        sh.mut_body_scratch.clear();
        while (j < batch.size() && batch[j].from == from && !batch[j].rx_update &&
               static_cast<bool>(batch[j].view) == is_view) {
          if (is_view) {
            sh.mut_body_scratch.push_back(batch[j].view.mutable_span().subspan(1));
          } else {
            sh.body_scratch.emplace_back(batch[j].datagram.data() + 1,
                                         batch[j].datagram.size() - 1);
          }
          ++j;
        }
        const std::size_t run_len = j - i;
        auto rit = sh.replicas.find(from);
        if (rit == sh.replicas.end()) {
          // Cannot happen via the steering path (the replica rides the
          // same FIFO ring, ahead of the data) — counted, not asserted.
          sh.m_no_replica->add(run_len);
          i = j;
          continue;
        }
        const std::size_t opened =
            is_view ? rit->second.decrypt_batch_mut(sh.mut_body_scratch, sh.opened_scratch)
                    : rit->second.decrypt_batch(sh.body_scratch, sh.opened_scratch);
        if (opened < run_len) {
          sh.m_rejected->add(run_len - opened);
        }
        if (is_view) {
          sh.view_pkt_scratch.clear();
          for (auto& op : sh.opened_scratch) {
            if (op) {
              sh.view_pkt_scratch.push_back(packet_view{from, std::move(op->header), op->payload});
            }
          }
          if (!sh.view_pkt_scratch.empty()) {
            sh.terminus->handle_batch(std::span<packet_view>(sh.view_pkt_scratch));
          }
        } else {
          sh.pkt_scratch.clear();
          for (auto& op : sh.opened_scratch) {
            if (op) {
              sh.pkt_scratch.push_back(packet{from, std::move(op->header),
                                              bytes(op->payload.begin(), op->payload.end())});
            }
          }
          if (!sh.pkt_scratch.empty()) sh.terminus->handle_batch(sh.pkt_scratch);
        }
        i = j;
      }
      // Drop the batch now (not at the top of the next iteration) so any
      // slab references it pinned recycle immediately.
      batch.clear();
    }

    if (sh.terminus->pump() > 0) busy = true;
    worker_drain_aux(sh);
    worker_flush_telemetry(sh);
    // inflight before consumed: wait_idle's consumed acquire then sees the
    // in-flight count covering everything this iteration submitted.
    sh.inflight.store(sh.terminus->in_flight(), std::memory_order_release);
    if (n > 0) sh.consumed.fetch_add(n, std::memory_order_release);

    if (busy) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 1024) {
      spin_pause();
      continue;
    }
    std::unique_lock lk(sh.doorbell_mu);
    sh.parked.store(true, std::memory_order_release);
    sh.doorbell.wait_for(lk, std::chrono::milliseconds(1), [&] {
      return sh.stop.load(std::memory_order_acquire) || !sh.ingress.empty();
    });
    sh.parked.store(false, std::memory_order_release);
    idle_spins = 0;
  }
  // Unbind from the sampler on the owning thread (the only place the TLS
  // gate can be cleared race-free); tail samples fold in here.
  if (profiler_) profiler_->unregister_current_thread();
}

void service_node::invalidate_connection(ilp::service_id service, ilp::connection_id conn) {
  if (shards_.empty()) {
    cache_.erase_connection(service, conn);
    return;
  }
  bus_->publish(cache_command{cache_op::erase_connection, service, conn, 0});
  for (std::size_t i = 0; i < shards_.size(); ++i) wake_shard(i);
}

void service_node::invalidate_service(ilp::service_id service) {
  if (shards_.empty()) {
    cache_.erase_service(service);
    return;
  }
  bus_->publish(cache_command{cache_op::erase_service, service, 0, 0});
  for (std::size_t i = 0; i < shards_.size(); ++i) wake_shard(i);
}

void service_node::invalidate_next_hop(peer_id hop) {
  if (shards_.empty()) {
    cache_.erase_forwards_to(hop);
    return;
  }
  bus_->publish(cache_command{cache_op::erase_next_hop, 0, 0, hop});
  for (std::size_t i = 0; i < shards_.size(); ++i) wake_shard(i);
}

const cache_stats& service_node::shard_cache_stats(std::size_t shard) const {
  return shards_[shard]->cache.stats();
}

const terminus_stats& service_node::shard_terminus_stats(std::size_t shard) const {
  return shards_[shard]->terminus->stats();
}

decision_cache& service_node::shard_cache(std::size_t shard) { return shards_[shard]->cache; }

metrics_registry& service_node::shard_metrics(std::size_t shard) { return shards_[shard]->reg; }

// ---- ingress entry points --------------------------------------------

void service_node::on_datagram(peer_id from, const_byte_span datagram) {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (!shards_.empty()) {
    copy_scratch_.clear();
    copy_scratch_.emplace_back(from, bytes(datagram.begin(), datagram.end()));
    steer(copy_scratch_);
    return;
  }
  trace::scoped_tracer st(&tracer_);
  pipes_.on_datagram(from, datagram);
}

void service_node::on_datagram_batch(peer_id from,
                                     std::span<const const_byte_span> datagrams) {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (!shards_.empty()) {
    copy_scratch_.clear();
    copy_scratch_.reserve(datagrams.size());
    for (const const_byte_span& d : datagrams) {
      copy_scratch_.emplace_back(from, bytes(d.begin(), d.end()));
    }
    steer(copy_scratch_);
    return;
  }
  trace::scoped_tracer st(&tracer_);
  pipes_.on_datagram_batch(from, datagrams);
}

void service_node::on_datagrams(std::span<std::pair<peer_id, bytes>> datagrams) {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (!shards_.empty()) {
    steer(datagrams);
    return;
  }
  on_datagrams(std::span<const std::pair<peer_id, bytes>>(datagrams.data(), datagrams.size()));
}

void service_node::on_datagrams(std::span<const std::pair<peer_id, bytes>> datagrams) {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (!shards_.empty()) {
    copy_scratch_.assign(datagrams.begin(), datagrams.end());
    steer(copy_scratch_);
    return;
  }
  trace::scoped_tracer st(&tracer_);
  // Feed maximal same-peer runs through the batched path; order across
  // peers is preserved because runs are flushed in arrival order.
  std::size_t i = 0;
  while (i < datagrams.size()) {
    const peer_id from = datagrams[i].first;
    std::size_t j = i;
    span_scratch_.clear();
    while (j < datagrams.size() && datagrams[j].first == from) {
      span_scratch_.emplace_back(datagrams[j].second.data(), datagrams[j].second.size());
      ++j;
    }
    pipes_.on_datagram_batch(from, span_scratch_);
    i = j;
  }
}

void service_node::on_datagram_views(std::span<std::pair<peer_id, buf::pkt_view>> datagrams) {
  prof::scoped_cycle_set cy(&control_cycles_);
  if (!shards_.empty()) {
    steer_views(datagrams);
    return;
  }
  trace::scoped_tracer st(&tracer_);
  // Same-peer runs through the mutable batched path: data messages are
  // decrypted in place inside their slabs, so the whole inline fast path
  // (decrypt → terminus → forward) runs without copying a payload.
  std::size_t i = 0;
  while (i < datagrams.size()) {
    const peer_id from = datagrams[i].first;
    std::size_t j = i;
    mut_span_scratch_.clear();
    while (j < datagrams.size() && datagrams[j].first == from) {
      mut_span_scratch_.push_back(datagrams[j].second.mutable_span());
      ++j;
    }
    pipes_.on_datagram_batch_mut(from, mut_span_scratch_);
    i = j;
  }
}

// ---- node services / stats -------------------------------------------

void service_node::send(peer_id to, const ilp::ilp_header& header, bytes payload) {
  pipes_.send(to, header, std::move(payload));
}

void service_node::schedule(nanoseconds delay, std::function<void()> fn) {
  scheduler_(delay, std::move(fn));
}

std::optional<peer_id> service_node::next_hop(edge_addr dest) const {
  if (!router_) return std::nullopt;
  return router_->next_hop(dest);
}

void service_node::merge_metrics_into(metrics_registry& out) const {
  out.merge_from(metrics_);
  for (const auto& sh : shards_) out.merge_from(sh->reg);
}

std::string service_node::stats_snapshot() {
  const time_point now = clock_.now();
  double elapsed = 0;
  if (have_snapshot_) {
    elapsed = static_cast<double>((now - last_snapshot_).count()) / 1e9;
  }
  last_snapshot_ = now;
  have_snapshot_ = true;
  if (shards_.empty()) return stats_reporter_.delta_report(metrics_, elapsed);
  // Merge control + shard registries into a fresh view; the reporter keys
  // deltas on metric identity, so the temporary registry is fine.
  metrics_registry merged;
  merge_metrics_into(merged);
  return stats_reporter_.delta_report(merged, elapsed);
}

std::string service_node::export_prometheus() {
  if (shards_.empty()) return metrics_.export_prometheus();
  metrics_registry merged;
  merge_metrics_into(merged);
  return merged.export_prometheus();
}

void service_node::start_stats_reporting(nanoseconds interval,
                                         std::function<void(const std::string&)> sink,
                                         std::uint64_t max_reports) {
  stats_running_ = true;
  schedule_stats_tick(
      interval, std::make_shared<std::function<void(const std::string&)>>(std::move(sink)),
      max_reports);
}

void service_node::schedule_stats_tick(
    nanoseconds interval, std::shared_ptr<std::function<void(const std::string&)>> sink,
    std::uint64_t remaining) {
  scheduler_(interval, [this, interval, sink, remaining] {
    if (!stats_running_) return;
    (*sink)(stats_snapshot());
    if (remaining == 1) {
      stats_running_ = false;
      return;
    }
    schedule_stats_tick(interval, sink, remaining == 0 ? 0 : remaining - 1);
  });
}

slowpath_response service_node::handle_slowpath(slowpath_request req) {
  prof::cycle_scope sc(prof::cycle_stage::slowpath);
  // Deadline gate: a request that aged past its budget (e.g. behind a
  // slow module) is dropped rather than dispatched — its sender has long
  // since shed or moved on, and stale verdicts must not be installed.
  if (req.deadline_ns != 0 &&
      static_cast<std::uint64_t>(clock_.now().time_since_epoch().count()) > req.deadline_ns) {
    ++slowpath_expired_;
    m_slowpath_expired_->add();
    IE_LOG(debug) << "service_node" << kv("node", config_.id) << kv("drop", "deadline-expired");
    slowpath_response resp = to_response(req.token, module_result::drop());
    resp.annotations |= trace::kAnnoDeadlineExpired;
    return resp;
  }
  packet pkt;
  pkt.l3_src = req.l3_src;
  try {
    pkt.header = ilp::ilp_header::decode(req.header_bytes);
  } catch (const serial_error&) {
    IE_LOG(warn) << "service_node " << config_.id << ": undecodable slow-path header";
    return to_response(req.token, module_result::drop());
  }
  pkt.payload = std::move(req.payload);
  // Service-dispatch span for traced packets: the time a module spent on
  // this request, distinct from the hop_slow span (which also covers ring
  // queueing). Parented on the upstream span — the hop_slow span id is not
  // allocated until the terminus completes the response.
  std::uint64_t svc_start = 0;
  trace::trace_context tc{};
  if (config_.path_span_capacity > 0) {
    if (auto t = pkt.header.trace_ctx(); t && t->sampled()) {
      tc = *t;
      svc_start = path_rec_.now();
    }
  }
  slowpath_response resp = to_response(req.token, env_->dispatch(pkt));
  if (svc_start != 0) {
    path_rec_.emit(trace::path_span{
        .trace_id = tc.trace_id,
        .span_id = path_rec_.next_span_id(),
        .parent_span = tc.parent_span,
        .node = config_.id,
        .connection = pkt.header.connection,
        .service = pkt.header.service,
        .hop_count = tc.hop_count,
        .kind = trace::span_kind::service,
        .verdict = resp.verdict.kind == decision::verdict::forward    ? trace::kVerdictForward
                   : resp.verdict.kind == decision::verdict::drop     ? trace::kVerdictDrop
                                                                      : trace::kVerdictDeliver,
        .annotations = resp.annotations,
        .start_ns = svc_start,
        .duration_ns = path_rec_.now() - svc_start,
    });
  }
  return resp;
}

void service_node::emit_node_event(std::uint16_t annotations, std::uint64_t correlate) {
  if (blackbox_) {
    blackbox_->record(fr_event{.time_ns = path_rec_.now(),
                               .kind = fr_kind::lifecycle,
                               .code = annotations,
                               .a = correlate});
  }
  if (config_.path_span_capacity == 0) return;
  const std::uint64_t now = path_rec_.now();
  path_rec_.emit(trace::path_span{
      .trace_id = 0,  // node event: correlated by time, not trace id
      .span_id = path_rec_.next_span_id(),
      .parent_span = 0,
      .node = config_.id,
      .connection = correlate,
      .service = 0,
      .hop_count = 0,
      .kind = trace::span_kind::event,
      .verdict = trace::kVerdictNone,
      .annotations = annotations,
      .start_ns = now,
      .duration_ns = 0,
  });
}

std::size_t service_node::drain_path_spans(std::vector<trace::path_span>& out) {
  const std::size_t base = out.size();
  std::size_t total = 0;
  for (std::size_t n = path_rec_.drain(out); n > 0; n = path_rec_.drain(out)) total += n;
  for (auto& sh : shards_) {
    for (std::size_t n = sh->path_rec.drain(out); n > 0; n = sh->path_rec.drain(out)) total += n;
  }
  // The drain doubles as the black box's feed: every span passing through
  // the control thread lands in the ring, so a freeze dumps the recent
  // traced traffic alongside the lifecycle events (recorded at emission —
  // trace_id == 0 spans are skipped here to avoid double entry).
  if (blackbox_ != nullptr && !blackbox_->frozen()) {
    for (std::size_t k = base; k < out.size(); ++k) {
      const trace::path_span& s = out[k];
      if (s.trace_id == 0) continue;
      blackbox_->record(fr_event{
          .time_ns = s.start_ns,
          .kind = fr_kind::span,
          .code = (static_cast<std::uint32_t>(s.annotations) << 8) |
                  static_cast<std::uint8_t>(s.verdict),
          .a = s.trace_id,
          .b = s.service,
          .c = s.duration_ns,
      });
    }
  }
  return total;
}

std::string service_node::export_trace_json(std::size_t limit) {
  span_drain_scratch_.clear();
  drain_path_spans(span_drain_scratch_);
  collector_.ingest(std::span<const trace::path_span>(span_drain_scratch_));
  return collector_.export_json(limit);
}

void service_node::start_observability_push(nanoseconds interval, observe_sink sink,
                                            std::uint64_t max_pushes) {
  observe_running_ = true;
  schedule_observe_tick(interval, std::make_shared<observe_sink>(std::move(sink)), max_pushes);
}

void service_node::schedule_observe_tick(nanoseconds interval, std::shared_ptr<observe_sink> sink,
                                         std::uint64_t remaining) {
  scheduler_(interval, [this, interval, sink, remaining] {
    if (!observe_running_) return;
    // Saturation/loss gauges refresh before the merge so every pushed
    // snapshot carries current ring depths and trace-drop accounting.
    refresh_health_gauges();
    metrics_registry merged;
    merge_metrics_into(merged);
    span_drain_scratch_.clear();
    drain_path_spans(span_drain_scratch_);
    const std::span<const trace::path_span> spans(span_drain_scratch_);
    collector_.ingest(spans);  // the local dump stays current too
    (*sink)(merged, spans);
    if (remaining == 1) {
      observe_running_ = false;
      return;
    }
    schedule_observe_tick(interval, sink, remaining == 0 ? 0 : remaining - 1);
  });
}

// ---- fault-tolerant lifecycle (DESIGN.md §10) -------------------------

void service_node::schedule_liveness_tick() {
  scheduler_(config_.keepalive_interval, [this] {
    if (!liveness_running_) return;
    pipes_.liveness_tick();
    poll();
    schedule_liveness_tick();
  });
}

void service_node::set_shed_verdict(ilp::service_id service, const decision& d) {
  terminus_->set_shed_verdict(service, d);
  for (auto& sh : shards_) sh->terminus->set_shed_verdict(service, d);
}

bytes service_node::checkpoint_full() {
  writer w;
  w.u8(1);  // full-checkpoint format version
  w.blob(env_->checkpoint());
  w.blob(cache_.snapshot(clock_.now()));
  return w.take();
}

void service_node::restore_full(const_byte_span snapshot) {
  reader r(snapshot);
  const std::uint8_t version = r.u8();
  if (version != 1) throw serial_error("service_node checkpoint: unknown version");
  env_->restore(r.blob());
  cache_.restore_warm(r.blob(), clock_.now());
  // A standby restoring a peer's state is a takeover: traces that cross
  // this node around now get the failover annotation folded in, and the
  // black box freezes with whatever led up to the handoff.
  emit_node_event(trace::kAnnoFailover, config_.id);
  if (blackbox_) blackbox_->trigger(kTrigFailover, path_rec_.now(), config_.id);
}

void service_node::start_checkpointing(nanoseconds interval, std::function<void(bytes)> sink,
                                       std::uint64_t max_checkpoints) {
  checkpoint_running_ = true;
  schedule_checkpoint_tick(
      interval, std::make_shared<std::function<void(bytes)>>(std::move(sink)), max_checkpoints);
}

void service_node::schedule_checkpoint_tick(nanoseconds interval,
                                            std::shared_ptr<std::function<void(bytes)>> sink,
                                            std::uint64_t remaining) {
  scheduler_(interval, [this, interval, sink, remaining] {
    if (!checkpoint_running_) return;
    bytes snap = checkpoint_full();
    m_checkpoint_taken_->add();
    m_checkpoint_bytes_->add(snap.size());
    (*sink)(std::move(snap));
    if (remaining == 1) {
      checkpoint_running_ = false;
      return;
    }
    schedule_checkpoint_tick(interval, sink, remaining == 0 ? 0 : remaining - 1);
  });
}

// ---- SLO health plane (ISSUE 7, DESIGN.md §13) ------------------------

void service_node::start_health_plane(health_config cfg, std::uint64_t max_ticks) {
  health_cfg_ = std::move(cfg);
  health_ts_ = std::make_unique<timeseries_store>(health_cfg_.series);
  health_slo_ = std::make_unique<slo::slo_monitor>(*health_ts_, health_cfg_.windows);
  for (const slo::slo_target& t : health_cfg_.targets) health_slo_->add_target(t);
  // Watchdog bookkeeping persists across plane restarts: a shard flagged
  // stalled before a restart must still un-flag (and clear its gauge) when
  // it recovers under the new plane.
  if (wd_last_heartbeat_.size() != shards_.size()) {
    wd_last_heartbeat_.assign(shards_.size(), 0);
    wd_stalled_ticks_.assign(shards_.size(), 0);
    wd_flagged_.assign(shards_.size(), false);
  }
  if (blackbox_ && health_cfg_.blackbox_sink) {
    // The freeze hook runs on whichever thread fired the trigger; both the
    // dump and the sink must therefore be safe off the control thread
    // (dump_json reads the ring via the seqlock protocol — it is).
    blackbox_->set_freeze_hook([this](std::uint32_t) {
      // Re-read the sink at fire time: a later start_health_plane may have
      // replaced the config (possibly with no sink) while this hook stays.
      if (health_cfg_.blackbox_sink) health_cfg_.blackbox_sink(dump_blackbox_json());
    });
  }
  health_running_ = true;
  schedule_health_tick(max_ticks);
}

void service_node::schedule_health_tick(std::uint64_t remaining) {
  scheduler_(health_cfg_.interval, [this, remaining] {
    if (!health_running_) return;
    health_tick();
    if (remaining == 1) {
      health_running_ = false;
      return;
    }
    schedule_health_tick(remaining == 0 ? 0 : remaining - 1);
  });
}

void service_node::refresh_health_gauges() {
  std::uint64_t trace_dropped = tracer_.dropped_records();
  std::uint64_t spans_dropped = path_rec_.dropped();
  std::uint64_t in_flight = terminus_->in_flight();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    worker_shard& sh = *shards_[i];
    const label_list shard_label{{"shard", std::to_string(i)}};
    metrics_.get_gauge("sn.shard.ingress_depth", shard_label)
        .set(static_cast<std::int64_t>(sh.ingress.size_approx()));
    // Egress depth counts the spill too: a deep overflow deque is exactly
    // the slow-drain signal this gauge exists to surface.
    metrics_.get_gauge("sn.shard.egress_depth", shard_label)
        .set(static_cast<std::int64_t>(sh.egress.size_approx() +
                                       sh.spill.load(std::memory_order_acquire)));
    // Spill saturation in percent of the drop threshold: 100 means the
    // next deferred forward that misses the ring is dropped (the alertable
    // precursor to sn.shard.egress_spill_drops moving).
    if (config_.egress_spill_max != 0) {
      metrics_.get_gauge("sn.shard.egress_spill_saturation", shard_label)
          .set(static_cast<std::int64_t>(100 * sh.spill.load(std::memory_order_acquire) /
                                         config_.egress_spill_max));
    }
    in_flight += sh.inflight.load(std::memory_order_acquire);
    trace_dropped += sh.tracer.dropped_records();
    spans_dropped += sh.path_rec.dropped();
  }
  metrics_.get_gauge("sn.slowpath.in_flight_total").set(static_cast<std::int64_t>(in_flight));
  metrics_.get_gauge("sn.trace.dropped_records").set(static_cast<std::int64_t>(trace_dropped));
  metrics_.get_gauge("sn.path.spans_dropped").set(static_cast<std::int64_t>(spans_dropped));
}

void service_node::health_tick() {
  const time_point now = clock_.now();
  const std::uint64_t now_ns = static_cast<std::uint64_t>(now.time_since_epoch().count());

  // Watchdog: a shard with pending work whose heartbeat has not moved for
  // `watchdog_grace` consecutive ticks is stalled (a parked-idle shard has
  // no pending work, so it never false-positives).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    worker_shard& sh = *shards_[i];
    const std::uint64_t hb = sh.heartbeat.load(std::memory_order_acquire);
    const bool pending = sh.consumed.load(std::memory_order_acquire) !=
                             sh.pushed.load(std::memory_order_acquire) ||
                         !sh.ingress.empty();
    const label_list shard_label{{"shard", std::to_string(i)}};
    if (pending && hb == wd_last_heartbeat_[i]) {
      if (++wd_stalled_ticks_[i] >= health_cfg_.watchdog_grace && !wd_flagged_[i]) {
        wd_flagged_[i] = true;
        ++watchdog_stalls_;
        metrics_.get_counter("sn.watchdog.stall_events", shard_label).add();
        metrics_.get_gauge("sn.shard.stalled", shard_label).set(1);
        IE_LOG(warn) << "service_node" << kv("node", config_.id) << kv("stalled_shard", i)
                     << kv("heartbeat", hb);
        if (blackbox_) {
          blackbox_->record(
              fr_event{.time_ns = now_ns, .kind = fr_kind::watchdog, .a = i, .b = hb});
          blackbox_->trigger(kTrigWatchdog, now_ns, i, hb);
        }
      }
    } else {
      wd_stalled_ticks_[i] = 0;
      if (wd_flagged_[i]) {
        wd_flagged_[i] = false;
        metrics_.get_gauge("sn.shard.stalled", shard_label).set(0);
      }
    }
    wd_last_heartbeat_[i] = hb;
  }

  refresh_health_gauges();
  // Profiler drain + hot-stack snapshot BEFORE the SLO pass: a burn-rate
  // page or watchdog freeze this tick then dumps a postmortem whose
  // hot-stack table covers the samples leading up to the fault.
  profile_tick();

  // Merged cumulative snapshot into the sliding-window ring; the SLO pass
  // reads the windows the tick just updated.
  metrics_registry merged;
  merge_metrics_into(merged);
  health_ts_->tick(merged, now);

  health_alert_scratch_.clear();
  health_slo_->evaluate(now, &health_alert_scratch_);
  for (const slo::slo_alert& a : health_alert_scratch_) {
    if (blackbox_) {
      blackbox_->record(fr_event{.time_ns = a.at_ns,
                                 .kind = fr_kind::alert,
                                 .code = static_cast<std::uint32_t>(a.state),
                                 .a = static_cast<std::uint64_t>(a.prev),
                                 .b = static_cast<std::uint64_t>(a.burn_fast * 1000.0)});
      if (a.state == slo::slo_state::page) blackbox_->trigger(kTrigSloPage, a.at_ns);
    }
    if (health_cfg_.alert_sink) health_cfg_.alert_sink(a);
  }
  health_slo_->expose(metrics_);

  // Shed-watermark trigger: shed verdicts applied since the last tick
  // freeze the box with the overload's lead-up in the ring.
  for (const metric_sample& s : merged.samples()) {
    if (s.key == "sn.slowpath.shed") {
      const auto shed_total = static_cast<std::uint64_t>(s.value);
      if (shed_total > last_shed_total_) {
        if (blackbox_) {
          blackbox_->trigger(kTrigShed, now_ns, shed_total - last_shed_total_);
        }
        last_shed_total_ = shed_total;
      }
      break;
    }
  }
}

void service_node::profile_tick() {
  if (!profiler_) return;
  profiler_->drain();
  // Render the top-N table now, on the control thread, and publish it
  // lock-free: a freeze-path dump_blackbox_json (any thread) only loads
  // the shared_ptr — it never touches the profiler's aggregation mutex.
  hot_stacks_snapshot_.store(std::make_shared<const std::string>(
                                 profiler_->hot_stacks_json(config_.profiler_top_n)),
                             std::memory_order_release);
  metrics_.get_gauge("sn.profile.samples").set(static_cast<std::int64_t>(profiler_->total_samples()));
  metrics_.get_gauge("sn.profile.dropped").set(static_cast<std::int64_t>(profiler_->total_dropped()));

  // Per-stage cycle shares: delta since the last tick over control +
  // every shard's cycle set, as percent of all attributed cycles. The
  // cheap cross-check for the sampled stacks (DESIGN.md §15).
  std::array<std::uint64_t, prof::kCycleStageCount> cur{};
  for (std::size_t s = 0; s < prof::kCycleStageCount; ++s) {
    cur[s] = control_cycles_.self[s].load(std::memory_order_relaxed);
    for (const auto& sh : shards_) cur[s] += sh->cycles.self[s].load(std::memory_order_relaxed);
  }
  std::uint64_t total_delta = 0;
  for (std::size_t s = 0; s < prof::kCycleStageCount; ++s) {
    total_delta += cur[s] - last_stage_cycles_[s];
  }
  if (total_delta > 0) {
    for (std::size_t s = 0; s < prof::kCycleStageCount; ++s) {
      const std::uint64_t delta = cur[s] - last_stage_cycles_[s];
      metrics_
          .get_gauge("sn.profile.stage_share",
                     {{"stage", prof::cycle_stage_name(static_cast<prof::cycle_stage>(s))}})
          .set(static_cast<std::int64_t>(100 * delta / total_delta));
    }
  }
  last_stage_cycles_ = cur;
}

void service_node::profile_refresh() { profile_tick(); }

std::string service_node::export_profile_folded() {
  if (!profiler_) return "";
  profiler_->drain();
  return profiler_->folded();
}

std::string service_node::export_profile_json() {
  if (!profiler_) return "{}";
  profiler_->drain();
  return profiler_->export_json();
}

std::string service_node::dump_blackbox_json() const {
  std::string out = blackbox_ ? blackbox_->dump_json() : std::string("{}");
  // Splice the last-published hot-stack table into the postmortem. The
  // load is lock-free (freeze hooks run on whichever thread tripped the
  // trigger and must never block); "[]" when the profiler is disarmed or
  // hasn't ticked yet.
  std::shared_ptr<const std::string> snap = hot_stacks_snapshot_.load(std::memory_order_acquire);
  const std::string hot = (profiler_ && snap) ? *snap : std::string("[]");
  auto close = out.rfind('}');
  if (close != std::string::npos) {
    const bool empty_obj = close > 0 && out[close - 1] == '{';
    out.insert(close, (empty_obj ? "\"hot_stacks\":" : ",\"hot_stacks\":") + hot);
  }
  return out;
}

void service_node::inject_worker_stall(std::size_t shard, bool on) {
  if (shard >= shards_.size()) return;
  shards_[shard]->stall.store(on, std::memory_order_release);
  wake_shard(shard);
}

}  // namespace interedge::core
