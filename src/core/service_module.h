// The Write-Once-Run-Anywhere service-module API (paper §3.1, "Execution
// environment"): every standardized InterEdge service is a service_module
// written against service_context — the "few basic primitives" every SN
// provides (send/receive over ILP, configuration, decision-cache access,
// state checkpointing, storage, clock).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "core/decision_cache.h"
#include "core/offpath.h"
#include "core/packet.h"

namespace interedge::core {

// A module failure worth retrying: transient resource exhaustion, a
// dependency momentarily unavailable. The execution environment re-invokes
// the module a capped number of times (inline — the slow-path handler is
// synchronous) before dropping the packet; any other exception from a
// module is contained and drops the packet immediately.
class transient_error : public std::runtime_error {
 public:
  explicit transient_error(const std::string& what) : std::runtime_error(what) {}
};

// An additional packet a module wants sent (control replies, fan-out
// copies with rewritten headers, service-to-service traffic).
struct outbound {
  peer_id to = 0;
  ilp::ilp_header header;
  bytes payload;
};

// What a module returns from on_packet.
struct module_result {
  decision verdict = decision::drop_packet();
  // Decision-cache entries the module wants installed (Appendix B).
  std::vector<std::pair<cache_key, decision>> cache_inserts;
  // Extra packets to emit.
  std::vector<outbound> sends;

  static module_result forward(peer_id hop) {
    module_result r;
    r.verdict = decision::forward_to(hop);
    return r;
  }
  static module_result deliver() {
    module_result r;
    r.verdict = decision::deliver();
    return r;
  }
  static module_result drop() { return module_result{}; }
};

// The environment handed to a module. One context per (SN, module).
class service_context {
 public:
  virtual ~service_context() = default;

  // Identity.
  virtual peer_id node_id() const = 0;
  virtual std::uint16_t edomain() const = 0;

  // Time (virtual in simulation, real on a deployment).
  virtual const clock& node_clock() const = 0;
  time_point now() const { return node_clock().now(); }

  // Off-path persistent storage, namespaced per module.
  virtual kv_store& storage() = 0;

  // Sends a packet over ILP to an adjacent element (host or SN).
  virtual void send(peer_id to, const ilp::ilp_header& header, bytes payload) = 0;

  // Schedules a callback (timers for rekeys, expirations, retries).
  virtual void schedule(nanoseconds delay, std::function<void()> fn) = 0;

  // Configuration (standardized per service so customers can move between
  // IESPs without reconfiguring — §5).
  virtual std::string config(const std::string& key, const std::string& fallback) const = 0;

  // Decision-cache maintenance outside the packet path.
  virtual void invalidate_connection(ilp::service_id service, ilp::connection_id conn) = 0;
  // Drops every cached verdict for `service` on this SN — for control-plane
  // transitions that change the answer for flows already in flight (a dest
  // newly protected by ddos, a host re-anchored by mobility).
  virtual void invalidate_service(ilp::service_id service) = 0;
  virtual std::uint64_t cache_hit_count(const cache_key& key) const = 0;

  // Routing: resolves the next adjacent element toward a destination host.
  // (Implemented by the edomain layer; kInvalidAddr-style nullopt when the
  // destination is unknown.)
  virtual std::optional<peer_id> next_hop(edge_addr dest) const = 0;

  virtual metrics_registry& metrics() = 0;
};

class service_module {
 public:
  virtual ~service_module() = default;

  virtual ilp::service_id id() const = 0;
  virtual std::string_view name() const = 0;

  // Called once when the module is deployed on an SN.
  virtual void start(service_context& /*ctx*/) {}

  // Slow-path packet handler; must be able to "make forwarding decisions
  // not just for the first few packets in a connection, but for any
  // arbitrary packet" (Appendix B — entries can be evicted at any time).
  virtual module_result on_packet(service_context& ctx, const packet& pkt) = 0;

  // True if this module's verdicts depend on packet *contents* (payload
  // inspection), not just the header tuple. When such a module runs as an
  // operator interceptor, the execution environment strips decision-cache
  // inserts from downstream modules so every packet keeps reaching it.
  virtual bool content_dependent() const { return false; }

  // State checkpointing primitive for fault tolerance (§3.1).
  virtual bytes checkpoint(service_context& /*ctx*/) { return {}; }
  virtual void restore(service_context& /*ctx*/, const_byte_span /*state*/) {}
};

}  // namespace interedge::core
