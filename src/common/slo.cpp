#include "common/slo.h"

#include <algorithm>
#include <sstream>

namespace interedge::slo {

const char* slo_state_name(slo_state s) {
  switch (s) {
    case slo_state::ok: return "ok";
    case slo_state::warn: return "warn";
    case slo_state::page: return "page";
  }
  return "?";
}

slo_monitor::slo_monitor(const timeseries_store& ts, burn_windows w) : ts_(ts), windows_(w) {
  if (windows_.clear_after == 0) windows_.clear_after = 1;
}

void slo_monitor::add_target(slo_target t) {
  if (t.error_budget <= 0) t.error_budget = 0.01;
  targets_.push_back(tracked{std::move(t), slo_state::ok, 0});
}

double slo_monitor::burn_of(const slo_target& t, nanoseconds span) const {
  double error_rate = 0;
  if (!t.latency_series.empty()) {
    // No samples in the window means no evidence of burn — an idle service
    // is not out of SLO.
    if (ts_.hist_count(t.latency_series, span) == 0) return 0;
    error_rate = ts_.hist_fraction_above(t.latency_series, span, t.threshold_ns);
  } else {
    const std::uint64_t total = ts_.delta(t.total_series, span);
    if (total == 0) return 0;
    const std::uint64_t errors = ts_.delta(t.errors_series, span);
    error_rate = static_cast<double>(errors) / static_cast<double>(total);
  }
  return error_rate / t.error_budget;
}

std::size_t slo_monitor::evaluate(time_point now, std::vector<slo_alert>* out) {
  std::size_t emitted = 0;
  for (tracked& tr : targets_) {
    const double fast_s = burn_of(tr.target, windows_.fast_short);
    const double fast_l = burn_of(tr.target, windows_.fast_long);
    const double slow_s = burn_of(tr.target, windows_.slow_short);
    const double slow_l = burn_of(tr.target, windows_.slow_long);

    // Multi-window AND: both the prompt and the sustaining window must
    // agree before the state escalates.
    slo_state observed = slo_state::ok;
    if (slow_s >= windows_.warn_burn && slow_l >= windows_.warn_burn) observed = slo_state::warn;
    if (fast_s >= windows_.page_burn && fast_l >= windows_.page_burn) observed = slo_state::page;

    slo_state next = tr.state;
    if (observed > tr.state) {
      // Escalation is immediate — a page must not wait out hysteresis.
      next = observed;
      tr.healthy_evals = 0;
    } else if (observed < tr.state) {
      // Downgrade only after clear_after consecutive calmer evaluations.
      if (++tr.healthy_evals >= windows_.clear_after) {
        next = observed;
        tr.healthy_evals = 0;
      }
    } else {
      tr.healthy_evals = 0;
    }

    if (next != tr.state) {
      slo_alert a;
      a.slo = tr.target.name;
      a.service = tr.target.service;
      a.state = next;
      a.prev = tr.state;
      a.burn_fast = fast_s;
      a.burn_slow = slow_s;
      a.at_ns = static_cast<std::uint64_t>(now.time_since_epoch().count());
      tr.state = next;
      ++transitions_;
      ++emitted;
      if (out != nullptr) out->push_back(a);
      alerts_.push_back(std::move(a));
      while (alerts_.size() > kMaxAlerts) alerts_.pop_front();
    }
  }
  return emitted;
}

slo_state slo_monitor::state(const std::string& name) const {
  for (const tracked& tr : targets_) {
    if (tr.target.name == name) return tr.state;
  }
  return slo_state::ok;
}

double slo_monitor::burn(const std::string& name, nanoseconds span) const {
  for (const tracked& tr : targets_) {
    if (tr.target.name == name) return burn_of(tr.target, span);
  }
  return 0;
}

void slo_monitor::expose(metrics_registry& reg) const {
  for (const tracked& tr : targets_) {
    reg.get_gauge("slo.state", {{"slo", tr.target.name}, {"service", tr.target.service}})
        .set(static_cast<std::int64_t>(tr.state));
  }
  reg.get_gauge("slo.transitions").set(static_cast<std::int64_t>(transitions_));
}

std::string slo_monitor::export_json() const {
  std::ostringstream os;
  os << "{\"slos\":[";
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const tracked& tr = targets_[i];
    if (i) os << ",";
    os << "{\"name\":\"" << tr.target.name << "\",\"service\":\"" << tr.target.service
       << "\",\"state\":\"" << slo_state_name(tr.state)
       << "\",\"burn_fast\":" << burn_of(tr.target, windows_.fast_short)
       << ",\"burn_slow\":" << burn_of(tr.target, windows_.slow_short) << "}";
  }
  os << "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const slo_alert& a = alerts_[i];
    if (i) os << ",";
    os << "{\"slo\":\"" << a.slo << "\",\"service\":\"" << a.service << "\",\"state\":\""
       << slo_state_name(a.state) << "\",\"prev\":\"" << slo_state_name(a.prev)
       << "\",\"burn_fast\":" << a.burn_fast << ",\"burn_slow\":" << a.burn_slow
       << ",\"at_ns\":" << a.at_ns << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace interedge::slo
