#include "common/flags.h"

#include <stdexcept>

namespace interedge {

flag_set::flag_set(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::string flag_set::get(const std::string& name, const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t flag_set::get_int(const std::string& name, std::int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stoll(it->second);
}

double flag_set::get_double(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::stod(it->second);
}

bool flag_set::get_bool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace interedge
