#include "common/flight_recorder.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

namespace interedge {

const char* fr_kind_name(fr_kind k) {
  switch (k) {
    case fr_kind::span: return "span";
    case fr_kind::lifecycle: return "lifecycle";
    case fr_kind::alert: return "alert";
    case fr_kind::watchdog: return "watchdog";
    case fr_kind::trigger: return "trigger";
    case fr_kind::gauge: return "gauge";
  }
  return "?";
}

std::string fr_trigger_names(std::uint32_t mask) {
  static constexpr std::pair<std::uint32_t, const char*> kNames[] = {
      {kTrigPeerDown, "peer_down"}, {kTrigFailover, "failover"}, {kTrigShed, "shed"},
      {kTrigSloPage, "slo_page"},   {kTrigWatchdog, "watchdog"}, {kTrigManual, "manual"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((mask & bit) == 0) continue;
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

flight_recorder::flight_recorder(config cfg)
    : slots_(std::bit_ceil(std::max<std::size_t>(cfg.capacity, 2))),
      mask_(slots_.size() - 1),
      trigger_mask_(cfg.trigger_mask) {}

void flight_recorder::record(const fr_event& e) {
  if (frozen_.load(std::memory_order_acquire)) {
    dropped_frozen_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t t = cursor_.fetch_add(1, std::memory_order_relaxed);
  slot& s = slots_[t & mask_];
  // Odd generation marks the slot in-flight; payload words are plain
  // relaxed atomic stores (no UB under concurrent overwrite); the even
  // release store publishes everything to a validating reader.
  s.seq.store(2 * t + 1, std::memory_order_relaxed);
  s.words[0].store(e.time_ns, std::memory_order_relaxed);
  s.words[1].store((static_cast<std::uint64_t>(e.kind) << 32) | e.code,
                   std::memory_order_relaxed);
  s.words[2].store(e.a, std::memory_order_relaxed);
  s.words[3].store(e.b, std::memory_order_relaxed);
  s.words[4].store(e.c, std::memory_order_relaxed);
  s.seq.store(2 * t + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void flight_recorder::trigger(std::uint32_t trig, std::uint64_t time_ns, std::uint64_t a,
                              std::uint64_t b) {
  fr_event e;
  e.time_ns = time_ns;
  e.kind = fr_kind::trigger;
  e.code = trig;
  e.a = a;
  e.b = b;
  record(e);
  if ((trigger_mask_ & trig) == 0) return;
  // First armed trigger wins the freeze; later ones (and re-fires of the
  // same fault) see frozen_ already set and leave the tail alone.
  if (!frozen_.exchange(true, std::memory_order_acq_rel)) {
    frozen_by_.store(trig, std::memory_order_release);
    if (freeze_hook_) freeze_hook_(trig);
  }
}

void flight_recorder::rearm() {
  frozen_by_.store(0, std::memory_order_release);
  frozen_.store(false, std::memory_order_release);
}

std::vector<fr_event> flight_recorder::snapshot() const {
  struct ticketed {
    std::uint64_t ticket;
    fr_event e;
  };
  std::vector<ticketed> got;
  got.reserve(slots_.size());
  for (const slot& s : slots_) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    fr_event e;
    e.time_ns = s.words[0].load(std::memory_order_relaxed);
    const std::uint64_t kc = s.words[1].load(std::memory_order_relaxed);
    e.kind = static_cast<fr_kind>(kc >> 32);
    e.code = static_cast<std::uint32_t>(kc);
    e.a = s.words[2].load(std::memory_order_relaxed);
    e.b = s.words[3].load(std::memory_order_relaxed);
    e.c = s.words[4].load(std::memory_order_relaxed);
    // The fence keeps the validation re-load from reordering ahead of the
    // payload reads above — without it a slot overwritten mid-read could
    // still validate.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;  // overwritten under us
    got.push_back(ticketed{s1 / 2 - 1, e});
  }
  std::sort(got.begin(), got.end(),
            [](const ticketed& x, const ticketed& y) { return x.ticket < y.ticket; });
  std::vector<fr_event> out;
  out.reserve(got.size());
  for (ticketed& t : got) out.push_back(t.e);
  return out;
}

std::string flight_recorder::dump_json() const {
  const std::vector<fr_event> events = snapshot();
  std::ostringstream os;
  os << "{\"frozen\":" << (frozen() ? "true" : "false") << ",\"trigger\":\""
     << fr_trigger_names(frozen_by()) << "\",\"recorded\":" << recorded()
     << ",\"dropped_frozen\":" << dropped_frozen() << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const fr_event& e = events[i];
    if (i) os << ",";
    os << "{\"time_ns\":" << e.time_ns << ",\"kind\":\"" << fr_kind_name(e.kind)
       << "\",\"code\":" << e.code << ",\"a\":" << e.a << ",\"b\":" << e.b << ",\"c\":" << e.c;
    if (e.kind == fr_kind::trigger) os << ",\"trigger\":\"" << fr_trigger_names(e.code) << "\"";
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace interedge
