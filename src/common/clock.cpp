#include "common/clock.h"

namespace interedge {

time_point real_clock::now() const {
  return std::chrono::time_point_cast<nanoseconds>(std::chrono::steady_clock::now());
}

real_clock& real_clock::instance() {
  static real_clock c;
  return c;
}

}  // namespace interedge
