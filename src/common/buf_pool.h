// Reference-counted fixed-slab buffer pool for the zero-copy datapath.
//
// The SN datapath used to copy every packet between owned `bytes` at each
// stage (udp rx -> steer -> shard decrypt -> terminus). ROADMAP item 2
// replaces those copies with slab references: the transport receives
// straight into pool slabs, and a non-owning `pkt_view` window travels
// through peek/steer, the shard SPSC rings and the terminus. A slab goes
// back on the free list when the last reference drops, wherever that
// happens — so a view can be handed from the control thread to a worker
// shard (or cloned for egress) without any copy and without the pool
// caring which thread finishes with it.
//
//   buf_pool  — one contiguous cache-line-aligned arena of fixed slabs
//               (sized for MTU + headroom) with intrusive per-slab atomic
//               refcounts and a mutex-guarded global free list
//   cache     — a per-owner (per endpoint / per shard) free-list cache:
//               allocations pop locally and refill from the global list a
//               batch at a time, so the steady-state rx path takes the
//               pool mutex once per `cache_batch` packets
//   slab_ref  — move-only owner of one reference to one slab
//   pkt_view  — slab_ref plus an (offset, length) window: the packet as
//               the datapath sees it, trimmable without touching memory
//
// Exhaustion is a counted drop, never UB: try_alloc returns a null ref and
// bumps the exhausted counter; callers shed the packet.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.h"

namespace interedge::buf {

struct pool_config {
  // Rounded up to a multiple of the 64-byte cache line. The default fits a
  // jumbo-frame datagram plus headroom; anything larger is truncated by
  // the transport and counted, never silently corrupted.
  std::size_t slab_size = 9216;
  std::size_t slab_count = 256;
  // Slabs moved between a local cache and the global free list per refill
  // or spill — the amortization factor on the pool mutex.
  std::size_t cache_batch = 32;
  // NUMA node to place the arena on (best-effort mbind at construction;
  // see cpu_topology.h). -1 = wherever first touch lands, the default.
  int numa_node = -1;
};

struct pool_stats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t exhausted = 0;  // try_alloc calls that found the pool dry
  std::uint64_t refills = 0;    // local-cache batch refills from the pool
  std::uint64_t spills = 0;     // local-cache batch returns to the pool
  std::size_t outstanding = 0;  // slabs currently referenced
};

class buf_pool;

// Move-only owner of one reference to one slab. Destroying (or resetting)
// the last reference returns the slab to the pool's free list — from any
// thread; the refcount is the only shared state.
class slab_ref {
 public:
  slab_ref() = default;
  slab_ref(slab_ref&& other) noexcept : pool_(other.pool_), idx_(other.idx_) {
    other.pool_ = nullptr;
  }
  slab_ref& operator=(slab_ref&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      idx_ = other.idx_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  slab_ref(const slab_ref&) = delete;
  slab_ref& operator=(const slab_ref&) = delete;
  ~slab_ref() { reset(); }

  // An additional reference to the same slab (refcount increment).
  slab_ref clone() const;

  void reset();
  explicit operator bool() const { return pool_ != nullptr; }

  std::uint8_t* data() const;
  std::size_t size() const;  // the pool's slab size
  std::uint32_t index() const { return idx_; }
  std::uint32_t refcount() const;  // snapshot, for tests

 private:
  friend class buf_pool;
  slab_ref(buf_pool* pool, std::uint32_t idx) : pool_(pool), idx_(idx) {}

  buf_pool* pool_ = nullptr;
  std::uint32_t idx_ = 0;
};

// A packet: one slab reference plus a byte window into it. Trimming moves
// the window, never the data; clone() takes another slab reference over
// the same window. The window's bytes are mutable through mutable_span()
// — in-place header decrypt relies on this — which is safe while the
// holder is the only writer (the ingress path's refcount-1 case).
class pkt_view {
 public:
  pkt_view() = default;
  pkt_view(slab_ref ref, std::size_t offset, std::size_t length)
      : ref_(std::move(ref)),
        off_(static_cast<std::uint32_t>(offset)),
        len_(static_cast<std::uint32_t>(length)) {}

  explicit operator bool() const { return static_cast<bool>(ref_); }
  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  const std::uint8_t* data() const { return ref_.data() + off_; }
  const_byte_span span() const { return const_byte_span(ref_.data() + off_, len_); }
  byte_span mutable_span() const { return byte_span(ref_.data() + off_, len_); }

  // Bytes between the slab start and the window — room to prepend without
  // moving the payload.
  std::size_t headroom() const { return off_; }
  // Bytes between the window end and the slab end.
  std::size_t tailroom() const { return ref_ ? ref_.size() - off_ - len_ : 0; }

  // Drops `n` bytes off the front of the window (n clamped to size()).
  void trim_front(std::size_t n) {
    if (n > len_) n = len_;
    off_ += static_cast<std::uint32_t>(n);
    len_ -= static_cast<std::uint32_t>(n);
  }
  // Shrinks the window to its first `n` bytes (no-op if already shorter).
  void truncate(std::size_t n) {
    if (n < len_) len_ = static_cast<std::uint32_t>(n);
  }

  // Another reference to the same slab, same window.
  pkt_view clone() const { return pkt_view(ref_.clone(), off_, len_); }
  // Another reference, window narrowed to [offset, offset+length) relative
  // to this view.
  pkt_view subview(std::size_t offset, std::size_t length) const {
    return pkt_view(ref_.clone(), off_ + offset, length);
  }

  const slab_ref& slab() const { return ref_; }
  void reset() {
    ref_.reset();
    off_ = len_ = 0;
  }

 private:
  slab_ref ref_;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

class buf_pool {
 public:
  explicit buf_pool(pool_config cfg = {});
  ~buf_pool();

  buf_pool(const buf_pool&) = delete;
  buf_pool& operator=(const buf_pool&) = delete;

  // One slab off the global free list (refcount 1); null + counted when
  // the pool is dry. Hot paths go through a `cache` instead.
  slab_ref try_alloc();

  // Recovers a NEW reference to the slab containing `p` (refcount
  // increment), or a null ref when `p` lies outside the arena. The async
  // egress path uses this to pin a payload it only holds a span over —
  // the caller must already hold (transitively) a live reference to that
  // slab, exactly as slab_ref::clone() requires; pinning a recycled slab
  // through a stale pointer is the same lifetime bug as cloning one.
  slab_ref ref_for_ptr(const std::uint8_t* p);

  std::size_t slab_size() const { return slab_size_; }
  std::size_t slab_count() const { return slab_count_; }
  std::uint8_t* arena_base() const { return arena_; }

  pool_stats stats() const;

  // Per-owner free-list cache. Not thread-safe; each owner (endpoint rx
  // loop, uring backend) holds its own. Destroying the cache spills its
  // slabs back to the pool.
  class cache {
   public:
    explicit cache(buf_pool& pool) : pool_(&pool) {
      local_.reserve(pool.cache_batch_);
    }
    ~cache() { spill_all(); }
    cache(const cache&) = delete;
    cache& operator=(const cache&) = delete;

    slab_ref try_alloc();
    void spill_all();
    std::size_t cached() const { return local_.size(); }

   private:
    buf_pool* pool_;
    std::vector<std::uint32_t> local_;
  };

 private:
  friend class slab_ref;

  struct ctl {
    std::atomic<std::uint32_t> refs{0};
  };

  // Refcount hit zero: back on the global free list.
  void recycle(std::uint32_t idx);

  std::size_t slab_size_ = 0;
  std::size_t slab_count_ = 0;
  std::size_t cache_batch_ = 0;
  std::uint8_t* arena_ = nullptr;
  std::unique_ptr<ctl[]> ctl_;

  mutable std::mutex mu_;
  std::vector<std::uint32_t> free_;  // guarded by mu_
  std::uint64_t refills_ = 0;        // guarded by mu_
  std::uint64_t spills_ = 0;         // guarded by mu_

  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> exhausted_{0};
};

}  // namespace interedge::buf
