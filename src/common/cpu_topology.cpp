#include "common/cpu_topology.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#ifdef __linux__
#include <dirent.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace interedge::sys {

namespace {

#ifdef __linux__
// Reads a small sysfs file into `out` (no trailing newline). False when
// the file is unreadable.
bool read_sysfs(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buffer[4096];
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  buffer[n] = '\0';
  out.assign(buffer);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return true;
}
#endif

topology fallback_topology() {
  topology t;
  numa_node n;
  n.id = 0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  n.cpus.reserve(hw);
  for (unsigned i = 0; i < hw; ++i) n.cpus.push_back(static_cast<int>(i));
  t.nodes.push_back(std::move(n));
  return t;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    const std::string chunk = s.substr(pos, end - pos);
    pos = end + 1;
    if (chunk.empty()) continue;
    int lo = 0, hi = 0;
    if (std::sscanf(chunk.c_str(), "%d-%d", &lo, &hi) == 2) {
      if (lo < 0 || hi < lo) continue;  // malformed range: skip, not fatal
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    } else if (std::sscanf(chunk.c_str(), "%d", &lo) == 1) {
      if (lo >= 0) cpus.push_back(lo);
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

topology probe_topology() {
#ifdef __linux__
  topology t;
  DIR* dir = ::opendir("/sys/devices/system/node");
  if (dir != nullptr) {
    while (dirent* e = ::readdir(dir)) {
      int id = -1;
      if (std::sscanf(e->d_name, "node%d", &id) != 1 || id < 0) continue;
      std::string list;
      if (!read_sysfs("/sys/devices/system/node/node" + std::to_string(id) + "/cpulist",
                      list)) {
        continue;
      }
      numa_node n;
      n.id = id;
      n.cpus = parse_cpulist(list);
      if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
    }
    ::closedir(dir);
  }
  if (!t.nodes.empty()) {
    std::sort(t.nodes.begin(), t.nodes.end(),
              [](const numa_node& a, const numa_node& b) { return a.id < b.id; });
    return t;
  }
#endif
  return fallback_topology();
}

const topology& topology::get() {
  static const topology t = probe_topology();
  return t;
}

std::size_t topology::total_cpus() const {
  std::size_t n = 0;
  for (const numa_node& node : nodes) n += node.cpus.size();
  return n;
}

int topology::node_of_cpu(int cpu) const {
  for (const numa_node& node : nodes) {
    if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu)) return node.id;
  }
  return -1;
}

bool pin_thread_to_cpus(const std::vector<int>& cpus) {
#ifdef __linux__
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool pin_thread_to_cpu(int cpu) { return pin_thread_to_cpus({cpu}); }

bool pin_thread_to_node(int node) {
  for (const numa_node& n : topology::get().nodes) {
    if (n.id == node) return pin_thread_to_cpus(n.cpus);
  }
  return false;
}

int current_cpu() {
#ifdef __linux__
  return ::sched_getcpu();
#else
  return -1;
#endif
}

bool bind_memory_to_node(void* addr, std::size_t len, int node) {
#if defined(__linux__) && defined(__NR_mbind)
  if (addr == nullptr || len == 0 || node < 0) return false;
  // No <numaif.h> without libnuma; the ABI constants are stable.
  constexpr int kMpolBind = 2;
  constexpr unsigned kMpolMfMove = 1u << 1;
  constexpr unsigned kMaxNode = 1024;
  unsigned long mask[kMaxNode / (8 * sizeof(unsigned long))] = {0};
  if (static_cast<unsigned>(node) >= kMaxNode) return false;
  mask[node / (8 * sizeof(unsigned long))] |=
      1ul << (node % (8 * sizeof(unsigned long)));
  // mbind wants page-aligned start; round down and stretch the length.
  const long page = ::sysconf(_SC_PAGESIZE);
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t aligned = base & ~static_cast<std::uintptr_t>(page - 1);
  len += base - aligned;
  return ::syscall(__NR_mbind, aligned, len, kMpolBind, mask, kMaxNode,
                   kMpolMfMove) == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace interedge::sys
