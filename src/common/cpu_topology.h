// CPU/NUMA topology probe and thread-placement helpers.
//
// The multi-core SN datapath (service_node workers) and the uring transport
// both want topology-aware placement: worker shards pinned to cores, the
// control thread on its own core, slab arenas and SQPOLL threads on the
// node that owns those cores. This module is the one place that knows how
// to discover the machine shape — /sys/devices/system/node on Linux, with
// a portable single-node fallback everywhere else — and how to apply it
// (sched_setaffinity for threads, a best-effort raw mbind for memory).
//
// Everything here is advisory: a failed pin or bind degrades locality,
// never correctness, so every helper returns bool instead of throwing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace interedge::sys {

struct numa_node {
  int id = 0;
  std::vector<int> cpus;  // ascending
};

// The machine shape. `nodes` is never empty: when /sys is unreadable (or
// on non-Linux builds) a single node 0 holding every online cpu stands in,
// so callers can iterate nodes unconditionally.
struct topology {
  std::vector<numa_node> nodes;

  std::size_t total_cpus() const;
  // Node owning `cpu`, -1 if no node lists it.
  int node_of_cpu(int cpu) const;

  // Probe once, cache forever (hotplug is out of scope for an SN's
  // lifetime).
  static const topology& get();
};

// Parses a kernel cpulist ("0-3,8,10-11") into ascending cpu ids. Exposed
// for tests; malformed chunks are skipped rather than fatal.
std::vector<int> parse_cpulist(const std::string& s);

// Uncached probe: reads /sys/devices/system/node/node*/cpulist, falls back
// to one node covering [0, hardware_concurrency).
topology probe_topology();

// Pins the calling thread. False when the cpu set is empty/invalid or the
// kernel refuses (caller logs and carries on unpinned).
bool pin_thread_to_cpu(int cpu);
bool pin_thread_to_cpus(const std::vector<int>& cpus);
// Pin to every cpu of `node` (one scheduler domain, not one core).
bool pin_thread_to_node(int node);

// The cpu the calling thread is on right now; -1 when unknowable.
int current_cpu();

// Best-effort: asks the kernel to place the pages of [addr, addr+len) on
// `node` (raw mbind; there is no libnuma in the image). False — not fatal
// — when the syscall is unavailable or refused; first-touch then decides.
bool bind_memory_to_node(void* addr, std::size_t len, int node);

}  // namespace interedge::sys
