// Continuous profiling plane (ISSUE 10): an in-process on-CPU sampling
// profiler plus rdtsc-based per-stage cycle attribution.
//
// Sampling side. Each registered thread gets a trigger that fires SIGPROF
// at `sample_hz` of *CPU time* (not wall time — an idle thread is never
// sampled). Two trigger backends, probed at arm time:
//   * perf_event  — perf_event_open(PERF_COUNT_SW_TASK_CLOCK) per thread,
//                   overflow delivered as a thread-directed SIGPROF via
//                   F_SETOWN_EX/F_SETSIG; the handler re-arms with
//                   PERF_EVENT_IOC_REFRESH(1).
//   * timer_signal— timer_create over the thread's CPU-time clock
//                   (pthread_getcpuclockid) with SIGEV_THREAD_ID. The
//                   fallback for containers where perf_event_open is
//                   denied by seccomp or perf_event_paranoid.
// Both backends capture the stack the same way: the signal handler walks
// the frame-pointer chain from the interrupted ucontext (hence the
// -fno-omit-frame-pointer release presets) into a fixed raw_sample and
// pushes it onto the thread's SPSC sample ring. The handler is strictly
// async-signal-safe: TLS load, bounded pointer walk with stack-bounds
// validation, atomics + memcpy into preallocated ring slots, one ioctl.
// No malloc, no locks, no formatting. A full ring is a counted drop.
//
// The control thread drains the rings into an aggregated stack table
// (raw PCs; symbolization via prof_symbolize is deferred to export) and
// renders FlameGraph-collapsed folded text, JSON, and a top-N hot
// function table.
//
// Attribution side. cycle_scope{stage} is a batch-granularity RAII rdtsc
// bracket over the five datapath stages (peek/steer, decrypt, terminus,
// slow-path, egress). Scopes nest: a child's cycles are subtracted from
// its parent, so per-stage totals are self-time and sum without double
// counting. Totals land in a thread-local cycle_set (installed with
// scoped_cycle_set, mirroring trace::scoped_tracer) that the health tick
// folds into per-stage cycle-share gauges — the cheap cross-check for
// what the sampled stacks say.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace interedge::prof {

// ---- rdtsc cycle attribution -------------------------------------------

enum class cycle_stage : std::uint8_t {
  peek_steer = 0,  // batched header peek + SipHash flow steering
  decrypt,         // PSP open of sealed ILP headers (batch)
  terminus,        // fast-path verdict dispatch over the decrypted batch
  slowpath,        // slow-path channel drain + service dispatch
  egress,          // shard egress drain / gather send
};
inline constexpr std::size_t kCycleStageCount = 5;
const char* cycle_stage_name(cycle_stage s);

inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

// Per-thread stage cycle totals. Writers are the owning thread's
// cycle_scopes; the health tick reads cross-thread, so the slots are
// relaxed atomics (free on x86, and keeps tsan honest).
struct cycle_set {
  std::array<std::atomic<std::uint64_t>, kCycleStageCount> self{};

  void add(cycle_stage s, std::uint64_t cycles) {
    self[static_cast<std::size_t>(s)].fetch_add(cycles, std::memory_order_relaxed);
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& v : self) t += v.load(std::memory_order_relaxed);
    return t;
  }
};

// Thread-local ambient cycle set (same pattern as trace::current()).
cycle_set* cycle_current();

class scoped_cycle_set {
 public:
  explicit scoped_cycle_set(cycle_set* s);
  ~scoped_cycle_set();
  scoped_cycle_set(const scoped_cycle_set&) = delete;
  scoped_cycle_set& operator=(const scoped_cycle_set&) = delete;

 private:
  cycle_set* prev_;
};

// RAII rdtsc bracket attributing self-time to `s` on the current thread's
// cycle_set. Nesting-aware: on close, the elapsed cycles minus any nested
// scopes' cycles are credited to this stage, and the full elapsed span is
// reported up to the parent scope as child time. ~4 ns/pair; intended at
// batch granularity only (see DESIGN.md §15 for the budget math).
class cycle_scope {
 public:
  explicit cycle_scope(cycle_stage s);
  ~cycle_scope();
  cycle_scope(const cycle_scope&) = delete;
  cycle_scope& operator=(const cycle_scope&) = delete;

 private:
  cycle_set* set_;
  cycle_scope* parent_;
  cycle_stage stage_;
  std::uint64_t start_ = 0;
  std::uint64_t child_ = 0;
};

// ---- sampling profiler -------------------------------------------------

inline constexpr std::size_t kMaxFrames = 48;
inline constexpr std::size_t kMaxThreads = 64;
inline constexpr std::size_t kThreadNameLen = 16;

// One captured stack: raw return addresses, innermost first.
struct raw_sample {
  std::uint32_t depth = 0;
  std::uintptr_t pc[kMaxFrames];
};

// Fixed-capacity SPSC ring for raw samples. Producer is the signal
// handler (push is wait-free: two atomic loads, a memcpy into a
// preallocated slot, one release store); consumer is the drain thread.
// Full ring = counted drop, never a block.
class sample_ring {
 public:
  explicit sample_ring(std::size_t slots);  // rounded up to a power of two

  bool try_push(const raw_sample& s);  // async-signal-safe
  bool try_pop(raw_sample& out);

  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return mask_ + 1; }
  void reset();

 private:
  std::size_t mask_;
  std::unique_ptr<raw_sample[]> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer writes
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer writes
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

enum class backend : std::uint8_t {
  none = 0,      // disarmed
  perf_event,    // perf_event_open overflow signals
  timer_signal,  // timer_create over the thread CPU clock
};
const char* backend_name(backend b);

struct profiler_config {
  // Samples per second of per-thread CPU time. 0 constructs a disarmed
  // profiler (register/drain are no-ops that keep call sites branch-free).
  // Prime default so the sampler can't phase-lock with periodic work.
  std::uint32_t sample_hz = 97;
  std::size_t ring_slots = 256;    // per-thread sample ring
  std::size_t max_stacks = 2048;   // aggregated stack table cap
  bool force_timer = false;        // skip the perf_event probe (tests)
};

// Aggregated (folded) stacks: one entry per distinct (thread, PC chain).
struct folded_stack {
  std::string thread;                // registering thread's name
  std::vector<std::uintptr_t> pcs;   // innermost first, as captured
  std::uint64_t count = 0;
};

// One row of the top-N hot-function table: leaf-attributed sample counts.
struct hot_function {
  std::string name;
  std::uint64_t self = 0;   // samples with this function on top
  std::uint64_t total = 0;  // samples with it anywhere on the stack
};

// The profiler instance. One per service node (or per tool run). All
// methods except register_current_thread/unregister_current_thread are
// control-thread-side; the signal handler never touches this object.
class profiler {
 public:
  explicit profiler(profiler_config cfg);
  ~profiler();
  profiler(const profiler&) = delete;
  profiler& operator=(const profiler&) = delete;

  // Binds the calling thread to a sample ring under `name` (truncated to
  // 15 chars). If the profiler is armed, the thread's trigger starts
  // immediately; otherwise it starts at arm(). Returns false when the
  // profiler is disarmed-by-config (sample_hz == 0), the global slot pool
  // is exhausted, or the thread is already registered.
  bool register_current_thread(const char* name);
  // Must run on the registered thread (clears its TLS binding before the
  // trigger is torn down, so a late-pending SIGPROF finds a null slot).
  void unregister_current_thread();

  // Starts/stops triggers for every registered thread. arm() probes
  // perf_event on first use and falls back to the CPU-clock timer; the
  // chosen backend is sticky for the profiler's lifetime.
  bool arm();
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }
  backend active_backend() const { return backend_; }

  // Moves every ring's pending samples into the aggregated stack table.
  // Control-thread side; cheap when nothing was sampled. Returns samples
  // consumed.
  std::size_t drain();

  // FlameGraph-collapsed text: "thread;outer;…;leaf count\n" per stack,
  // root-first, symbolized. Deterministically ordered (by count desc,
  // then key). Accepts flamegraph.pl / speedscope verbatim.
  std::string folded() const;
  // {"backend":…,"samples":N,"dropped":N,"stacks":[{"thread":…,
  //  "frames":[…outermost first…],"count":N},…]} — same data as folded().
  std::string export_json(std::size_t limit = 0) const;
  // Top-N functions by leaf (self) samples.
  std::vector<hot_function> top_functions(std::size_t n) const;
  // Hot-stack table for postmortem embedding: JSON array (possibly "[]")
  // of the top-`n` stacks by count. Never blocks on sampling state; takes
  // only the profiler's own aggregation mutex.
  std::string hot_stacks_json(std::size_t n) const;

  // Aggregated raw view (tests).
  std::vector<folded_stack> stacks() const;
  std::uint64_t total_samples() const { return total_samples_.load(std::memory_order_relaxed); }
  // Ring-full drops + stack-table-cap drops, summed.
  std::uint64_t total_dropped() const;
  std::size_t registered_threads() const;

  const profiler_config& config() const { return cfg_; }

 private:
  struct table_entry {
    std::uint32_t thread_slot = 0;
    std::uint32_t depth = 0;
    std::uintptr_t pc[kMaxFrames];
    std::uint64_t count = 0;
  };

  bool start_trigger_locked(std::size_t slot_idx);
  void stop_trigger_locked(std::size_t slot_idx);
  void fold_sample_locked(std::uint32_t slot_idx, const raw_sample& s);

  profiler_config cfg_;
  backend backend_ = backend::none;
  std::atomic<bool> armed_{false};

  mutable std::mutex mu_;  // slots bookkeeping + stack table (never in handler)
  std::vector<std::uint32_t> my_slots_;  // indices into the global slot pool
  std::vector<table_entry> table_;
  std::vector<std::uint32_t> hash_index_;  // open-addressed index into table_
  std::atomic<std::uint64_t> total_samples_{0};
  std::uint64_t table_overflow_ = 0;
  std::uint64_t drained_drops_ = 0;  // ring drops folded in at unregister
};

// Renders stacks as FlameGraph-collapsed text (exposed for tests and the
// drain-side tooling; profiler::folded() uses it).
std::string render_folded(const std::vector<folded_stack>& stacks);

}  // namespace interedge::prof
