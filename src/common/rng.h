// Deterministic PRNG (xoshiro256**) for simulations and property tests.
// Not cryptographic — key material comes from crypto/random.h.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace interedge {

class rng {
 public:
  explicit rng(std::uint64_t seed);

  std::uint64_t next();
  // Uniform in [0, bound); bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);
  // Uniform double in [0, 1).
  double uniform();
  bool chance(double p) { return uniform() < p; }
  void fill(byte_span out);

 private:
  std::uint64_t s_[4];
};

}  // namespace interedge
