// Sliding-window time-series rollups over metrics_registry snapshots
// (ISSUE 7). The datapath keeps writing its relaxed-atomic counters and
// histograms exactly as before — zero hot-path cost; the control thread's
// health tick hands a merged snapshot to tick(), which differences it
// against the previous one into a fixed-memory ring of per-window rollups:
//
//   * counter/sharded-counter families become per-window deltas, with
//     counter-reset clamping (a delta going negative means the node behind
//     the series restarted and its counters were wiped — the window takes
//     the fresh value and the reset is counted, never a negative rate);
//   * histogram families become per-window sparse bucket sketches (bounded
//     (bucket, count) pairs diffed from the raw log-linear buckets), so a
//     window quantile or an above-threshold error fraction is answerable
//     long after the cumulative histogram has smeared the signal.
//
// Queries slide over the ring by wall-clock span: rate over the last 1m,
// p99 over the last 5m, fraction of samples above an SLO threshold — the
// exact primitives multi-window burn-rate alerting (common/slo.h) needs.
// Memory is fixed at construction: series beyond the configured caps are
// dropped and counted, windows beyond the ring depth age out.
//
// Single-threaded by design: tick() and the queries run on the owner's
// control thread (a mutex still guards state so exposition from another
// thread stays safe, but nothing here is on a packet path).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"

namespace interedge {

class timeseries_store {
 public:
  struct config {
    // Window width and ring depth: window * windows is the whole history
    // (the slow burn window must fit inside it).
    nanoseconds window = std::chrono::seconds(10);
    std::size_t windows = 64;
    // Series caps — the fixed-memory contract. Excess series are ignored
    // and counted in series_dropped().
    std::size_t max_counter_series = 512;
    std::size_t max_hist_series = 64;
    // Distinct (bucket, count) pairs kept per histogram window; a window
    // that touches more buckets folds the overflow into its last entry's
    // count (quantiles degrade gracefully, totals stay exact).
    std::size_t sketch_buckets = 48;
    // Optional name-prefix filter: when non-empty, only series whose
    // rendered key starts with one of these prefixes are tracked.
    std::vector<std::string> prefixes;
  };

  explicit timeseries_store(config cfg);

  // Folds one cumulative snapshot into the ring at `now`. Windows the
  // clock skipped since the last tick are zeroed (no stale carry-over);
  // several ticks inside one window accumulate into it.
  void tick(const metrics_registry& snapshot, time_point now);

  // ---- counter queries (span = lookback from the latest tick) ----
  std::uint64_t delta(const std::string& key, nanoseconds span) const;
  double rate_per_sec(const std::string& key, nanoseconds span) const;

  // ---- histogram queries ----
  std::uint64_t hist_count(const std::string& key, nanoseconds span) const;
  // Merged-window quantile (bucket-midpoint resolution, like histogram).
  std::uint64_t hist_quantile(const std::string& key, nanoseconds span, double q) const;
  // Fraction of the span's samples strictly above `threshold_ns` — the
  // latency-SLO error rate (0 when the span holds no samples).
  double hist_fraction_above(const std::string& key, nanoseconds span,
                             std::uint64_t threshold_ns) const;

  // ---- accounting ----
  std::uint64_t ticks() const;
  // Counter wipes observed (node restarts behind a merged snapshot).
  std::uint64_t counter_resets() const;
  // Series refused by the max_* caps (cumulative).
  std::uint64_t series_dropped() const;
  std::size_t counter_series() const;
  std::size_t hist_series() const;
  const config& cfg() const { return cfg_; }

  // Compact JSON summary (series counts, resets, window coverage).
  std::string export_json() const;

 private:
  struct counter_series_t {
    double prev = 0;                 // cumulative value at the last tick
    bool have_prev = false;
    std::vector<double> ring;        // per-window deltas
    std::vector<std::int64_t> slot;  // which absolute window each ring cell holds
  };
  struct sketch_entry {
    std::uint16_t bucket = 0;
    std::uint64_t count = 0;
  };
  struct hist_window {
    std::int64_t slot = -1;
    std::vector<sketch_entry> entries;  // bounded by cfg_.sketch_buckets
    std::uint64_t total = 0;            // exact sample count for the window
  };
  struct hist_series_t {
    std::vector<std::uint64_t> prev;  // raw bucket snapshot at the last tick
    bool have_prev = false;
    std::vector<hist_window> ring;
  };

  bool tracked(const std::string& key) const;
  std::int64_t slot_of(time_point t) const {
    return static_cast<std::int64_t>(t.time_since_epoch().count() / cfg_.window.count());
  }
  // Windows covering the last `span` ending at the latest tick's slot.
  std::int64_t span_first_slot(nanoseconds span) const;

  config cfg_;
  mutable std::mutex mu_;
  std::int64_t last_slot_ = -1;
  std::uint64_t ticks_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t series_dropped_ = 0;
  std::map<std::string, counter_series_t> counters_;
  std::map<std::string, hist_series_t> hists_;
};

}  // namespace interedge
