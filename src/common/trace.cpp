#include "common/trace.h"

#include <bit>
#include <sstream>

namespace interedge::trace {
namespace {

thread_local tracer* g_current = nullptr;
thread_local int g_depth = 0;

std::size_t round_up_pow2(std::size_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

const char* stage_name(stage s) {
  switch (s) {
    case stage::ingress: return "ingress";
    case stage::parse: return "parse";
    case stage::decrypt: return "decrypt";
    case stage::cache: return "cache";
    case stage::emit: return "emit";
    case stage::slowpath: return "slowpath";
    case stage::service: return "service";
  }
  return "?";
}

tracer::tracer(metrics_registry& reg) : tracer(reg, config()) {}

tracer::tracer(metrics_registry& reg, config cfg)
    : hop_(cfg.hop),
      sample_mask_((1ull << cfg.sample_shift) - 1),
      ring_(round_up_pow2(cfg.ring_capacity)),
      ring_mask_(ring_.size() - 1) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_hists_[i] =
        &reg.get_histogram(std::string("sn.stage.") + stage_name(static_cast<stage>(i)));
  }
}

void tracer::capture(stage s, std::uint64_t start_ns, std::uint64_t duration_ns, char verdict) {
  const std::uint64_t slot = captures_.fetch_add(1, std::memory_order_relaxed);
  trace_record& r = ring_[slot & ring_mask_];
  r.seq = slot;
  r.hop = hop_;
  r.st = s;
  r.depth = static_cast<std::uint8_t>(g_depth);
  r.start_ns = start_ns;
  r.duration_ns = duration_ns;
  r.verdict = verdict;
}

std::vector<trace_record> tracer::recent(std::size_t limit) const {
  const std::uint64_t written = captures_.load(std::memory_order_relaxed);
  std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(written, ring_.size()));
  if (limit != 0 && limit < n) n = limit;
  std::vector<trace_record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(written - 1 - i) & ring_mask_]);
  }
  return out;
}

std::string tracer::dump(std::size_t limit) const {
  std::ostringstream os;
  for (const trace_record& r : recent(limit)) {
    os << "trace seq=" << r.seq << " hop=" << r.hop << " stage=" << stage_name(r.st)
       << " depth=" << static_cast<int>(r.depth) << " dur=" << r.duration_ns
       << "ns verdict=" << r.verdict << "\n";
  }
  return os.str();
}

tracer* current() { return g_current; }

scoped_tracer::scoped_tracer(tracer* t) : prev_(g_current) { g_current = t; }
scoped_tracer::~scoped_tracer() { g_current = prev_; }

int span_depth() { return g_depth; }

span::span(stage s, bool capture) : t_(g_current), stage_(s), capture_(capture) {
  if (t_ == nullptr) return;
  depth_ = static_cast<std::uint8_t>(g_depth);
  ++g_depth;
  start_ = now_ns();
}

span::~span() {
  if (t_ == nullptr) return;
  const std::uint64_t dur = now_ns() - start_;
  --g_depth;
  t_->record_stage(stage_, dur);
  if (capture_) t_->capture(stage_, start_, dur, verdict_);
}

}  // namespace interedge::trace
