#include "common/trace.h"

#include <bit>
#include <sstream>

#include "common/logging.h"

namespace interedge::trace {
namespace {

thread_local tracer* g_current = nullptr;
thread_local int g_depth = 0;

std::size_t round_up_pow2(std::size_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}

}  // namespace

const char* stage_name(stage s) {
  switch (s) {
    case stage::ingress: return "ingress";
    case stage::parse: return "parse";
    case stage::decrypt: return "decrypt";
    case stage::cache: return "cache";
    case stage::emit: return "emit";
    case stage::slowpath: return "slowpath";
    case stage::service: return "service";
  }
  return "?";
}

tracer::tracer(metrics_registry& reg) : tracer(reg, config()) {}

tracer::tracer(metrics_registry& reg, config cfg)
    : hop_(cfg.hop),
      sample_mask_((1ull << cfg.sample_shift) - 1),
      ring_(round_up_pow2(cfg.ring_capacity)),
      ring_mask_(ring_.size() - 1) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_hists_[i] =
        &reg.get_histogram(std::string("sn.stage.") + stage_name(static_cast<stage>(i)));
  }
}

void tracer::capture(stage s, std::uint64_t start_ns, std::uint64_t duration_ns, char verdict) {
  const std::uint64_t slot = captures_.fetch_add(1, std::memory_order_relaxed);
  trace_record& r = ring_[slot & ring_mask_];
  r.seq = slot;
  r.hop = hop_;
  r.st = s;
  r.depth = static_cast<std::uint8_t>(g_depth);
  r.start_ns = start_ns;
  r.duration_ns = duration_ns;
  r.verdict = verdict;
}

std::vector<trace_record> tracer::recent(std::size_t limit) const {
  const std::uint64_t written = captures_.load(std::memory_order_relaxed);
  // Wrap accounting: captures past ring capacity since the last export
  // were overwritten before any reader saw them. Count them (they used to
  // vanish silently) and warn once per burst — the flag rearms when an
  // export finds no loss, so a steady overload doesn't spam the log.
  const std::uint64_t mark = read_mark_.exchange(written, std::memory_order_relaxed);
  const std::uint64_t unread = written - mark;
  if (unread > ring_.size()) {
    const std::uint64_t lost = unread - ring_.size();
    dropped_records_.fetch_add(lost, std::memory_order_relaxed);
    if (!wrap_warned_.exchange(true, std::memory_order_relaxed)) {
      IE_LOG(warn) << "trace" << kv("hop", hop_) << kv("dropped_records", lost)
                   << kv("ring_capacity", ring_.size());
    }
  } else {
    wrap_warned_.store(false, std::memory_order_relaxed);
  }
  std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(written, ring_.size()));
  if (limit != 0 && limit < n) n = limit;
  std::vector<trace_record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(written - 1 - i) & ring_mask_]);
  }
  return out;
}

std::string tracer::dump(std::size_t limit) const {
  std::ostringstream os;
  for (const trace_record& r : recent(limit)) {
    os << "trace seq=" << r.seq << " hop=" << r.hop << " stage=" << stage_name(r.st)
       << " depth=" << static_cast<int>(r.depth) << " dur=" << r.duration_ns
       << "ns verdict=" << r.verdict << "\n";
  }
  return os.str();
}

tracer* current() { return g_current; }

scoped_tracer::scoped_tracer(tracer* t) : prev_(g_current) { g_current = t; }
scoped_tracer::~scoped_tracer() { g_current = prev_; }

int span_depth() { return g_depth; }

span::span(stage s, bool capture) : t_(g_current), stage_(s), capture_(capture) {
  if (t_ == nullptr) return;
  depth_ = static_cast<std::uint8_t>(g_depth);
  ++g_depth;
  start_ = now_ns();
}

span::~span() {
  if (t_ == nullptr) return;
  const std::uint64_t dur = now_ns() - start_;
  --g_depth;
  t_->record_stage(stage_, dur);
  if (capture_) t_->capture(stage_, start_, dur, verdict_);
}

// ---- cross-hop path tracing (ISSUE 5) ---------------------------------

const char* span_kind_name(span_kind k) {
  switch (k) {
    case span_kind::origin: return "origin";
    case span_kind::hop_fast: return "hop_fast";
    case span_kind::hop_slow: return "hop_slow";
    case span_kind::service: return "service";
    case span_kind::forward: return "forward";
    case span_kind::deliver: return "deliver";
    case span_kind::event: return "event";
  }
  return "?";
}

std::string annotation_names(std::uint16_t annotations) {
  static constexpr std::pair<std::uint16_t, const char*> kNames[] = {
      {kAnnoShed, "shed"},
      {kAnnoDrop, "drop"},
      {kAnnoDeadlineExpired, "deadline_expired"},
      {kAnnoPeerDown, "peer_down"},
      {kAnnoFailover, "failover"},
      {kAnnoRekey, "rekey"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if ((annotations & bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

namespace {

// splitmix64: cheap, deterministic, full-period id mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

path_recorder::path_recorder(config cfg)
    : cfg_(cfg),
      sample_mask_((1ull << cfg.sample_shift) - 1),
      ring_(round_up_pow2(cfg.capacity)) {}

std::uint64_t path_recorder::new_trace_id() {
  const std::uint64_t n = span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = mix64(cfg_.node * 0x9e3779b97f4a7c15ull ^ n);
  return id != 0 ? id : 1;
}

std::uint64_t path_recorder::next_span_id() {
  const std::uint64_t n = span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Node id in the top bits keeps span ids unique across a deployment
  // without coordination (node ids are small; 2^40 spans per node).
  const std::uint64_t id = (cfg_.node << 40) ^ n;
  return id != 0 ? id : 1;
}

void path_recorder::emit(path_span s) {
  if (ring_.try_push(std::move(s))) {
    emitted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t path_recorder::drain(std::vector<path_span>& out, std::size_t max) {
  return ring_.try_pop_batch(out, max);
}

}  // namespace interedge::trace
