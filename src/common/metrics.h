// Lightweight metrics: counters and a log-linear latency histogram.
// Service nodes expose per-path counters; benchmarks use the histogram
// for latency percentiles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace interedge {

class counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// HDR-style log-linear histogram over nanosecond values: 64 base-2 tiers,
// 16 linear sub-buckets each. Bounded relative error ~6%.
class histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;

  void record(std::uint64_t value_ns);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // q in [0,1]; returns bucket midpoint.
  std::uint64_t quantile(double q) const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  static std::size_t bucket_of(std::uint64_t v);
  static std::uint64_t bucket_mid(std::size_t idx);
  std::array<std::atomic<std::uint64_t>, 64 * kSub> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Named registry so a service node can dump all of its metrics at once.
class metrics_registry {
 public:
  counter& get_counter(const std::string& name);
  histogram& get_histogram(const std::string& name);
  std::string report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<histogram>> histograms_;
};

}  // namespace interedge
