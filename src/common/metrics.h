// Metrics: lock-free handles over an interning registry.
//
// Call sites resolve a counter&/gauge&/histogram& ONCE (at service or
// module init, or via intern()) and hot paths then touch only relaxed
// atomics — the registry mutex is never on the packet path. Labeled
// families share one family name with distinct label sets
// (sn.rx.pkts{service="odns"}); sharded_counter stripes contended
// counters across cache lines. The registry renders a deterministic
// human report plus Prometheus-text and JSON expositions.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace interedge {

class counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value (queue depths, cache occupancy, in-flight windows).
// Signed so transient dips below a baseline don't wrap.
class gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d = 1) { value_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Cache-line-striped counter for paths hammered from several threads at
// once: each thread lands on its own shard, so adds never contend on one
// line; value() folds the stripes.
class sharded_counter {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  void add(std::uint64_t n = 1) {
    shards_[shard_index() & (kShards - 1)].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index();
  std::array<shard, kShards> shards_{};
};

// HDR-style log-linear histogram over nanosecond values: 64 base-2 tiers,
// 16 linear sub-buckets each. Bounded relative error ~6%.
class histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr std::size_t kBucketCount = 64 * kSub;

  void record(std::uint64_t value_ns);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // q in [0,1]; returns bucket midpoint. Safe against concurrent record():
  // if the bucket scan runs out before reaching the target rank (counts
  // racing), it answers with the last populated bucket's midpoint.
  std::uint64_t quantile(double q) const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

  // Bucketwise accumulation of another histogram's contents (per-shard
  // exposition merging). Safe against concurrent record() on either side;
  // the merged view is a consistent-enough snapshot for reporting.
  void merge_from(const histogram& other);

  // Raw bucket access for window differencing (timeseries rollups): the
  // count in bucket `idx` and the representative value the bucket stands
  // for. Reads race record() benignly — a window delta is a snapshot, not
  // an invariant.
  std::uint64_t bucket_value(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }
  static std::uint64_t bucket_midpoint(std::size_t idx) { return bucket_mid(idx); }

 private:
  static std::size_t bucket_of(std::uint64_t v);
  static std::uint64_t bucket_mid(std::size_t idx);
  std::array<std::atomic<std::uint64_t>, 64 * kSub> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Stable handle for an interned metric. Ids are dense and never recycled.
using metric_id = std::uint32_t;
inline constexpr metric_id kInvalidMetricId = 0xffffffffu;

enum class metric_kind : std::uint8_t { counter, gauge, histogram, sharded_counter };
const char* metric_kind_name(metric_kind k);

// Sorted-by-key label set, e.g. {{"service", "odns"}}.
using label_list = std::vector<std::pair<std::string, std::string>>;

// One exported data point (rate tracking, coverage tests).
struct metric_sample {
  std::string key;   // family name + rendered labels: sn.rx.pkts{service="odns"}
  std::string name;  // family name alone
  metric_kind kind = metric_kind::counter;
  double value = 0;  // counter/gauge/sharded value; histogram count
};

// Named registry. Interning (name, labels, kind) yields a stable id and a
// stable object address; handle-holding call sites never re-enter the
// registry on the hot path.
class metrics_registry {
 public:
  // Interning: idempotent (kind, name, labels) -> metric_id.
  metric_id intern(metric_kind kind, const std::string& name, const label_list& labels = {});

  // Handle resolution; resolve once, keep the reference.
  counter& get_counter(const std::string& name, const label_list& labels = {});
  gauge& get_gauge(const std::string& name, const label_list& labels = {});
  histogram& get_histogram(const std::string& name, const label_list& labels = {});
  sharded_counter& get_sharded_counter(const std::string& name, const label_list& labels = {});

  // Id -> object (reporting and trace plumbing; takes the registry lock).
  counter& counter_at(metric_id id);
  gauge& gauge_at(metric_id id);
  histogram& histogram_at(metric_id id);
  sharded_counter& sharded_counter_at(metric_id id);

  std::size_t size() const;
  // Distinct family names, sorted.
  std::vector<std::string> family_names() const;
  // Every registered metric as a point sample, sorted by key.
  std::vector<metric_sample> samples() const;

  // Visits every histogram entry as (rendered key, histogram&) under the
  // registry lock — the timeseries tick diffs raw buckets this way instead
  // of round-tripping through point samples.
  void for_each_histogram(
      const std::function<void(const std::string& key, const histogram& h)>& fn) const;

  // Accumulates every metric of `other` into this registry, interning
  // families on demand: counters/gauges/sharded counters add their values,
  // histograms merge bucketwise. Merging N per-shard registries into a
  // fresh one yields the global exposition view (stats_snapshot,
  // export_prometheus) without ever sharing hot-path metric objects
  // across threads.
  void merge_from(const metrics_registry& other);

  // Deterministic human-readable dump: counters, gauges and sharded
  // counters first (sorted by key), then histograms with quantiles.
  std::string report() const;
  // Prometheus text exposition ('.' -> '_'; histograms as summaries).
  std::string export_prometheus() const;
  std::string export_json() const;

 private:
  struct entry {
    metric_kind kind;
    std::string name;
    label_list labels;
    std::string key;  // rendered name{labels}
    std::unique_ptr<counter> c;
    std::unique_ptr<gauge> g;
    std::unique_ptr<histogram> h;
    std::unique_ptr<sharded_counter> s;
    double scalar_value() const;
  };

  const entry& at(metric_id id) const;
  // Entries sorted by (key, kind) for deterministic exposition.
  std::vector<const entry*> sorted_entries_locked() const;

  mutable std::mutex mu_;
  std::deque<entry> entries_;               // deque: stable addresses
  std::map<std::string, metric_id> index_;  // key + kind tag -> id
};

// Renders name{k="v",...}; labels are emitted in the given order.
std::string render_metric_key(const std::string& name, const label_list& labels);

// Successive-snapshot rate computation for periodic stats reporting: each
// delta_report() call renders current values plus per-second rates of the
// monotone kinds (counter, sharded_counter, histogram count) since the
// previous call.
class stats_reporter {
 public:
  std::string delta_report(const metrics_registry& reg, double elapsed_seconds);

 private:
  std::map<std::string, double> prev_;
};

}  // namespace interedge
