// Cross-hop trace context (ISSUE 5; Dapper-style context propagation).
//
// The context rides inside the sealed ILP header metadata
// (ilp::meta_key::trace_ctx), so it is encrypted hop-by-hop like the rest
// of the header and invisible to off-path observers. The sampling decision
// is made exactly once, at the origin (host_stack / tunnel ingress), and
// honored at every hop: unsampled packets carry NO context at all, so the
// per-hop cost of an unsampled packet is one failed metadata lookup.
//
// Wire layout (version 1, 19 bytes, little-endian):
//   u8  version      (1; decoders ignore unknown versions — un-upgraded
//                     peers already ignore unknown TLV keys, and upgraded
//                     peers must tolerate future layouts the same way)
//   u8  flags        (bit 0: sampled)
//   u8  hop_count    (incremented by each forwarding element)
//   u64 trace_id     (origin-allocated, nonzero)
//   u64 parent_span  (span id of the previous hop's span)
//
// Trailing bytes beyond the 19 are tolerated (forward compatibility: a
// future minor revision may append fields).
//
// This header is deliberately dependency-free (bytes only) so the ILP
// layer can include it without pulling in the metrics/trace machinery.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace interedge::trace {

inline constexpr std::uint8_t kTraceCtxVersion = 1;
inline constexpr std::uint8_t kTraceCtxSampled = 1 << 0;
inline constexpr std::size_t kTraceCtxSize = 19;

struct trace_context {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint8_t hop_count = 0;
  std::uint8_t flags = 0;

  bool sampled() const { return (flags & kTraceCtxSampled) != 0; }

  bytes encode() const {
    bytes out;
    out.reserve(kTraceCtxSize);
    out.push_back(kTraceCtxVersion);
    out.push_back(flags);
    out.push_back(hop_count);
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(trace_id >> (8 * i)));
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(parent_span >> (8 * i)));
    return out;
  }

  // nullopt on short input or unknown version — the caller treats the
  // packet as untraced, exactly like a peer that predates tracing.
  static std::optional<trace_context> decode(const_byte_span data) {
    if (data.size() < kTraceCtxSize || data[0] != kTraceCtxVersion) return std::nullopt;
    trace_context ctx;
    ctx.flags = data[1];
    ctx.hop_count = data[2];
    for (int i = 0; i < 8; ++i) ctx.trace_id |= static_cast<std::uint64_t>(data[3 + i]) << (8 * i);
    for (int i = 0; i < 8; ++i) {
      ctx.parent_span |= static_cast<std::uint64_t>(data[11 + i]) << (8 * i);
    }
    return ctx;
  }

  bool operator==(const trace_context&) const = default;
};

}  // namespace interedge::trace
