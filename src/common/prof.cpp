#include "common/prof.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "common/prof_symbolize.h"

#ifdef __linux__
#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#if defined(__has_include)
#if __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#define INTEREDGE_HAVE_PERF_EVENT 1
#endif
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#include <cerrno>
#endif  // __linux__

namespace interedge::prof {

const char* cycle_stage_name(cycle_stage s) {
  switch (s) {
    case cycle_stage::peek_steer: return "peek_steer";
    case cycle_stage::decrypt: return "decrypt";
    case cycle_stage::terminus: return "terminus";
    case cycle_stage::slowpath: return "slowpath";
    case cycle_stage::egress: return "egress";
  }
  return "?";
}

const char* backend_name(backend b) {
  switch (b) {
    case backend::none: return "none";
    case backend::perf_event: return "perf_event";
    case backend::timer_signal: return "timer_signal";
  }
  return "?";
}

// ---- cycle attribution -------------------------------------------------

namespace {
thread_local cycle_set* t_cycles = nullptr;
thread_local cycle_scope* t_scope = nullptr;
}  // namespace

cycle_set* cycle_current() { return t_cycles; }

scoped_cycle_set::scoped_cycle_set(cycle_set* s) : prev_(t_cycles) { t_cycles = s; }
scoped_cycle_set::~scoped_cycle_set() { t_cycles = prev_; }

cycle_scope::cycle_scope(cycle_stage s)
    : set_(t_cycles), parent_(t_scope), stage_(s) {
  if (set_ == nullptr) return;
  t_scope = this;
  start_ = rdtsc();
}

cycle_scope::~cycle_scope() {
  if (set_ == nullptr) return;
  std::uint64_t elapsed = rdtsc() - start_;
  t_scope = parent_;
  // Self time: nested scopes already claimed child_ of this span.
  set_->add(stage_, elapsed >= child_ ? elapsed - child_ : 0);
  if (parent_ != nullptr && parent_->set_ == set_) parent_->child_ += elapsed;
}

// ---- sample ring -------------------------------------------------------

namespace {
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

sample_ring::sample_ring(std::size_t slots)
    : mask_(pow2_at_least(std::max<std::size_t>(slots, 2)) - 1),
      slots_(new raw_sample[mask_ + 1]) {}

bool sample_ring::try_push(const raw_sample& s) {
  std::size_t head = head_.load(std::memory_order_relaxed);
  std::size_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail > mask_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  raw_sample& slot = slots_[head & mask_];
  slot.depth = s.depth;
  std::memcpy(slot.pc, s.pc, sizeof(std::uintptr_t) * s.depth);
  head_.store(head + 1, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool sample_ring::try_pop(raw_sample& out) {
  std::size_t tail = tail_.load(std::memory_order_relaxed);
  std::size_t head = head_.load(std::memory_order_acquire);
  if (tail == head) return false;
  const raw_sample& slot = slots_[tail & mask_];
  out.depth = std::min<std::uint32_t>(slot.depth, kMaxFrames);
  std::memcpy(out.pc, slot.pc, sizeof(std::uintptr_t) * out.depth);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

void sample_ring::reset() {
  tail_.store(head_.load(std::memory_order_acquire), std::memory_order_release);
  pushed_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

// ---- global thread-slot pool + signal handler --------------------------

#ifdef __linux__

namespace {

// One slot per profiled thread, claimed at registration. The pool is a
// process-global static so a SIGPROF pending across profiler teardown can
// never chase freed memory: slots (and their rings) outlive every
// profiler; `active` gates the handler off released slots.
struct thread_slot {
  std::atomic<bool> in_use{false};
  std::atomic<bool> active{false};  // trigger armed; handler gate
  sample_ring* ring = nullptr;      // allocated on first claim, reused
  std::size_t ring_slots = 0;
  char name[kThreadNameLen] = {};
  pid_t tid = 0;
  clockid_t cpu_clock{};
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  std::atomic<int> perf_fd{-1};
  timer_t timer{};
  bool timer_armed = false;
};

thread_slot g_slots[kMaxThreads];
std::mutex g_slots_mu;  // claims/releases only; never held in the handler
thread_local thread_slot* t_slot = nullptr;

// Frame-pointer unwind from the interrupted context. Every step is
// validated — fp within [interrupted sp, stack top), pointer-aligned,
// strictly increasing — so a broken chain (leaf frame, foreign code
// without frame pointers) ends the walk instead of faulting.
void unwind_from(void* uctx, const thread_slot& slot, raw_sample& out) {
  auto* uc = static_cast<ucontext_t*>(uctx);
  std::uintptr_t pc = 0, fp = 0, sp = 0;
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
#endif
  out.depth = 0;
  if (pc == 0) return;
  out.pc[out.depth++] = pc;
  std::uintptr_t hi = slot.stack_hi;
  if (hi == 0 || sp == 0) return;
  constexpr std::uintptr_t kAlign = sizeof(std::uintptr_t) - 1;
  while (out.depth < kMaxFrames) {
    if (fp < sp || fp + 2 * sizeof(std::uintptr_t) > hi || (fp & kAlign) != 0) break;
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    std::uintptr_t next_fp = frame[0];
    std::uintptr_t ret = frame[1];
    if (ret < 4096) break;  // null / near-null return: chain ended
    out.pc[out.depth++] = ret;
    if (next_fp <= fp) break;  // frames must move toward the stack base
    fp = next_fp;
  }
}

extern "C" void interedge_sigprof_handler(int, siginfo_t*, void* uctx) {
  // Async-signal-safe by construction: TLS load, bounded unwind, SPSC
  // push (atomics + memcpy into preallocated slots), one ioctl. errno is
  // preserved for the interrupted code.
  int saved_errno = errno;
  thread_slot* slot = t_slot;
  if (slot != nullptr && slot->active.load(std::memory_order_relaxed) &&
      slot->ring != nullptr) {
    raw_sample s;
    unwind_from(uctx, *slot, s);
    if (s.depth > 0) slot->ring->try_push(s);
#ifdef INTEREDGE_HAVE_PERF_EVENT
    int fd = slot->perf_fd.load(std::memory_order_relaxed);
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_REFRESH, 1);  // re-arm one overflow
#endif
  }
  errno = saved_errno;
}

void install_handler_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = interedge_sigprof_handler;
    // SA_RESTART: sampling must not surface EINTR into the datapath's
    // syscalls (that would make armed-vs-off behavior diverge).
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
  });
}

// Per-thread trigger construction (both may be called cross-thread: the
// perf fd targets `tid`, the timer targets the captured CPU clock).

#ifdef INTEREDGE_HAVE_PERF_EVENT
bool start_perf_trigger(thread_slot& slot, std::uint32_t hz) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_SOFTWARE;
  attr.config = PERF_COUNT_SW_TASK_CLOCK;  // counts ns of on-CPU time
  attr.sample_period = 1000000000ull / std::max<std::uint32_t>(hz, 1);
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // perf_event_paranoid=2 compatible
  attr.exclude_hv = 1;
  attr.wakeup_events = 1;
  int fd = static_cast<int>(
      syscall(SYS_perf_event_open, &attr, slot.tid, -1, -1, PERF_FLAG_FD_CLOEXEC));
  if (fd < 0) return false;
  struct f_owner_ex own;
  own.type = F_OWNER_TID;
  own.pid = slot.tid;
  if (fcntl(fd, F_SETOWN_EX, &own) != 0 || fcntl(fd, F_SETSIG, SIGPROF) != 0 ||
      fcntl(fd, F_SETFL, fcntl(fd, F_GETFL) | O_ASYNC) != 0) {
    close(fd);
    return false;
  }
  slot.perf_fd.store(fd, std::memory_order_release);  // handler re-arms via this
  ioctl(fd, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd, PERF_EVENT_IOC_REFRESH, 1);
  return true;
}
#endif

bool start_timer_trigger(thread_slot& slot, std::uint32_t hz) {
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = slot.tid;
  timer_t t;
  if (timer_create(slot.cpu_clock, &sev, &t) != 0) return false;
  long period_ns = 1000000000l / std::max<std::uint32_t>(hz, 1);
  struct itimerspec its;
  its.it_interval.tv_sec = period_ns / 1000000000l;
  its.it_interval.tv_nsec = period_ns % 1000000000l;
  its.it_value = its.it_interval;
  if (timer_settime(t, 0, &its, nullptr) != 0) {
    timer_delete(t);
    return false;
  }
  slot.timer = t;
  slot.timer_armed = true;
  return true;
}

void stop_trigger(thread_slot& slot) {
  slot.active.store(false, std::memory_order_release);
#ifdef INTEREDGE_HAVE_PERF_EVENT
  int fd = slot.perf_fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) close(fd);
#endif
  if (slot.timer_armed) {
    timer_delete(slot.timer);
    slot.timer_armed = false;
  }
}

// Probe whether perf_event_open works here (seccomp, perf_event_paranoid,
// missing kernel support all land in the fallback).
bool perf_event_available() {
#ifdef INTEREDGE_HAVE_PERF_EVENT
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_SOFTWARE;
  attr.config = PERF_COUNT_SW_TASK_CLOCK;
  attr.sample_period = 10000000;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  int fd = static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  if (fd < 0) return false;
  close(fd);
  return true;
#else
  return false;
#endif
}

}  // namespace

#endif  // __linux__

// ---- profiler ----------------------------------------------------------

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Folded frames must not contain the folded format's own separators.
std::string sanitize_frame(std::string name) {
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  return name;
}

}  // namespace

profiler::profiler(profiler_config cfg) : cfg_(cfg) {
  table_.reserve(std::min<std::size_t>(cfg_.max_stacks, 4096));
  hash_index_.assign(pow2_at_least(std::max<std::size_t>(cfg_.max_stacks * 2, 16)),
                     0xffffffffu);
}

profiler::~profiler() {
#ifdef __linux__
  disarm();
  std::lock_guard<std::mutex> pool_lock(g_slots_mu);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t idx : my_slots_) {
    // Rings stay allocated (a stale TLS binding on a thread that never
    // unregistered must never chase freed memory); the slot itself is
    // returned to the pool.
    g_slots[idx].in_use.store(false, std::memory_order_release);
  }
  my_slots_.clear();
#endif
}

#ifdef __linux__

bool profiler::register_current_thread(const char* name) {
  if (cfg_.sample_hz == 0) return false;
  if (t_slot != nullptr) return false;  // already registered
  install_handler_once();

  pid_t tid = static_cast<pid_t>(syscall(SYS_gettid));
  std::uintptr_t stack_lo = 0, stack_hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      stack_lo = reinterpret_cast<std::uintptr_t>(addr);
      stack_hi = stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  clockid_t cpu_clock{};
  if (pthread_getcpuclockid(pthread_self(), &cpu_clock) != 0) {
    cpu_clock = CLOCK_THREAD_CPUTIME_ID;  // self-targeted fallback
  }

  std::lock_guard<std::mutex> pool_lock(g_slots_mu);
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t idx = kMaxThreads;
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (!g_slots[i].in_use.load(std::memory_order_acquire)) {
      idx = i;
      break;
    }
  }
  if (idx == kMaxThreads) return false;  // pool exhausted

  thread_slot& slot = g_slots[idx];
  if (slot.ring != nullptr && slot.ring_slots != cfg_.ring_slots) {
    // Previous tenant wanted a different capacity; the old tenant fully
    // unregistered (or its profiler died, stopping the trigger), so the
    // ring is quiescent and safe to replace.
    delete slot.ring;
    slot.ring = nullptr;
  }
  if (slot.ring == nullptr) {
    slot.ring = new sample_ring(cfg_.ring_slots);
    slot.ring_slots = cfg_.ring_slots;
  } else {
    slot.ring->reset();
  }
  std::snprintf(slot.name, sizeof(slot.name), "%s", name != nullptr ? name : "thread");
  slot.tid = tid;
  slot.cpu_clock = cpu_clock;
  slot.stack_lo = stack_lo;
  slot.stack_hi = stack_hi;
  slot.in_use.store(true, std::memory_order_release);

  my_slots_.push_back(static_cast<std::uint32_t>(idx));
  t_slot = &slot;

  if (armed_.load(std::memory_order_acquire)) {
    if (!start_trigger_locked(my_slots_.size() - 1)) {
      // Trigger refused (rare: fd limit, timer limit). Stay registered —
      // the thread simply yields no samples.
      slot.active.store(false, std::memory_order_release);
    }
  }
  return true;
}

void profiler::unregister_current_thread() {
  thread_slot* slot = t_slot;
  if (slot == nullptr) return;
  {
    // Ownership gate: several profilers can coexist on one thread (a sim
    // process hosts many SNs on the driving thread; only the first one's
    // register_current_thread wins the TLS slot). An unregister from a
    // profiler that does NOT own the slot must not tear down the owner's
    // trigger or free its ring.
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(my_slots_.begin(), my_slots_.end(),
                  static_cast<std::uint32_t>(slot - g_slots)) == my_slots_.end()) {
      return;
    }
  }
  // Clear the handler's gate on this thread FIRST; any SIGPROF delivered
  // from here on finds a null slot. Sequenced on the owning thread, so no
  // handler invocation can straddle the teardown below.
  t_slot = nullptr;

  std::lock_guard<std::mutex> pool_lock(g_slots_mu);
  std::lock_guard<std::mutex> lock(mu_);
  stop_trigger(*slot);
  // Fold whatever the ring still holds so short-lived threads don't lose
  // their tail samples.
  auto idx_it = std::find(my_slots_.begin(), my_slots_.end(),
                          static_cast<std::uint32_t>(slot - g_slots));
  if (idx_it != my_slots_.end()) {
    raw_sample s;
    while (slot->ring->try_pop(s)) {
      fold_sample_locked(*idx_it, s);
      total_samples_.fetch_add(1, std::memory_order_relaxed);
    }
    drained_drops_ += slot->ring->dropped();
    my_slots_.erase(idx_it);
  }
  slot->in_use.store(false, std::memory_order_release);
}

bool profiler::arm() {
  if (cfg_.sample_hz == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.load(std::memory_order_acquire)) return true;
  if (backend_ == backend::none) {
    backend_ = (!cfg_.force_timer && perf_event_available()) ? backend::perf_event
                                                             : backend::timer_signal;
  }
  bool all_ok = true;
  for (std::size_t i = 0; i < my_slots_.size(); ++i) {
    all_ok = start_trigger_locked(i) && all_ok;
  }
  armed_.store(true, std::memory_order_release);
  return all_ok;
}

void profiler::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_acquire)) return;
  armed_.store(false, std::memory_order_release);
  for (std::uint32_t idx : my_slots_) stop_trigger(g_slots[idx]);
}

bool profiler::start_trigger_locked(std::size_t slot_idx) {
  thread_slot& slot = g_slots[my_slots_[slot_idx]];
  bool ok = false;
#ifdef INTEREDGE_HAVE_PERF_EVENT
  if (backend_ == backend::perf_event) {
    // `active` must be on before the first overflow signal can arrive.
    slot.active.store(true, std::memory_order_release);
    ok = start_perf_trigger(slot, cfg_.sample_hz);
    if (!ok) backend_ = backend::timer_signal;  // e.g. per-thread seccomp
  }
#endif
  if (!ok && backend_ == backend::timer_signal) {
    slot.active.store(true, std::memory_order_release);
    ok = start_timer_trigger(slot, cfg_.sample_hz);
  }
  if (!ok) slot.active.store(false, std::memory_order_release);
  return ok;
}

std::size_t profiler::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  raw_sample s;
  for (std::uint32_t idx : my_slots_) {
    sample_ring* ring = g_slots[idx].ring;
    while (ring->try_pop(s)) {
      fold_sample_locked(idx, s);
      ++n;
    }
  }
  total_samples_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

std::size_t profiler::registered_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return my_slots_.size();
}

std::uint64_t profiler::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t d = drained_drops_ + table_overflow_;
  for (std::uint32_t idx : my_slots_) d += g_slots[idx].ring->dropped();
  return d;
}

#else  // !__linux__

bool profiler::register_current_thread(const char*) { return false; }
void profiler::unregister_current_thread() {}
bool profiler::arm() { return false; }
void profiler::disarm() {}
std::size_t profiler::drain() { return 0; }
std::size_t profiler::registered_threads() const { return 0; }
std::uint64_t profiler::total_dropped() const { return table_overflow_; }
bool profiler::start_trigger_locked(std::size_t) { return false; }

#endif  // __linux__

void profiler::fold_sample_locked(std::uint32_t slot_idx, const raw_sample& s) {
  std::uint64_t h = fnv1a(s.pc, sizeof(std::uintptr_t) * s.depth, slot_idx);
  std::size_t mask = hash_index_.size() - 1;
  std::size_t pos = static_cast<std::size_t>(h) & mask;
  for (std::size_t probe = 0; probe <= mask; ++probe, pos = (pos + 1) & mask) {
    std::uint32_t id = hash_index_[pos];
    if (id == 0xffffffffu) {
      if (table_.size() >= cfg_.max_stacks) {
        ++table_overflow_;
        return;
      }
      table_entry e;
      e.thread_slot = slot_idx;
      e.depth = s.depth;
      std::memcpy(e.pc, s.pc, sizeof(std::uintptr_t) * s.depth);
      e.count = 1;
      hash_index_[pos] = static_cast<std::uint32_t>(table_.size());
      table_.push_back(e);
      return;
    }
    table_entry& e = table_[id];
    if (e.thread_slot == slot_idx && e.depth == s.depth &&
        std::memcmp(e.pc, s.pc, sizeof(std::uintptr_t) * s.depth) == 0) {
      ++e.count;
      return;
    }
  }
  ++table_overflow_;  // index full (can't happen before the table cap)
}

std::vector<folded_stack> profiler::stacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<folded_stack> out;
  out.reserve(table_.size());
  for (const auto& e : table_) {
    folded_stack f;
#ifdef __linux__
    f.thread = g_slots[e.thread_slot].name;
#else
    f.thread = "thread";
#endif
    f.pcs.assign(e.pc, e.pc + e.depth);
    f.count = e.count;
    out.push_back(std::move(f));
  }
  return out;
}

namespace {

// Renders one stack's frame list root-first, symbolized: the innermost
// captured frame is the precise PC, everything above is a return address.
std::vector<std::string> symbolize_stack(symbolizer& sym, const folded_stack& f) {
  std::vector<std::string> frames;
  frames.reserve(f.pcs.size() + 1);
  for (std::size_t i = f.pcs.size(); i-- > 0;) {
    frames.push_back(sanitize_frame(sym.name_of(f.pcs[i], /*return_address=*/i != 0)));
  }
  return frames;
}

}  // namespace

std::string render_folded(const std::vector<folded_stack>& stacks) {
  symbolizer sym;
  struct row {
    std::string key;
    std::uint64_t count;
  };
  std::vector<row> rows;
  rows.reserve(stacks.size());
  for (const auto& f : stacks) {
    std::string key = sanitize_frame(f.thread);
    for (const auto& fr : symbolize_stack(sym, f)) {
      key += ';';
      key += fr;
    }
    rows.push_back({std::move(key), f.count});
  }
  std::sort(rows.begin(), rows.end(), [](const row& a, const row& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  std::string out;
  for (const auto& r : rows) {
    out += r.key;
    out += ' ';
    out += std::to_string(r.count);
    out += '\n';
  }
  return out;
}

std::string profiler::folded() const { return render_folded(stacks()); }

std::string profiler::export_json(std::size_t limit) const {
  auto all = stacks();
  std::sort(all.begin(), all.end(), [](const folded_stack& a, const folded_stack& b) {
    return a.count > b.count;
  });
  if (limit != 0 && all.size() > limit) all.resize(limit);
  symbolizer sym;
  std::string out = "{\"backend\":\"";
  out += backend_name(backend_);
  out += "\",\"samples\":" + std::to_string(total_samples());
  out += ",\"dropped\":" + std::to_string(total_dropped());
  out += ",\"stacks\":[";
  bool first = true;
  for (const auto& f : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"thread\":\"";
    json_escape_into(out, f.thread);
    out += "\",\"count\":" + std::to_string(f.count) + ",\"frames\":[";
    bool ffirst = true;
    for (const auto& fr : symbolize_stack(sym, f)) {
      if (!ffirst) out += ',';
      ffirst = false;
      out += '"';
      json_escape_into(out, fr);
      out += '"';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::vector<hot_function> profiler::top_functions(std::size_t n) const {
  auto all = stacks();
  symbolizer sym;
  std::map<std::string, hot_function> by_name;
  for (const auto& f : all) {
    std::set<std::string> seen;  // count `total` once per stack per name
    for (std::size_t i = 0; i < f.pcs.size(); ++i) {
      std::string name = sanitize_frame(sym.name_of(f.pcs[i], /*return_address=*/i != 0));
      auto& hf = by_name[name];
      hf.name = name;
      if (i == 0) hf.self += f.count;
      if (seen.insert(name).second) hf.total += f.count;
    }
  }
  std::vector<hot_function> out;
  out.reserve(by_name.size());
  for (auto& [_, hf] : by_name) out.push_back(std::move(hf));
  std::sort(out.begin(), out.end(), [](const hot_function& a, const hot_function& b) {
    if (a.self != b.self) return a.self > b.self;
    if (a.total != b.total) return a.total > b.total;
    return a.name < b.name;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string profiler::hot_stacks_json(std::size_t n) const {
  auto all = stacks();
  std::sort(all.begin(), all.end(), [](const folded_stack& a, const folded_stack& b) {
    return a.count > b.count;
  });
  if (all.size() > n) all.resize(n);
  symbolizer sym;
  std::string out = "[";
  bool first = true;
  for (const auto& f : all) {
    if (!first) out += ',';
    first = false;
    std::string key = sanitize_frame(f.thread);
    for (const auto& fr : symbolize_stack(sym, f)) {
      key += ';';
      key += fr;
    }
    out += "{\"stack\":\"";
    json_escape_into(out, key);
    out += "\",\"count\":" + std::to_string(f.count) + "}";
  }
  out += "]";
  return out;
}

}  // namespace interedge::prof
