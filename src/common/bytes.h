// Byte-buffer aliases and small helpers used across the InterEdge codebase.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace interedge {

using bytes = std::vector<std::uint8_t>;
using byte_span = std::span<std::uint8_t>;
using const_byte_span = std::span<const std::uint8_t>;

// Builds a byte vector from a string literal / string view (no NUL added).
inline bytes to_bytes(std::string_view s) {
  return bytes(s.begin(), s.end());
}

inline std::string to_string(const_byte_span b) {
  return std::string(b.begin(), b.end());
}

// Lowercase hex encoding, primarily for logs and test assertions.
inline std::string hex(const_byte_span b) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

// Parses lowercase/uppercase hex. Returns an empty vector on malformed input
// of odd length; individual non-hex characters map to 0 (test-only helper).
inline bytes from_hex(std::string_view s) {
  auto nib = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    return 0;
  };
  if (s.size() % 2 != 0) return {};
  bytes out(s.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(nib(s[2 * i]) << 4 | nib(s[2 * i + 1]));
  }
  return out;
}

// Constant-time equality for secrets (MAC tags, keys).
inline bool ct_equal(const_byte_span a, const_byte_span b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace interedge
