// Tiny command-line flag parsing for the examples and bench harnesses.
// Supports --name=value and --name value; unknown flags are an error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace interedge {

class flag_set {
 public:
  // Parses argv; throws std::runtime_error on malformed input.
  flag_set(int argc, char** argv);

  std::string get(const std::string& name, const std::string& default_value) const;
  std::int64_t get_int(const std::string& name, std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace interedge
