#include "common/prof_symbolize.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <link.h>
#endif

namespace interedge::prof {

namespace {

std::string hex_of(std::uintptr_t v) {
  char buf[2 + sizeof(v) * 2 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// Trailing path component, for the "module+0xoff" fallback rendering.
std::string basename_of(const std::string& path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

#ifdef __linux__

symbolizer::symbolizer() {
  // Snapshot the module map once. Profiled processes here don't dlopen
  // mid-run; a PC outside every known module renders as hex.
  dl_iterate_phdr(
      [](struct dl_phdr_info* info, std::size_t, void* arg) -> int {
        auto* mods = static_cast<std::vector<module>*>(arg);
        module m;
        m.base = info->dlpi_addr;
        m.path = (info->dlpi_name != nullptr && info->dlpi_name[0] != '\0')
                     ? info->dlpi_name
                     : "/proc/self/exe";
        std::uintptr_t lo = ~static_cast<std::uintptr_t>(0);
        std::uintptr_t hi = 0;
        for (int i = 0; i < info->dlpi_phnum; ++i) {
          const auto& ph = info->dlpi_phdr[i];
          if (ph.p_type != PT_LOAD || (ph.p_flags & PF_X) == 0) continue;
          lo = std::min(lo, static_cast<std::uintptr_t>(ph.p_vaddr));
          hi = std::max(hi, static_cast<std::uintptr_t>(ph.p_vaddr + ph.p_memsz));
        }
        if (hi == 0) return 0;  // no executable segment: vdso-like, skip
        m.lo = m.base + lo;
        m.hi = m.base + hi;
        mods->push_back(std::move(m));
        return 0;
      },
      &modules_);
}

std::string symbolizer::demangle(const char* name) {
  int status = 0;
  char* d = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && d != nullptr) {
    std::string out{d};
    std::free(d);
    return out;
  }
  std::free(d);
  return name;
}

symbolizer::module* symbolizer::module_of(std::uintptr_t pc) {
  for (auto& m : modules_) {
    if (pc >= m.lo && pc < m.hi) return &m;
  }
  return nullptr;
}

// Parses .symtab (and .dynsym, for completeness) of the module's backing
// file into a sorted function list. File I/O happens once per module, on
// the first PC that dladdr couldn't name.
void symbolizer::load_symtab(module& m) {
  m.symtab_loaded = true;
  std::FILE* f = std::fopen(m.path.c_str(), "rb");
  if (f == nullptr) return;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size <= static_cast<long>(sizeof(ElfW(Ehdr)))) {
    std::fclose(f);
    return;
  }
  std::vector<unsigned char> buf(static_cast<std::size_t>(size));
  std::fseek(f, 0, SEEK_SET);
  std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) return;

  const auto* eh = reinterpret_cast<const ElfW(Ehdr)*>(buf.data());
  if (std::memcmp(eh->e_ident, ELFMAG, SELFMAG) != 0) return;
  if (eh->e_shoff == 0 || eh->e_shoff + std::uint64_t{eh->e_shnum} * eh->e_shentsize > buf.size())
    return;
  const auto* sh = reinterpret_cast<const ElfW(Shdr)*>(buf.data() + eh->e_shoff);

  for (int i = 0; i < eh->e_shnum; ++i) {
    if (sh[i].sh_type != SHT_SYMTAB && sh[i].sh_type != SHT_DYNSYM) continue;
    if (sh[i].sh_link >= eh->e_shnum) continue;
    const auto& strs = sh[sh[i].sh_link];
    if (sh[i].sh_offset + sh[i].sh_size > buf.size() ||
        strs.sh_offset + strs.sh_size > buf.size())
      continue;
    const char* strtab = reinterpret_cast<const char*>(buf.data() + strs.sh_offset);
    const auto* syms = reinterpret_cast<const ElfW(Sym)*>(buf.data() + sh[i].sh_offset);
    std::size_t count = sh[i].sh_size / sizeof(ElfW(Sym));
    for (std::size_t s = 0; s < count; ++s) {
      if (ELF64_ST_TYPE(syms[s].st_info) != STT_FUNC) continue;
      if (syms[s].st_value == 0 || syms[s].st_name >= strs.sh_size) continue;
      const char* nm = strtab + syms[s].st_name;
      if (nm[0] == '\0') continue;
      m.syms.push_back({static_cast<std::uintptr_t>(syms[s].st_value),
                        static_cast<std::uintptr_t>(syms[s].st_size), nm});
    }
  }
  std::sort(m.syms.begin(), m.syms.end(),
            [](const module::sym& a, const module::sym& b) { return a.addr < b.addr; });
  // Collapse duplicates (a function present in both .symtab and .dynsym).
  m.syms.erase(std::unique(m.syms.begin(), m.syms.end(),
                           [](const module::sym& a, const module::sym& b) {
                             return a.addr == b.addr && a.name == b.name;
                           }),
               m.syms.end());
}

std::string symbolizer::resolve(std::uintptr_t pc) {
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname != nullptr) {
    return demangle(info.dli_sname);
  }
  module* m = module_of(pc);
  if (m == nullptr) return hex_of(pc);
  if (!m->symtab_loaded) load_symtab(*m);
  // dlpi_addr is the relocation base: 0 for ET_EXEC (st_value is already
  // absolute), the load bias for ET_DYN — pc - base works for both.
  std::uintptr_t rel = pc - m->base;
  auto it = std::upper_bound(m->syms.begin(), m->syms.end(), rel,
                             [](std::uintptr_t v, const module::sym& s) { return v < s.addr; });
  if (it != m->syms.begin()) {
    --it;
    // st_size 0 (assembly, some compiler stubs) still matches if this is
    // the nearest preceding symbol; bound the slop to 4 KiB.
    std::uintptr_t span = it->size != 0 ? it->size : 4096;
    if (rel >= it->addr && rel < it->addr + span) return demangle(it->name.c_str());
  }
  return basename_of(m->path) + "+" + hex_of(rel);
}

std::string symbolizer::name_of(std::uintptr_t pc, bool return_address) {
  // A return address points one past the call; resolve the call itself.
  std::uintptr_t lookup = (return_address && pc != 0) ? pc - 1 : pc;
  auto it = cache_.find(lookup);
  if (it != cache_.end()) return it->second;
  std::string name = resolve(lookup);
  cache_.emplace(lookup, name);
  return name;
}

#else  // !__linux__

symbolizer::symbolizer() = default;
std::string symbolizer::name_of(std::uintptr_t pc, bool) { return hex_of(pc); }
symbolizer::module* symbolizer::module_of(std::uintptr_t) { return nullptr; }
void symbolizer::load_symtab(module&) {}
std::string symbolizer::demangle(const char* name) { return name; }
std::string symbolizer::resolve(std::uintptr_t pc) { return hex_of(pc); }

#endif

}  // namespace interedge::prof
