// Clock abstraction: production code takes a `clock&` so integration tests
// and the network simulator can drive virtual time deterministically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace interedge {

using nanoseconds = std::chrono::nanoseconds;
using time_point = std::chrono::time_point<std::chrono::steady_clock, nanoseconds>;

class clock {
 public:
  virtual ~clock() = default;
  virtual time_point now() const = 0;
};

// Wall-clock-backed monotonic clock for benchmarks and examples.
class real_clock final : public clock {
 public:
  time_point now() const override;
  // Process-wide instance; real_clock is stateless.
  static real_clock& instance();
};

// Manually advanced clock for unit tests and the simulator. The tick is
// stored in a relaxed atomic: worker-shard threads read the clock (e.g.
// decision-cache TTL checks) while the owning thread advances it, and a
// torn read of virtual time must not be a data race.
class manual_clock final : public clock {
 public:
  time_point now() const override {
    return time_point(nanoseconds(ns_.load(std::memory_order_relaxed)));
  }
  void advance(nanoseconds d) { ns_.fetch_add(d.count(), std::memory_order_relaxed); }
  void set(time_point t) {
    ns_.store(t.time_since_epoch().count(), std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> ns_{0};
};

}  // namespace interedge
