// Clock abstraction: production code takes a `clock&` so integration tests
// and the network simulator can drive virtual time deterministically.
#pragma once

#include <chrono>
#include <cstdint>

namespace interedge {

using nanoseconds = std::chrono::nanoseconds;
using time_point = std::chrono::time_point<std::chrono::steady_clock, nanoseconds>;

class clock {
 public:
  virtual ~clock() = default;
  virtual time_point now() const = 0;
};

// Wall-clock-backed monotonic clock for benchmarks and examples.
class real_clock final : public clock {
 public:
  time_point now() const override;
  // Process-wide instance; real_clock is stateless.
  static real_clock& instance();
};

// Manually advanced clock for unit tests.
class manual_clock final : public clock {
 public:
  time_point now() const override { return now_; }
  void advance(nanoseconds d) { now_ += d; }
  void set(time_point t) { now_ = t; }

 private:
  time_point now_{};
};

}  // namespace interedge
