#include "common/metrics.h"

#include <bit>
#include <memory>
#include <sstream>

namespace interedge {

std::size_t histogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int tier = msb - kSubBits + 1;
  const std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
  return static_cast<std::size_t>(tier) * kSub + static_cast<std::size_t>(sub) + kSub;
}

std::uint64_t histogram::bucket_mid(std::size_t idx) {
  if (idx < kSub) return idx;
  idx -= kSub;
  const int tier = static_cast<int>(idx / kSub);
  const std::uint64_t sub = idx % kSub;
  const int msb = tier + kSubBits - 1;
  const std::uint64_t base = (1ull << msb) | (sub << (msb - kSubBits));
  const std::uint64_t width = 1ull << (msb - kSubBits);
  return base + width / 2;
}

void histogram::record(std::uint64_t v) {
  std::size_t idx = bucket_of(v);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double histogram::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

std::uint64_t histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target >= total) target = total - 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) return bucket_mid(i);
  }
  return max();
}

void histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

counter& metrics_registry::get_counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<counter>();
  return *slot;
}

histogram& metrics_registry::get_histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<histogram>();
  return *slot;
}

std::string metrics_registry::report() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h->count() << " mean=" << h->mean()
       << "ns p50=" << h->quantile(0.5) << "ns p99=" << h->quantile(0.99)
       << "ns max=" << h->max() << "ns\n";
  }
  return os.str();
}

}  // namespace interedge
