#include "common/metrics.h"

#include <bit>
#include <algorithm>
#include <sstream>

namespace interedge {

std::uint64_t sharded_counter::value() const {
  std::uint64_t total = 0;
  for (const shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void sharded_counter::reset() {
  for (shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

std::size_t sharded_counter::shard_index() {
  // Each thread claims a stripe on first use; stripes recycle modulo
  // kShards, which keeps adds contention-free up to kShards threads.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

std::size_t histogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int tier = msb - kSubBits + 1;
  const std::uint64_t sub = (v >> (msb - kSubBits)) & (kSub - 1);
  return static_cast<std::size_t>(tier) * kSub + static_cast<std::size_t>(sub) + kSub;
}

std::uint64_t histogram::bucket_mid(std::size_t idx) {
  if (idx < kSub) return idx;
  idx -= kSub;
  const int tier = static_cast<int>(idx / kSub);
  const std::uint64_t sub = idx % kSub;
  const int msb = tier + kSubBits - 1;
  const std::uint64_t base = (1ull << msb) | (sub << (msb - kSubBits));
  const std::uint64_t width = 1ull << (msb - kSubBits);
  return base + width / 2;
}

void histogram::record(std::uint64_t v) {
  std::size_t idx = bucket_of(v);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

double histogram::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

std::uint64_t histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target >= total) target = total - 1;
  std::uint64_t seen = 0;
  std::size_t last_populated = 0;
  bool any = false;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    last_populated = i;
    any = true;
    seen += c;
    if (seen > target) return bucket_mid(i);
  }
  // count_ raced ahead of the bucket stores (record() increments them
  // independently): answer with the highest populated bucket instead of
  // max(), which may belong to a record not yet visible in any bucket.
  return any ? bucket_mid(last_populated) : 0;
}

void histogram::merge_from(const histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  const std::uint64_t om = other.max_.load(std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (om > prev && !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
  }
}

void histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

const char* metric_kind_name(metric_kind k) {
  switch (k) {
    case metric_kind::counter: return "counter";
    case metric_kind::gauge: return "gauge";
    case metric_kind::histogram: return "histogram";
    case metric_kind::sharded_counter: return "sharded_counter";
  }
  return "?";
}

std::string render_metric_key(const std::string& name, const label_list& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

double metrics_registry::entry::scalar_value() const {
  switch (kind) {
    case metric_kind::counter: return static_cast<double>(c->value());
    case metric_kind::gauge: return static_cast<double>(g->value());
    case metric_kind::histogram: return static_cast<double>(h->count());
    case metric_kind::sharded_counter: return static_cast<double>(s->value());
  }
  return 0;
}

metric_id metrics_registry::intern(metric_kind kind, const std::string& name,
                                   const label_list& labels) {
  // Kind participates in the index key so one name cannot silently alias
  // two metric types.
  std::string key = render_metric_key(name, labels);
  std::string index_key = key;
  index_key += '\x01';
  index_key += static_cast<char>('0' + static_cast<int>(kind));

  std::lock_guard lock(mu_);
  auto it = index_.find(index_key);
  if (it != index_.end()) return it->second;

  entry e;
  e.kind = kind;
  e.name = name;
  e.labels = labels;
  e.key = std::move(key);
  switch (kind) {
    case metric_kind::counter: e.c = std::make_unique<counter>(); break;
    case metric_kind::gauge: e.g = std::make_unique<gauge>(); break;
    case metric_kind::histogram: e.h = std::make_unique<histogram>(); break;
    case metric_kind::sharded_counter: e.s = std::make_unique<sharded_counter>(); break;
  }
  const metric_id id = static_cast<metric_id>(entries_.size());
  entries_.push_back(std::move(e));
  index_.emplace(std::move(index_key), id);
  return id;
}

const metrics_registry::entry& metrics_registry::at(metric_id id) const {
  std::lock_guard lock(mu_);
  return entries_.at(id);
}

counter& metrics_registry::get_counter(const std::string& name, const label_list& labels) {
  return counter_at(intern(metric_kind::counter, name, labels));
}

gauge& metrics_registry::get_gauge(const std::string& name, const label_list& labels) {
  return gauge_at(intern(metric_kind::gauge, name, labels));
}

histogram& metrics_registry::get_histogram(const std::string& name, const label_list& labels) {
  return histogram_at(intern(metric_kind::histogram, name, labels));
}

sharded_counter& metrics_registry::get_sharded_counter(const std::string& name,
                                                       const label_list& labels) {
  return sharded_counter_at(intern(metric_kind::sharded_counter, name, labels));
}

counter& metrics_registry::counter_at(metric_id id) { return *at(id).c; }
gauge& metrics_registry::gauge_at(metric_id id) { return *at(id).g; }
histogram& metrics_registry::histogram_at(metric_id id) { return *at(id).h; }
sharded_counter& metrics_registry::sharded_counter_at(metric_id id) { return *at(id).s; }

void metrics_registry::merge_from(const metrics_registry& other) {
  if (&other == this) return;
  // Snapshot entry pointers under the source lock; the deque gives stable
  // addresses and the values are atomics, so the reads below need no lock.
  std::vector<const entry*> src;
  {
    std::lock_guard lock(other.mu_);
    src.reserve(other.entries_.size());
    for (const entry& e : other.entries_) src.push_back(&e);
  }
  for (const entry* e : src) {
    switch (e->kind) {
      case metric_kind::counter: get_counter(e->name, e->labels).add(e->c->value()); break;
      case metric_kind::gauge: get_gauge(e->name, e->labels).add(e->g->value()); break;
      case metric_kind::histogram: get_histogram(e->name, e->labels).merge_from(*e->h); break;
      case metric_kind::sharded_counter:
        get_sharded_counter(e->name, e->labels).add(e->s->value());
        break;
    }
  }
}

std::size_t metrics_registry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::vector<const metrics_registry::entry*> metrics_registry::sorted_entries_locked() const {
  std::vector<const entry*> out;
  out.reserve(entries_.size());
  for (const entry& e : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(), [](const entry* a, const entry* b) {
    if (a->key != b->key) return a->key < b->key;
    return a->kind < b->kind;
  });
  return out;
}

std::vector<std::string> metrics_registry::family_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const entry& e : entries_) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void metrics_registry::for_each_histogram(
    const std::function<void(const std::string& key, const histogram& h)>& fn) const {
  std::lock_guard lock(mu_);
  for (const entry& e : entries_) {
    if (e.kind == metric_kind::histogram) fn(e.key, *e.h);
  }
}

std::vector<metric_sample> metrics_registry::samples() const {
  std::lock_guard lock(mu_);
  std::vector<metric_sample> out;
  out.reserve(entries_.size());
  for (const entry* e : sorted_entries_locked()) {
    out.push_back(metric_sample{e->key, e->name, e->kind, e->scalar_value()});
  }
  return out;
}

std::string metrics_registry::report() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  const auto sorted = sorted_entries_locked();
  for (const entry* e : sorted) {
    switch (e->kind) {
      case metric_kind::counter: os << e->key << " = " << e->c->value() << "\n"; break;
      case metric_kind::sharded_counter: os << e->key << " = " << e->s->value() << "\n"; break;
      case metric_kind::gauge: os << e->key << " = " << e->g->value() << " (gauge)\n"; break;
      case metric_kind::histogram: break;
    }
  }
  for (const entry* e : sorted) {
    if (e->kind != metric_kind::histogram) continue;
    const histogram& h = *e->h;
    os << e->key << ": count=" << h.count() << " mean=" << h.mean()
       << "ns p50=" << h.quantile(0.5) << "ns p99=" << h.quantile(0.99)
       << "ns max=" << h.max() << "ns\n";
  }
  return os.str();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted scheme maps onto
// it by substitution.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Label VALUES are free-form UTF-8 in the exposition format, but
// backslash, double-quote and newline must be escaped (as \\, \" and \n)
// or a value containing them emits malformed exposition text.
std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const label_list& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += prom_name(labels[i].first);
    out += "=\"";
    out += prom_escape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string prom_labels_with(const label_list& labels, const char* extra_key,
                             const char* extra_value) {
  label_list all = labels;
  all.emplace_back(extra_key, extra_value);
  return prom_labels(all);
}

void json_escape_into(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '\n') {
      os << "\\n";
      continue;
    }
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::string metrics_registry::export_prometheus() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  std::string last_typed;  // one # TYPE line per family
  for (const entry* e : sorted_entries_locked()) {
    const std::string n = prom_name(e->name);
    const char* type = nullptr;
    switch (e->kind) {
      case metric_kind::counter:
      case metric_kind::sharded_counter: type = "counter"; break;
      case metric_kind::gauge: type = "gauge"; break;
      case metric_kind::histogram: type = "summary"; break;
    }
    if (n != last_typed) {
      os << "# TYPE " << n << " " << type << "\n";
      last_typed = n;
    }
    switch (e->kind) {
      case metric_kind::counter:
        os << n << prom_labels(e->labels) << " " << e->c->value() << "\n";
        break;
      case metric_kind::sharded_counter:
        os << n << prom_labels(e->labels) << " " << e->s->value() << "\n";
        break;
      case metric_kind::gauge:
        os << n << prom_labels(e->labels) << " " << e->g->value() << "\n";
        break;
      case metric_kind::histogram: {
        const histogram& h = *e->h;
        os << n << prom_labels_with(e->labels, "quantile", "0.5") << " " << h.quantile(0.5)
           << "\n";
        os << n << prom_labels_with(e->labels, "quantile", "0.9") << " " << h.quantile(0.9)
           << "\n";
        os << n << prom_labels_with(e->labels, "quantile", "0.99") << " " << h.quantile(0.99)
           << "\n";
        os << n << "_sum" << prom_labels(e->labels) << " " << h.sum() << "\n";
        os << n << "_count" << prom_labels(e->labels) << " " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string metrics_registry::export_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const entry* e : sorted_entries_locked()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    json_escape_into(os, e->name);
    os << "\",\"kind\":\"" << metric_kind_name(e->kind) << "\"";
    if (!e->labels.empty()) {
      os << ",\"labels\":{";
      for (std::size_t i = 0; i < e->labels.size(); ++i) {
        if (i) os << ",";
        os << "\"";
        json_escape_into(os, e->labels[i].first);
        os << "\":\"";
        json_escape_into(os, e->labels[i].second);
        os << "\"";
      }
      os << "}";
    }
    switch (e->kind) {
      case metric_kind::counter: os << ",\"value\":" << e->c->value(); break;
      case metric_kind::sharded_counter: os << ",\"value\":" << e->s->value(); break;
      case metric_kind::gauge: os << ",\"value\":" << e->g->value(); break;
      case metric_kind::histogram: {
        const histogram& h = *e->h;
        os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum() << ",\"mean\":" << h.mean()
           << ",\"p50\":" << h.quantile(0.5) << ",\"p90\":" << h.quantile(0.9)
           << ",\"p99\":" << h.quantile(0.99) << ",\"max\":" << h.max();
        break;
      }
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string stats_reporter::delta_report(const metrics_registry& reg, double elapsed_seconds) {
  std::ostringstream os;
  for (const metric_sample& s : reg.samples()) {
    os << s.key << " = " << s.value;
    const bool monotone = s.kind != metric_kind::gauge;
    if (monotone) {
      auto it = prev_.find(s.key);
      const double before = it == prev_.end() ? 0.0 : it->second;
      const double rate = elapsed_seconds > 0 ? (s.value - before) / elapsed_seconds : 0.0;
      os << " (" << rate << "/s)";
    } else {
      os << " (gauge)";
    }
    os << "\n";
    prev_[s.key] = s.value;
  }
  return os.str();
}

}  // namespace interedge
