// PC -> function-name resolution for the sampling profiler (ISSUE 10).
// Drain-thread-side only — nothing here is async-signal-safe.
//
// Resolution order per PC:
//   1. dladdr: covers everything in .dynsym (exported functions, shared
//      library code).
//   2. ELF .symtab of the containing module: covers static/local
//      functions the dynamic symbol table never sees — the common case
//      in a statically-linked -O2 binary. Modules are discovered via
//      dl_iterate_phdr (the main executable's path comes from
//      /proc/self/exe) and their symbol tables parsed lazily, once.
//   3. "module+0xoff" when both miss.
// C++ names are demangled (abi::__cxa_demangle) and results are cached,
// so repeated exports only pay hash lookups.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace interedge::prof {

class symbolizer {
 public:
  symbolizer();

  // Resolves the *call site* for a return address: pass the raw frame PC
  // and whether it is a return address (every frame but the innermost) —
  // return addresses are looked up at pc-1 so a call as the last
  // instruction of a function doesn't resolve into its successor.
  std::string name_of(std::uintptr_t pc, bool return_address = false);

  // Cache statistics (tests).
  std::size_t cached() const { return cache_.size(); }
  std::size_t modules() const { return modules_.size(); }

 private:
  struct module {
    std::uintptr_t base = 0;  // dlpi_addr relocation base
    std::uintptr_t lo = 0;    // lowest/highest mapped PT_LOAD vaddr
    std::uintptr_t hi = 0;
    std::string path;
    bool symtab_loaded = false;
    // Sorted by addr for binary search; addr is module-relative.
    struct sym {
      std::uintptr_t addr;
      std::uintptr_t size;
      std::string name;
    };
    std::vector<sym> syms;
  };

  std::string resolve(std::uintptr_t pc);
  module* module_of(std::uintptr_t pc);
  static void load_symtab(module& m);
  static std::string demangle(const char* name);

  std::vector<module> modules_;
  std::map<std::uintptr_t, std::string> cache_;
};

}  // namespace interedge::prof
