// Path-trace reassembly (ISSUE 5): ingests path_spans drained from host
// and SN recorders and reassembles complete host→SN→…→SN→host traces with
// per-hop stage breakdowns, queue/wire-time attribution, and annotations
// correlated with node lifecycle events (peer down, failover, shed).
//
// Span time within a hop is datapath time; the gap between the previous
// hop's last span end and this hop's first span start is queue + wire
// time — the attribution the node-local tracer (ISSUE 2) cannot see.
//
// Ingest is idempotent on (trace_id, span_id): a duplicated datagram that
// somehow reaches two emissions, or a span batch delivered twice, never
// double-counts. The collector is mutex-guarded — it lives on the
// aggregation path (scheduler-tick pushes, test assertions), not the
// packet path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/trace.h"

namespace interedge::trace {

// One hop of an assembled trace: every span emitted at one node for one
// hop count, plus the queue/wire gap separating it from the previous hop.
struct hop_breakdown {
  std::uint64_t node = 0;
  std::uint8_t hop_count = 0;
  std::vector<path_span> spans;        // sorted by (kind, start)
  std::uint64_t hop_ns = 0;            // first span start -> last span end
  std::uint64_t wire_gap_ns = 0;       // gap from the previous hop (0 at origin)
  std::uint16_t annotations = 0;       // union of this hop's span annotations
};

struct path_trace {
  std::uint64_t trace_id = 0;
  std::uint32_t service = 0;
  std::uint64_t connection = 0;
  // Origin seen AND terminal delivery seen: the whole path reported in.
  bool complete = false;
  std::uint64_t total_ns = 0;          // origin start -> deliver end (0 if incomplete)
  std::uint16_t annotations = 0;       // union over spans + correlated events
  std::vector<hop_breakdown> hops;     // ordered by (hop_count, first start)
};

class trace_collector {
 public:
  explicit trace_collector(std::size_t max_traces = 1024);

  // Span intake (thread-safe; duplicate span ids are ignored). Spans with
  // trace_id == 0 are node events, kept separately for time correlation.
  // Returns whether the span was newly accepted (false for a duplicate) /
  // how many of the batch were — aggregators that roll spans up as they
  // arrive key on this so a replayed batch can never double-count.
  bool ingest(const path_span& s);
  std::size_t ingest(std::span<const path_span> spans);

  // Completion callback: fires the first time a trace holds both its
  // origin and a terminal delivery, with the end-to-end latency
  // (deliver end − origin start) and the union of annotations seen so
  // far. Invoked AFTER the collector releases its lock (re-entry into the
  // collector from the hook is safe); set before concurrent ingestion.
  using completion_hook = std::function<void(std::uint32_t service, std::uint64_t connection,
                                             std::uint64_t total_ns, std::uint16_t annotations)>;
  void set_completion_hook(completion_hook hook);

  std::size_t trace_count() const;
  std::uint64_t spans_seen() const;
  std::uint64_t duplicates_ignored() const;
  std::uint64_t evicted_traces() const;
  std::vector<std::uint64_t> trace_ids() const;
  std::vector<path_span> events() const;

  // Reassembles one trace (nullopt if unknown). Event spans whose time
  // falls inside the trace's window and whose node is on (or adjacent to)
  // the path fold their annotations in — a mid-path failover annotates the
  // trace instead of leaving it dangling.
  std::optional<path_trace> assemble(std::uint64_t trace_id) const;
  std::vector<path_trace> assemble_all() const;

  // JSON dump of up to `limit` traces (0 = all), newest first, plus the
  // event list — the service_node introspection payload.
  std::string export_json(std::size_t limit = 0) const;
  // ie_top-style text rendering: one line per hop per trace.
  std::string render_text(std::size_t limit = 16) const;

 private:
  struct trace_entry {
    std::vector<path_span> spans;
    bool completion_reported = false;
  };
  struct pending_completion {
    std::uint32_t service = 0;
    std::uint64_t connection = 0;
    std::uint64_t total_ns = 0;
    std::uint16_t annotations = 0;
  };

  bool ingest_locked(const path_span& s, std::vector<pending_completion>& completions);
  std::optional<path_trace> assemble_locked(std::uint64_t trace_id) const;

  mutable std::mutex mu_;
  std::size_t max_traces_;
  completion_hook completion_hook_;
  std::map<std::uint64_t, trace_entry> traces_;
  std::deque<std::uint64_t> order_;    // insertion order for eviction
  std::vector<path_span> events_;      // trace_id == 0 (bounded by max_traces_)
  std::uint64_t spans_seen_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace interedge::trace
