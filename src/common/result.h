// Minimal expected-style result type. Used on paths where failure is an
// expected outcome (protocol violations, cache misses, denied requests)
// rather than a programming error.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace interedge {

struct error {
  std::string message;
};

template <typename T>
class result {
 public:
  result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  result(error e) : error_(std::move(e)) {}      // NOLINT: implicit by design

  static result ok(T value) { return result(std::move(value)); }
  static result fail(std::string message) { return result(error{std::move(message)}); }

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    require();
    return *value_;
  }
  T& value() & {
    require();
    return *value_;
  }
  T&& take() {
    require();
    return std::move(*value_);
  }
  const std::string& message() const { return error_->message; }

 private:
  void require() const {
    if (!value_) throw std::logic_error("result::value() on error: " + error_->message);
  }
  std::optional<T> value_;
  std::optional<error> error_;
};

// void specialization.
template <>
class result<void> {
 public:
  result() = default;
  result(error e) : error_(std::move(e)) {}  // NOLINT: implicit by design

  static result ok() { return result(); }
  static result fail(std::string message) { return result(error{std::move(message)}); }

  bool has_value() const { return !error_.has_value(); }
  explicit operator bool() const { return has_value(); }
  const std::string& message() const { return error_->message; }

 private:
  std::optional<error> error_;
};

}  // namespace interedge
