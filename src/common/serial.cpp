#include "common/serial.h"

namespace interedge {

void writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void writer::blob(const_byte_span b) {
  varint(b.size());
  raw(b);
}

void reader::need(std::size_t n) const {
  if (buf_.size() - pos_ < n) throw serial_error("truncated input");
}

std::uint8_t reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(buf_[pos_] | buf_[pos_ + 1] << 8);
  pos_ += 2;
  return v;
}

std::uint32_t reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t b = buf_[pos_++];
    if (shift >= 63 && (b & 0x7e) != 0) throw serial_error("varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

const_byte_span reader::raw(std::size_t n) {
  need(n);
  const_byte_span out = buf_.subspan(pos_, n);
  pos_ += n;
  return out;
}

const_byte_span reader::blob() {
  std::uint64_t n = varint();
  if (n > remaining()) throw serial_error("blob length exceeds input");
  return raw(static_cast<std::size_t>(n));
}

std::string reader::str() {
  const_byte_span b = blob();
  return std::string(b.begin(), b.end());
}

}  // namespace interedge
