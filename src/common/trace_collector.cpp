#include "common/trace_collector.h"

#include <algorithm>
#include <sstream>

namespace interedge::trace {
namespace {

// Events correlate into a trace if they fall inside its span window
// extended by this slack: liveness declares a peer down only after the
// miss budget elapses, well after the last span the dying hop emitted.
constexpr std::uint64_t kEventSlackNs = 1'000'000'000ull;

bool span_order(const path_span& a, const path_span& b) {
  if (a.hop_count != b.hop_count) return a.hop_count < b.hop_count;
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
}

}  // namespace

trace_collector::trace_collector(std::size_t max_traces) : max_traces_(max_traces) {}

void trace_collector::set_completion_hook(completion_hook hook) {
  std::lock_guard lock(mu_);
  completion_hook_ = std::move(hook);
}

bool trace_collector::ingest(const path_span& s) {
  std::vector<pending_completion> completions;
  bool accepted;
  {
    std::lock_guard lock(mu_);
    accepted = ingest_locked(s, completions);
  }
  for (const pending_completion& c : completions) {
    completion_hook_(c.service, c.connection, c.total_ns, c.annotations);
  }
  return accepted;
}

std::size_t trace_collector::ingest(std::span<const path_span> spans) {
  std::vector<pending_completion> completions;
  std::size_t accepted = 0;
  {
    std::lock_guard lock(mu_);
    for (const path_span& s : spans) {
      if (ingest_locked(s, completions)) ++accepted;
    }
  }
  for (const pending_completion& c : completions) {
    completion_hook_(c.service, c.connection, c.total_ns, c.annotations);
  }
  return accepted;
}

bool trace_collector::ingest_locked(const path_span& s,
                                    std::vector<pending_completion>& completions) {
  ++spans_seen_;
  if (s.trace_id == 0) {
    // Node event: bounded like the trace table, oldest evicted first.
    if (events_.size() >= max_traces_) events_.erase(events_.begin());
    events_.push_back(s);
    return true;
  }
  auto it = traces_.find(s.trace_id);
  if (it == traces_.end()) {
    if (traces_.size() >= max_traces_) {
      traces_.erase(order_.front());
      order_.pop_front();
      ++evicted_;
    }
    it = traces_.emplace(s.trace_id, trace_entry{}).first;
    order_.push_back(s.trace_id);
  } else {
    // Idempotent intake: a span batch replayed (or a duplicated datagram's
    // identical emission) must not double-count.
    for (const path_span& have : it->second.spans) {
      if (have.span_id == s.span_id) {
        ++duplicates_;
        return false;
      }
    }
  }
  trace_entry& entry = it->second;
  entry.spans.push_back(s);

  // Completion detection: the first time both the origin and a terminal
  // delivery are present, report the end-to-end latency once. Only the
  // span just added can complete the pair, so the scan is amortized O(1)
  // for everything but that one intake.
  if (completion_hook_ && !entry.completion_reported &&
      (s.kind == span_kind::origin || s.kind == span_kind::deliver)) {
    bool has_origin = false, has_deliver = false;
    std::uint64_t origin_start = 0, deliver_end = 0;
    std::uint16_t annotations = 0;
    std::uint32_t service = 0;
    std::uint64_t connection = 0;
    for (const path_span& have : entry.spans) {
      annotations |= have.annotations;
      if (have.service != 0) service = have.service;
      if (have.connection != 0) connection = have.connection;
      if (have.kind == span_kind::origin) {
        has_origin = true;
        origin_start = have.start_ns;
      }
      if (have.kind == span_kind::deliver) {
        has_deliver = true;
        deliver_end = std::max(deliver_end, have.start_ns + have.duration_ns);
      }
    }
    if (has_origin && has_deliver) {
      entry.completion_reported = true;
      pending_completion c;
      c.service = service;
      c.connection = connection;
      c.total_ns = deliver_end > origin_start ? deliver_end - origin_start : 0;
      c.annotations = annotations;
      completions.push_back(c);
    }
  }
  return true;
}

std::size_t trace_collector::trace_count() const {
  std::lock_guard lock(mu_);
  return traces_.size();
}

std::uint64_t trace_collector::spans_seen() const {
  std::lock_guard lock(mu_);
  return spans_seen_;
}

std::uint64_t trace_collector::duplicates_ignored() const {
  std::lock_guard lock(mu_);
  return duplicates_;
}

std::uint64_t trace_collector::evicted_traces() const {
  std::lock_guard lock(mu_);
  return evicted_;
}

std::vector<std::uint64_t> trace_collector::trace_ids() const {
  std::lock_guard lock(mu_);
  return std::vector<std::uint64_t>(order_.begin(), order_.end());
}

std::vector<path_span> trace_collector::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::optional<path_trace> trace_collector::assemble(std::uint64_t trace_id) const {
  std::lock_guard lock(mu_);
  return assemble_locked(trace_id);
}

std::optional<path_trace> trace_collector::assemble_locked(std::uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  if (it == traces_.end() || it->second.spans.empty()) return std::nullopt;
  std::vector<path_span> spans = it->second.spans;
  std::sort(spans.begin(), spans.end(), span_order);

  path_trace out;
  out.trace_id = trace_id;
  // Group into hops by (hop_count, node): a multicast fan-out places two
  // nodes at the same hop count as separate breakdown rows.
  for (const path_span& s : spans) {
    if (out.hops.empty() || out.hops.back().hop_count != s.hop_count ||
        out.hops.back().node != s.node) {
      hop_breakdown hb;
      hb.node = s.node;
      hb.hop_count = s.hop_count;
      out.hops.push_back(std::move(hb));
    }
    out.hops.back().spans.push_back(s);
    out.hops.back().annotations |= s.annotations;
    out.annotations |= s.annotations;
    if (s.service != 0) out.service = s.service;
    if (s.connection != 0) out.connection = s.connection;
  }

  bool has_origin = false, has_deliver = false;
  std::uint64_t origin_start = 0, deliver_end = 0, prev_end = 0;
  for (hop_breakdown& hb : out.hops) {
    std::uint64_t first = hb.spans.front().start_ns, last = 0;
    for (const path_span& s : hb.spans) {
      first = std::min(first, s.start_ns);
      last = std::max(last, s.start_ns + s.duration_ns);
      if (s.kind == span_kind::origin) {
        has_origin = true;
        origin_start = s.start_ns;
      }
      if (s.kind == span_kind::deliver) {
        has_deliver = true;
        deliver_end = std::max(deliver_end, s.start_ns + s.duration_ns);
      }
    }
    hb.hop_ns = last - first;
    hb.wire_gap_ns = (prev_end != 0 && first > prev_end) ? first - prev_end : 0;
    prev_end = last;
  }
  out.complete = has_origin && has_deliver;
  if (out.complete && deliver_end > origin_start) out.total_ns = deliver_end - origin_start;

  // Fold in node events overlapping the trace window at on-path nodes: a
  // peer-down declaration or a failover restore annotates every trace it
  // interrupted, so an incomplete trace is explained, never dangling.
  const std::uint64_t window_lo = spans.front().start_ns;
  const std::uint64_t window_hi = prev_end + kEventSlackNs;
  for (const path_span& e : events_) {
    if (e.start_ns < window_lo || e.start_ns > window_hi) continue;
    for (const hop_breakdown& hb : out.hops) {
      if (hb.node == e.node) {
        out.annotations |= e.annotations;
        break;
      }
    }
  }
  return out;
}

std::vector<path_trace> trace_collector::assemble_all() const {
  std::lock_guard lock(mu_);
  std::vector<path_trace> out;
  out.reserve(order_.size());
  for (std::uint64_t id : order_) {
    if (auto t = assemble_locked(id)) out.push_back(std::move(*t));
  }
  return out;
}

std::string trace_collector::export_json(std::size_t limit) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"traces\":[";
  std::size_t n = 0;
  bool first = true;
  // Newest first: recent traces are what an operator is debugging.
  for (auto rit = order_.rbegin(); rit != order_.rend(); ++rit) {
    if (limit != 0 && n >= limit) break;
    auto t = assemble_locked(*rit);
    if (!t) continue;
    ++n;
    if (!first) os << ",";
    first = false;
    os << "{\"trace_id\":" << t->trace_id << ",\"service\":" << t->service
       << ",\"connection\":" << t->connection
       << ",\"complete\":" << (t->complete ? "true" : "false")
       << ",\"total_ns\":" << t->total_ns << ",\"annotations\":\""
       << annotation_names(t->annotations) << "\",\"hops\":[";
    for (std::size_t h = 0; h < t->hops.size(); ++h) {
      const hop_breakdown& hb = t->hops[h];
      if (h) os << ",";
      os << "{\"node\":" << hb.node << ",\"hop\":" << static_cast<int>(hb.hop_count)
         << ",\"hop_ns\":" << hb.hop_ns << ",\"wire_gap_ns\":" << hb.wire_gap_ns
         << ",\"spans\":[";
      for (std::size_t i = 0; i < hb.spans.size(); ++i) {
        const path_span& s = hb.spans[i];
        if (i) os << ",";
        os << "{\"kind\":\"" << span_kind_name(s.kind) << "\",\"span_id\":" << s.span_id
           << ",\"parent_span\":" << s.parent_span << ",\"start_ns\":" << s.start_ns
           << ",\"duration_ns\":" << s.duration_ns << ",\"verdict\":\"" << s.verdict
           << "\",\"annotations\":\"" << annotation_names(s.annotations) << "\"}";
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "],\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const path_span& e = events_[i];
    if (i) os << ",";
    os << "{\"node\":" << e.node << ",\"start_ns\":" << e.start_ns << ",\"annotations\":\""
       << annotation_names(e.annotations) << "\"}";
  }
  os << "],\"spans_seen\":" << spans_seen_ << ",\"duplicates_ignored\":" << duplicates_
     << ",\"evicted_traces\":" << evicted_ << "}";
  return os.str();
}

std::string trace_collector::render_text(std::size_t limit) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  std::size_t n = 0;
  for (auto rit = order_.rbegin(); rit != order_.rend(); ++rit) {
    if (limit != 0 && n >= limit) break;
    auto t = assemble_locked(*rit);
    if (!t) continue;
    ++n;
    os << "trace " << std::hex << t->trace_id << std::dec << " svc=" << t->service
       << " conn=" << t->connection << (t->complete ? " complete" : " INCOMPLETE")
       << " total=" << t->total_ns << "ns";
    if (t->annotations != 0) os << " [" << annotation_names(t->annotations) << "]";
    os << "\n";
    for (const hop_breakdown& hb : t->hops) {
      os << "  hop " << static_cast<int>(hb.hop_count) << " node=" << hb.node
         << " wire+queue=" << hb.wire_gap_ns << "ns hop=" << hb.hop_ns << "ns";
      for (const path_span& s : hb.spans) {
        os << " " << span_kind_name(s.kind) << "=" << s.duration_ns << "ns";
        if (s.verdict != kVerdictNone) os << "(" << s.verdict << ")";
      }
      if (hb.annotations != 0) os << " [" << annotation_names(hb.annotations) << "]";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace interedge::trace
