// Declarative SLO targets evaluated as multi-window burn rates (ISSUE 7).
//
// An SLO gives a service an error budget: "99% of deliveries under 2ms"
// budgets 1% of samples over the threshold; "99.9% delivered" budgets
// 0.1% loss. The burn rate is how fast the budget is being consumed:
// burn = observed error rate / budgeted error rate, so burn 1.0 spends
// exactly the budget over the SLO period and burn 14.4 spends a 30-day
// budget in ~2 days. Following the SRE multi-window multi-burn-rate
// recipe, a PAGE needs the fast burn high over BOTH a short and a longer
// window (the short window makes the page prompt, the longer one keeps a
// single spike from paging); a WARN uses slower windows and a lower burn.
// Hysteresis: a state only downgrades after `clear_after` consecutive
// healthy evaluations, so a flapping series cannot strobe the pager.
//
// Both SLO shapes reduce to one errors/total ratio per window:
//   * latency targets count histogram samples above the threshold via the
//     timeseries store's window sketches;
//   * ratio targets (loss, availability) difference two counter series.
//
// Evaluation runs on the control/aggregation tick against a
// timeseries_store — never on a packet path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/timeseries.h"

namespace interedge::slo {

enum class slo_state : std::uint8_t { ok = 0, warn = 1, page = 2 };
const char* slo_state_name(slo_state s);

// Window/threshold policy. Defaults follow the SRE book's 30-day-budget
// numbers; deterministic tests shrink the windows to simulation scale.
struct burn_windows {
  nanoseconds fast_short = std::chrono::minutes(1);
  nanoseconds fast_long = std::chrono::minutes(5);
  double page_burn = 14.4;
  nanoseconds slow_short = std::chrono::minutes(30);
  nanoseconds slow_long = std::chrono::hours(6);
  double warn_burn = 3.0;
  // Consecutive healthy evaluations before a state downgrades.
  std::uint32_t clear_after = 2;
};

// One declarative target. Exactly one shape is active: a latency SLO when
// latency_series is set, an errors/total ratio SLO otherwise.
struct slo_target {
  std::string name;     // unique handle, e.g. "pass_through-p99"
  std::string service;  // label for alerts and exposition

  // Latency shape: histogram series key in the timeseries store (the
  // rendered registry key, labels included) + the threshold; a sample
  // above threshold_ns is an error.
  std::string latency_series;
  std::uint64_t threshold_ns = 0;

  // Ratio shape: errors/total counter series keys.
  std::string errors_series;
  std::string total_series;

  // Budgeted error fraction: SLO 99% => 0.01, 99.9% => 0.001.
  double error_budget = 0.01;
};

// A state transition (what a pager or the edomain plane consumes). Only
// transitions are emitted; steady state is queryable via state().
struct slo_alert {
  std::string slo;
  std::string service;
  slo_state state = slo_state::ok;
  slo_state prev = slo_state::ok;
  double burn_fast = 0;  // fast_short-window burn at the transition
  double burn_slow = 0;  // slow_short-window burn
  std::uint64_t at_ns = 0;
};

class slo_monitor {
 public:
  explicit slo_monitor(const timeseries_store& ts, burn_windows w = {});

  void add_target(slo_target t);
  std::size_t target_count() const { return targets_.size(); }

  // Evaluates every target at `now`; appends state transitions to `out`
  // (when non-null) and to the bounded internal alert log. Returns the
  // number of transitions.
  std::size_t evaluate(time_point now, std::vector<slo_alert>* out = nullptr);

  slo_state state(const std::string& name) const;
  // Burn rate of one target over an arbitrary window (test/introspection).
  double burn(const std::string& name, nanoseconds span) const;

  const burn_windows& windows() const { return windows_; }
  const std::deque<slo_alert>& alerts() const { return alerts_; }

  // Writes slo.state{slo=,service=} gauges (0 ok / 1 warn / 2 page) and a
  // cumulative slo.transitions counter into `reg` for exposition.
  void expose(metrics_registry& reg) const;
  std::string export_json() const;

 private:
  struct tracked {
    slo_target target;
    slo_state state = slo_state::ok;
    std::uint32_t healthy_evals = 0;
  };
  double burn_of(const slo_target& t, nanoseconds span) const;

  const timeseries_store& ts_;
  burn_windows windows_;
  std::vector<tracked> targets_;
  std::deque<slo_alert> alerts_;  // bounded (kMaxAlerts)
  std::uint64_t transitions_ = 0;

  static constexpr std::size_t kMaxAlerts = 256;
};

}  // namespace interedge::slo
