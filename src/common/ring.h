// Single-producer single-consumer lock-free ring buffer.
//
// This is the "shared memory ring" transport the paper contrasts with its
// IPC prototype ("e.g., as if we implemented service communication through
// shared memory rings"): the pipe-terminus thread produces, the service
// thread consumes, with no syscalls on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace interedge {

template <typename T>
class spsc_ring {
 public:
  // Capacity is rounded up to a power of two; usable slots = capacity - 1.
  explicit spsc_ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;  // empty
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace interedge
