// Single-producer single-consumer lock-free ring buffer.
//
// This is the "shared memory ring" transport the paper contrasts with its
// IPC prototype ("e.g., as if we implemented service communication through
// shared memory rings"): the pipe-terminus thread produces, the service
// thread consumes, with no syscalls on the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace interedge {

template <typename T>
class spsc_ring {
 public:
  // Capacity is rounded up to a power of two; usable slots = capacity - 1.
  explicit spsc_ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;  // empty
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  // Batch producer: moves as many of `values` in as fit, front first, with
  // one release store for the whole run. Returns the number consumed —
  // callers treat a short count as ring-full backpressure.
  std::size_t try_push_batch(std::span<T> values) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free = mask_ - ((head - tail) & mask_);
    const std::size_t n = std::min(free, values.size());
    for (std::size_t i = 0; i < n; ++i) slots_[(head + i) & mask_] = std::move(values[i]);
    if (n > 0) head_.store((head + n) & mask_, std::memory_order_release);
    return n;
  }

  // Batch consumer: pops up to `max` items into `out`, one acquire load and
  // one release store for the whole run. Returns the number appended.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = (head - tail) & mask_;
    const std::size_t n = std::min(avail, max);
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(slots_[(tail + i) & mask_]));
    if (n > 0) tail_.store((tail + n) & mask_, std::memory_order_release);
    return n;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  // Approximate occupancy: exact from the consumer's thread, a safe
  // snapshot from anywhere else (both indices are loaded acquire).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  std::size_t capacity() const { return mask_; }

  // Backing storage, exposed for advisory NUMA placement (mbind the slots
  // onto the consumer's node). Construction-time only — never while the
  // ring carries traffic.
  void* storage() { return slots_.data(); }
  std::size_t storage_bytes() const { return slots_.size() * sizeof(T); }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace interedge
