#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace interedge {
namespace {
std::atomic<log_level> g_level{log_level::warn};
std::mutex g_mu;
const char* name_of(log_level l) {
  switch (l) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

log_level global_log_level() { return g_level.load(std::memory_order_relaxed); }
void set_global_log_level(log_level level) { g_level.store(level, std::memory_order_relaxed); }

void log_write(log_level level, const std::string& message) {
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", name_of(level), message.c_str());
}

}  // namespace interedge
