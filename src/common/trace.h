// Per-hop packet tracing (ISSUE 2; Hermes-style per-hop latency
// accounting). A tracer owns one histogram per datapath stage plus a ring
// buffer of recent sampled per-packet records. Instrumentation sites bind
// to the *current* tracer through a thread-local (scoped_tracer), so the
// ilp/core layers need no plumbed-through telemetry parameters and pay a
// single TLS load + null check when tracing is off.
//
// Cost model (overhead budget in DESIGN.md §8):
//   * batch-granularity stage spans — a handful of clock reads per batch;
//   * one relaxed fetch_add per packet for the deterministic sampler;
//   * full per-packet stage timestamps and ring captures only for sampled
//     packets (1 in 2^sample_shift, default 1/256).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace interedge::trace {

enum class stage : std::uint8_t {
  ingress = 0,  // terminus receive batch: cache consults, verdicts, drain
  parse,        // wire-format parse + header decode
  decrypt,      // PSP open of the sealed ILP headers
  cache,        // decision-cache lookup
  emit,         // fast-path verdict apply (forward/deliver/drop)
  slowpath,     // slow-path channel drain
  service,      // service-module on_packet dispatch
};
inline constexpr std::size_t kStageCount = 7;
const char* stage_name(stage s);

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// Verdict tags for sampled records.
inline constexpr char kVerdictForward = 'F';
inline constexpr char kVerdictDeliver = 'D';
inline constexpr char kVerdictDrop = 'X';
inline constexpr char kVerdictNone = '-';

// One sampled measurement: stage `st` on hop `hop` took `duration_ns`,
// nested `depth` spans deep, for sampled packet number `seq`.
struct trace_record {
  std::uint64_t seq = 0;
  std::uint64_t hop = 0;
  stage st = stage::ingress;
  std::uint8_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  char verdict = kVerdictNone;
};

class tracer {
 public:
  struct config {
    std::uint64_t hop = 0;            // node id stamped into records
    std::uint32_t sample_shift = 8;   // sample 1 in 2^shift packets
    std::size_t ring_capacity = 512;  // rounded up to a power of two
  };

  // Stage histograms are interned into `reg` as sn.stage.<name> so the
  // exposition surface covers them automatically.
  explicit tracer(metrics_registry& reg);
  tracer(metrics_registry& reg, config cfg);

  // Deterministic sampler: advances the packet sequence and reports
  // whether this packet is traced (every 2^sample_shift-th, starting at 0).
  bool sample_tick() {
    return (seq_.fetch_add(1, std::memory_order_relaxed) & sample_mask_) == 0;
  }

  // Batch form: claims `n` consecutive sequence numbers with one atomic
  // and returns the first; test each packet with sample_hit(base + i).
  std::uint64_t sample_tick_batch(std::uint64_t n) {
    return seq_.fetch_add(n, std::memory_order_relaxed);
  }
  bool sample_hit(std::uint64_t seq) const { return (seq & sample_mask_) == 0; }

  histogram& stage_hist(stage s) { return *stage_hists_[static_cast<std::size_t>(s)]; }
  void record_stage(stage s, std::uint64_t duration_ns) { stage_hist(s).record(duration_ns); }

  // Pushes a sampled per-packet record into the ring (lock-free, may
  // overwrite the oldest record under wrap).
  void capture(stage s, std::uint64_t start_ns, std::uint64_t duration_ns,
               char verdict = kVerdictNone);

  // Most-recent-first copy of the ring (bounded by capacity).
  std::vector<trace_record> recent(std::size_t limit = 0) const;
  // Human-readable dump of recent records, one per line.
  std::string dump(std::size_t limit = 32) const;

  std::uint64_t packets_seen() const { return seq_.load(std::memory_order_relaxed); }
  std::uint64_t sampled() const { return captures_.load(std::memory_order_relaxed); }
  std::uint64_t hop() const { return hop_; }

 private:
  std::uint64_t hop_;
  std::uint64_t sample_mask_;
  std::array<histogram*, kStageCount> stage_hists_{};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> captures_{0};  // ring sequence
  std::vector<trace_record> ring_;
  std::size_t ring_mask_;
};

// Thread-local current tracer. Instrumentation in lower layers (pipe
// decrypt, exec_env dispatch) reads this instead of taking a tracer
// parameter through every call signature.
tracer* current();

// Installs `t` as the current tracer for the enclosing scope.
class scoped_tracer {
 public:
  explicit scoped_tracer(tracer* t);
  ~scoped_tracer();
  scoped_tracer(const scoped_tracer&) = delete;
  scoped_tracer& operator=(const scoped_tracer&) = delete;

 private:
  tracer* prev_;
};

// Current span-stack depth on this thread (0 outside any span).
int span_depth();

// RAII stage span over the current tracer: records elapsed nanoseconds
// into the stage histogram; with `capture`, also pushes a per-packet ring
// record at the depth the span opened at. No-op when no tracer is current.
class span {
 public:
  explicit span(stage s, bool capture = false);
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

  // Tags the ring record (fast-path verdicts); ignored without `capture`.
  void set_verdict(char v) { verdict_ = v; }

 private:
  tracer* t_;
  stage stage_;
  bool capture_;
  char verdict_ = kVerdictNone;
  std::uint8_t depth_ = 0;
  std::uint64_t start_ = 0;
};

}  // namespace interedge::trace
