// Per-hop packet tracing (ISSUE 2; Hermes-style per-hop latency
// accounting). A tracer owns one histogram per datapath stage plus a ring
// buffer of recent sampled per-packet records. Instrumentation sites bind
// to the *current* tracer through a thread-local (scoped_tracer), so the
// ilp/core layers need no plumbed-through telemetry parameters and pay a
// single TLS load + null check when tracing is off.
//
// Cost model (overhead budget in DESIGN.md §8):
//   * batch-granularity stage spans — a handful of clock reads per batch;
//   * one relaxed fetch_add per packet for the deterministic sampler;
//   * full per-packet stage timestamps and ring captures only for sampled
//     packets (1 in 2^sample_shift, default 1/256).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/ring.h"
#include "common/trace_context.h"

namespace interedge::trace {

enum class stage : std::uint8_t {
  ingress = 0,  // terminus receive batch: cache consults, verdicts, drain
  parse,        // wire-format parse + header decode
  decrypt,      // PSP open of the sealed ILP headers
  cache,        // decision-cache lookup
  emit,         // fast-path verdict apply (forward/deliver/drop)
  slowpath,     // slow-path channel drain
  service,      // service-module on_packet dispatch
};
inline constexpr std::size_t kStageCount = 7;
const char* stage_name(stage s);

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// Verdict tags for sampled records.
inline constexpr char kVerdictForward = 'F';
inline constexpr char kVerdictDeliver = 'D';
inline constexpr char kVerdictDrop = 'X';
inline constexpr char kVerdictNone = '-';

// One sampled measurement: stage `st` on hop `hop` took `duration_ns`,
// nested `depth` spans deep, for sampled packet number `seq`.
struct trace_record {
  std::uint64_t seq = 0;
  std::uint64_t hop = 0;
  stage st = stage::ingress;
  std::uint8_t depth = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  char verdict = kVerdictNone;
};

class tracer {
 public:
  struct config {
    std::uint64_t hop = 0;            // node id stamped into records
    std::uint32_t sample_shift = 8;   // sample 1 in 2^shift packets
    std::size_t ring_capacity = 512;  // rounded up to a power of two
  };

  // Stage histograms are interned into `reg` as sn.stage.<name> so the
  // exposition surface covers them automatically.
  explicit tracer(metrics_registry& reg);
  tracer(metrics_registry& reg, config cfg);

  // Deterministic sampler: advances the packet sequence and reports
  // whether this packet is traced (every 2^sample_shift-th, starting at 0).
  bool sample_tick() {
    return (seq_.fetch_add(1, std::memory_order_relaxed) & sample_mask_) == 0;
  }

  // Batch form: claims `n` consecutive sequence numbers with one atomic
  // and returns the first; test each packet with sample_hit(base + i).
  std::uint64_t sample_tick_batch(std::uint64_t n) {
    return seq_.fetch_add(n, std::memory_order_relaxed);
  }
  bool sample_hit(std::uint64_t seq) const { return (seq & sample_mask_) == 0; }

  histogram& stage_hist(stage s) { return *stage_hists_[static_cast<std::size_t>(s)]; }
  void record_stage(stage s, std::uint64_t duration_ns) { stage_hist(s).record(duration_ns); }

  // Pushes a sampled per-packet record into the ring (lock-free, may
  // overwrite the oldest record under wrap).
  void capture(stage s, std::uint64_t start_ns, std::uint64_t duration_ns,
               char verdict = kVerdictNone);

  // Most-recent-first copy of the ring (bounded by capacity). Records that
  // wrapped out of the ring between reads are accounted in
  // dropped_records() and warned about (once per wrap burst) rather than
  // vanishing silently.
  std::vector<trace_record> recent(std::size_t limit = 0) const;
  // Human-readable dump of recent records, one per line.
  std::string dump(std::size_t limit = 32) const;

  std::uint64_t packets_seen() const { return seq_.load(std::memory_order_relaxed); }
  std::uint64_t sampled() const { return captures_.load(std::memory_order_relaxed); }
  // Captures that wrapped past a reader without ever appearing in a
  // recent() export (cumulative; see recent()).
  std::uint64_t dropped_records() const {
    return dropped_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t hop() const { return hop_; }

 private:
  std::uint64_t hop_;
  std::uint64_t sample_mask_;
  std::array<histogram*, kStageCount> stage_hists_{};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> captures_{0};  // ring sequence
  std::vector<trace_record> ring_;
  std::size_t ring_mask_;
  // Export-side accounting (mutable: recent() is logically const). The
  // read mark is the capture sequence the last export reached; captures
  // beyond ring capacity since then were overwritten unread.
  mutable std::atomic<std::uint64_t> read_mark_{0};
  mutable std::atomic<std::uint64_t> dropped_records_{0};
  mutable std::atomic<bool> wrap_warned_{false};
};

// Thread-local current tracer. Instrumentation in lower layers (pipe
// decrypt, exec_env dispatch) reads this instead of taking a tracer
// parameter through every call signature.
tracer* current();

// Installs `t` as the current tracer for the enclosing scope.
class scoped_tracer {
 public:
  explicit scoped_tracer(tracer* t);
  ~scoped_tracer();
  scoped_tracer(const scoped_tracer&) = delete;
  scoped_tracer& operator=(const scoped_tracer&) = delete;

 private:
  tracer* prev_;
};

// Current span-stack depth on this thread (0 outside any span).
int span_depth();

// RAII stage span over the current tracer: records elapsed nanoseconds
// into the stage histogram; with `capture`, also pushes a per-packet ring
// record at the depth the span opened at. No-op when no tracer is current.
class span {
 public:
  explicit span(stage s, bool capture = false);
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

  // Tags the ring record (fast-path verdicts); ignored without `capture`.
  void set_verdict(char v) { verdict_ = v; }

 private:
  tracer* t_;
  stage stage_;
  bool capture_;
  char verdict_ = kVerdictNone;
  std::uint8_t depth_ = 0;
  std::uint64_t start_ = 0;
};

// ---- cross-hop path tracing (ISSUE 5) ---------------------------------

// Where on the host→SN→…→SN→host path a span was emitted.
enum class span_kind : std::uint8_t {
  origin = 0,  // host stack / tunnel ingress: the trace begins here
  hop_fast,    // SN fast-path verdict (decision-cache hit or shed)
  hop_slow,    // SN slow-path round trip (submit → completed verdict)
  service,     // service-module dispatch on the control thread
  forward,     // one egress copy sent toward the next hop
  deliver,     // terminal delivery at the destination host
  event,       // node lifecycle event (trace_id == 0): correlated by time
};
const char* span_kind_name(span_kind k);

// Annotation bits: what the datapath did to (or around) the packet.
inline constexpr std::uint16_t kAnnoShed = 1 << 0;             // TTL'd default verdict
inline constexpr std::uint16_t kAnnoDrop = 1 << 1;             // drop verdict applied
inline constexpr std::uint16_t kAnnoDeadlineExpired = 1 << 2;  // slow path aged out
inline constexpr std::uint16_t kAnnoPeerDown = 1 << 3;         // liveness declared a peer down
inline constexpr std::uint16_t kAnnoFailover = 1 << 4;         // standby restored a checkpoint
inline constexpr std::uint16_t kAnnoRekey = 1 << 5;            // tunnel handshake / rekey
std::string annotation_names(std::uint16_t annotations);

// One span: something that happened to one traced packet at one hop (or,
// with trace_id == 0, a node event the collector correlates by time).
struct path_span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t node = 0;
  std::uint64_t connection = 0;
  std::uint32_t service = 0;
  std::uint8_t hop_count = 0;
  span_kind kind = span_kind::origin;
  char verdict = kVerdictNone;
  std::uint16_t annotations = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

// Per-thread span sink: the emitting thread (a worker shard, the control
// thread, a host stack) is the single producer; the draining thread (the
// control thread / the collector's owner) is the single consumer. Emission
// into a full ring is a counted drop, never a block — tracing must not
// create backpressure.
//
// Timestamps come from the injected clock so simnet runs produce
// deterministic virtual-time spans; a null clock falls back to now_ns()
// (steady_clock) for real deployments.
class path_recorder {
 public:
  struct config {
    std::uint64_t node = 0;           // stamped into spans and id allocation
    std::uint32_t sample_shift = 8;   // origin sampling: 1 in 2^shift
    std::size_t capacity = 1024;      // span ring slots (rounded to pow2)
    const clock* clk = nullptr;       // span timestamps; null = steady_clock
  };
  explicit path_recorder(config cfg);

  // Origin-side sampling decision (deterministic 1/2^k, same scheme as
  // tracer::sample_tick). Mid-path hops never call this: they honor the
  // sampled bit the origin stamped into the context.
  bool sample_tick() {
    return (seq_.fetch_add(1, std::memory_order_relaxed) & sample_mask_) == 0;
  }

  std::uint64_t now() const {
    if (cfg_.clk != nullptr) {
      return static_cast<std::uint64_t>(cfg_.clk->now().time_since_epoch().count());
    }
    return now_ns();
  }

  // Node-scoped unique ids (never 0). Trace ids mix the node id so
  // concurrent origins across a deployment cannot collide; both are
  // deterministic for a fixed call sequence (simnet replay).
  std::uint64_t new_trace_id();
  std::uint64_t next_span_id();

  // Producer side (single thread). A full ring counts a drop.
  void emit(path_span s);

  // Consumer side (single thread): moves up to `max` spans into `out`.
  std::size_t drain(std::vector<path_span>& out, std::size_t max = 256);

  std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t node() const { return cfg_.node; }

 private:
  config cfg_;
  std::uint64_t sample_mask_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> span_seq_{0};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  spsc_ring<path_span> ring_;
};

}  // namespace interedge::trace
