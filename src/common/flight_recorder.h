// Black-box flight recorder (ISSUE 7): a lock-free ring of recent spans,
// verdicts and lifecycle events that freezes at the moment a fault fires,
// so every peer-down, failover, shed watermark or SLO page comes with a
// postmortem of what the node was doing right before it.
//
// Write side is wait-free and multi-producer: a writer claims a ticket
// with one fetch_add and publishes into slot (ticket & mask) under a
// seqlock-style generation — the slot's sequence goes odd (2t+1) before
// the payload words are stored and even (2t+2, release) after. Every slot
// word is an atomic, so concurrent overwrite is a benign data race to the
// language (no UB, TSan-clean); the reader validates that a slot's
// sequence is even and unchanged across its read and simply skips slots
// caught mid-overwrite. Recording costs a handful of relaxed stores —
// cheap enough to feed from the control thread's span drain without a
// measurable datapath tax.
//
// trigger() records the triggering event and then, if that trigger bit is
// armed, freezes the ring exactly once (atomic exchange): recording stops
// (frozen-out events are counted), the freeze hook fires on the
// triggering thread (the owner dumps JSON there), and the pre-fault tail
// stays intact until rearm().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace interedge {

enum class fr_kind : std::uint8_t {
  span = 0,   // a drained path span (a/b/c = trace id, service, duration)
  lifecycle,  // node event: peer down, failover, rekey (code = annotations)
  alert,      // SLO state transition (code = new state, a = prev)
  watchdog,   // stalled-shard detection (a = shard, b = heartbeat)
  trigger,    // the event that armed/fired a freeze (code = trigger bit)
  gauge,      // a sampled health gauge (a = value)
};
const char* fr_kind_name(fr_kind k);

// Trigger bits: which faults freeze the ring (config.trigger_mask) and
// which one actually fired (dump header).
inline constexpr std::uint32_t kTrigPeerDown = 1u << 0;
inline constexpr std::uint32_t kTrigFailover = 1u << 1;
inline constexpr std::uint32_t kTrigShed = 1u << 2;
inline constexpr std::uint32_t kTrigSloPage = 1u << 3;
inline constexpr std::uint32_t kTrigWatchdog = 1u << 4;
inline constexpr std::uint32_t kTrigManual = 1u << 5;
std::string fr_trigger_names(std::uint32_t mask);

struct fr_event {
  std::uint64_t time_ns = 0;
  fr_kind kind = fr_kind::lifecycle;
  std::uint32_t code = 0;  // kind-specific discriminator (see fr_kind)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class flight_recorder {
 public:
  struct config {
    std::size_t capacity = 1024;  // ring slots, rounded up to a power of two
    // Which triggers freeze the ring; others still record as events.
    std::uint32_t trigger_mask = kTrigPeerDown | kTrigFailover | kTrigShed | kTrigSloPage |
                                 kTrigWatchdog | kTrigManual;
  };
  explicit flight_recorder(config cfg);

  // Wait-free, any thread. After a freeze, records are dropped (counted).
  void record(const fr_event& e);

  // Records a trigger event, then freezes the ring if `trig` is armed and
  // no earlier trigger beat it. The freeze hook (if any) runs here, on the
  // calling thread, exactly once per freeze.
  void trigger(std::uint32_t trig, std::uint64_t time_ns, std::uint64_t a = 0,
               std::uint64_t b = 0);

  // Owner's dump callback, fired inside the freezing trigger() call. Set
  // before concurrent use.
  void set_freeze_hook(std::function<void(std::uint32_t trig)> hook) {
    freeze_hook_ = std::move(hook);
  }

  bool frozen() const { return frozen_.load(std::memory_order_acquire); }
  std::uint32_t frozen_by() const { return frozen_by_.load(std::memory_order_acquire); }
  // Unfreezes and resumes recording over the existing tail.
  void rearm();

  // Stable events currently in the ring, oldest first (ticket order).
  // Slots mid-overwrite by a concurrent writer are skipped.
  std::vector<fr_event> snapshot() const;
  // The postmortem: header (frozen state, trigger, drop accounting) plus
  // every stable event.
  std::string dump_json() const;

  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  // Events refused because the ring was frozen.
  std::uint64_t dropped_frozen() const { return dropped_frozen_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  // 5 payload words: time, (kind|code), a, b, c.
  static constexpr std::size_t kWords = 5;
  struct alignas(64) slot {
    std::atomic<std::uint64_t> seq{0};  // 0 empty; 2t+1 writing; 2t+2 stable
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::vector<slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_frozen_{0};
  std::atomic<bool> frozen_{false};
  std::atomic<std::uint32_t> frozen_by_{0};
  std::uint32_t trigger_mask_;
  std::function<void(std::uint32_t)> freeze_hook_;
};

}  // namespace interedge
