// Minimal leveled logger. Defaults to warnings-and-above so tests and
// benchmarks stay quiet; examples raise the level for narration.
#pragma once

#include <sstream>
#include <string>

namespace interedge {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

log_level global_log_level();
void set_global_log_level(log_level level);
void log_write(log_level level, const std::string& message);

namespace detail {
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  ~log_line() { log_write(level_, os_.str()); }
  template <typename T>
  log_line& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream os_;
};
}  // namespace detail

#define IE_LOG(level)                                        \
  if (::interedge::log_level::level < ::interedge::global_log_level()) { \
  } else                                                     \
    ::interedge::detail::log_line(::interedge::log_level::level)

}  // namespace interedge
