// Minimal leveled logger. Defaults to warnings-and-above so tests and
// benchmarks stay quiet; examples raise the level for narration.
//
// Structured key=value support: stream kv("service", name) items and the
// line renders `... service=odns ...` — greppable fields without a
// structured backend. Values containing spaces are quoted.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace interedge {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

log_level global_log_level();
void set_global_log_level(log_level level);
void log_write(log_level level, const std::string& message);

namespace detail {
struct kv_item {
  std::string text;  // rendered "key=value"
};
}  // namespace detail

template <typename T>
detail::kv_item kv(std::string_view key, const T& value) {
  std::ostringstream os;
  os << value;
  std::string v = os.str();
  std::string text(key);
  text += '=';
  if (v.find(' ') != std::string::npos) {
    text += '"';
    text += v;
    text += '"';
  } else {
    text += v;
  }
  return detail::kv_item{std::move(text)};
}

namespace detail {
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  ~log_line() { log_write(level_, os_.str()); }
  template <typename T>
  log_line& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  // kv fields are space-separated from whatever precedes them.
  log_line& operator<<(const kv_item& item) {
    if (os_.tellp() > 0) os_ << ' ';
    os_ << item.text;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream os_;
};
}  // namespace detail

#define IE_LOG(level)                                        \
  if (::interedge::log_level::level < ::interedge::global_log_level()) { \
  } else                                                     \
    ::interedge::detail::log_line(::interedge::log_level::level)

}  // namespace interedge
