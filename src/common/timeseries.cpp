#include "common/timeseries.h"

#include <algorithm>
#include <sstream>

namespace interedge {

timeseries_store::timeseries_store(config cfg) : cfg_(cfg) {
  if (cfg_.window.count() <= 0) cfg_.window = std::chrono::seconds(10);
  if (cfg_.windows == 0) cfg_.windows = 1;
  if (cfg_.sketch_buckets == 0) cfg_.sketch_buckets = 1;
}

bool timeseries_store::tracked(const std::string& key) const {
  if (cfg_.prefixes.empty()) return true;
  for (const std::string& p : cfg_.prefixes) {
    if (key.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

void timeseries_store::tick(const metrics_registry& snapshot, time_point now) {
  // Read the snapshot outside our lock: samples()/for_each_histogram take
  // the registry's own lock, and holding both in a fixed order here avoids
  // any chance of inversion with exposition paths.
  const std::vector<metric_sample> samples = snapshot.samples();

  std::lock_guard lk(mu_);
  const std::int64_t slot = slot_of(now);
  if (slot > last_slot_) last_slot_ = slot;
  ++ticks_;

  for (const metric_sample& s : samples) {
    if (s.kind != metric_kind::counter && s.kind != metric_kind::sharded_counter) continue;
    if (!tracked(s.key)) continue;
    auto it = counters_.find(s.key);
    if (it == counters_.end()) {
      if (counters_.size() >= cfg_.max_counter_series) {
        ++series_dropped_;
        continue;
      }
      counter_series_t cs;
      cs.ring.assign(cfg_.windows, 0.0);
      cs.slot.assign(cfg_.windows, -1);
      it = counters_.emplace(s.key, std::move(cs)).first;
    }
    counter_series_t& cs = it->second;
    double d = 0;
    if (cs.have_prev) {
      d = s.value - cs.prev;
      if (d < 0) {
        // Counter reset: the node behind this series restarted and its
        // cumulative value collapsed. The fresh value is the true delta
        // since the wipe; a negative rate must never escape the store.
        d = s.value;
        ++resets_;
      }
    }
    // First sighting contributes no delta — the cumulative baseline may
    // cover history far older than this window.
    cs.prev = s.value;
    cs.have_prev = true;
    const std::size_t r = static_cast<std::size_t>(slot % static_cast<std::int64_t>(cfg_.windows));
    if (cs.slot[r] != slot) {
      cs.ring[r] = 0;
      cs.slot[r] = slot;
    }
    cs.ring[r] += d;
  }

  snapshot.for_each_histogram([&](const std::string& key, const histogram& h) {
    if (!tracked(key)) return;
    auto it = hists_.find(key);
    if (it == hists_.end()) {
      if (hists_.size() >= cfg_.max_hist_series) {
        ++series_dropped_;
        return;
      }
      hist_series_t hs;
      hs.ring.resize(cfg_.windows);
      it = hists_.emplace(key, std::move(hs)).first;
    }
    hist_series_t& hs = it->second;
    if (hs.prev.empty()) hs.prev.assign(histogram::kBucketCount, 0);

    const std::size_t r = static_cast<std::size_t>(slot % static_cast<std::int64_t>(cfg_.windows));
    hist_window& w = hs.ring[r];
    if (w.slot != slot) {
      w.entries.clear();
      w.total = 0;
      w.slot = slot;
    }
    bool reset = false;
    for (std::size_t i = 0; i < histogram::kBucketCount; ++i) {
      const std::uint64_t cur = h.bucket_value(i);
      if (!reset && hs.have_prev && cur < hs.prev[i]) {
        // Any bucket shrinking means the histogram was wiped wholesale:
        // re-baseline on the fresh contents, same clamp as counters.
        reset = true;
      }
      if (reset) break;
    }
    if (reset) ++resets_;
    for (std::size_t i = 0; i < histogram::kBucketCount; ++i) {
      const std::uint64_t cur = h.bucket_value(i);
      std::uint64_t d = 0;
      if (!hs.have_prev) {
        d = 0;  // baseline tick: history predating the store stays out
      } else if (reset) {
        d = cur;
      } else {
        d = cur - hs.prev[i];
      }
      hs.prev[i] = cur;
      if (d == 0) continue;
      w.total += d;
      // Sparse accumulate: a window's traffic touches few of the 1024
      // log-linear buckets, so linear search beats any indexing here.
      bool found = false;
      for (sketch_entry& e : w.entries) {
        if (e.bucket == i) {
          e.count += d;
          found = true;
          break;
        }
      }
      if (!found) {
        if (w.entries.size() < cfg_.sketch_buckets) {
          w.entries.push_back(sketch_entry{static_cast<std::uint16_t>(i), d});
        } else {
          // Sketch full: fold into the highest-bucket entry so totals stay
          // exact and the tail (what SLOs watch) stays pessimistic.
          auto top = std::max_element(
              w.entries.begin(), w.entries.end(),
              [](const sketch_entry& a, const sketch_entry& b) { return a.bucket < b.bucket; });
          top->count += d;
        }
      }
    }
    hs.have_prev = true;
  });
}

std::int64_t timeseries_store::span_first_slot(nanoseconds span) const {
  if (last_slot_ < 0) return 0;
  std::int64_t n = (span.count() + cfg_.window.count() - 1) / cfg_.window.count();
  if (n < 1) n = 1;
  if (n > static_cast<std::int64_t>(cfg_.windows)) n = static_cast<std::int64_t>(cfg_.windows);
  return last_slot_ - n + 1;
}

std::uint64_t timeseries_store::delta(const std::string& key, nanoseconds span) const {
  std::lock_guard lk(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end() || last_slot_ < 0) return 0;
  const std::int64_t first = span_first_slot(span);
  double total = 0;
  const counter_series_t& cs = it->second;
  for (std::size_t r = 0; r < cfg_.windows; ++r) {
    if (cs.slot[r] >= first && cs.slot[r] <= last_slot_) total += cs.ring[r];
  }
  return total <= 0 ? 0 : static_cast<std::uint64_t>(total);
}

double timeseries_store::rate_per_sec(const std::string& key, nanoseconds span) const {
  const std::uint64_t d = delta(key, span);
  const double secs = static_cast<double>(span.count()) / 1e9;
  return secs > 0 ? static_cast<double>(d) / secs : 0.0;
}

std::uint64_t timeseries_store::hist_count(const std::string& key, nanoseconds span) const {
  std::lock_guard lk(mu_);
  auto it = hists_.find(key);
  if (it == hists_.end() || last_slot_ < 0) return 0;
  const std::int64_t first = span_first_slot(span);
  std::uint64_t total = 0;
  for (const hist_window& w : it->second.ring) {
    if (w.slot >= first && w.slot <= last_slot_) total += w.total;
  }
  return total;
}

std::uint64_t timeseries_store::hist_quantile(const std::string& key, nanoseconds span,
                                              double q) const {
  std::lock_guard lk(mu_);
  auto it = hists_.find(key);
  if (it == hists_.end() || last_slot_ < 0) return 0;
  const std::int64_t first = span_first_slot(span);
  // Merge the span's sketches into one dense-enough bucket list.
  std::map<std::uint16_t, std::uint64_t> merged;
  std::uint64_t total = 0;
  for (const hist_window& w : it->second.ring) {
    if (w.slot < first || w.slot > last_slot_) continue;
    total += w.total;
    for (const sketch_entry& e : w.entries) merged[e.bucket] += e.count;
  }
  if (total == 0) return 0;
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target >= total) target = total - 1;
  std::uint64_t seen = 0;
  std::uint16_t last = 0;
  for (const auto& [bucket, count] : merged) {
    last = bucket;
    seen += count;
    if (seen > target) return histogram::bucket_midpoint(bucket);
  }
  return histogram::bucket_midpoint(last);
}

double timeseries_store::hist_fraction_above(const std::string& key, nanoseconds span,
                                             std::uint64_t threshold_ns) const {
  std::lock_guard lk(mu_);
  auto it = hists_.find(key);
  if (it == hists_.end() || last_slot_ < 0) return 0.0;
  const std::int64_t first = span_first_slot(span);
  std::uint64_t total = 0, above = 0;
  for (const hist_window& w : it->second.ring) {
    if (w.slot < first || w.slot > last_slot_) continue;
    total += w.total;
    for (const sketch_entry& e : w.entries) {
      if (histogram::bucket_midpoint(e.bucket) > threshold_ns) above += e.count;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(total);
}

std::uint64_t timeseries_store::ticks() const {
  std::lock_guard lk(mu_);
  return ticks_;
}

std::uint64_t timeseries_store::counter_resets() const {
  std::lock_guard lk(mu_);
  return resets_;
}

std::uint64_t timeseries_store::series_dropped() const {
  std::lock_guard lk(mu_);
  return series_dropped_;
}

std::size_t timeseries_store::counter_series() const {
  std::lock_guard lk(mu_);
  return counters_.size();
}

std::size_t timeseries_store::hist_series() const {
  std::lock_guard lk(mu_);
  return hists_.size();
}

std::string timeseries_store::export_json() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "{\"window_ns\":" << cfg_.window.count() << ",\"windows\":" << cfg_.windows
     << ",\"ticks\":" << ticks_ << ",\"counter_series\":" << counters_.size()
     << ",\"hist_series\":" << hists_.size() << ",\"counter_resets\":" << resets_
     << ",\"series_dropped\":" << series_dropped_ << "}";
  return os.str();
}

}  // namespace interedge
