// Open-addressed hash map for the transport hot path.
//
// udp_endpoint resolves every received datagram's source (packed ip:port)
// to a peer_id, and every send's peer_id to a sockaddr. std::map put a
// pointer-chasing red-black tree walk on that per-datagram path; peer
// tables are tiny (tens of entries) and insert-only, so a linear-probe
// flat table with the key/value inline is both simpler and an order of
// magnitude fewer cache misses.
//
// Deliberately minimal: u64 keys, insert-or-assign and find only, no
// erase (peers are never removed), grows by doubling at 70% load. A
// per-slot occupied flag rather than a sentinel key — peer_id 0 and
// source 0 are both representable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace interedge {

template <typename V>
class flat_hash64 {
 public:
  flat_hash64() { rehash(16); }

  // Inserts or overwrites. Returns a reference valid until the next insert.
  V& insert(std::uint64_t key, V value) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) rehash(slots_.size() * 2);
    slot& s = probe(key);
    if (!s.occupied) {
      s.occupied = true;
      s.key = key;
      ++size_;
    }
    s.value = std::move(value);
    return s.value;
  }

  V* find(std::uint64_t key) {
    slot& s = probe(key);
    return s.occupied ? &s.value : nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<flat_hash64*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Iteration (stats/tests): visits every occupied slot.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const slot& s : slots_) {
      if (s.occupied) fn(s.key, s.value);
    }
  }

 private:
  struct slot {
    std::uint64_t key = 0;
    V value{};
    bool occupied = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: packed ip:port keys share high bytes, so the
    // raw value would cluster; this spreads them over the table.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // First matching-or-empty slot for `key`. The table never fills (grown
  // at 70% load), so the probe always terminates.
  slot& probe(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (slots_[i].occupied && slots_[i].key != key) i = (i + 1) & mask;
    return slots_[i];
  }

  void rehash(std::size_t capacity) {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(capacity, slot{});
    for (slot& s : old) {
      if (!s.occupied) continue;
      slot& dst = probe(s.key);
      dst.occupied = true;
      dst.key = s.key;
      dst.value = std::move(s.value);
    }
  }

  std::vector<slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace interedge
