// Bounds-checked little-endian serialization used by all wire formats
// (ILP headers, lookup records, service metadata, checkpoints).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace interedge {

// Thrown by reader on truncated or malformed input. Wire-format consumers
// at trust boundaries catch this and drop the packet.
class serial_error : public std::runtime_error {
 public:
  explicit serial_error(const std::string& what) : std::runtime_error(what) {}
};

// Appends little-endian fixed-width integers and length-prefixed blobs
// to an owned buffer.
class writer {
 public:
  writer() = default;
  explicit writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // LEB128-style variable-length unsigned integer.
  void varint(std::uint64_t v);
  void raw(const_byte_span b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  // varint length prefix followed by the bytes.
  void blob(const_byte_span b);
  void str(std::string_view s) { blob(const_byte_span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size())); }

  const bytes& data() const { return buf_; }
  bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  // Drops the contents but keeps the capacity — lets hot paths reuse one
  // writer as scratch without reallocating per packet.
  void clear() { buf_.clear(); }

 private:
  bytes buf_;
};

// Non-owning cursor over an input buffer; every accessor throws
// serial_error instead of reading past the end.
class reader {
 public:
  explicit reader(const_byte_span b) : buf_(b) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  const_byte_span raw(std::size_t n);
  const_byte_span blob();
  std::string str();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  const_byte_span buf_;
  std::size_t pos_ = 0;
};

}  // namespace interedge
