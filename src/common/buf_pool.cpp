#include "common/buf_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "common/cpu_topology.h"

namespace interedge::buf {

namespace {
constexpr std::size_t kCacheLine = 64;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

// ---- slab_ref ----------------------------------------------------------

slab_ref slab_ref::clone() const {
  if (pool_ == nullptr) return slab_ref();
  pool_->ctl_[idx_].refs.fetch_add(1, std::memory_order_relaxed);
  return slab_ref(pool_, idx_);
}

void slab_ref::reset() {
  if (pool_ == nullptr) return;
  buf_pool* pool = pool_;
  const std::uint32_t idx = idx_;
  pool_ = nullptr;
  // acq_rel: the release half publishes this holder's writes to whoever
  // reuses the slab; the acquire half (on the final decrement) makes every
  // other holder's writes visible before recycle.
  if (pool->ctl_[idx].refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool->recycle(idx);
  }
}

std::uint8_t* slab_ref::data() const {
  return pool_->arena_ + static_cast<std::size_t>(idx_) * pool_->slab_size_;
}

std::size_t slab_ref::size() const { return pool_->slab_size_; }

std::uint32_t slab_ref::refcount() const {
  return pool_ == nullptr ? 0 : pool_->ctl_[idx_].refs.load(std::memory_order_relaxed);
}

// ---- buf_pool ----------------------------------------------------------

buf_pool::buf_pool(pool_config cfg)
    : slab_size_(round_up(cfg.slab_size == 0 ? 1 : cfg.slab_size, kCacheLine)),
      slab_count_(cfg.slab_count),
      cache_batch_(cfg.cache_batch == 0 ? 1 : cfg.cache_batch) {
  if (slab_count_ == 0) throw std::invalid_argument("buf_pool: slab_count == 0");
  arena_ = static_cast<std::uint8_t*>(
      ::aligned_alloc(kCacheLine, slab_size_ * slab_count_));
  if (arena_ == nullptr) throw std::bad_alloc();
  if (cfg.numa_node >= 0) {
    // Advisory NUMA placement: a shard-owned pool lands its slabs on the
    // shard's node. Failure (no mbind, single-node box) costs locality only.
    sys::bind_memory_to_node(arena_, slab_size_ * slab_count_, cfg.numa_node);
  }
  ctl_ = std::make_unique<ctl[]>(slab_count_);
  free_.reserve(slab_count_);
  // LIFO free list: the most recently released slab is the hottest in
  // cache, so hand it out next.
  for (std::size_t i = slab_count_; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

buf_pool::~buf_pool() {
  // Outstanding refs here mean a slab_ref outlived the pool — a lifetime
  // bug in the owner (pool members must be declared before anything that
  // holds views into them).
  assert(free_.size() == slab_count_ && "buf_pool destroyed with outstanding slab refs");
  ::free(arena_);
}

slab_ref buf_pool::try_alloc() {
  std::uint32_t idx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return slab_ref();
    }
    idx = free_.back();
    free_.pop_back();
  }
  ctl_[idx].refs.store(1, std::memory_order_relaxed);
  allocs_.fetch_add(1, std::memory_order_relaxed);
  return slab_ref(this, idx);
}

slab_ref buf_pool::ref_for_ptr(const std::uint8_t* p) {
  if (p < arena_ || p >= arena_ + slab_size_ * slab_count_) return slab_ref();
  const auto idx = static_cast<std::uint32_t>(
      static_cast<std::size_t>(p - arena_) / slab_size_);
  ctl_[idx].refs.fetch_add(1, std::memory_order_relaxed);
  return slab_ref(this, idx);
}

void buf_pool::recycle(std::uint32_t idx) {
  frees_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(idx);
}

pool_stats buf_pool::stats() const {
  pool_stats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.refills = refills_;
  s.spills = spills_;
  s.outstanding = slab_count_ - free_.size();
  return s;
}

// ---- buf_pool::cache ---------------------------------------------------

slab_ref buf_pool::cache::try_alloc() {
  if (local_.empty()) {
    std::lock_guard<std::mutex> lock(pool_->mu_);
    const std::size_t take = std::min(pool_->cache_batch_, pool_->free_.size());
    if (take == 0) {
      pool_->exhausted_.fetch_add(1, std::memory_order_relaxed);
      return slab_ref();
    }
    local_.insert(local_.end(), pool_->free_.end() - static_cast<std::ptrdiff_t>(take),
                  pool_->free_.end());
    pool_->free_.resize(pool_->free_.size() - take);
    ++pool_->refills_;
  }
  const std::uint32_t idx = local_.back();
  local_.pop_back();
  pool_->ctl_[idx].refs.store(1, std::memory_order_relaxed);
  pool_->allocs_.fetch_add(1, std::memory_order_relaxed);
  return slab_ref(pool_, idx);
}

void buf_pool::cache::spill_all() {
  if (local_.empty()) return;
  std::lock_guard<std::mutex> lock(pool_->mu_);
  pool_->free_.insert(pool_->free_.end(), local_.begin(), local_.end());
  ++pool_->spills_;
  local_.clear();
}

}  // namespace interedge::buf
