#include "common/rng.h"

namespace interedge {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

rng::rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void rng::fill(byte_span out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace interedge
