#include "deploy/deployment.h"

#include <stdexcept>

namespace interedge::deploy {

deployment::deployment(deployment_config config)
    : config_(config), net_(config.seed), id_rng_(config.seed ^ 0xdeafbeadull) {}

deployment::~deployment() = default;

edomain_id deployment::add_edomain() {
  const edomain_id id = next_domain_++;
  cores_.emplace(id, std::make_unique<edomain::domain_core>(id, directory_));
  return id;
}

peer_id deployment::add_sn(edomain_id domain) {
  auto core_it = cores_.find(domain);
  if (core_it == cores_.end()) throw std::invalid_argument("add_sn: unknown edomain");

  const sim::node_id node = net_.add_node(nullptr);
  auto router = std::make_unique<edomain::sn_router>(node, *core_it->second, directory_,
                                                     config_.direct_interdomain);
  auto sn = std::make_unique<core::service_node>(
      core::sn_config{.id = node,
                      .edomain = domain,
                      .cache_capacity = config_.cache_capacity,
                      .cache_hash_seed = id_rng_.next(),
                      .path_span_capacity = config_.sn_path_span_capacity,
                      .workers = config_.sn_workers,
                      .egress_spill_max = config_.sn_egress_spill_max,
                      .worker_cpus = config_.sn_worker_cpus,
                      .control_cpu = config_.sn_control_cpu,
                      .numa_aware = config_.sn_numa_aware,
                      .keepalive_interval = config_.sn_keepalive_interval,
                      .liveness_jitter_seed = id_rng_.next() | 1,
                      .slowpath_deadline = config_.sn_slowpath_deadline,
                      .slowpath_high_water = config_.sn_slowpath_high_water,
                      .shed_ttl = config_.sn_shed_ttl,
                      .blackbox_capacity = config_.sn_blackbox_capacity,
                      .profiler_hz = config_.sn_profiler_hz,
                      .profiler_force_timer = config_.sn_profiler_force_timer},
      net_.sim_clock(),
      [this, node](peer_id to, bytes datagram) {
        net_.send(node, static_cast<sim::node_id>(to), std::move(datagram));
      },
      [this](nanoseconds delay, std::function<void()> fn) { net_.after(delay, std::move(fn)); },
      router.get());
  net_.set_handler(node, [raw = sn.get()](sim::node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });

  core_it->second->add_sn(node);
  routers_.emplace(node, std::move(router));
  sns_.emplace(node, std::move(sn));
  sn_domain_[node] = domain;

  // SNs are themselves routable endpoints (services address each other —
  // oDNS proxies, message-queue homes): register a directory record whose
  // only associated SN is the node itself.
  lookup::host_record record;
  record.addr = node;
  record.service_nodes = {node};
  record.edomain = domain;
  directory_.register_host(record);
  return node;
}

host::host_stack& deployment::add_host(edomain_id domain, peer_id sn,
                                       std::vector<peer_id> fallback_sns) {
  if (sn == 0) {
    const auto in_domain = sns_in(domain);
    if (in_domain.empty()) throw std::invalid_argument("add_host: edomain has no SNs");
    sn = in_domain.front();
  }

  const sim::node_id node = net_.add_node(nullptr);
  host::host_config cfg;
  cfg.addr = node;
  cfg.first_hop_sn = sn;
  cfg.fallback_sns = fallback_sns;
  cfg.allow_direct = config_.hosts_allow_direct;
  cfg.path_span_capacity = config_.host_path_span_capacity;
  cfg.trace_sample_shift = config_.trace_sample_shift;
  auto stack = std::make_unique<host::host_stack>(
      cfg, net_.sim_clock(),
      [this, node](peer_id to, bytes datagram) {
        net_.send(node, static_cast<sim::node_id>(to), std::move(datagram));
      },
      [this](nanoseconds delay, std::function<void()> fn) { net_.after(delay, std::move(fn)); },
      &directory_);
  net_.set_handler(node, [raw = stack.get()](sim::node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });

  // Identity + lookup registration.
  host_identity identity;
  identity.addr = node;
  crypto::x25519_key seed;
  id_rng_.fill(seed);
  identity.keys = crypto::x25519_keypair_from_seed(seed);
  identity.first_hop_sn = sn;
  identity.domain = domain;
  identities_[node] = identity;

  lookup::host_record record;
  record.addr = node;
  record.owner_public = identity.keys.public_key;
  record.service_nodes = {sn};
  record.service_nodes.insert(record.service_nodes.end(), fallback_sns.begin(),
                              fallback_sns.end());
  record.edomain = domain;
  directory_.register_host(record);

  auto [it, inserted] = hosts_.emplace(node, std::move(stack));
  return *it->second;
}

void deployment::interconnect() {
  // Designate gateways (each edomain's first SN) and set up the full mesh.
  for (auto& [domain_a, core_a] : cores_) {
    for (auto& [domain_b, core_b] : cores_) {
      if (domain_a >= domain_b) continue;
      const auto sns_a = sns_in(domain_a);
      const auto sns_b = sns_in(domain_b);
      if (sns_a.empty() || sns_b.empty()) continue;
      const peer_id gateway_a = sns_a.front();
      const peer_id gateway_b = sns_b.front();
      core_a->set_gateway(domain_b, gateway_a, gateway_b);
      core_b->set_gateway(domain_a, gateway_b, gateway_a);
      // The long-lived ILP peering pipe (§3.2: "at least one pair of SNs
      // (one in each edomain) directly connected by a long-lived ILP
      // connection").
      sns_.at(gateway_a)->peer_with(gateway_b);
    }
  }

  // Settlement tap: every datagram crossing an edomain boundary between
  // two SNs is recorded (and, per §5, settles to zero).
  net_.set_tap([this](sim::node_id from, sim::node_id to, const bytes& data) {
    auto fit = sn_domain_.find(from);
    auto tit = sn_domain_.find(to);
    if (fit == sn_domain_.end() || tit == sn_domain_.end()) return;
    if (fit->second == tit->second) return;
    ledger_.record_transfer(fit->second, tit->second, data.size());
  });

  interconnected_ = true;
  if (config_.sn_keepalive_interval.count() > 0) {
    // Recurring keepalive ticks keep the event queue non-empty forever, so
    // an unbounded run() would spin the clock deep into simulated time and
    // strand everything the caller schedules afterwards. A few link RTTs
    // is enough for the peering handshakes to settle.
    net_.run_until(net_.now() + std::chrono::milliseconds(5));
  } else {
    net_.run();  // let the peering handshakes complete
  }
}

void deployment::deploy_service(const module_factory& factory) {
  for (auto& [id, sn] : sns_) {
    sn->env().deploy(factory(*cores_.at(sn_domain_.at(id)), id));
  }
}

void deployment::deploy_service_simple(
    const std::function<std::unique_ptr<core::service_module>()>& factory) {
  for (auto& [id, sn] : sns_) {
    sn->env().deploy(factory());
  }
}

void deployment::provision_attestation(enclave::attestation_authority& authority,
                                       const enclave::measurement& golden,
                                       const std::string& label) {
  for (auto& [id, sn] : sns_) {
    auto device = std::make_unique<enclave::tpm>(authority.provision(id));
    device->extend(golden);
    tpms_[id] = std::move(device);
  }
  // Golden register value: one extend of the golden measurement from zero.
  enclave::tpm gold(bytes{});
  gold.extend(golden);
  authority.expect(label, gold.register_value());
}

bool deployment::attest_sn(enclave::attestation_authority& authority, peer_id sn,
                           const std::string& label, const_byte_span nonce) const {
  auto it = tpms_.find(sn);
  if (it == tpms_.end()) return false;
  return authority.verify(sn, label, nonce, it->second->quote(nonce));
}

enclave::tpm* deployment::tpm_of(peer_id sn) {
  auto it = tpms_.find(sn);
  return it == tpms_.end() ? nullptr : it->second.get();
}

std::vector<peer_id> deployment::sns_in(edomain_id domain) const {
  std::vector<peer_id> out;
  for (const auto& [id, d] : sn_domain_) {
    if (d == domain) out.push_back(id);
  }
  return out;
}

}  // namespace interedge::deploy
