#include "deploy/standard_services.h"

#include "services/anycast.h"
#include "services/bulk_delivery.h"
#include "services/cluster_interconnect.h"
#include "services/ddos.h"
#include "services/delivery.h"
#include "services/message_queue.h"
#include "services/mixnet.h"
#include "services/mobility.h"
#include "services/multicast.h"
#include "services/odns.h"
#include "services/ordered_delivery.h"
#include "services/pubsub.h"
#include "services/qos.h"
#include "services/streaming.h"
#include "services/vpn.h"

namespace interedge::deploy {

namespace {
// splitmix64 step: decorrelates the per-(purpose, SN) secret seeds derived
// from the deployment's one root seed (RNG audit, DESIGN.md §14).
std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

void deploy_standard_services(deployment& d, const standard_services_config& config) {
  using namespace interedge::services;
  if (config.delivery) {
    d.deploy_service_simple([] { return std::make_unique<delivery_service>(); });
  }
  if (config.pubsub) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<pubsub_service>(core, sn);
    });
  }
  if (config.multicast) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<multicast_service>(core, sn);
    });
  }
  if (config.anycast) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<anycast_service>(core, sn);
    });
  }
  if (config.qos) {
    d.deploy_service_simple([] { return std::make_unique<qos_service>(); });
  }
  if (config.odns) {
    d.deploy_service_simple([] { return std::make_unique<odns_service>(); });
  }
  if (config.mixnet) {
    d.deploy_service_simple([] { return std::make_unique<mixnet_service>(); });
  }
  if (config.ddos) {
    // Token secrets hang off the deployment's root seed: same-seed runs
    // mint identical capability tokens (scenario replay needs this).
    const std::uint64_t root = d.seed();
    d.deploy_service([root](edomain::domain_core&, peer_id sn) {
      return std::make_unique<ddos_service>(1000.0, 100.0,
                                            mix_seed(root ^ (0xdd05ull << 48) ^ sn) | 1);
    });
  }
  if (config.vpn) {
    const std::uint64_t root = d.seed();
    d.deploy_service([root](edomain::domain_core&, peer_id sn) {
      return std::make_unique<vpn_service>(mix_seed(root ^ (0x1234ull << 48) ^ sn) | 1);
    });
  }
  if (config.message_queue) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<queue_service>(core, sn);
    });
  }
  if (config.ordered_delivery) {
    d.deploy_service_simple([] { return std::make_unique<ordered_delivery_service>(); });
  }
  if (config.streaming) {
    d.deploy_service_simple([] { return std::make_unique<streaming_service>(); });
  }
  if (config.cluster) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<cluster_interconnect_service>(core, sn);
    });
  }
  if (config.mobility) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<mobility_service>(core, sn);
    });
  }
  if (config.bulk_delivery) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<bulk_delivery_service>(core, sn);
    });
  }
}

}  // namespace interedge::deploy
