#include "deploy/standard_services.h"

#include "services/anycast.h"
#include "services/bulk_delivery.h"
#include "services/cluster_interconnect.h"
#include "services/ddos.h"
#include "services/delivery.h"
#include "services/message_queue.h"
#include "services/mixnet.h"
#include "services/mobility.h"
#include "services/multicast.h"
#include "services/odns.h"
#include "services/ordered_delivery.h"
#include "services/pubsub.h"
#include "services/qos.h"
#include "services/streaming.h"
#include "services/vpn.h"

namespace interedge::deploy {

void deploy_standard_services(deployment& d, const standard_services_config& config) {
  using namespace interedge::services;
  if (config.delivery) {
    d.deploy_service_simple([] { return std::make_unique<delivery_service>(); });
  }
  if (config.pubsub) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<pubsub_service>(core, sn);
    });
  }
  if (config.multicast) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<multicast_service>(core, sn);
    });
  }
  if (config.anycast) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<anycast_service>(core, sn);
    });
  }
  if (config.qos) {
    d.deploy_service_simple([] { return std::make_unique<qos_service>(); });
  }
  if (config.odns) {
    d.deploy_service_simple([] { return std::make_unique<odns_service>(); });
  }
  if (config.mixnet) {
    d.deploy_service_simple([] { return std::make_unique<mixnet_service>(); });
  }
  if (config.ddos) {
    d.deploy_service_simple([] { return std::make_unique<ddos_service>(); });
  }
  if (config.vpn) {
    d.deploy_service_simple([] { return std::make_unique<vpn_service>(); });
  }
  if (config.message_queue) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<queue_service>(core, sn);
    });
  }
  if (config.ordered_delivery) {
    d.deploy_service_simple([] { return std::make_unique<ordered_delivery_service>(); });
  }
  if (config.streaming) {
    d.deploy_service_simple([] { return std::make_unique<streaming_service>(); });
  }
  if (config.cluster) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<cluster_interconnect_service>(core, sn);
    });
  }
  if (config.mobility) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<mobility_service>(core, sn);
    });
  }
  if (config.bulk_delivery) {
    d.deploy_service([](edomain::domain_core& core, peer_id sn) {
      return std::make_unique<bulk_delivery_service>(core, sn);
    });
  }
}

}  // namespace interedge::deploy
