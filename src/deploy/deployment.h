// Deployment builder: assembles a complete InterEdge over the simulator —
// edomains with their cores, SNs with routers, hosts with first-hop
// associations, the global lookup service, full-mesh inter-edomain peering
// (§3.2), and the settlement ledger.
//
// This is the top-level entry point a library user starts from; the
// examples, the integration tests, and the service benchmarks all build
// their topologies through it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "core/service_node.h"
#include "edomain/domain_core.h"
#include "edomain/peering.h"
#include "edomain/routing.h"
#include "enclave/attestation.h"
#include "host/host_stack.h"
#include "lookup/lookup_service.h"
#include "simnet/simulation.h"

namespace interedge::deploy {

using edomain::edomain_id;
using ilp::edge_addr;
using ilp::peer_id;

struct deployment_config {
  std::uint64_t seed = 1;
  // §3.2 optimization: SNs open on-demand direct pipes to remote-edomain
  // SNs instead of relaying through gateways.
  bool direct_interdomain = false;
  std::size_t cache_capacity = 4096;
  bool hosts_allow_direct = true;

  // ---- cross-hop path tracing (ISSUE 5) ----
  // Origin sampling at the hosts: 1 in 2^shift sends. 0 traces every send
  // (deterministic tests); host_path_span_capacity 0 disables origination.
  std::uint32_t trace_sample_shift = 8;
  std::size_t host_path_span_capacity = 0;
  std::size_t sn_path_span_capacity = 1024;
  // Pipe keepalives for the SNs (0 = liveness off, the default): needed by
  // topologies that want peer-down / failover events in their traces.
  nanoseconds sn_keepalive_interval{0};
  // Black-box flight recorder ring per SN; 0 disables it.
  std::size_t sn_blackbox_capacity = 1024;

  // ---- slow-path degradation (DESIGN.md §10), forwarded to sn_config ----
  // Deadline stamped on slow-path requests (0 = none) and the in-flight
  // high-water mark past which the terminus sheds with a TTL'd default
  // drop verdict (0 = legacy blocking). Scenario suites arm these to model
  // overload; steady-state deployments leave them off.
  nanoseconds sn_slowpath_deadline{0};
  std::size_t sn_slowpath_high_water = 0;
  nanoseconds sn_shed_ttl = std::chrono::milliseconds(50);

  // ---- multi-core datapath + placement (ISSUE 8) ----
  // Worker shards per SN (0 = inline single-threaded, the default — the
  // simulator topologies stay deterministic unless a deployment opts in).
  std::size_t sn_workers = 0;
  // Placement knobs forwarded to sn_config verbatim: explicit worker CPU
  // list, control-thread CPU, NUMA-aware derivation (see service_node.h).
  std::vector<int> sn_worker_cpus{};
  int sn_control_cpu = -1;
  bool sn_numa_aware = false;
  // Bound for each shard's worker-private egress spill deque.
  std::size_t sn_egress_spill_max = 4096;

  // ---- continuous profiling plane (ISSUE 10), forwarded to sn_config ----
  // On-CPU sampling Hz per SN thread; 0 (the default) leaves the profiler
  // off, so simulator topologies and scenario suites pay nothing unless a
  // deployment opts in. Sampling never touches simulated behavior (the
  // SIGPROF handler only reads stacks; SA_RESTART hides it from syscalls)
  // — the scenario determinism guard asserts exactly that.
  std::uint32_t sn_profiler_hz = 0;
  // Deterministic backend choice for tests (prof.h: skip the perf probe).
  bool sn_profiler_force_timer = false;
};

struct host_identity {
  edge_addr addr = 0;
  crypto::x25519_keypair keys;
  peer_id first_hop_sn = 0;
  edomain_id domain = 0;
};

class deployment {
 public:
  explicit deployment(deployment_config config = {});
  ~deployment();

  deployment(const deployment&) = delete;
  deployment& operator=(const deployment&) = delete;

  sim::simulation& net() { return net_; }
  lookup::lookup_service& directory() { return directory_; }
  edomain::settlement_ledger& ledger() { return ledger_; }
  // The root seed every derived randomness stream (simnet, id_rng, service
  // secrets, workload generators) hangs off — see DESIGN.md §14.
  std::uint64_t seed() const { return config_.seed; }

  // ---- topology construction ----
  edomain_id add_edomain();
  peer_id add_sn(edomain_id domain);
  // Attaches a host to an SN (0 = the edomain's first SN); registers its
  // record (address, owner key, first-hop SNs) with the lookup service.
  // Fallback SNs become part of the association ("every host is associated
  // with one or more first-hop SNs", §3.1) and appear in the host record.
  host::host_stack& add_host(edomain_id domain, peer_id sn = 0,
                             std::vector<peer_id> fallback_sns = {});

  // Establishes the full mesh: "every edomain peers directly with all
  // other edomains via an ILP connection", designating gateway SN pairs
  // and populating the gateway maps. Also installs the settlement tap.
  void interconnect();

  // Deploys a service module on every SN (the uniform service model:
  // standardized modules are "deployed on all SNs"). The factory receives
  // the SN's edomain core and id so control-plane services can reach their
  // core.
  using module_factory =
      std::function<std::unique_ptr<core::service_module>(edomain::domain_core&, peer_id sn)>;
  void deploy_service(const module_factory& factory);
  void deploy_service_simple(
      const std::function<std::unique_ptr<core::service_module>()>& factory);

  // ---- attestation (§3.1: "We assume that SNs have TPMs") ----
  // Provisions every SN with a TPM keyed by `authority`, extends each with
  // the given golden module measurement, and registers the expectation.
  void provision_attestation(enclave::attestation_authority& authority,
                             const enclave::measurement& golden,
                             const std::string& label);
  // Challenges one SN; true if its quote verifies against the golden value.
  bool attest_sn(enclave::attestation_authority& authority, peer_id sn,
                 const std::string& label, const_byte_span nonce) const;
  enclave::tpm* tpm_of(peer_id sn);

  // ---- accessors ----
  core::service_node& sn(peer_id id) { return *sns_.at(id); }
  edomain::domain_core& core_of(edomain_id domain) { return *cores_.at(domain); }
  host::host_stack& host_at(edge_addr addr) { return *hosts_.at(addr); }
  const host_identity& identity_of(edge_addr addr) const { return identities_.at(addr); }
  edomain_id domain_of_sn(peer_id sn) const { return sn_domain_.at(sn); }
  std::vector<peer_id> sns_in(edomain_id domain) const;

  // Runs the simulation until idle.
  void run() { net_.run(); }

 private:
  deployment_config config_;
  sim::simulation net_;
  lookup::lookup_service directory_;
  edomain::settlement_ledger ledger_;
  rng id_rng_;

  std::map<edomain_id, std::unique_ptr<edomain::domain_core>> cores_;
  std::map<peer_id, std::unique_ptr<edomain::sn_router>> routers_;
  std::map<peer_id, std::unique_ptr<core::service_node>> sns_;
  std::map<peer_id, edomain_id> sn_domain_;
  std::map<edge_addr, std::unique_ptr<host::host_stack>> hosts_;
  std::map<edge_addr, host_identity> identities_;
  std::map<peer_id, std::unique_ptr<enclave::tpm>> tpms_;
  edomain_id next_domain_ = 1;
  bool interconnected_ = false;
};

}  // namespace interedge::deploy
