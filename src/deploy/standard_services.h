// Deploys the standardized InterEdge service suite on every SN of a
// deployment — the paper's uniform service model: services "are chosen by
// some governance body (such as the IETF) and deployed on all SNs,
// ensuring that the InterEdge's service model is uniformly available."
#pragma once

#include "deploy/deployment.h"

namespace interedge::deploy {

struct standard_services_config {
  bool delivery = true;
  bool pubsub = true;
  bool multicast = true;
  bool anycast = true;
  bool qos = true;
  bool odns = false;      // needs a resolver configured; enable explicitly
  bool mixnet = false;    // mixes are usually a subset of SNs
  bool ddos = true;
  bool vpn = true;
  bool message_queue = true;
  bool ordered_delivery = true;
  bool bulk_delivery = true;
  bool streaming = true;
  bool mobility = true;
  bool cluster = true;
};

void deploy_standard_services(deployment& d, const standard_services_config& config = {});

}  // namespace interedge::deploy
