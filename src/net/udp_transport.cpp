#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace interedge::net {
namespace {

std::uint64_t pack_source(const sockaddr_in& addr) {
  return (static_cast<std::uint64_t>(addr.sin_addr.s_addr) << 16) | addr.sin_port;
}

}  // namespace

void udp_endpoint::open_socket(std::uint16_t port, bool reuse_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("udp socket failed");

  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd_);
      throw std::runtime_error(std::string("udp SO_REUSEPORT failed: ") + std::strerror(errno));
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw std::runtime_error(std::string("udp bind failed: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const int fl = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
}

udp_endpoint::udp_endpoint(std::uint16_t port, bool reuse_port) {
  cfg_.port = port;
  cfg_.reuse_port = reuse_port;
  cfg_.backend = udp_backend::mmsg;
  backend_ = udp_backend::mmsg;
  open_socket(port, reuse_port);
}

udp_endpoint::udp_endpoint(const udp_config& cfg) : cfg_(cfg) {
  open_socket(cfg.port, cfg.reuse_port);
  backend_ = cfg.backend;
  if (backend_ == udp_backend::auto_detect) {
    backend_ = io_uring_runtime_available() ? udp_backend::uring : udp_backend::mmsg;
  }
#if INTEREDGE_HAS_IO_URING
  if (backend_ == udp_backend::uring) {
    if (!io_uring_runtime_available()) {
      backend_ = udp_backend::mmsg;  // explicit request, kernel says no
    } else {
      ensure_pool();
      uring_rx::config rcfg;
      rcfg.slots = cfg.uring_slots;
      rcfg.sqpoll = cfg.sqpoll;
      rcfg.sq_aff_cpu = cfg.sq_aff_cpu;
      try {
        uring_ = std::make_unique<uring_rx>(fd_, *pool_, rcfg);
      } catch (const std::runtime_error&) {
        // Probe said yes but setup failed (resource limits, policy): the
        // whole point of runtime selection is that this degrades, not dies.
        backend_ = udp_backend::mmsg;
      }
    }
  }
  if (backend_ == udp_backend::uring && cfg.uring_tx) {
    uring_tx::config tcfg;
    tcfg.slots = cfg.uring_tx_slots;
    tcfg.zerocopy = cfg.uring_zerocopy;
    tcfg.zc_threshold = cfg.uring_zc_threshold;
    // The tx ring stays non-SQPOLL: flush_tx() is the batching boundary,
    // and a second kernel poll thread per endpoint would cost more than
    // the enter it saves.
    tcfg.sq_aff_cpu = cfg.sq_aff_cpu;
    try {
      uring_tx_ = std::make_unique<uring_tx>(fd_, tcfg);
    } catch (const std::runtime_error&) {
      // Keep the synchronous send path; rx stays on the ring.
    }
  }
#else
  if (backend_ == udp_backend::uring) backend_ = udp_backend::mmsg;
#endif
}

udp_endpoint::~udp_endpoint() {
#if INTEREDGE_HAS_IO_URING
  uring_tx_.reset();  // drains in-flight sends, releasing their slab pins
  uring_.reset();     // cancel in-flight SQEs before the pool dies
#endif
  rx_slabs_.clear();
  view_scratch_.clear();
  cache_.reset();
  if (fd_ >= 0) ::close(fd_);
}

int udp_endpoint::wait_fd() const {
#if INTEREDGE_HAS_IO_URING
  if (uring_) return uring_->ring_fd();
#endif
  return fd_;
}

void udp_endpoint::ensure_pool() {
  if (pool_) return;
  pool_ = std::make_unique<buf::buf_pool>(cfg_.pool);
  cache_.emplace(*pool_);
}

void udp_endpoint::add_peer(peer_id peer, const std::string& ip, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr);
  addr.sin_port = htons(port);
  peers_.insert(peer, addr);
  by_source_.insert(pack_source(addr), peer);
}

bool udp_endpoint::send_to_addr(const sockaddr_in* addr, const_byte_span datagram) {
  for (std::size_t attempt = 0;; ++attempt) {
    const ssize_t n = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                               reinterpret_cast<const sockaddr*>(addr), sizeof(*addr));
    if (n >= 0) {
      ++sent_;
      return true;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return false;
    ++send_again_;
    if (m_send_again_ != nullptr) m_send_again_->add();
    if (attempt >= kSendRetries) return false;  // UDP is lossy anyway
  }
}

bool udp_endpoint::send(peer_id to, const_byte_span datagram) {
  const sockaddr_in* addr = peers_.find(to);
  if (addr == nullptr) return false;
  return send_to_addr(addr, datagram);
}

bool udp_endpoint::send_gather(peer_id to, const_byte_span head, const_byte_span payload) {
  const sockaddr_in* addr = peers_.find(to);
  if (addr == nullptr) return false;
#if INTEREDGE_HAS_IO_URING
  if (uring_tx_) {
    // Pin the payload's slab when it aliases the rx pool (the forward path:
    // the packet goes back out of the slab it arrived in, released when the
    // completion retires). Payloads from elsewhere (decrypt arena, owned
    // bytes) are copied into the slot instead.
    buf::slab_ref pin;
    if (pool_ && !payload.empty()) pin = pool_->ref_for_ptr(payload.data());
    if (uring_tx_->stage(*addr, head, payload, std::move(pin))) {
      ++sent_;
      if (uring_tx_->staged() >= kBatchMax) flush_tx();
      return true;
    }
    // Ring saturated or message oversized: synchronous fallback below.
  }
#endif
  iovec iovs[2] = {
      {const_cast<std::uint8_t*>(head.data()), head.size()},
      {const_cast<std::uint8_t*>(payload.data()), payload.size()},
  };
  msghdr msg{};
  msg.msg_name = const_cast<sockaddr_in*>(addr);
  msg.msg_namelen = sizeof(*addr);
  msg.msg_iov = iovs;
  msg.msg_iovlen = payload.empty() ? 1 : 2;
  for (std::size_t attempt = 0;; ++attempt) {
    const ssize_t n = ::sendmsg(fd_, &msg, 0);
    if (n >= 0) {
      ++sent_;
      return true;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return false;
    ++send_again_;
    if (m_send_again_ != nullptr) m_send_again_->add();
    if (attempt >= kSendRetries) return false;
  }
}

std::optional<std::pair<peer_id, bytes>> udp_endpoint::poll() {
#if INTEREDGE_HAS_IO_URING
  if (uring_) {
    // The kernel drains the socket into the ring; serve from completions.
    // poll() historically doesn't touch the rx batch counters, so reap
    // directly rather than through recv_batch_views.
    reap_scratch_.clear();
    while (uring_->reap(1, reap_scratch_) > 0) {
      uring_completion& c = reap_scratch_.back();
      if (c.truncated) ++rx_truncated_;
      const peer_id* peer = by_source_.find(pack_source(c.source));
      if (peer == nullptr) {
        ++dropped_unknown_;
        reap_scratch_.clear();
        continue;
      }
      ++received_;
      const const_byte_span data = c.view.span();
      return std::make_pair(*peer, bytes(data.begin(), data.end()));
    }
    return std::nullopt;
  }
#endif
  std::uint8_t buffer[65536];
  sockaddr_in source{};
  socklen_t len = sizeof(source);
  const ssize_t n = ::recvfrom(fd_, buffer, sizeof(buffer), 0,
                               reinterpret_cast<sockaddr*>(&source), &len);
  if (n < 0) return std::nullopt;  // EAGAIN / transient
  const peer_id* peer = by_source_.find(pack_source(source));
  if (peer == nullptr) {
    ++dropped_unknown_;
    return std::nullopt;
  }
  ++received_;
  return std::make_pair(*peer, bytes(buffer, buffer + n));
}

std::size_t udp_endpoint::recv_batch_views_mmsg(
    std::size_t max, std::vector<std::pair<peer_id, buf::pkt_view>>& out) {
  std::size_t appended = 0;
#ifdef __linux__
  ensure_pool();
  // Keep up to `max` slabs armed; unused ones stay for the next call.
  while (rx_slabs_.size() < max) {
    auto ref = cache_->try_alloc();
    if (!ref) break;  // pool dry: recv what we can (exhaustion is counted)
    rx_slabs_.push_back(std::move(ref));
  }
  if (rx_slabs_.empty()) {
    ++rx_empty_;
    return 0;
  }
  const std::size_t want = std::min(max, rx_slabs_.size());
  mmsghdr msgs[kBatchMax]{};
  iovec iovs[kBatchMax];
  sockaddr_in sources[kBatchMax];
  for (std::size_t i = 0; i < want; ++i) {
    iovs[i] = {rx_slabs_[i].data(), rx_slabs_[i].size()};
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &sources[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(sources[i]);
  }
  const int n = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want), 0, nullptr);
  if (n <= 0) {
    // recvmmsg's error report is coarse: one EAGAIN return covers both
    // "socket empty" and genuine failures, and the kernel surfaces an
    // error only for the FIRST datagram — so the conditions must be
    // counted here or they vanish.
    if (n == 0 || errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      ++rx_empty_;
    } else {
      ++rx_errors_;
    }
    return 0;
  }
  // A short batch means the socket ran dry mid-drain (the EAGAIN happened
  // inside the batch, which recvmmsg reports only as a smaller count).
  if (static_cast<std::size_t>(n) < want) ++rx_partial_batches_;
  // Consume the first n slabs (the kernel filled them in order); survivors
  // shift down and stay armed.
  for (int i = 0; i < n; ++i) {
    if ((msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0) ++rx_truncated_;
    const peer_id* peer = by_source_.find(pack_source(sources[i]));
    if (peer == nullptr) {
      ++dropped_unknown_;
      rx_slabs_[i].reset();  // slab back to the pool
      continue;
    }
    const std::size_t len =
        std::min<std::size_t>(msgs[i].msg_len, rx_slabs_[i].size());
    ++received_;
    out.emplace_back(*peer, buf::pkt_view(std::move(rx_slabs_[i]), 0, len));
    ++appended;
  }
  rx_slabs_.erase(rx_slabs_.begin(), rx_slabs_.begin() + n);
#else
  for (std::size_t i = 0; i < max; ++i) {
    auto datagram = poll();
    if (!datagram) break;
    ensure_pool();
    auto ref = cache_->try_alloc();
    if (!ref) break;
    const std::size_t len = std::min(datagram->second.size(), ref.size());
    std::memcpy(ref.data(), datagram->second.data(), len);
    out.emplace_back(datagram->first, buf::pkt_view(std::move(ref), 0, len));
    ++appended;
  }
  if (appended == 0) {
    ++rx_empty_;
  } else if (appended < max) {
    ++rx_partial_batches_;
  }
#endif
  return appended;
}

#if INTEREDGE_HAS_IO_URING
std::size_t udp_endpoint::recv_batch_views_uring(
    std::size_t max, std::vector<std::pair<peer_id, buf::pkt_view>>& out) {
  reap_scratch_.clear();
  const std::size_t n = uring_->reap(max, reap_scratch_);
  if (n == 0) {
    uring_->replenish();  // re-arm any slots parked on pool exhaustion
    ++rx_empty_;
    return 0;
  }
  if (n < max) ++rx_partial_batches_;
  std::size_t appended = 0;
  for (uring_completion& c : reap_scratch_) {
    if (c.truncated) ++rx_truncated_;
    const peer_id* peer = by_source_.find(pack_source(c.source));
    if (peer == nullptr) {
      ++dropped_unknown_;
      continue;
    }
    ++received_;
    out.emplace_back(*peer, std::move(c.view));
    ++appended;
  }
  reap_scratch_.clear();
  uring_->replenish();
  return appended;
}
#endif

void udp_endpoint::sync_telemetry() {
  if (m_rx_truncated_ == nullptr) return;  // telemetry not enabled
  if (rx_truncated_ != last_rx_truncated_) {
    m_rx_truncated_->add(rx_truncated_ - last_rx_truncated_);
    last_rx_truncated_ = rx_truncated_;
  }
  if (rx_errors_ != last_rx_errors_) {
    m_rx_errors_->add(rx_errors_ - last_rx_errors_);
    last_rx_errors_ = rx_errors_;
  }
  if (dropped_unknown_ != last_dropped_unknown_) {
    m_dropped_unknown_->add(dropped_unknown_ - last_dropped_unknown_);
    last_dropped_unknown_ = dropped_unknown_;
  }
#if INTEREDGE_HAS_IO_URING
  if (uring_ && m_uring_completions_ != nullptr) {
    if (const auto v = uring_->completions(); v != last_uring_completions_) {
      m_uring_completions_->add(v - last_uring_completions_);
      last_uring_completions_ = v;
    }
    if (const auto v = uring_->truncated(); v != last_uring_truncated_) {
      m_uring_truncated_->add(v - last_uring_truncated_);
      last_uring_truncated_ = v;
    }
    if (const auto v = uring_->parked(); v != last_uring_parked_) {
      m_uring_parked_->add(v - last_uring_parked_);
      last_uring_parked_ = v;
    }
    if (const auto v = uring_->rearm_failed(); v != last_uring_rearm_failed_) {
      m_uring_rearm_failed_->add(v - last_uring_rearm_failed_);
      last_uring_rearm_failed_ = v;
    }
  }
  if (uring_tx_ && m_tx_completions_ != nullptr) {
    if (const auto v = uring_tx_->completions(); v != last_tx_completions_) {
      m_tx_completions_->add(v - last_tx_completions_);
      last_tx_completions_ = v;
    }
    if (const auto v = uring_tx_->short_sends(); v != last_tx_short_sends_) {
      m_tx_short_sends_->add(v - last_tx_short_sends_);
      last_tx_short_sends_ = v;
    }
    if (const auto v = uring_tx_->zc_used(); v != last_tx_zc_used_) {
      m_tx_zc_used_->add(v - last_tx_zc_used_);
      last_tx_zc_used_ = v;
    }
    if (const auto v = uring_tx_->zc_fallback(); v != last_tx_zc_fallback_) {
      m_tx_zc_fallback_->add(v - last_tx_zc_fallback_);
      last_tx_zc_fallback_ = v;
    }
    if (const auto v = uring_tx_->submit_batches(); v != last_tx_submit_batches_) {
      m_tx_submit_batches_->add(v - last_tx_submit_batches_);
      last_tx_submit_batches_ = v;
    }
    // High-water mark, not a rate: mirror as a gauge set.
    m_tx_inflight_peak_->set(static_cast<std::int64_t>(uring_tx_->inflight_peak()));
  }
#endif
}

std::size_t udp_endpoint::recv_batch_views(
    std::size_t max, std::vector<std::pair<peer_id, buf::pkt_view>>& out) {
  max = std::min(max, kBatchMax);
  if (max == 0) return 0;
#if INTEREDGE_HAS_IO_URING
  if (uring_) {
    const std::size_t n = recv_batch_views_uring(max, out);
    sync_telemetry();
    return n;
  }
#endif
  const std::size_t n = recv_batch_views_mmsg(max, out);
  sync_telemetry();
  return n;
}

std::size_t udp_endpoint::recv_batch(std::size_t max,
                                     std::vector<std::pair<peer_id, bytes>>& out) {
  view_scratch_.clear();
  const std::size_t n = recv_batch_views(max, view_scratch_);
  for (auto& [peer, view] : view_scratch_) {
    const const_byte_span data = view.span();
    out.emplace_back(peer, bytes(data.begin(), data.end()));
  }
  view_scratch_.clear();  // release slabs promptly
  return n;
}

std::size_t udp_endpoint::flush_tx() {
#if INTEREDGE_HAS_IO_URING
  if (uring_tx_) {
    const std::size_t n = uring_tx_->flush();
    uring_tx_->reap();
    sync_telemetry();
    return n;
  }
#endif
  return 0;
}

bool udp_endpoint::tx_drain(std::chrono::milliseconds timeout) {
#if INTEREDGE_HAS_IO_URING
  if (uring_tx_) {
    const bool done = uring_tx_->drain(timeout);
    sync_telemetry();
    return done;
  }
#endif
  (void)timeout;
  return true;
}

std::size_t udp_endpoint::tx_inflight() const {
#if INTEREDGE_HAS_IO_URING
  if (uring_tx_) return uring_tx_->inflight();
#endif
  return 0;
}

std::size_t udp_endpoint::send_batch(peer_id to, std::span<const bytes> datagrams) {
  const sockaddr_in* addr = peers_.find(to);
  if (addr == nullptr) return 0;
  std::size_t accepted = 0;
#if INTEREDGE_HAS_IO_URING
  if (uring_tx_) {
    // Stage the whole batch onto the tx ring; one enter submits it all.
    // A full ring flushes (submit + reap) and retries once before falling
    // back to the synchronous path — the batch is never silently dropped.
    for (const bytes& d : datagrams) {
      if (!uring_tx_->stage(*addr, {}, d, {})) {
        flush_tx();
        if (!uring_tx_->stage(*addr, {}, d, {})) {
          if (!send_to_addr(addr, d)) break;
          ++accepted;
          continue;
        }
      }
      ++sent_;
      ++accepted;
      if (uring_tx_->staged() >= kBatchMax) flush_tx();
    }
    flush_tx();
    return accepted;
  }
#endif
#ifdef __linux__
  std::size_t offset = 0;
  std::size_t retries = 0;
  while (offset < datagrams.size()) {
    const std::size_t chunk = std::min(datagrams.size() - offset, kBatchMax);
    mmsghdr msgs[kBatchMax]{};
    iovec iovs[kBatchMax];
    for (std::size_t i = 0; i < chunk; ++i) {
      const bytes& d = datagrams[offset + i];
      iovs[i] = {const_cast<std::uint8_t*>(d.data()), d.size()};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(addr);
      msgs[i].msg_hdr.msg_namelen = sizeof(*addr);
    }
    const int n = ::sendmmsg(fd_, msgs, static_cast<unsigned>(chunk), 0);
    if (n <= 0) {
      // A full socket buffer (EAGAIN) usually clears within the batch;
      // retry a bounded number of times, then give up on the remainder
      // (UDP is lossy; upper layers own reliability).
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) break;
      ++send_again_;
      if (m_send_again_ != nullptr) m_send_again_->add();
      if (++retries > kSendRetries) break;
      continue;
    }
    accepted += static_cast<std::size_t>(n);
    sent_ += static_cast<std::size_t>(n);
    // Partial acceptance: the kernel stopped mid-batch (buffer filled).
    // Advance past what it took and retry the rest instead of silently
    // dropping the tail of the batch.
    if (static_cast<std::size_t>(n) < chunk) {
      ++send_again_;
      if (m_send_again_ != nullptr) m_send_again_->add();
      if (++retries > kSendRetries) break;
    }
    offset += static_cast<std::size_t>(n);
  }
#else
  for (const bytes& d : datagrams) {
    if (!send(to, d)) break;
    ++accepted;
  }
#endif
  return accepted;
}

// ---- event_loop --------------------------------------------------------

void event_loop::attach(udp_endpoint& endpoint, datagram_handler handler) {
  endpoints_.push_back(attached{&endpoint, std::move(handler), nullptr, nullptr});
}

void event_loop::attach_batch(udp_endpoint& endpoint, batch_handler handler) {
  endpoints_.push_back(attached{&endpoint, nullptr, std::move(handler), nullptr});
}

void event_loop::attach_views(udp_endpoint& endpoint, views_handler handler) {
  endpoints_.push_back(attached{&endpoint, nullptr, nullptr, std::move(handler)});
}

void event_loop::schedule(nanoseconds delay, std::function<void()> fn) {
  timers_.push(timer{std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(delay),
                     next_seq_++, std::move(fn)});
}

std::size_t event_loop::pass(std::chrono::milliseconds max_wait) {
  const auto now = std::chrono::steady_clock::now();

  // Fire due timers.
  while (!timers_.empty() && timers_.top().due <= now) {
    auto fn = timers_.top().fn;
    timers_.pop();
    fn();
  }

  // Timer callbacks may have staged sends; submit them before blocking in
  // select (otherwise a quiet socket strands them for a full max_wait).
  for (const attached& a : endpoints_) a.endpoint->flush_tx();

  // Wait for readability across all endpoints (bounded by the next timer).
  // wait_fd() is the backend-agnostic readiness handle: the socket fd for
  // mmsg, the ring fd (readable when completions are posted) for uring.
  fd_set readable;
  FD_ZERO(&readable);
  int max_fd = -1;
  for (const attached& a : endpoints_) {
    FD_SET(a.endpoint->wait_fd(), &readable);
    max_fd = std::max(max_fd, a.endpoint->wait_fd());
  }
  auto wait = max_wait;
  if (!timers_.empty()) {
    const auto until_timer = std::chrono::duration_cast<std::chrono::milliseconds>(
        timers_.top().due - now);
    wait = std::clamp(until_timer, std::chrono::milliseconds(0), max_wait);
  }
  timeval tv{static_cast<time_t>(wait.count() / 1000),
             static_cast<suseconds_t>((wait.count() % 1000) * 1000)};
  if (::select(max_fd + 1, &readable, nullptr, nullptr, &tv) <= 0) return 0;

  // Drain everything readable.
  std::size_t dispatched = 0;
  for (const attached& a : endpoints_) {
    if (a.views) {
      views_scratch_.clear();
      while (a.endpoint->recv_batch_views(udp_endpoint::kBatchMax, views_scratch_) > 0) {
      }
      if (!views_scratch_.empty()) {
        a.views(views_scratch_);
        dispatched += views_scratch_.size();
        views_scratch_.clear();  // release slabs before the next pass
      }
      continue;
    }
    if (a.batch) {
      batch_scratch_.clear();
      while (a.endpoint->recv_batch(udp_endpoint::kBatchMax, batch_scratch_) > 0) {
      }
      if (!batch_scratch_.empty()) {
        a.batch(batch_scratch_);
        dispatched += batch_scratch_.size();
      }
      continue;
    }
    while (auto datagram = a.endpoint->poll()) {
      a.handler(datagram->first, datagram->second);
      ++dispatched;
    }
  }
  // Handlers replying via send_gather leave sends staged; submit the batch
  // before handing control back.
  for (const attached& a : endpoints_) a.endpoint->flush_tx();
  return dispatched;
}

std::size_t event_loop::run_for(std::chrono::milliseconds deadline_from_now) {
  const auto deadline = std::chrono::steady_clock::now() + deadline_from_now;
  std::size_t total = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    total += pass(std::max(std::chrono::milliseconds(1), remaining));
  }
  return total;
}

std::size_t event_loop::run_until_quiet(std::chrono::milliseconds quiet,
                                        std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  auto last_activity = std::chrono::steady_clock::now();
  std::size_t total = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = pass(std::chrono::milliseconds(5));
    if (n > 0) {
      total += n;
      last_activity = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - last_activity > quiet && timers_.empty()) {
      break;
    }
  }
  return total;
}

}  // namespace interedge::net
