// io_uring receive backend for udp_endpoint.
//
// The recvmmsg path pays one syscall per batch; io_uring amortizes further:
// the kernel completes receives into pool slabs while userspace is busy
// elsewhere, and a drain is just reading the completion queue from shared
// memory (no syscall at all when completions are already posted). We talk
// to the kernel directly — setup/enter/register raw syscalls plus the
// <linux/io_uring.h> ABI header — because the toolchain image carries no
// liburing, and the subset we need (one socket, RECVMSG, optional SQPOLL)
// is small.
//
// Shape: a fixed set of rx slots, each owning one pool slab with its
// msghdr/iovec/sockaddr scratch, each kept armed with a RECVMSG SQE
// (user_data = slot index). A completion surrenders the slot's slab to the
// caller as a pkt_view and immediately re-arms the slot with a fresh slab.
// This is "multishot by re-arm": a true IORING_RECV_MULTISHOT +
// provided-buffer-ring setup would shave the per-completion SQE write, but
// multishot recv doesn't exist for RECVMSG-with-source-address on all
// kernels we target and provided buffers can't express our refcounted
// slabs, so we trade one shared-memory SQE write per packet for a scheme
// where the pool stays the single owner of buffer lifetime. For the same
// reason we skip IORING_REGISTER_BUFFERS: fixed buffers only apply to
// READ_FIXED/WRITE_FIXED-style ops, not RECVMSG, and RECV (which could)
// loses the source address on an unconnected socket.
//
// If the pool runs dry a slot parks unarmed (counted), and replenish()
// re-arms it once slabs return — backpressure degrades throughput, never
// correctness. Setup failure (ENOSYS, seccomp EPERM, EPERM under
// container policy) is reported by available()/the constructor so
// udp_endpoint can fall back to recvmmsg at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/buf_pool.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define INTEREDGE_HAS_IO_URING 1
#else
#define INTEREDGE_HAS_IO_URING 0
#endif

#if INTEREDGE_HAS_IO_URING
#include <linux/io_uring.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#endif

namespace interedge::net {

#if INTEREDGE_HAS_IO_URING

// One received datagram, surrendered by the ring. `view` windows exactly
// the datagram's bytes inside its slab.
struct uring_completion {
  sockaddr_in source;
  buf::pkt_view view;
  bool truncated = false;  // datagram exceeded the slab (MSG_TRUNC)
};

class uring_rx {
 public:
  struct config {
    unsigned slots = 64;     // rx slots kept armed (rounded up to pow2 ring)
    bool sqpoll = false;     // request a kernel SQ poll thread (best effort)
    unsigned sqpoll_idle_ms = 50;
  };

  // Builds the ring over `socket_fd` and arms every slot with a slab from
  // `pool`. Throws std::runtime_error if the kernel refuses (callers probe
  // available() first, but TOCTOU-safe either way).
  uring_rx(int socket_fd, buf::buf_pool& pool, config cfg);
  ~uring_rx();

  uring_rx(const uring_rx&) = delete;
  uring_rx& operator=(const uring_rx&) = delete;

  // Does this kernel/process give us a usable io_uring? Probes once with a
  // throwaway setup call and caches the answer.
  static bool available();
  // Test hook: force available() to report false (simulating an old kernel
  // or a seccomp policy) so the fallback path is exercised determinis-
  // tically. Affects subsequently constructed endpoints only.
  static void force_unavailable(bool on);

  // Drains up to `max` posted completions into `out` (no syscall if the CQ
  // already holds them), re-arming each slot behind them. Returns the
  // number appended.
  std::size_t reap(std::size_t max, std::vector<uring_completion>& out);

  // Tries to re-arm slots parked by pool exhaustion. Called by reap();
  // exposed so owners can pump after releasing views.
  void replenish();

  // The ring fd polls readable when the CQ is non-empty — this, not the
  // socket fd, is what a readiness loop must watch (the kernel consumes
  // the socket asynchronously).
  int ring_fd() const { return ring_fd_; }

  bool sqpoll_active() const { return sqpoll_active_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t truncated() const { return truncated_; }
  // Completions that could not immediately re-arm (pool dry at that
  // moment). Steady growth means the pool is undersized for the rx rate.
  std::uint64_t parked() const { return parked_; }
  // Slots whose re-arm SQE push failed (SQ full — should be impossible
  // with slots <= entries; non-zero is a backend bug worth alerting on).
  std::uint64_t rearm_failed() const { return rearm_failed_; }

 private:
  struct rx_slot {
    buf::pkt_view view;  // slab the kernel writes into (full-slab window)
    ::iovec iov{};
    ::msghdr hdr{};
    sockaddr_in source{};
    bool armed = false;
  };

  void arm(unsigned idx);
  bool push_sqe(unsigned idx);
  void submit_pending();

  int ring_fd_ = -1;
  int socket_fd_ = -1;
  buf::buf_pool* pool_;
  buf::buf_pool::cache cache_;
  std::vector<rx_slot> slots_;
  bool sqpoll_active_ = false;
  unsigned to_submit_ = 0;

  // Mapped ring state (SQ and CQ share one mapping on modern kernels).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_size_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_size_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::uint64_t completions_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t parked_ = 0;
  std::uint64_t rearm_failed_ = 0;
};

#endif  // INTEREDGE_HAS_IO_URING

// Compiled-or-probed availability, honoring the test force-unavailable
// hook. False on non-Linux builds and kernels without io_uring.
bool io_uring_runtime_available();
void io_uring_force_unavailable(bool on);

}  // namespace interedge::net
