// io_uring backends (rx and tx) for udp_endpoint.
//
// The recvmmsg path pays one syscall per batch; io_uring amortizes further:
// the kernel completes receives into pool slabs while userspace is busy
// elsewhere, and a drain is just reading the completion queue from shared
// memory (no syscall at all when completions are already posted). We talk
// to the kernel directly — setup/enter/register raw syscalls plus the
// <linux/io_uring.h> ABI header — because the toolchain image carries no
// liburing, and the subset we need (one socket, RECVMSG/SENDMSG, optional
// SQPOLL) is small.
//
// Shape: a fixed set of rx slots, each owning one pool slab with its
// msghdr/iovec/sockaddr scratch, each kept armed with a RECVMSG SQE
// (user_data = slot index). A completion surrenders the slot's slab to the
// caller as a pkt_view and immediately re-arms the slot with a fresh slab.
// This is "multishot by re-arm": a true IORING_RECV_MULTISHOT +
// provided-buffer-ring setup would shave the per-completion SQE write, but
// multishot recv doesn't exist for RECVMSG-with-source-address on all
// kernels we target and provided buffers can't express our refcounted
// slabs, so we trade one shared-memory SQE write per packet for a scheme
// where the pool stays the single owner of buffer lifetime. For the same
// reason we skip IORING_REGISTER_BUFFERS: fixed buffers only apply to
// READ_FIXED/WRITE_FIXED-style ops, not RECVMSG, and RECV (which could)
// loses the source address on an unconnected socket.
//
// If the pool runs dry a slot parks unarmed (counted), and replenish()
// re-arms it once slabs return — backpressure degrades throughput, never
// correctness. Setup failure (ENOSYS, seccomp EPERM, EPERM under
// container policy) is reported by available()/the constructor so
// udp_endpoint can fall back to recvmmsg at runtime.
//
// The tx half (uring_tx, ISSUE 8) mirrors the shape for egress: a fixed
// set of send slots, each staging one gather SQE (sealed head copied into
// slot storage + payload either pinned as a slab reference or copied into
// a bounded slot buffer). Staged SQEs ride one io_uring_enter per flush —
// the shard egress drain batches its whole burst into a single syscall —
// and the payload's slab reference is held until the completion retires,
// so egress buffer lifetime is completion-driven instead of
// copy-then-release. When the kernel has IORING_OP_SENDMSG_ZC (probed at
// runtime via IORING_REGISTER_PROBE; the opcode is newer than our uapi
// header, so the constant is pinned locally) the payload pages are handed
// to the NIC without the skb copy and the slab is released only on the
// zerocopy notification CQE; otherwise plain SENDMSG is used and the
// contract is identical one CQE earlier. Slot exhaustion and oversized
// messages report false from stage() — callers fall back to the
// synchronous sendmsg path, so backpressure degrades batching, never
// delivery.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"

#include "common/buf_pool.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define INTEREDGE_HAS_IO_URING 1
#else
#define INTEREDGE_HAS_IO_URING 0
#endif

#if INTEREDGE_HAS_IO_URING
#include <linux/io_uring.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#endif

namespace interedge::net {

#if INTEREDGE_HAS_IO_URING

// One received datagram, surrendered by the ring. `view` windows exactly
// the datagram's bytes inside its slab.
struct uring_completion {
  sockaddr_in source;
  buf::pkt_view view;
  bool truncated = false;  // datagram exceeded the slab (MSG_TRUNC)
};

class uring_rx {
 public:
  struct config {
    unsigned slots = 64;     // rx slots kept armed (rounded up to pow2 ring)
    bool sqpoll = false;     // request a kernel SQ poll thread (best effort)
    unsigned sqpoll_idle_ms = 50;
    // With sqpoll: pin the kernel SQ thread to this cpu (IORING_SETUP_SQ_AFF)
    // so the ring's polling work lands next to the control thread instead of
    // wandering. -1 = let the scheduler place it.
    int sq_aff_cpu = -1;
  };

  // Builds the ring over `socket_fd` and arms every slot with a slab from
  // `pool`. Throws std::runtime_error if the kernel refuses (callers probe
  // available() first, but TOCTOU-safe either way).
  uring_rx(int socket_fd, buf::buf_pool& pool, config cfg);
  ~uring_rx();

  uring_rx(const uring_rx&) = delete;
  uring_rx& operator=(const uring_rx&) = delete;

  // Does this kernel/process give us a usable io_uring? Probes once with a
  // throwaway setup call and caches the answer.
  static bool available();
  // Test hook: force available() to report false (simulating an old kernel
  // or a seccomp policy) so the fallback path is exercised determinis-
  // tically. Affects subsequently constructed endpoints only.
  static void force_unavailable(bool on);

  // Drains up to `max` posted completions into `out` (no syscall if the CQ
  // already holds them), re-arming each slot behind them. Returns the
  // number appended.
  std::size_t reap(std::size_t max, std::vector<uring_completion>& out);

  // Tries to re-arm slots parked by pool exhaustion. Called by reap();
  // exposed so owners can pump after releasing views.
  void replenish();

  // The ring fd polls readable when the CQ is non-empty — this, not the
  // socket fd, is what a readiness loop must watch (the kernel consumes
  // the socket asynchronously).
  int ring_fd() const { return ring_fd_; }

  bool sqpoll_active() const { return sqpoll_active_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t truncated() const { return truncated_; }
  // Completions that could not immediately re-arm (pool dry at that
  // moment). Steady growth means the pool is undersized for the rx rate.
  std::uint64_t parked() const { return parked_; }
  // Slots whose re-arm SQE push failed (SQ full — should be impossible
  // with slots <= entries; non-zero is a backend bug worth alerting on).
  std::uint64_t rearm_failed() const { return rearm_failed_; }

 private:
  struct rx_slot {
    buf::pkt_view view;  // slab the kernel writes into (full-slab window)
    ::iovec iov{};
    ::msghdr hdr{};
    sockaddr_in source{};
    bool armed = false;
  };

  void arm(unsigned idx);
  bool push_sqe(unsigned idx);
  void submit_pending();

  int ring_fd_ = -1;
  int socket_fd_ = -1;
  buf::buf_pool* pool_;
  buf::buf_pool::cache cache_;
  std::vector<rx_slot> slots_;
  bool sqpoll_active_ = false;
  unsigned to_submit_ = 0;

  // Mapped ring state (SQ and CQ share one mapping on modern kernels).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_size_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_size_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::uint64_t completions_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t parked_ = 0;
  std::uint64_t rearm_failed_ = 0;
};

// Batched zero-copy egress ring (ISSUE 8). One instance per endpoint,
// single-threaded like the endpoint itself: the control thread stages,
// flushes and reaps. See the file header for the slot/lifetime contract.
class uring_tx {
 public:
  struct config {
    unsigned slots = 64;   // in-flight send slots (ring entries to match)
    bool zerocopy = true;  // use IORING_OP_SENDMSG_ZC when the kernel has it
    // Smallest message (head + payload) staged as SENDMSG_ZC. A ZC skb
    // pins the source pages, so its receiver-side truesize dwarfs a copied
    // skb's — a burst of small ZC datagrams overruns the peer's rcvbuf
    // long before an equal burst of copied ones. Below the threshold the
    // slot stages plain SENDMSG (the copy is cheaper than the pin).
    std::size_t zc_threshold = 4096;
    bool sqpoll = false;
    unsigned sqpoll_idle_ms = 50;
    int sq_aff_cpu = -1;   // with sqpoll: IORING_SETUP_SQ_AFF cpu
  };

  // Builds the tx ring over `socket_fd`. Throws std::runtime_error when
  // the kernel refuses (the endpoint then keeps synchronous sends).
  uring_tx(int socket_fd, config cfg);
  ~uring_tx();

  uring_tx(const uring_tx&) = delete;
  uring_tx& operator=(const uring_tx&) = delete;

  // Does this kernel support SENDMSG_ZC? Probed once per process with
  // IORING_REGISTER_PROBE on a throwaway ring; honors the force hook.
  static bool zerocopy_available();
  // Test hook: make zerocopy_available() report false so the plain-SENDMSG
  // fallback is exercised deterministically on ZC-capable kernels. Affects
  // subsequently constructed rings only.
  static void force_no_zerocopy(bool on);

  // Stages one gather send to `to`: `head` (the sealed ILP header, valid
  // only for this call) is copied into the slot; `payload` is pinned
  // through `payload_pin` when the caller recovered a slab reference
  // (released exactly when the CQE — for ZC, the notification — retires),
  // otherwise copied into bounded slot storage. Returns false when no slot
  // frees up after an opportunistic reap or the message doesn't fit
  // (head > kHeadMax, unpinned payload > kCopyMax): the caller sends
  // synchronously instead — staging never drops a datagram.
  bool stage(const sockaddr_in& to, const_byte_span head, const_byte_span payload,
             buf::slab_ref payload_pin);

  // Submits every staged SQE with one io_uring_enter (or an SQPOLL wake).
  // Returns the number submitted.
  std::size_t flush();

  // Retires posted completions — no syscall, just the shared-memory CQ.
  // Returns data completions retired (ZC notifications don't count twice).
  std::size_t reap();

  // flush() + reap() until nothing is in flight or `timeout` elapses.
  // Quiesce for teardown and tests; false if sends were still in flight.
  bool drain(std::chrono::milliseconds timeout);

  int ring_fd() const { return ring_fd_; }
  bool zerocopy_active() const { return zc_active_; }
  std::size_t inflight() const { return inflight_; }
  // Staged but not yet submitted (what the next flush() covers).
  std::size_t staged() const { return to_submit_; }

  std::uint64_t completions() const { return completions_; }
  // Data CQEs reporting fewer bytes accepted than staged. UDP sendmsg is
  // all-or-nothing so steady state is 0; non-zero flags a kernel/socket
  // anomaly worth alerting on.
  std::uint64_t short_sends() const { return short_sends_; }
  std::uint64_t zc_used() const { return zc_used_; }
  // Sends that wanted zerocopy but staged plain SENDMSG (kernel lacks the
  // opcode or the probe was forced off).
  std::uint64_t zc_fallback() const { return zc_fallback_; }
  std::uint64_t inflight_peak() const { return inflight_peak_; }
  std::uint64_t submit_batches() const { return submit_batches_; }
  // Data CQEs with a negative result that exhausted their retry budget
  // (the async twin of a failed sendmsg; the datagram is given up on).
  std::uint64_t send_errors() const { return send_errors_; }
  // -EAGAIN completions resubmitted (socket buffer full under the ring).
  std::uint64_t again() const { return again_; }

  // Largest sealed head a slot stores, and the copy bound for payloads
  // staged without a slab pin (anything bigger falls back to synchronous
  // sendmsg rather than bloating every slot).
  static constexpr std::size_t kHeadMax = 512;
  static constexpr std::size_t kCopyMax = 2048;

 private:
  struct tx_slot {
    std::uint8_t head[kHeadMax];
    std::vector<std::uint8_t> copy_buf;  // kCopyMax, allocated at setup
    ::iovec iov[2];
    ::msghdr hdr{};
    sockaddr_in dest{};
    buf::slab_ref pin;           // payload slab, held until the CQE retires
    std::uint32_t total_len = 0;
    std::uint8_t retries = 0;
    bool in_flight = false;
    bool zc = false;             // staged as SENDMSG_ZC (expects a notif CQE)
    bool await_notif = false;    // data CQE seen, notification pending
  };

  bool push_sqe(unsigned idx, bool zc);
  void release_slot(unsigned idx);

  int ring_fd_ = -1;
  int socket_fd_ = -1;
  bool zc_active_ = false;
  bool want_zc_ = false;
  std::size_t zc_threshold_ = 4096;
  bool sqpoll_active_ = false;
  std::vector<tx_slot> slots_;
  std::vector<unsigned> free_;  // slot indices not in flight
  std::size_t inflight_ = 0;
  unsigned to_submit_ = 0;

  void* sq_ring_ = nullptr;
  std::size_t sq_ring_size_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_size_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::uint64_t completions_ = 0;
  std::uint64_t short_sends_ = 0;
  std::uint64_t zc_used_ = 0;
  std::uint64_t zc_fallback_ = 0;
  std::uint64_t inflight_peak_ = 0;
  std::uint64_t submit_batches_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t again_ = 0;

  static constexpr std::uint8_t kRetryMax = 4;  // matches udp kSendRetries
};

#endif  // INTEREDGE_HAS_IO_URING

// Compiled-or-probed availability, honoring the test force-unavailable
// hook. False on non-Linux builds and kernels without io_uring.
bool io_uring_runtime_available();
void io_uring_force_unavailable(bool on);

}  // namespace interedge::net
