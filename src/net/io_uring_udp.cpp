#include "net/io_uring_udp.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#if INTEREDGE_HAS_IO_URING
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace interedge::net {

namespace {
std::atomic<bool> g_force_unavailable{false};
}  // namespace

void io_uring_force_unavailable(bool on) {
  g_force_unavailable.store(on, std::memory_order_relaxed);
}

#if !INTEREDGE_HAS_IO_URING

bool io_uring_runtime_available() { return false; }

#else  // INTEREDGE_HAS_IO_URING

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// The zerocopy send opcodes and their CQE flags postdate the image's
// <linux/io_uring.h> (they're enum values, so no #ifndef guard is
// possible); the ABI constants are pinned here and support is probed at
// runtime — never assumed from headers.
constexpr std::uint8_t kOpSendmsgZc = 48;     // IORING_OP_SENDMSG_ZC (6.1+)
constexpr unsigned kCqeFMore = 1u << 1;       // IORING_CQE_F_MORE
constexpr unsigned kCqeFNotif = 1u << 3;      // IORING_CQE_F_NOTIF
constexpr unsigned kRegisterProbe = 8;        // IORING_REGISTER_PROBE
constexpr unsigned kOpSupported = 1u << 0;    // IO_URING_OP_SUPPORTED

std::atomic<bool> g_force_no_zerocopy{false};

// The SQ/CQ indices are shared with the kernel; loads/stores need the same
// acquire/release pairing liburing uses.
unsigned load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}
void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

bool uring_rx::available() {
  if (g_force_unavailable.load(std::memory_order_relaxed)) return false;
  static const bool probed = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(1, &params);
    if (fd < 0) return false;  // ENOSYS (old kernel) or EPERM (seccomp)
    ::close(fd);
    return true;
  }();
  return probed;
}

uring_rx::uring_rx(int socket_fd, buf::buf_pool& pool, config cfg)
    : pool_(&pool), cache_(pool) {
  if (cfg.slots == 0) cfg.slots = 1;

  io_uring_params params{};
  if (cfg.sqpoll) {
    params.flags = IORING_SETUP_SQPOLL;
    params.sq_thread_idle = cfg.sqpoll_idle_ms;
    if (cfg.sq_aff_cpu >= 0) {
      // Steer the kernel SQ thread next to whoever drives this ring (the
      // SN control core under pinned placement).
      params.flags |= IORING_SETUP_SQ_AFF;
      params.sq_thread_cpu = static_cast<unsigned>(cfg.sq_aff_cpu);
    }
    ring_fd_ = sys_io_uring_setup(cfg.slots, &params);
    sqpoll_active_ = ring_fd_ >= 0;
  }
  if (ring_fd_ < 0) {
    // SQPOLL needs privileges on older kernels; retry plain.
    params = io_uring_params{};
    ring_fd_ = sys_io_uring_setup(cfg.slots, &params);
  }
  if (ring_fd_ < 0) {
    throw std::runtime_error(std::string("io_uring_setup failed: ") + std::strerror(errno));
  }

  // Map the rings. With IORING_FEAT_SINGLE_MMAP (5.4+) the SQ and CQ live
  // in one region; otherwise they are two mappings.
  sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_size_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_size_ > sq_ring_size_) sq_ring_size_ = cq_ring_size_;

  sq_ring_ = ::mmap(nullptr, sq_ring_size_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    ::close(ring_fd_);
    throw std::runtime_error("io_uring sq mmap failed");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_size_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_size_);
      ::close(ring_fd_);
      throw std::runtime_error("io_uring cq mmap failed");
    }
  }
  sqes_size_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                                            IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    if (cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_size_);
    ::munmap(sq_ring_, sq_ring_size_);
    ::close(ring_fd_);
    throw std::runtime_error("io_uring sqes mmap failed");
  }

  auto* sq_base = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  sq_flags_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.flags);
  auto* cq_base = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  // One slot per SQ entry the kernel actually granted (it rounds up).
  slots_.resize(std::min<unsigned>(cfg.slots, params.sq_entries));
  for (auto& slot : slots_) {
    slot.hdr.msg_name = &slot.source;
    slot.hdr.msg_iov = &slot.iov;
    slot.hdr.msg_iovlen = 1;
  }
  socket_fd_ = socket_fd;
  for (unsigned i = 0; i < slots_.size(); ++i) arm(i);
  submit_pending();
}

uring_rx::~uring_rx() {
  // Closing the ring fd cancels in-flight SQEs and drops the kernel's hold
  // on the mappings; slot views release their slabs on vector destruction.
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_size_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_size_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_size_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

void uring_rx::arm(unsigned idx) {
  rx_slot& slot = slots_[idx];
  if (slot.armed) return;
  if (!slot.view) {
    auto ref = cache_.try_alloc();
    if (!ref) {
      ++parked_;  // pool dry: slot sits out until replenish()
      return;
    }
    const std::size_t size = ref.size();
    slot.view = buf::pkt_view(std::move(ref), 0, size);
  }
  slot.iov.iov_base = slot.view.mutable_span().data();
  slot.iov.iov_len = slot.view.size();
  slot.hdr.msg_namelen = sizeof(slot.source);
  slot.hdr.msg_flags = 0;
  if (push_sqe(idx)) {
    slot.armed = true;
  } else {
    ++rearm_failed_;  // SQ full: slot retries via replenish()
  }
}

bool uring_rx::push_sqe(unsigned idx) {
  const unsigned head = load_acquire(sq_head_);
  const unsigned tail = *sq_tail_;
  if (tail - head > sq_mask_) return false;  // SQ full (can't happen: slots <= entries)
  io_uring_sqe& sqe = sqes_[tail & sq_mask_];
  std::memset(&sqe, 0, sizeof(sqe));
  sqe.opcode = IORING_OP_RECVMSG;
  sqe.fd = socket_fd_;
  sqe.addr = reinterpret_cast<std::uint64_t>(&slots_[idx].hdr);
  sqe.user_data = idx;
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  store_release(sq_tail_, tail + 1);
  ++to_submit_;
  return true;
}

void uring_rx::submit_pending() {
  if (to_submit_ == 0) return;
  if (sqpoll_active_) {
    // The kernel thread consumes the SQ on its own; only kick it if it
    // went to sleep.
    if ((load_acquire(sq_flags_) & IORING_SQ_NEED_WAKEUP) != 0) {
      sys_io_uring_enter(ring_fd_, 0, 0, IORING_ENTER_SQ_WAKEUP);
    }
    to_submit_ = 0;
    return;
  }
  const int n = sys_io_uring_enter(ring_fd_, to_submit_, 0, 0);
  if (n > 0) to_submit_ -= static_cast<unsigned>(std::min<unsigned>(to_submit_, n));
}

std::size_t uring_rx::reap(std::size_t max, std::vector<uring_completion>& out) {
  std::size_t appended = 0;
  unsigned head = load_acquire(cq_head_);
  const unsigned tail = load_acquire(cq_tail_);
  while (head != tail && appended < max) {
    const io_uring_cqe& cqe = cqes_[head & cq_mask_];
    const unsigned idx = static_cast<unsigned>(cqe.user_data);
    ++head;
    store_release(cq_head_, head);
    if (idx >= slots_.size()) continue;  // never expected; defensive
    rx_slot& slot = slots_[idx];
    slot.armed = false;
    if (cqe.res >= 0 && slot.view) {
      uring_completion c;
      c.source = slot.source;
      c.truncated = (slot.hdr.msg_flags & MSG_TRUNC) != 0;
      if (c.truncated) ++truncated_;
      // Surrender the slot's slab, windowed to the datagram; the slot
      // re-arms with a fresh one below.
      c.view = std::move(slot.view);
      c.view.truncate(static_cast<std::size_t>(cqe.res));
      out.push_back(std::move(c));
      ++appended;
      ++completions_;
    }
    // cqe.res < 0: transient receive error (or cancel at teardown); the
    // slot still owns its slab and just re-arms.
    arm(idx);
  }
  submit_pending();
  return appended;
}

void uring_rx::replenish() {
  for (unsigned i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].armed) arm(i);
  }
  submit_pending();
}

// ---- uring_tx ----------------------------------------------------------

void uring_tx::force_no_zerocopy(bool on) {
  g_force_no_zerocopy.store(on, std::memory_order_relaxed);
}

bool uring_tx::zerocopy_available() {
  if (g_force_no_zerocopy.load(std::memory_order_relaxed)) return false;
  static const bool probed = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(1, &params);
    if (fd < 0) return false;
    // io_uring_probe carries a flexible ops[] array; 256 covers every
    // opcode the ABI can ever name (op indices are a u8).
    constexpr unsigned kOps = 256;
    std::vector<std::uint8_t> storage(
        sizeof(io_uring_probe) + kOps * sizeof(io_uring_probe_op), 0);
    auto* probe = reinterpret_cast<io_uring_probe*>(storage.data());
    const int rc = sys_io_uring_register(fd, kRegisterProbe, probe, kOps);
    ::close(fd);
    if (rc < 0) return false;  // pre-5.6 kernel: no probe, no ZC either
    return probe->last_op >= kOpSendmsgZc &&
           (probe->ops[kOpSendmsgZc].flags & kOpSupported) != 0;
  }();
  return probed;
}

uring_tx::uring_tx(int socket_fd, config cfg) {
  if (cfg.slots == 0) cfg.slots = 1;
  want_zc_ = cfg.zerocopy;
  zc_active_ = cfg.zerocopy && zerocopy_available();
  zc_threshold_ = cfg.zc_threshold;

  io_uring_params params{};
  if (cfg.sqpoll) {
    params.flags = IORING_SETUP_SQPOLL;
    params.sq_thread_idle = cfg.sqpoll_idle_ms;
    if (cfg.sq_aff_cpu >= 0) {
      params.flags |= IORING_SETUP_SQ_AFF;
      params.sq_thread_cpu = static_cast<unsigned>(cfg.sq_aff_cpu);
    }
    ring_fd_ = sys_io_uring_setup(cfg.slots, &params);
    sqpoll_active_ = ring_fd_ >= 0;
  }
  if (ring_fd_ < 0) {
    params = io_uring_params{};
    ring_fd_ = sys_io_uring_setup(cfg.slots, &params);
  }
  if (ring_fd_ < 0) {
    throw std::runtime_error(std::string("io_uring tx setup failed: ") +
                             std::strerror(errno));
  }

  sq_ring_size_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_size_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_size_ > sq_ring_size_) sq_ring_size_ = cq_ring_size_;

  sq_ring_ = ::mmap(nullptr, sq_ring_size_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    ::close(ring_fd_);
    throw std::runtime_error("io_uring tx sq mmap failed");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_size_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_size_);
      ::close(ring_fd_);
      throw std::runtime_error("io_uring tx cq mmap failed");
    }
  }
  sqes_size_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                                            IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    if (cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_size_);
    ::munmap(sq_ring_, sq_ring_size_);
    ::close(ring_fd_);
    throw std::runtime_error("io_uring tx sqes mmap failed");
  }

  auto* sq_base = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  sq_flags_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.flags);
  auto* cq_base = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  socket_fd_ = socket_fd;
  slots_.resize(std::min<unsigned>(cfg.slots, params.sq_entries));
  free_.reserve(slots_.size());
  for (unsigned i = 0; i < slots_.size(); ++i) {
    slots_[i].copy_buf.resize(kCopyMax);
    free_.push_back(static_cast<unsigned>(slots_.size() - 1 - i));  // LIFO: slot 0 first
  }
}

uring_tx::~uring_tx() {
  // Give in-flight sends a bounded chance to retire so the slab pins they
  // hold release in an orderly way (the owning endpoint destroys this ring
  // before the pool, so even a timed-out pin resets safely below).
  drain(std::chrono::milliseconds(100));
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_size_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_size_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_size_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

bool uring_tx::push_sqe(unsigned idx, bool zc) {
  const unsigned head = load_acquire(sq_head_);
  const unsigned tail = *sq_tail_;
  if (tail - head > sq_mask_) return false;  // SQ full (slots <= entries)
  io_uring_sqe& sqe = sqes_[tail & sq_mask_];
  std::memset(&sqe, 0, sizeof(sqe));
  sqe.opcode = zc ? kOpSendmsgZc : IORING_OP_SENDMSG;
  sqe.fd = socket_fd_;
  sqe.addr = reinterpret_cast<std::uint64_t>(&slots_[idx].hdr);
  sqe.user_data = idx;
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  store_release(sq_tail_, tail + 1);
  ++to_submit_;
  return true;
}

bool uring_tx::stage(const sockaddr_in& to, const_byte_span head,
                     const_byte_span payload, buf::slab_ref payload_pin) {
  if (head.size() > kHeadMax) return false;
  if (!payload_pin && payload.size() > kCopyMax) return false;
  if (head.empty() && payload.empty()) return false;
  if (free_.empty()) {
    reap();  // opportunistic retire; no syscall
    if (free_.empty()) return false;
  }
  const unsigned idx = free_.back();
  tx_slot& slot = slots_[idx];

  unsigned niov = 0;
  if (!head.empty()) {
    std::memcpy(slot.head, head.data(), head.size());
    slot.iov[niov++] = {slot.head, head.size()};
  }
  if (!payload.empty()) {
    if (payload_pin) {
      // Zero-copy: the SQE gathers straight out of the slab; the pin keeps
      // it alive until the CQE (ZC: the notification) retires.
      slot.pin = std::move(payload_pin);
      slot.iov[niov++] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
    } else {
      std::memcpy(slot.copy_buf.data(), payload.data(), payload.size());
      slot.iov[niov++] = {slot.copy_buf.data(), payload.size()};
    }
  }
  slot.dest = to;
  std::memset(&slot.hdr, 0, sizeof(slot.hdr));
  slot.hdr.msg_name = &slot.dest;
  slot.hdr.msg_namelen = sizeof(slot.dest);
  slot.hdr.msg_iov = slot.iov;
  slot.hdr.msg_iovlen = niov;
  slot.total_len = static_cast<std::uint32_t>(head.size() + payload.size());
  slot.retries = 0;
  // Zerocopy only above the size threshold: a SENDMSG_ZC skb pins pages
  // and carries a far larger truesize than a copied one, so small
  // datagrams burn receiver-buffer budget (and notif CQEs) for no copy
  // savings. Below the line, plain SENDMSG is the faster path — that is a
  // policy choice, not a capability fallback, so zc_fallback stays still.
  slot.zc = zc_active_ && slot.total_len >= zc_threshold_;
  slot.await_notif = false;

  if (!push_sqe(idx, slot.zc)) {
    slot.pin.reset();
    return false;
  }
  free_.pop_back();
  slot.in_flight = true;
  ++inflight_;
  if (inflight_ > inflight_peak_) inflight_peak_ = inflight_;
  if (slot.zc) {
    ++zc_used_;
  } else if (want_zc_ && !zc_active_) {
    ++zc_fallback_;
  }
  return true;
}

std::size_t uring_tx::flush() {
  if (to_submit_ == 0) return 0;
  const unsigned staged = to_submit_;
  if (sqpoll_active_) {
    if ((load_acquire(sq_flags_) & IORING_SQ_NEED_WAKEUP) != 0) {
      sys_io_uring_enter(ring_fd_, 0, 0, IORING_ENTER_SQ_WAKEUP);
    }
    to_submit_ = 0;
    ++submit_batches_;
    return staged;
  }
  int n;
  do {
    n = sys_io_uring_enter(ring_fd_, to_submit_, 0, 0);
  } while (n < 0 && errno == EINTR);
  if (n > 0) to_submit_ -= std::min<unsigned>(to_submit_, static_cast<unsigned>(n));
  ++submit_batches_;
  return staged - to_submit_;
}

void uring_tx::release_slot(unsigned idx) {
  tx_slot& slot = slots_[idx];
  slot.pin.reset();  // completion-driven slab release — the whole point
  slot.in_flight = false;
  slot.await_notif = false;
  free_.push_back(idx);
  --inflight_;
}

std::size_t uring_tx::reap() {
  std::size_t retired = 0;
  unsigned head = load_acquire(cq_head_);
  const unsigned tail = load_acquire(cq_tail_);
  while (head != tail) {
    const io_uring_cqe cqe = cqes_[head & cq_mask_];
    ++head;
    store_release(cq_head_, head);
    const auto idx = static_cast<unsigned>(cqe.user_data);
    if (idx >= slots_.size()) continue;  // never expected; defensive
    tx_slot& slot = slots_[idx];
    if (!slot.in_flight) continue;
    if ((cqe.flags & kCqeFNotif) != 0) {
      // ZC notification: the kernel dropped its last reference to the
      // payload pages — only now is the slab safe to recycle.
      if (slot.await_notif) release_slot(idx);
      continue;
    }
    if (cqe.res == -EAGAIN && slot.retries < kRetryMax) {
      ++slot.retries;
      ++again_;
      if (push_sqe(idx, slot.zc)) continue;  // resubmitted, still in flight
    }
    ++completions_;
    if (cqe.res < 0) {
      ++send_errors_;
    } else if (static_cast<std::uint32_t>(cqe.res) < slot.total_len) {
      ++short_sends_;
    }
    ++retired;
    if ((cqe.flags & kCqeFMore) != 0) {
      slot.await_notif = true;  // buffers stay pinned until the notif CQE
    } else {
      release_slot(idx);
    }
  }
  return retired;
}

bool uring_tx::drain(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  flush();
  while (inflight_ > 0) {
    reap();
    if (inflight_ == 0) break;
    flush();  // EAGAIN resubmissions staged by reap()
    if (std::chrono::steady_clock::now() >= deadline) return false;
    // Block briefly for at least one completion instead of spinning.
    sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
  }
  return true;
}

bool io_uring_runtime_available() { return uring_rx::available(); }

void uring_rx::force_unavailable(bool on) { io_uring_force_unavailable(on); }

#endif  // INTEREDGE_HAS_IO_URING

}  // namespace interedge::net
