// Real-network binding: runs InterEdge elements over UDP sockets.
//
// Every component above L3 (pipe_manager, service_node, host_stack) is
// transport-agnostic — it takes a send callback and an on_datagram feed.
// The simulator provides one binding (tests, examples, topology research);
// this module provides the other: actual UDP datagrams, so an SN or host
// built from this library runs on a real network unchanged.
//
//   udp_endpoint  — a bound non-blocking UDP socket with a peer table
//                   (peer_id <-> sockaddr), send/poll in pipe_manager's
//                   vocabulary
//   event_loop    — single-threaded driver: pumps any number of endpoints
//                   into their handlers and runs timers (the scheduler_fn
//                   service_node/host_stack need)
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "ilp/header.h"

namespace interedge::net {

using ilp::peer_id;

class udp_endpoint {
 public:
  // Binds 127.0.0.1:port (port 0 = ephemeral). Throws std::runtime_error
  // on socket failures. With reuse_port, SO_REUSEPORT is set before bind so
  // several endpoints (one per datapath worker) can share one port and let
  // the kernel spread flows across them.
  explicit udp_endpoint(std::uint16_t port = 0, bool reuse_port = false);
  ~udp_endpoint();

  udp_endpoint(const udp_endpoint&) = delete;
  udp_endpoint& operator=(const udp_endpoint&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  // Registers a peer's network address. Datagrams from unregistered
  // sources are dropped (and counted).
  void add_peer(peer_id peer, const std::string& ip, std::uint16_t port);

  // Sends a datagram to a registered peer; false if the peer is unknown.
  bool send(peer_id to, const bytes& datagram);

  // Non-blocking receive of one datagram from a registered peer.
  std::optional<std::pair<peer_id, bytes>> poll();

  // Batch receive: drains up to `max` datagrams with one recvmmsg(2) call
  // (single-recv loop where unavailable), appending (peer, payload) pairs
  // to `out`. Datagrams from unregistered sources are counted and skipped.
  // Returns the number of pairs appended.
  std::size_t recv_batch(std::size_t max, std::vector<std::pair<peer_id, bytes>>& out);

  // Batch send: transmits every datagram to `to` with one sendmmsg(2)
  // call per chunk (loop fallback). Returns how many the kernel accepted;
  // 0 if the peer is unknown.
  std::size_t send_batch(peer_id to, std::span<const bytes> datagrams);

  // Largest number of datagrams one recv_batch/send_batch syscall covers.
  static constexpr std::size_t kBatchMax = 32;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t dropped_unknown() const { return dropped_unknown_; }
  // recv_batch attempts that found the socket empty (recvmmsg EAGAIN, or
  // a poll-loop that appended nothing). Distinguishes "nothing arrived"
  // from a batch the kernel cut short.
  std::uint64_t rx_empty() const { return rx_empty_; }
  // recv_batch calls that drained the socket mid-batch: recvmmsg returned
  // fewer datagrams than asked (the EAGAIN happened inside the batch).
  // Previously this condition was indistinguishable from a full batch;
  // callers sizing rings/batches off recv_batch need to see it.
  std::uint64_t rx_partial_batches() const { return rx_partial_batches_; }
  // recv_batch failures that were NOT EAGAIN/EINTR (real socket errors).
  std::uint64_t rx_errors() const { return rx_errors_; }
  // Transient send failures (EAGAIN/EWOULDBLOCK/EINTR — a full socket
  // buffer) absorbed by the bounded retry loop in send/send_batch. A
  // climbing value under load means the kernel buffer is the bottleneck,
  // not the wire; exposed as net.udp.send_again.
  std::uint64_t send_again() const { return send_again_; }

  // Optional: mirrors the send_again counter into `reg` as
  // net.udp.send_again so it rides the SN's stats exposition.
  void enable_telemetry(metrics_registry& reg) {
    m_send_again_ = &reg.get_counter("net.udp.send_again");
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<peer_id, sockaddr_in> peers_;
  std::map<std::uint64_t, peer_id> by_source_;  // packed ip:port -> peer
  bytes recv_scratch_;  // kBatchMax receive buffers, allocated on first use
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_unknown_ = 0;
  std::uint64_t rx_empty_ = 0;
  std::uint64_t rx_partial_batches_ = 0;
  std::uint64_t rx_errors_ = 0;
  std::uint64_t send_again_ = 0;
  counter* m_send_again_ = nullptr;

  // Transient send failures retry this many times before the datagram is
  // given up on (UDP is lossy; upper layers own reliability).
  static constexpr std::size_t kSendRetries = 4;
};

// Single-threaded real-time driver for one or more endpoints.
class event_loop {
 public:
  using datagram_handler = std::function<void(peer_id from, const_byte_span data)>;
  // Batch handler: one call per drained burst, in arrival order.
  using batch_handler = std::function<void(std::span<std::pair<peer_id, bytes>> datagrams)>;

  // Attaches an endpoint: arriving datagrams go to `handler`.
  void attach(udp_endpoint& endpoint, datagram_handler handler);

  // Batch attach: readable bursts are drained via recv_batch and handed to
  // `handler` as one span per pass (the SN feeds these straight into its
  // batched datapath).
  void attach_batch(udp_endpoint& endpoint, batch_handler handler);

  // Timer facility, signature-compatible with service_node/host_stack's
  // scheduler_fn.
  void schedule(nanoseconds delay, std::function<void()> fn);
  auto scheduler() {
    return [this](nanoseconds delay, std::function<void()> fn) {
      schedule(delay, std::move(fn));
    };
  }

  // Pumps sockets and timers until `deadline_from_now` elapses.
  // Returns the number of datagrams dispatched.
  std::size_t run_for(std::chrono::milliseconds deadline_from_now);

  // Pumps until no datagram arrives for `quiet` (and no timers are due),
  // up to `limit`. The usual test idiom: run until the exchange quiesces.
  std::size_t run_until_quiet(std::chrono::milliseconds quiet,
                              std::chrono::milliseconds limit);

 private:
  struct attached {
    udp_endpoint* endpoint;
    datagram_handler handler;       // per-datagram path
    batch_handler batch;            // batch path (used when set)
  };
  struct timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const timer& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  // One pass: fire due timers, drain readable sockets. Returns datagrams
  // dispatched; `waited` reports whether it had to block.
  std::size_t pass(std::chrono::milliseconds max_wait);

  std::vector<attached> endpoints_;
  std::vector<std::pair<peer_id, bytes>> batch_scratch_;  // reused per pass
  std::priority_queue<timer, std::vector<timer>, std::greater<>> timers_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace interedge::net
