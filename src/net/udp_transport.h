// Real-network binding: runs InterEdge elements over UDP sockets.
//
// Every component above L3 (pipe_manager, service_node, host_stack) is
// transport-agnostic — it takes a send callback and an on_datagram feed.
// The simulator provides one binding (tests, examples, topology research);
// this module provides the other: actual UDP datagrams, so an SN or host
// built from this library runs on a real network unchanged.
//
//   udp_endpoint  — a bound non-blocking UDP socket with a peer table
//                   (peer_id <-> sockaddr), send/poll in pipe_manager's
//                   vocabulary
//   event_loop    — single-threaded driver: pumps any number of endpoints
//                   into their handlers and runs timers (the scheduler_fn
//                   service_node/host_stack need)
//
// Receive is zero-copy: datagrams land directly in slabs from the
// endpoint's buf_pool and are handed out as pkt_views (recv_batch_views).
// Two rx backends sit under the same interface, chosen per endpoint at
// construction:
//
//   mmsg   — recvmmsg(2) into pool slabs, one syscall per batch. The
//            default for the legacy (port, reuse_port) constructor.
//   uring  — io_uring with persistently re-armed RECVMSG slots over pool
//            slabs (see io_uring_udp.h); draining posted completions costs
//            no syscall. udp_config defaults to auto: uring when the
//            kernel supports it, mmsg otherwise — the fallback is a
//            runtime decision, never a build-time one.
//
// Under uring the kernel consumes the socket asynchronously, so readiness
// loops must watch wait_fd() (the ring fd, readable when completions are
// posted) rather than the socket fd; event_loop does. The legacy
// bytes-returning recv_batch/poll are preserved on both backends (one copy
// out of the slab) so existing callers run unchanged.
//
// Since ISSUE 8 the uring backend is full duplex: send_gather/send_batch
// stage gather SQEs on a tx ring (sealed head copied into the slot,
// payload pinned by slab reference until the completion retires), one
// io_uring_enter per flush_tx() covers the whole egress burst, and
// SENDMSG_ZC is used when the kernel has it. The mmsg backend's send path
// is untouched — byte-identical for non-uring kernels — and every staged
// path degrades to the synchronous syscall when the ring is saturated.
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/buf_pool.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/flat_hash.h"
#include "common/metrics.h"
#include "ilp/header.h"
#include "net/io_uring_udp.h"

namespace interedge::net {

using ilp::peer_id;

enum class udp_backend {
  auto_detect,  // uring if the kernel supports it, else mmsg
  mmsg,
  uring,
};

struct udp_config {
  std::uint16_t port = 0;
  bool reuse_port = false;
  udp_backend backend = udp_backend::auto_detect;
  bool sqpoll = false;        // uring only: request a kernel SQ poll thread
  unsigned uring_slots = 64;  // uring only: rx slots kept armed
  // uring only, egress (ISSUE 8): stage sends on a tx ring — gather SQEs
  // batched into one io_uring_enter per flush, payload slabs pinned until
  // the completion retires. Off (or ring setup failure) keeps the
  // synchronous sendmsg/sendmmsg path byte-identically.
  bool uring_tx = true;
  unsigned uring_tx_slots = 64;  // in-flight staged sends
  // Probe IORING_OP_SENDMSG_ZC and use it when present; plain SENDMSG
  // otherwise (same bytes on the wire, one fewer kernel copy when it hits).
  bool uring_zerocopy = true;
  // Smallest message staged as SENDMSG_ZC (see uring_tx::config): a ZC
  // skb's pinned-page truesize makes small-datagram bursts overrun the
  // receiver's rcvbuf, so below this the slot stages plain SENDMSG. 0
  // forces ZC for every send (tests).
  std::size_t uring_zc_threshold = 4096;
  // With sqpoll: pin the kernel SQ thread (IORING_SETUP_SQ_AFF) — the
  // placement plumbing points this at the SN control core.
  int sq_aff_cpu = -1;
  buf::pool_config pool;      // slab size/count for the rx pool
};

class udp_endpoint {
 public:
  // Binds 127.0.0.1:port (port 0 = ephemeral). Throws std::runtime_error
  // on socket failures. With reuse_port, SO_REUSEPORT is set before bind so
  // several endpoints (one per datapath worker) can share one port and let
  // the kernel spread flows across them. This constructor keeps the mmsg
  // backend — existing callers see byte-identical behavior.
  explicit udp_endpoint(std::uint16_t port = 0, bool reuse_port = false);
  // Full-configuration constructor; backend auto-detect resolves here.
  explicit udp_endpoint(const udp_config& cfg);
  ~udp_endpoint();

  udp_endpoint(const udp_endpoint&) = delete;
  udp_endpoint& operator=(const udp_endpoint&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }
  // The fd a readiness loop should watch: the io_uring ring fd under the
  // uring backend (readable ⇔ completions posted), the socket otherwise.
  int wait_fd() const;
  // The backend actually in use (auto_detect resolved at construction).
  udp_backend backend() const { return backend_; }

  // Registers a peer's network address. Datagrams from unregistered
  // sources are dropped (and counted).
  void add_peer(peer_id peer, const std::string& ip, std::uint16_t port);

  // Sends a datagram to a registered peer; false if the peer is unknown.
  // Accepts any contiguous byte range — including a view into a pool slab
  // (the kernel copies into the skb before sendto returns).
  bool send(peer_id to, const_byte_span datagram);

  // Gather send: head + payload as two iovecs, so an egress path holding a
  // sealed header and a payload view never glues them into one buffer.
  // Under the uring backend with a tx ring this *stages* the send: the
  // head is copied into a slot, the payload — when it aliases the rx pool
  // — is pinned by slab reference until the completion retires (true
  // zero-copy egress lifetime), and the SQE rides the next flush_tx()
  // (auto-triggered every kBatchMax staged sends). Otherwise, and whenever
  // the ring is saturated or the message oversized, it is one synchronous
  // sendmsg(2) — staging degrades to the mmsg path, never drops.
  bool send_gather(peer_id to, const_byte_span head, const_byte_span payload);

  // Submits every staged tx SQE with one syscall and retires posted
  // completions (releasing their slab pins). No-op without a tx ring.
  // event_loop calls this once per pass; manual drivers should call it
  // after their send burst. Returns SQEs submitted.
  std::size_t flush_tx();

  // flush_tx + reap until no send is in flight (bounded). True when the
  // tx path fully quiesced — tests use this to assert slab recycling.
  bool tx_drain(std::chrono::milliseconds timeout = std::chrono::milliseconds(100));

  // Sends staged on the tx ring whose completion hasn't retired yet.
  std::size_t tx_inflight() const;

  // Non-blocking receive of one datagram from a registered peer.
  std::optional<std::pair<peer_id, bytes>> poll();

  // Batch receive, zero-copy: drains up to `max` datagrams into pool-slab
  // views, appending (peer, view) pairs to `out`. Datagrams from
  // unregistered sources are counted and skipped. Views hold slab
  // references — the slab returns to the pool when the last view drops —
  // and must not outlive this endpoint. Returns the number appended.
  std::size_t recv_batch_views(std::size_t max,
                               std::vector<std::pair<peer_id, buf::pkt_view>>& out);

  // Legacy batch receive: same drain, each datagram copied out of its slab
  // into owned bytes. Counter semantics identical to recv_batch_views.
  std::size_t recv_batch(std::size_t max, std::vector<std::pair<peer_id, bytes>>& out);

  // Batch send: transmits every datagram to `to` with one sendmmsg(2)
  // call per chunk (loop fallback). Returns how many the kernel accepted;
  // 0 if the peer is unknown.
  std::size_t send_batch(peer_id to, std::span<const bytes> datagrams);

  // Largest number of datagrams one recv_batch/send_batch syscall covers.
  static constexpr std::size_t kBatchMax = 32;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t dropped_unknown() const { return dropped_unknown_; }
  // recv_batch attempts that found nothing to deliver (socket empty / no
  // completions posted). Distinguishes "nothing arrived" from a batch the
  // kernel cut short.
  std::uint64_t rx_empty() const { return rx_empty_; }
  // recv_batch calls that drained fewer datagrams than asked (the EAGAIN
  // happened inside the batch). Callers sizing rings/batches off
  // recv_batch need to see it.
  std::uint64_t rx_partial_batches() const { return rx_partial_batches_; }
  // recv_batch failures that were NOT EAGAIN/EINTR (real socket errors).
  std::uint64_t rx_errors() const { return rx_errors_; }
  // Datagrams larger than a pool slab: delivered truncated and counted.
  // The slab default (9216) covers every MTU we bind; growth here means
  // the pool's slab_size knob is mis-sized for the deployment.
  std::uint64_t rx_truncated() const { return rx_truncated_; }
  // Transient send failures (EAGAIN/EWOULDBLOCK/EINTR — a full socket
  // buffer) absorbed by the bounded retry loop in send/send_batch. A
  // climbing value under load means the kernel buffer is the bottleneck,
  // not the wire; exposed as net.udp.send_again.
  std::uint64_t send_again() const { return send_again_; }

  // The rx slab pool (sizing/exhaustion stats; shared with the uring
  // backend's armed slots).
  const buf::buf_pool* pool() const { return pool_.get(); }
  buf::pool_stats pool_stats() const {
    return pool_ ? pool_->stats() : buf::pool_stats{};
  }

#if INTEREDGE_HAS_IO_URING
  // The egress ring, when the uring backend armed one (counter access for
  // tests and diagnostics); nullptr under mmsg or when setup failed.
  const uring_tx* tx_ring() const { return uring_tx_.get(); }
#endif

  // Optional: mirrors the endpoint's accounting into `reg` so it rides the
  // SN's stats exposition and the SLO health plane — the net.udp.* socket
  // counters plus the io_uring backend internals (completions, truncated
  // datagrams, pool-starved slot parks, re-arm failures) when that backend
  // is active. Mirrors count movement since enablement; the mirrored
  // totals are delta-synced at the end of every rx batch.
  void enable_telemetry(metrics_registry& reg) {
    m_send_again_ = &reg.get_counter("net.udp.send_again");
    m_rx_truncated_ = &reg.get_counter("net.udp.rx_truncated");
    m_rx_errors_ = &reg.get_counter("net.udp.rx_errors");
    m_dropped_unknown_ = &reg.get_counter("net.udp.dropped_unknown");
    last_rx_truncated_ = rx_truncated_;
    last_rx_errors_ = rx_errors_;
    last_dropped_unknown_ = dropped_unknown_;
#if INTEREDGE_HAS_IO_URING
    if (uring_) {
      m_uring_completions_ = &reg.get_counter("net.uring.completions");
      m_uring_truncated_ = &reg.get_counter("net.uring.truncated");
      m_uring_parked_ = &reg.get_counter("net.uring.parked");
      m_uring_rearm_failed_ = &reg.get_counter("net.uring.rearm_failed");
      last_uring_completions_ = uring_->completions();
      last_uring_truncated_ = uring_->truncated();
      last_uring_parked_ = uring_->parked();
      last_uring_rearm_failed_ = uring_->rearm_failed();
    }
    if (uring_tx_) {
      m_tx_completions_ = &reg.get_counter("net.uring.tx.completions");
      m_tx_short_sends_ = &reg.get_counter("net.uring.tx.short_sends");
      m_tx_zc_used_ = &reg.get_counter("net.uring.tx.zc_used");
      m_tx_zc_fallback_ = &reg.get_counter("net.uring.tx.zc_fallback");
      m_tx_inflight_peak_ = &reg.get_gauge("net.uring.tx.inflight_peak");
      m_tx_submit_batches_ = &reg.get_counter("net.uring.tx.submit_batches");
      last_tx_completions_ = uring_tx_->completions();
      last_tx_short_sends_ = uring_tx_->short_sends();
      last_tx_zc_used_ = uring_tx_->zc_used();
      last_tx_zc_fallback_ = uring_tx_->zc_fallback();
      last_tx_submit_batches_ = uring_tx_->submit_batches();
    }
#endif
  }

 private:
  void open_socket(std::uint16_t port, bool reuse_port);
  void ensure_pool();
  // Synchronous sendto with the bounded EAGAIN retry loop — the shared
  // tail of send() and the staged paths' fallback.
  bool send_to_addr(const sockaddr_in* addr, const_byte_span datagram);
  // Delta-syncs the mirrored counters from the raw totals; a handful of
  // subtractions per rx batch, adds only when something moved.
  void sync_telemetry();
  std::size_t recv_batch_views_mmsg(std::size_t max,
                                    std::vector<std::pair<peer_id, buf::pkt_view>>& out);
#if INTEREDGE_HAS_IO_URING
  std::size_t recv_batch_views_uring(std::size_t max,
                                     std::vector<std::pair<peer_id, buf::pkt_view>>& out);
#endif

  int fd_ = -1;
  std::uint16_t port_ = 0;
  udp_backend backend_ = udp_backend::mmsg;
  udp_config cfg_;
  flat_hash64<sockaddr_in> peers_;     // peer_id -> addr
  flat_hash64<peer_id> by_source_;     // packed ip:port -> peer
  // Declaration order is lifetime order: slabs (pool_) outlive the cache
  // and the uring slots that reference them.
  std::unique_ptr<buf::buf_pool> pool_;
  std::optional<buf::buf_pool::cache> cache_;
#if INTEREDGE_HAS_IO_URING
  std::unique_ptr<uring_rx> uring_;
  std::unique_ptr<uring_tx> uring_tx_;  // reset before pool_: slots pin slabs
  std::vector<uring_completion> reap_scratch_;
#endif
  std::vector<buf::slab_ref> rx_slabs_;  // armed recvmmsg buffers, reused
  std::vector<std::pair<peer_id, buf::pkt_view>> view_scratch_;  // legacy recv_batch/poll
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_unknown_ = 0;
  std::uint64_t rx_empty_ = 0;
  std::uint64_t rx_partial_batches_ = 0;
  std::uint64_t rx_errors_ = 0;
  std::uint64_t rx_truncated_ = 0;
  std::uint64_t send_again_ = 0;
  counter* m_send_again_ = nullptr;
  counter* m_rx_truncated_ = nullptr;
  counter* m_rx_errors_ = nullptr;
  counter* m_dropped_unknown_ = nullptr;
  std::uint64_t last_rx_truncated_ = 0;
  std::uint64_t last_rx_errors_ = 0;
  std::uint64_t last_dropped_unknown_ = 0;
#if INTEREDGE_HAS_IO_URING
  counter* m_uring_completions_ = nullptr;
  counter* m_uring_truncated_ = nullptr;
  counter* m_uring_parked_ = nullptr;
  counter* m_uring_rearm_failed_ = nullptr;
  std::uint64_t last_uring_completions_ = 0;
  std::uint64_t last_uring_truncated_ = 0;
  std::uint64_t last_uring_parked_ = 0;
  std::uint64_t last_uring_rearm_failed_ = 0;
  counter* m_tx_completions_ = nullptr;
  counter* m_tx_short_sends_ = nullptr;
  counter* m_tx_zc_used_ = nullptr;
  counter* m_tx_zc_fallback_ = nullptr;
  gauge* m_tx_inflight_peak_ = nullptr;
  counter* m_tx_submit_batches_ = nullptr;
  std::uint64_t last_tx_completions_ = 0;
  std::uint64_t last_tx_short_sends_ = 0;
  std::uint64_t last_tx_zc_used_ = 0;
  std::uint64_t last_tx_zc_fallback_ = 0;
  std::uint64_t last_tx_submit_batches_ = 0;
#endif

  // Transient send failures retry this many times before the datagram is
  // given up on (UDP is lossy; upper layers own reliability).
  static constexpr std::size_t kSendRetries = 4;
};

// Single-threaded real-time driver for one or more endpoints.
class event_loop {
 public:
  using datagram_handler = std::function<void(peer_id from, const_byte_span data)>;
  // Batch handler: one call per drained burst, in arrival order.
  using batch_handler = std::function<void(std::span<std::pair<peer_id, bytes>> datagrams)>;
  // Zero-copy batch handler: slab views, valid for the duration of the
  // call (hold a clone to keep one longer).
  using views_handler =
      std::function<void(std::span<std::pair<peer_id, buf::pkt_view>> datagrams)>;

  // Attaches an endpoint: arriving datagrams go to `handler`.
  void attach(udp_endpoint& endpoint, datagram_handler handler);

  // Batch attach: readable bursts are drained via recv_batch and handed to
  // `handler` as one span per pass (the SN feeds these straight into its
  // batched datapath).
  void attach_batch(udp_endpoint& endpoint, batch_handler handler);

  // Zero-copy attach: bursts drained via recv_batch_views — no per-packet
  // copy between socket and handler.
  void attach_views(udp_endpoint& endpoint, views_handler handler);

  // Timer facility, signature-compatible with service_node/host_stack's
  // scheduler_fn.
  void schedule(nanoseconds delay, std::function<void()> fn);
  auto scheduler() {
    return [this](nanoseconds delay, std::function<void()> fn) {
      schedule(delay, std::move(fn));
    };
  }

  // Pumps sockets and timers until `deadline_from_now` elapses.
  // Returns the number of datagrams dispatched.
  std::size_t run_for(std::chrono::milliseconds deadline_from_now);

  // Pumps until no datagram arrives for `quiet` (and no timers are due),
  // up to `limit`. The usual test idiom: run until the exchange quiesces.
  std::size_t run_until_quiet(std::chrono::milliseconds quiet,
                              std::chrono::milliseconds limit);

 private:
  struct attached {
    udp_endpoint* endpoint;
    datagram_handler handler;       // per-datagram path
    batch_handler batch;            // batch path (used when set)
    views_handler views;            // zero-copy path (used when set)
  };
  struct timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const timer& other) const {
      return due != other.due ? due > other.due : seq > other.seq;
    }
  };

  // One pass: fire due timers, drain readable sockets. Returns datagrams
  // dispatched; `waited` reports whether it had to block.
  std::size_t pass(std::chrono::milliseconds max_wait);

  std::vector<attached> endpoints_;
  std::vector<std::pair<peer_id, bytes>> batch_scratch_;  // reused per pass
  std::vector<std::pair<peer_id, buf::pkt_view>> views_scratch_;  // reused per pass
  std::priority_queue<timer, std::vector<timer>, std::greater<>> timers_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace interedge::net
