// Simulated secure-enclave runtime (paper §6 "Privacy", Appendix C).
//
// Substitution for AMD SEV: we cannot run real encrypted VMs, so the
// enclave boundary is modeled the way SEV actually costs — "enclaves
// typically have little computational overhead, but do have I/O overhead"
// (Appendix C). Every packet crossing the boundary pays:
//   * a bounce-buffer copy in and out (unencrypted shared memory <->
//     enclave-private memory, exactly the SEV-SNP data path), and
//   * an optional calibrated per-transition busy-wait for the VMEXIT/
//     VMENTER cost, used by the Table 1 benchmark.
//
// The runtime also provides the two enclave facilities services rely on:
//   * sealed storage — checkpoints encrypted under a key derived from the
//     module measurement, so a tampered module cannot unseal state;
//   * an attestation hook via the node TPM (see attestation.h).
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/clock.h"
#include "core/service_module.h"
#include "enclave/attestation.h"

namespace interedge::enclave {

struct enclave_config {
  // Bounce-buffer copies on entry and exit (the structural I/O cost).
  bool bounce_buffers = true;
  // Calibrated additional cost per boundary crossing (busy-wait, real
  // time; used only by real-time benchmarks — keep 0 in simulations).
  nanoseconds transition_cost{0};
  // Device secret for sealing (provisioned per SN).
  bytes sealing_secret;
};

struct enclave_stats {
  std::uint64_t transitions_in = 0;
  std::uint64_t transitions_out = 0;
  std::uint64_t bytes_copied = 0;
};

// Wraps a service module so all of its packet processing happens "inside"
// the enclave. Drop-in service_module decorator: the execution environment
// deploys the wrapper like any other module.
class enclave_runtime final : public core::service_module {
 public:
  enclave_runtime(std::unique_ptr<core::service_module> inner, enclave_config config);
  ~enclave_runtime() override;

  ilp::service_id id() const override { return inner_->id(); }
  std::string_view name() const override { return inner_->name(); }
  bool content_dependent() const override { return inner_->content_dependent(); }
  void start(core::service_context& ctx) override { inner_->start(ctx); }

  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  // Checkpoints are sealed: ciphertext bound to the module measurement.
  bytes checkpoint(core::service_context& ctx) override;
  void restore(core::service_context& ctx, const_byte_span state) override;

  const enclave_stats& stats() const { return stats_; }
  const measurement& module_measurement() const { return measurement_; }

  // Sealing primitives (exposed for tests and for services that seal
  // application data directly).
  bytes seal(const_byte_span plaintext);
  std::optional<bytes> unseal(const_byte_span sealed) const;

 private:
  void cross_boundary(const_byte_span data, bool inbound);

  std::unique_ptr<core::service_module> inner_;
  enclave_config config_;
  measurement measurement_;
  bytes bounce_;  // reused bounce buffer
  std::uint64_t seal_counter_ = 0;
  enclave_stats stats_;
};

}  // namespace interedge::enclave
