#include "enclave/enclave.h"

#include <chrono>
#include <cstring>

#include "crypto/aead.h"
#include "crypto/kdf.h"

namespace interedge::enclave {
namespace {

// Busy-wait for a real-time duration (benchmark calibration only).
void spin_for(nanoseconds d) {
  if (d.count() <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < d) {
  }
}

bytes sealing_key(const bytes& secret, const measurement& m) {
  bytes info(m.begin(), m.end());
  return crypto::hkdf(to_bytes("interedge-enclave-seal-v1"), secret, info, 32);
}

}  // namespace

enclave_runtime::enclave_runtime(std::unique_ptr<core::service_module> inner,
                                 enclave_config config)
    : inner_(std::move(inner)), config_(std::move(config)) {
  // Measure the wrapped module; in a real deployment this hashes the code
  // image loaded into the enclave.
  measurement_ = measure_module(inner_->name(), "v1", to_bytes(inner_->name()));
}

enclave_runtime::~enclave_runtime() = default;

void enclave_runtime::cross_boundary(const_byte_span data, bool inbound) {
  if (inbound) {
    ++stats_.transitions_in;
  } else {
    ++stats_.transitions_out;
  }
  if (config_.bounce_buffers && !data.empty()) {
    // Copy through the bounce buffer — the SEV-style unencrypted shared
    // page. Volatile touch prevents the copy from being optimized away.
    bounce_.resize(data.size());
    std::memcpy(bounce_.data(), data.data(), data.size());
    volatile std::uint8_t sink = bounce_[bounce_.size() / 2];
    (void)sink;
    stats_.bytes_copied += data.size();
  }
  spin_for(config_.transition_cost);
}

core::module_result enclave_runtime::on_packet(core::service_context& ctx,
                                               const core::packet& pkt) {
  cross_boundary(pkt.payload, /*inbound=*/true);
  core::module_result result = inner_->on_packet(ctx, pkt);
  // The exit crossing copies whatever leaves the enclave; approximate with
  // the packet payload (forwarded copies reference the same bytes).
  cross_boundary(pkt.payload, /*inbound=*/false);
  return result;
}

bytes enclave_runtime::seal(const_byte_span plaintext) {
  const bytes key = sealing_key(config_.sealing_secret, measurement_);
  std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  const std::uint64_t ctr = ++seal_counter_;
  for (int i = 0; i < 8; ++i) nonce[i] = static_cast<std::uint8_t>(ctr >> (8 * i));
  bytes out(nonce, nonce + sizeof(nonce));
  const bytes sealed = crypto::aead_seal(
      key.data(), nonce, const_byte_span(measurement_.data(), measurement_.size()), plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<bytes> enclave_runtime::unseal(const_byte_span sealed) const {
  if (sealed.size() < crypto::kAeadNonceSize) return std::nullopt;
  const bytes key = sealing_key(config_.sealing_secret, measurement_);
  return crypto::aead_open(key.data(), sealed.data(),
                           const_byte_span(measurement_.data(), measurement_.size()),
                           sealed.subspan(crypto::kAeadNonceSize));
}

bytes enclave_runtime::checkpoint(core::service_context& ctx) {
  return seal(inner_->checkpoint(ctx));
}

void enclave_runtime::restore(core::service_context& ctx, const_byte_span state) {
  const auto plain = unseal(state);
  if (!plain) return;  // tampered or foreign-measurement state: refuse
  inner_->restore(ctx, *plain);
}

}  // namespace interedge::enclave
