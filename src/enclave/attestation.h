// TPM-style attestation (paper §3.1: "We assume that SNs have TPMs that can
// be used for attestation").
//
// Substitution for hardware TPMs: each SN is provisioned with a device key
// by an attestation authority; a quote is an HMAC over (measurement ||
// nonce). The authority verifies quotes against the provisioned key and an
// expected-measurement registry. This exercises the full
// measure → quote → verify flow without hardware.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace interedge::enclave {

using measurement = crypto::sha256::digest;

// Measures a service module build: hash of (name, version, code image).
measurement measure_module(std::string_view name, std::string_view version,
                           const_byte_span code_image);

// The per-SN quoting device.
class tpm {
 public:
  explicit tpm(bytes device_key) : device_key_(std::move(device_key)) {}

  // Extends the measurement register (TPM PCR-extend semantics: order
  // matters and extension is one-way).
  void extend(const measurement& m);
  const measurement& register_value() const { return register_; }

  // Produces a quote over the current register and a verifier nonce.
  bytes quote(const_byte_span nonce) const;

 private:
  bytes device_key_;
  measurement register_{};
};

// Provisioning authority + verifier.
class attestation_authority {
 public:
  explicit attestation_authority(std::uint64_t seed);

  // Provisions a device key for an SN; returns the key to install in its TPM.
  bytes provision(std::uint64_t node_id);

  // Registers a golden register value: the TPM register an SN in a good
  // state would hold after all of its extend() calls.
  void expect(const std::string& label, const measurement& m);

  // Verifies a quote from `node_id` over nonce, against the golden value.
  bool verify(std::uint64_t node_id, const std::string& label, const_byte_span nonce,
              const_byte_span quote) const;

 private:
  bytes key_for(std::uint64_t node_id) const;
  bytes root_secret_;
  std::map<std::string, measurement> expected_;
};

}  // namespace interedge::enclave
