#include "enclave/attestation.h"

#include "crypto/kdf.h"

namespace interedge::enclave {

measurement measure_module(std::string_view name, std::string_view version,
                           const_byte_span code_image) {
  crypto::sha256 h;
  h.update(to_bytes("interedge-module-measurement-v1"));
  h.update(to_bytes(name));
  h.update(to_bytes("\x00"));
  h.update(to_bytes(version));
  h.update(to_bytes("\x00"));
  h.update(code_image);
  return h.finish();
}

void tpm::extend(const measurement& m) {
  crypto::sha256 h;
  h.update(register_);
  h.update(m);
  register_ = h.finish();
}

bytes tpm::quote(const_byte_span nonce) const {
  bytes msg;
  msg.insert(msg.end(), register_.begin(), register_.end());
  msg.insert(msg.end(), nonce.begin(), nonce.end());
  const auto mac = crypto::hmac_sha256(device_key_, msg);
  return bytes(mac.begin(), mac.end());
}

attestation_authority::attestation_authority(std::uint64_t seed) {
  std::uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  const auto prk = crypto::hkdf_extract(to_bytes("attestation-authority"),
                                        const_byte_span(seed_bytes, 8));
  root_secret_.assign(prk.begin(), prk.end());
}

bytes attestation_authority::key_for(std::uint64_t node_id) const {
  std::uint8_t info[8];
  for (int i = 0; i < 8; ++i) info[i] = static_cast<std::uint8_t>(node_id >> (8 * i));
  return crypto::hkdf_expand(root_secret_, const_byte_span(info, 8), 32);
}

bytes attestation_authority::provision(std::uint64_t node_id) { return key_for(node_id); }

void attestation_authority::expect(const std::string& label, const measurement& m) {
  expected_[label] = m;
}

bool attestation_authority::verify(std::uint64_t node_id, const std::string& label,
                                   const_byte_span nonce, const_byte_span quote) const {
  auto it = expected_.find(label);
  if (it == expected_.end()) return false;
  bytes msg(it->second.begin(), it->second.end());
  msg.insert(msg.end(), nonce.begin(), nonce.end());
  const auto mac = crypto::hmac_sha256(key_for(node_id), msg);
  return ct_equal(const_byte_span(mac.data(), mac.size()), quote);
}

}  // namespace interedge::enclave
