#include "scenario/workload.h"

#include <cmath>
#include <stdexcept>

namespace interedge::scenario {

namespace {
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ root;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  const std::uint64_t mixed = splitmix64(h);
  return mixed == 0 ? 1 : mixed;
}

zipf_sampler::zipf_sampler(std::size_t n, double exponent, std::uint64_t seed)
    : rng_(seed) {
  if (n == 0) throw std::invalid_argument("zipf_sampler: n must be nonzero");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::size_t zipf_sampler::next() {
  const double u = rng_.uniform();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<nanoseconds> poisson_arrivals(std::span<const rate_phase> phases,
                                          std::uint64_t seed, std::size_t max_events) {
  std::vector<nanoseconds> out;
  rng r(seed);
  for (const rate_phase& p : phases) {
    if (p.rate_pps <= 0.0 || p.end <= p.begin) continue;
    const double mean_gap_ns = 1e9 / p.rate_pps;
    double t = static_cast<double>(p.begin.count());
    const double end = static_cast<double>(p.end.count());
    while (true) {
      // Exponential inter-arrival: -ln(1-u) * mean. uniform() < 1 so the
      // log argument is never zero.
      t += -std::log(1.0 - r.uniform()) * mean_gap_ns;
      if (t >= end) break;
      out.push_back(nanoseconds(static_cast<std::int64_t>(t)));
      if (out.size() >= max_events) {
        throw std::invalid_argument("poisson_arrivals: schedule exceeds max_events");
      }
    }
  }
  return out;
}

}  // namespace interedge::scenario
