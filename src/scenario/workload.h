// Seeded workload generators for the scenario engine (DESIGN.md §14).
//
// Every randomness source a suite uses hangs off one root seed through
// derive_seed(root, label): two runs with the same root seed draw the same
// arrival times, the same object popularity sequence, and the same attack
// interleavings — the precondition for digest-identical replay. The
// generators are pure (no ambient entropy, no wall clock): they emit plain
// data (timestamps, ranks) that suites schedule onto the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace interedge::scenario {

// Stable per-(root, purpose) stream seed: FNV-1a over the label folded
// into the root, then a splitmix64 finalizer so adjacent labels do not
// produce correlated xoshiro states. Never returns 0 (rng treats seeds
// uniformly, but callers use 0 as "unset").
std::uint64_t derive_seed(std::uint64_t root, std::string_view label);

// Zipf-distributed object popularity (CDN catalogs, topic fan-in): rank 0
// is the hottest object. Sampling is a binary search over the precomputed
// CDF — exact, not the rejection approximation, so a seed fully determines
// the sequence.
class zipf_sampler {
 public:
  // n objects, P(rank k) ∝ 1/(k+1)^exponent.
  zipf_sampler(std::size_t n, double exponent, std::uint64_t seed);

  std::size_t next();
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  rng rng_;
};

// One segment of a piecewise-constant arrival rate: `rate_pps` packets per
// second over [begin, end). A flash crowd is two phases — baseline then a
// spike at many times the rate.
struct rate_phase {
  nanoseconds begin{0};
  nanoseconds end{0};
  double rate_pps = 0.0;
};

// Open-loop Poisson arrivals over a phase schedule: exponential
// inter-arrival times at each phase's rate, phases walked in order.
// Returns absolute event times, sorted. `max_events` caps runaway
// schedules (a suite asking for more is a bug, not a workload).
std::vector<nanoseconds> poisson_arrivals(std::span<const rate_phase> phases,
                                          std::uint64_t seed,
                                          std::size_t max_events = 1u << 20);

}  // namespace interedge::scenario
