#include "scenario/suites.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/serial.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "core/service_node.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "edomain/observability.h"
#include "scenario/workload.h"
#include "services/clients/content.h"
#include "services/clients/mobility_client.h"
#include "services/clients/pubsub_client.h"
#include "services/common.h"
#include "services/ddos.h"
#include "services/delivery.h"
#include "services/mobility.h"
#include "simnet/simulation.h"

namespace interedge::scenario {

namespace {

using namespace std::chrono_literals;
using core::peer_id;
using deploy::edomain_id;

// Every suite traces every send: the SLO plane's latency series is the
// trace collector's completion rollup, so sampling would starve it.
deploy::deployment_config scenario_config(std::uint64_t seed) {
  deploy::deployment_config cfg;
  cfg.seed = seed;
  cfg.trace_sample_shift = 0;
  cfg.host_path_span_capacity = 512;
  cfg.sn_path_span_capacity = 4096;
  cfg.hosts_allow_direct = false;
  return cfg;
}

// Simulation-scale burn windows (same shape slo_health_test validates): a
// page confirms over 10ms AND 20ms; warn over 40/80ms.
slo::burn_windows sim_windows() {
  slo::burn_windows w;
  w.fast_short = 10ms;
  w.fast_long = 20ms;
  w.page_burn = 14.4;
  w.slow_short = 40ms;
  w.slow_long = 80ms;
  w.warn_burn = 3.0;
  w.clear_after = 2;
  return w;
}

// Arms the plane's health store and one latency SLO keyed on the
// collector's per-service completion histogram.
void arm_latency_slo(edomain::observability_plane& plane, const std::string& slo_name,
                     const std::string& service_label, std::uint64_t threshold_ns) {
  timeseries_store::config series;
  series.window = 5ms;
  series.windows = 64;
  plane.enable_health(series, sim_windows());
  slo::slo_target t;
  t.name = slo_name;
  t.service = service_label;
  t.latency_series =
      render_metric_key("edomain.path.total_ns", {{"service", service_label}});
  t.threshold_ns = threshold_ns;
  t.error_budget = 0.01;
  plane.add_slo(t);
}

// SNs push merged metrics + drained spans into the plane on their own ticks.
void start_pushes(deploy::deployment& d, const std::vector<peer_id>& sns,
                  edomain::observability_plane& plane, std::uint64_t max_pushes) {
  for (const peer_id id : sns) {
    d.sn(id).start_observability_push(
        2ms,
        [&plane, id](const metrics_registry& merged,
                     std::span<const trace::path_span> spans) {
          plane.ingest(id, merged, spans);
        },
        max_pushes);
  }
}

// Control ticks every 5ms: fold host-side span ends into the plane
// (completing end-to-end latencies) and evaluate the SLOs.
void schedule_health_ticks(deploy::deployment& d, time_point t0, nanoseconds until,
                           std::vector<host::host_stack*> hosts,
                           edomain::observability_plane& plane) {
  for (nanoseconds off = 5ms; off <= until; off += 5ms) {
    d.net().at(t0 + off, [&d, hosts, &plane] {
      std::vector<trace::path_span> ends;
      for (host::host_stack* h : hosts) h->drain_path_spans(ends);
      plane.traces().ingest(std::span<const trace::path_span>(ends));
      plane.health_tick(d.net().now());
    });
  }
}

bytes stamped_payload(time_point now, std::size_t pad_to = 0) {
  writer w(16);
  w.u64(static_cast<std::uint64_t>(now.time_since_epoch().count()));
  bytes out = w.take();
  if (out.size() < pad_to) out.resize(pad_to, 0x5c);
  return out;
}

std::int64_t stamp_of(const bytes& payload) {
  reader r(payload);
  return static_cast<std::int64_t>(r.u64());
}

double p_quantile_ms(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

// Per-stream continuity: delivery counts, client-side latency, and the
// longest silence (the suite's unavailability-window measure).
struct stream_stats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::int64_t first_sent_ns = -1;
  std::int64_t last_recv_ns = -1;
  std::int64_t max_gap_ns = 0;
  std::vector<double> latencies_ms;

  void on_sent(time_point now) {
    if (first_sent_ns < 0) first_sent_ns = now.time_since_epoch().count();
    ++sent;
  }
  void on_recv(time_point now, std::int64_t sent_ns) {
    const std::int64_t now_ns = now.time_since_epoch().count();
    const std::int64_t prev = last_recv_ns >= 0 ? last_recv_ns : first_sent_ns;
    if (prev >= 0) max_gap_ns = std::max(max_gap_ns, now_ns - prev);
    last_recv_ns = now_ns;
    ++received;
    latencies_ms.push_back(static_cast<double>(now_ns - sent_ns) / 1e6);
  }
  // Close the window at end of run: silence after the last delivery counts.
  void finish(time_point end) {
    if (last_recv_ns >= 0) {
      max_gap_ns = std::max(max_gap_ns, end.time_since_epoch().count() - last_recv_ns);
    }
  }
};

}  // namespace

// ---- flash_crowd -------------------------------------------------------
//
// CDN bundle under a 50x arrival spike: 8 clients behind one access SN
// fetch a 16-object Zipf(1.1) catalog from an origin two edomains away.
// The caching bundle must absorb the spike at the edge — p99 stays inside
// the latency SLO, the origin sees a small fraction of requests, and no
// burn-rate page fires.
scenario_report run_flash_crowd(std::uint64_t seed, const suite_options& opts) {
  scenario_report rep;
  rep.suite = "flash_crowd";
  rep.seed = seed;

  deploy::deployment_config dcfg = scenario_config(seed);
  dcfg.sn_profiler_hz = opts.profiler_hz;
  dcfg.sn_profiler_force_timer = opts.profiler_force_timer;
  deploy::deployment d(dcfg);
  const edomain_id dom1 = d.add_edomain();
  const peer_id gw1 = d.add_sn(dom1);
  const peer_id sn_a = d.add_sn(dom1);
  const edomain_id dom2 = d.add_edomain();
  const peer_id gw2 = d.add_sn(dom2);

  constexpr int kClients = 8;
  std::vector<host::host_stack*> clients;
  for (int i = 0; i < kClients; ++i) clients.push_back(&d.add_host(dom1, sn_a));
  host::host_stack& origin_host = d.add_host(dom2, gw2);
  d.interconnect();
  deploy::deploy_standard_services(d);

  behavior_digest digest;
  digest.attach(d.net());

  services::content_origin origin(origin_host);
  constexpr std::size_t kObjects = 16;
  std::vector<std::string> keys;
  for (std::size_t k = 0; k < kObjects; ++k) {
    keys.push_back("obj" + std::to_string(k));
    origin.put(keys.back(), bytes(600, static_cast<std::uint8_t>('a' + k)));
  }
  std::vector<std::unique_ptr<services::content_client>> fetchers;
  for (host::host_stack* c : clients) {
    fetchers.push_back(std::make_unique<services::content_client>(*c));
  }

  edomain::observability_plane& plane = d.core_of(dom1).observability();
  arm_latency_slo(plane, "content-p99", "delivery", 10'000'000);
  int pages = 0;
  plane.set_alert_hook([&pages](const slo::slo_alert& a) {
    if (a.state == slo::slo_state::page) ++pages;
  });
  start_pushes(d, {gw1, sn_a}, plane, /*max_pushes=*/60);

  const time_point t0 = d.net().now();
  std::vector<host::host_stack*> all_hosts = clients;
  all_hosts.push_back(&origin_host);
  schedule_health_ticks(d, t0, 110ms, all_hosts, plane);

  // 50x spike: 300 pps baseline, 15000 pps for 20ms, then cool-down.
  const rate_phase phases[] = {{0ms, 40ms, 300.0}, {40ms, 60ms, 15000.0},
                               {60ms, 80ms, 300.0}};
  const auto arrivals = poisson_arrivals(phases, derive_seed(seed, "flash.arrivals"));
  zipf_sampler catalog(kObjects, 1.1, derive_seed(seed, "flash.zipf"));

  std::uint64_t issued = 0, coalesced = 0, completed = 0;
  std::vector<double> fetch_ms;
  // Request collapsing, as a real edge cache front-end would: a client
  // never re-issues a key it already has in flight.
  std::vector<std::set<std::string>> outstanding(kClients);
  std::vector<std::map<std::string, std::int64_t>> issue_ns(kClients);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const int c = static_cast<int>(i % kClients);
    const std::string key = keys[catalog.next()];
    d.net().at(t0 + arrivals[i], [&, c, key] {
      if (!outstanding[c].insert(key).second) {
        ++coalesced;
        return;
      }
      ++issued;
      issue_ns[c][key] = d.net().now().time_since_epoch().count();
      fetchers[c]->fetch(origin_host.addr(), key, [&, c](const std::string& k, bytes) {
        ++completed;
        outstanding[c].erase(k);
        fetch_ms.push_back(
            static_cast<double>(d.net().now().time_since_epoch().count() - issue_ns[c][k]) /
            1e6);
      });
    });
  }

  d.net().run_until(t0 + 120ms);

  auto* dsvc = static_cast<services::delivery_service*>(
      d.sn(sn_a).env().module_for(ilp::svc::delivery));
  const std::uint64_t hits = dsvc->cache_hits();
  const std::uint64_t misses = dsvc->cache_misses();

  rep.checks.push_back(check_min("fetch_success_ratio", ratio(completed, issued), 0.99));
  rep.checks.push_back(check_max("fetch_p99_ms", p_quantile_ms(fetch_ms, 0.99), 10.0));
  rep.checks.push_back(check_min("edge_cache_hit_ratio", ratio(hits, hits + misses), 0.5));
  rep.checks.push_back(
      check_max("origin_load_fraction", ratio(origin.requests_served(), issued), 0.5));
  rep.checks.push_back(check_max("slo_pages", static_cast<double>(pages), 0.0));

  rep.stats["arrivals"] = static_cast<double>(arrivals.size());
  rep.stats["issued"] = static_cast<double>(issued);
  rep.stats["coalesced"] = static_cast<double>(coalesced);
  rep.stats["origin_served"] = static_cast<double>(origin.requests_served());
  rep.stats["edge_cache_hits"] = static_cast<double>(hits);
  rep.stats["edge_cache_misses"] = static_cast<double>(misses);
  rep.stats["packets"] = static_cast<double>(digest.packets());
  if (plane.series() != nullptr) {
    const std::string key =
        render_metric_key("edomain.path.total_ns", {{"service", "delivery"}});
    rep.stats["plane_completed"] =
        static_cast<double>(plane.series()->hist_count(key, 200ms));
    rep.stats["plane_p99_ms"] =
        static_cast<double>(plane.series()->hist_quantile(key, 200ms, 0.99)) / 1e6;
  }
  rep.behavior_digest = digest.value();
  return rep;
}

// ---- pubsub_storm ------------------------------------------------------
//
// Fan-out amplification across three edomains: one publisher, six
// subscribers spread over every domain, and a 20x publish storm. Every
// publish amplifies into six cross-domain deliveries; the suite verdicts
// delivery completeness and end-to-end latency under the storm.
scenario_report run_pubsub_storm(std::uint64_t seed) {
  scenario_report rep;
  rep.suite = "pubsub_storm";
  rep.seed = seed;

  deploy::deployment d(scenario_config(seed));
  const edomain_id dom1 = d.add_edomain();
  const peer_id gw1 = d.add_sn(dom1);
  const peer_id sn_a = d.add_sn(dom1);
  const edomain_id dom2 = d.add_edomain();
  const peer_id gw2 = d.add_sn(dom2);
  const edomain_id dom3 = d.add_edomain();
  const peer_id gw3 = d.add_sn(dom3);

  host::host_stack& publisher = d.add_host(dom1, sn_a);
  std::vector<host::host_stack*> sub_hosts;
  sub_hosts.push_back(&d.add_host(dom1, sn_a));
  sub_hosts.push_back(&d.add_host(dom1, gw1));
  sub_hosts.push_back(&d.add_host(dom2, gw2));
  sub_hosts.push_back(&d.add_host(dom2, gw2));
  sub_hosts.push_back(&d.add_host(dom3, gw3));
  sub_hosts.push_back(&d.add_host(dom3, gw3));
  d.interconnect();
  deploy::deploy_standard_services(d);

  behavior_digest digest;
  digest.attach(d.net());

  services::pubsub_client pub(publisher);
  std::vector<std::unique_ptr<services::pubsub_client>> subs;
  std::uint64_t delivered = 0;
  std::vector<double> deliver_ms;
  for (host::host_stack* h : sub_hosts) {
    subs.push_back(std::make_unique<services::pubsub_client>(*h));
    subs.back()->subscribe("storm", [&, h](const std::string&, bytes payload) {
      ++delivered;
      deliver_ms.push_back(
          static_cast<double>(d.net().now().time_since_epoch().count() - stamp_of(payload)) /
          1e6);
    });
  }
  d.run();  // subscriptions propagate

  edomain::observability_plane& plane = d.core_of(dom1).observability();
  arm_latency_slo(plane, "pubsub-p99", "pubsub", 10'000'000);
  int pages = 0;
  plane.set_alert_hook([&pages](const slo::slo_alert& a) {
    if (a.state == slo::slo_state::page) ++pages;
  });
  start_pushes(d, {gw1, sn_a}, plane, /*max_pushes=*/60);

  const time_point t0 = d.net().now();
  std::vector<host::host_stack*> all_hosts = sub_hosts;
  all_hosts.push_back(&publisher);
  schedule_health_ticks(d, t0, 110ms, all_hosts, plane);

  // 20x storm: 200 pps baseline, 4000 pps for 20ms, then cool-down.
  const rate_phase phases[] = {{0ms, 40ms, 200.0}, {40ms, 60ms, 4000.0},
                               {60ms, 80ms, 200.0}};
  const auto arrivals = poisson_arrivals(phases, derive_seed(seed, "storm.arrivals"));
  std::uint64_t publishes = 0;
  for (const nanoseconds when : arrivals) {
    d.net().at(t0 + when, [&] {
      ++publishes;
      pub.publish("storm", stamped_payload(d.net().now()));
    });
  }

  d.net().run_until(t0 + 120ms);

  const std::uint64_t expected = publishes * sub_hosts.size();
  rep.checks.push_back(check_min("delivery_ratio", ratio(delivered, expected), 0.98));
  rep.checks.push_back(check_max("deliver_p99_ms", p_quantile_ms(deliver_ms, 0.99), 10.0));
  rep.checks.push_back(check_max("slo_pages", static_cast<double>(pages), 0.0));

  rep.stats["publishes"] = static_cast<double>(publishes);
  rep.stats["delivered"] = static_cast<double>(delivered);
  rep.stats["subscribers"] = static_cast<double>(sub_hosts.size());
  rep.stats["packets"] = static_cast<double>(digest.packets());
  rep.stats["amplification"] =
      publishes == 0 ? 0.0 : static_cast<double>(digest.packets()) / publishes;
  if (plane.series() != nullptr) {
    const std::string key =
        render_metric_key("edomain.path.total_ns", {{"service", "pubsub"}});
    rep.stats["plane_completed"] =
        static_cast<double>(plane.series()->hist_count(key, 200ms));
  }
  rep.behavior_digest = digest.value();
  return rep;
}

// ---- ddos_mix ----------------------------------------------------------
//
// Volumetric + spoofed attack through a bandwidth-limited edge. Phase A
// (unprotected): an east attacker floods the victim's 16 Mbps access link
// at ~24 Mbps offered; queueing delay drives legitimate p99 over the SLO,
// the burn-rate monitor pages, and the page freezes the edge SNs' flight
// recorders. Phase B (protect at 60ms): the victim turns on protection at
// every edge SN — allowlist+uRPF admits the west sender, a capability
// token admits the east sender, the flood and a spoofed wave claiming the
// allowlisted address are shed at their entry edge — and legitimate p99
// recovers inside the SLO while delivery stays lossless.
scenario_report run_ddos_mix(std::uint64_t seed) {
  scenario_report rep;
  rep.suite = "ddos_mix";
  rep.seed = seed;

  deploy::deployment d(scenario_config(seed));
  const edomain_id west = d.add_edomain();
  const peer_id gw_w = d.add_sn(west);
  const peer_id sn_w = d.add_sn(west);
  const edomain_id east = d.add_edomain();
  const peer_id gw_e = d.add_sn(east);

  host::host_stack& victim = d.add_host(west, sn_w);
  host::host_stack& legit_w = d.add_host(west, gw_w);
  host::host_stack& legit_e = d.add_host(east, gw_e);
  host::host_stack& attacker = d.add_host(east, gw_e);
  host::host_stack& spoofer = d.add_host(east, gw_e);
  d.interconnect();

  // One token secret across the deployment's SNs so a capability minted at
  // the victim's edge verifies at the attack's entry edge too.
  deploy::standard_services_config svc_cfg;
  svc_cfg.ddos = false;
  deploy::deploy_standard_services(d, svc_cfg);
  const std::uint64_t secret_seed = derive_seed(seed, "ddos.secret");
  d.deploy_service([secret_seed](edomain::domain_core&, peer_id) {
    return std::make_unique<services::ddos_service>(1000.0, 200.0, secret_seed);
  });

  // The victim's access link is the bottleneck: 16 Mbps, so the ~24 Mbps
  // flood builds a queue and every legitimate packet behind it waits.
  sim::link_properties bottleneck;
  bottleneck.latency = std::chrono::microseconds(500);
  bottleneck.bandwidth_bps = 16'000'000;
  d.net().set_link_symmetric(static_cast<sim::node_id>(gw_w),
                             static_cast<sim::node_id>(sn_w), bottleneck);

  behavior_digest digest;
  digest.attach(d.net());

  edomain::observability_plane& plane = d.core_of(west).observability();
  arm_latency_slo(plane, "legit-p99", "ddos", 10'000'000);
  int pages = 0;
  std::int64_t first_page_ns = 0;
  plane.set_alert_hook([&](const slo::slo_alert& a) {
    if (a.state != slo::slo_state::page) return;
    ++pages;
    if (first_page_ns == 0) {
      first_page_ns = static_cast<std::int64_t>(a.at_ns);
      // Pager's first move: freeze the edge SNs' black boxes so the spans
      // that tripped the burn survive as a postmortem.
      d.sn(sn_w).blackbox()->trigger(kTrigSloPage, a.at_ns);
      d.sn(gw_w).blackbox()->trigger(kTrigSloPage, a.at_ns);
    }
  });
  start_pushes(d, {gw_w, sn_w, gw_e}, plane, /*max_pushes=*/70);

  const time_point t0 = d.net().now();
  schedule_health_ticks(d, t0, 135ms, {&victim, &legit_w, &legit_e}, plane);

  // Victim-side accounting: legitimate payloads are an 8-byte timestamp,
  // attack payloads are 1000 bytes with the timestamp up front. Windows
  // bucket by SEND time — a packet sent during the flood but delivered
  // after the queue drains belongs to the attack phase, not recovery.
  const std::int64_t protect_ns = (t0 + 62ms).time_since_epoch().count();
  const std::int64_t attack_lo = (t0 + 25ms).time_since_epoch().count();
  const std::int64_t attack_hi = (t0 + 55ms).time_since_epoch().count();
  const std::int64_t recover_lo = (t0 + 95ms).time_since_epoch().count();
  std::uint64_t legit_recv = 0, attack_recv_pre = 0, attack_recv_post = 0;
  std::uint64_t token_acks = 0;
  std::vector<double> legit_attack_ms, legit_recovery_ms;
  victim.set_default_handler([&](const ilp::ilp_header&, bytes payload) {
    const std::int64_t sent_ns = stamp_of(payload);
    if (payload.size() >= 1000) {
      (sent_ns >= protect_ns ? attack_recv_post : attack_recv_pre)++;
      return;
    }
    ++legit_recv;
    const std::int64_t now_ns = d.net().now().time_since_epoch().count();
    const double ms = static_cast<double>(now_ns - sent_ns) / 1e6;
    if (sent_ns >= attack_lo && sent_ns < attack_hi) legit_attack_ms.push_back(ms);
    if (sent_ns >= recover_lo) legit_recovery_ms.push_back(ms);
  });
  // The allow op replies with the minted token over a control packet;
  // without a control handler it would fall through to the data handler.
  victim.set_control_handler(ilp::svc::ddos_protect,
                             [&token_acks](const ilp::ilp_header&, bytes) { ++token_acks; });

  host::connection conn_w = legit_w.open(victim.addr(), ilp::svc::ddos_protect);
  host::connection conn_e = legit_e.open(victim.addr(), ilp::svc::ddos_protect);
  // Mint the east sender's capability up front (the secret is fixed at
  // deploy); it is inert until the victim turns protection on.
  d.net().at(t0 + 1ms, [&] {
    auto* mod = static_cast<services::ddos_service*>(
        d.sn(gw_e).env().module_for(ilp::svc::ddos_protect));
    const bytes tok = mod->token_for(victim.addr(), legit_e.addr());
    conn_e.set_option_str(
        static_cast<ilp::meta_key>(services::skey::auth_token),
        std::string_view(reinterpret_cast<const char*>(tok.data()), tok.size()));
  });

  // Legitimate flows: 200 pps each, the whole run.
  std::uint64_t legit_sent = 0;
  const rate_phase legit_span[] = {{2ms, 120ms, 200.0}};
  for (const nanoseconds when :
       poisson_arrivals(legit_span, derive_seed(seed, "ddos.legit_w"))) {
    d.net().at(t0 + when, [&] {
      ++legit_sent;
      conn_w.send(stamped_payload(d.net().now()));
    });
  }
  for (const nanoseconds when :
       poisson_arrivals(legit_span, derive_seed(seed, "ddos.legit_e"))) {
    d.net().at(t0 + when, [&] {
      ++legit_sent;
      conn_e.send(stamped_payload(d.net().now()));
    });
  }

  // The flood: 3000 pps of 1000-byte packets, each on a fresh connection
  // (so pre-protect every packet takes its own slow-path verdict).
  std::uint64_t attack_sent_pre = 0, attack_sent_post = 0;
  {
    const rate_phase flood[] = {{5ms, 120ms, 3000.0}};
    std::uint64_t conn = 100000;
    for (const nanoseconds when :
         poisson_arrivals(flood, derive_seed(seed, "ddos.flood"))) {
      d.net().at(t0 + when, [&, conn] {
        const time_point now = d.net().now();
        (now.time_since_epoch().count() >= protect_ns ? attack_sent_post
                                                      : attack_sent_pre)++;
        ilp::ilp_header h;
        h.service = ilp::svc::ddos_protect;
        h.connection = conn;
        h.flags = ilp::kFlagFromHost;
        h.set_meta_u64(ilp::meta_key::src_addr, attacker.addr());
        h.set_meta_u64(ilp::meta_key::dest_addr, victim.addr());
        attacker.pipes().send(attacker.first_hop_sn(), h, stamped_payload(now, 1000));
      });
      ++conn;
    }
  }

  // Spoofed wave after mitigation: claims the allowlisted west sender's
  // address from the east edge — uRPF kills it at gw_e.
  {
    const rate_phase wave[] = {{70ms, 110ms, 500.0}};
    std::uint64_t conn = 500000;
    for (const nanoseconds when :
         poisson_arrivals(wave, derive_seed(seed, "ddos.spoof"))) {
      d.net().at(t0 + when, [&, conn] {
        ilp::ilp_header h;
        h.service = ilp::svc::ddos_protect;
        h.connection = conn;
        h.flags = ilp::kFlagFromHost;
        h.set_meta_u64(ilp::meta_key::src_addr, legit_w.addr());  // spoofed
        h.set_meta_u64(ilp::meta_key::dest_addr, victim.addr());
        spoofer.pipes().send(spoofer.first_hop_sn(), h,
                             stamped_payload(d.net().now(), 1000));
      });
      ++conn;
    }
  }

  // Mitigation at 60ms: protect + allowlist at every edge SN. Protection
  // purges the attack's cached forward verdicts (ddos invalidate-on-
  // protect), so the flood re-faces default-deny at its entry edge.
  const std::vector<peer_id> edges = {sn_w, gw_w, gw_e};
  d.net().at(t0 + 60ms, [&] {
    for (const peer_id sn : edges) {
      victim.send_control_to(sn, ilp::svc::ddos_protect, services::ops::protect, {});
    }
  });
  d.net().at(t0 + 60ms + 200us, [&] {
    for (const peer_id sn : edges) {
      writer w(8);
      w.u64(legit_w.addr());
      victim.send_control_to(sn, ilp::svc::ddos_protect, services::ops::allow, w.take());
    }
    // Short-TTL fast-path entries for admitted flows: legitimate traffic
    // survives slow-path pressure, the rate limit re-checks on expiry.
    for (const peer_id sn : edges) {
      d.sn(sn).env().set_config(ilp::svc::ddos_protect, "admit_cache_ttl_ms", "5");
    }
  });

  d.net().run_until(t0 + 140ms);

  auto* gw_e_mod = static_cast<services::ddos_service*>(
      d.sn(gw_e).env().module_for(ilp::svc::ddos_protect));

  rep.checks.push_back(check_min("slo_pages", static_cast<double>(pages), 1.0));
  rep.checks.push_back(check_min(
      "blackbox_frozen", d.sn(sn_w).blackbox()->frozen() ? 1.0 : 0.0, 1.0));
  rep.checks.push_back(check_min(
      "attack_degrades_legit_p99",
      p_quantile_ms(legit_attack_ms, 0.99), 10.0));  // degradation was demanded
  rep.checks.push_back(
      check_max("legit_recovery_p99_ms", p_quantile_ms(legit_recovery_ms, 0.99), 10.0));
  rep.checks.push_back(
      check_min("legit_delivery_ratio", ratio(legit_recv, legit_sent), 0.99));
  rep.checks.push_back(check_min(
      "attack_shed_fraction",
      attack_sent_post == 0
          ? 0.0
          : 1.0 - ratio(attack_recv_post, attack_sent_post),
      0.95));
  rep.checks.push_back(
      check_min("spoof_rejections", static_cast<double>(gw_e_mod->spoof_rejected()), 1.0));

  rep.stats["legit_sent"] = static_cast<double>(legit_sent);
  rep.stats["legit_recv"] = static_cast<double>(legit_recv);
  rep.stats["attack_sent_pre"] = static_cast<double>(attack_sent_pre);
  rep.stats["attack_sent_post"] = static_cast<double>(attack_sent_post);
  rep.stats["attack_recv_pre"] = static_cast<double>(attack_recv_pre);
  rep.stats["attack_recv_post"] = static_cast<double>(attack_recv_post);
  rep.stats["attack_p99_ms_during"] = p_quantile_ms(legit_attack_ms, 0.99);
  rep.stats["token_acks"] = static_cast<double>(token_acks);
  rep.stats["denied_at_entry_edge"] = static_cast<double>(gw_e_mod->denied());
  rep.stats["spoof_rejected"] = static_cast<double>(gw_e_mod->spoof_rejected());
  rep.stats["first_page_ms"] = static_cast<double>(first_page_ns) / 1e6;
  rep.stats["packets"] = static_cast<double>(digest.packets());
  rep.notes.push_back(
      "attack_degrades_legit_p99 is a min-check: phase A must demonstrably "
      "breach the SLO before mitigation earns the recovery verdict");
  rep.behavior_digest = digest.value();
  return rep;
}

// ---- mobility_churn ----------------------------------------------------
//
// Endpoints re-anchor between SNs mid-flow with re-keying, while faults
// land mid-migration: an inter-domain partition blips during one move and
// the old SN crashes outright during another. Cached forward verdicts
// pointing at the dead SN are purged on liveness peer-down (the
// erase-forwards-to path), breadcrumbs chase stale-routed stragglers, and
// expired breadcrumbs fall back to the refreshed lookup route. Verdicts:
// bounded loss, bounded unavailability windows, and crumbs observed doing
// their job.
scenario_report run_mobility_churn(std::uint64_t seed) {
  scenario_report rep;
  rep.suite = "mobility_churn";
  rep.seed = seed;

  deploy::deployment_config cfg = scenario_config(seed);
  cfg.sn_keepalive_interval = 2ms;  // liveness drives the crash detection
  deploy::deployment d(cfg);
  const edomain_id dom1 = d.add_edomain();
  const peer_id gw1 = d.add_sn(dom1);
  const peer_id sn_a = d.add_sn(dom1);
  const peer_id sn_b = d.add_sn(dom1);
  const edomain_id dom2 = d.add_edomain();
  const peer_id gw2 = d.add_sn(dom2);

  constexpr int kStreams = 3;
  std::vector<host::host_stack*> mobiles, peers;
  for (int i = 0; i < kStreams; ++i) mobiles.push_back(&d.add_host(dom1, sn_a));
  for (int i = 0; i < kStreams; ++i) peers.push_back(&d.add_host(dom2, gw2));
  host::host_stack& w_peer = d.add_host(dom1, gw1);
  d.interconnect();
  deploy::deploy_standard_services(d);
  for (const peer_id sn : {gw1, sn_a, sn_b, gw2}) {
    d.sn(sn).env().set_config(ilp::svc::mobility, "breadcrumb_ttl_ms", "25");
  }

  behavior_digest digest;
  digest.attach(d.net());

  edomain::observability_plane& plane = d.core_of(dom1).observability();
  arm_latency_slo(plane, "mobility-p99", "mobility", 10'000'000);
  plane.set_alert_hook([](const slo::slo_alert&) {});
  start_pushes(d, {gw1, sn_a, sn_b}, plane, /*max_pushes=*/70);

  const time_point t0 = d.net().now();
  {
    std::vector<host::host_stack*> all_hosts = mobiles;
    for (host::host_stack* p : peers) all_hosts.push_back(p);
    all_hosts.push_back(&w_peer);
    schedule_health_ticks(d, t0, 125ms, all_hosts, plane);
  }

  // Streams: p0->m0 rides delivery (the cached-verdict datapath), p1->m1
  // and p2->m2 ride the mobility service (the breadcrumb datapath).
  std::vector<stream_stats> streams(kStreams);
  const ilp::service_id stream_svc[kStreams] = {ilp::svc::delivery, ilp::svc::mobility,
                                                ilp::svc::mobility};
  std::vector<host::connection> conns;
  for (int i = 0; i < kStreams; ++i) {
    conns.push_back(peers[i]->open(mobiles[i]->addr(), stream_svc[i]));
    mobiles[i]->set_default_handler([&, i](const ilp::ilp_header&, bytes payload) {
      streams[i].on_recv(d.net().now(), stamp_of(payload));
    });
  }
  for (nanoseconds off = 1ms; off <= 110ms; off += 1ms) {
    for (int i = 0; i < kStreams; ++i) {
      d.net().at(t0 + off, [&, i] {
        streams[i].on_sent(d.net().now());
        conns[i].send(stamped_payload(d.net().now()));
      });
    }
  }

  // Migrations: every mobile re-homes to sn_b mid-flow, announcing through
  // the new SN and rotating its pipe keys en route.
  std::vector<std::unique_ptr<services::mobility_client>> mcs;
  for (host::host_stack* m : mobiles) {
    mcs.push_back(std::make_unique<services::mobility_client>(*m));
  }
  const nanoseconds migrate_at[kStreams] = {50ms, 20ms, 25ms};
  for (int i = 0; i < kStreams; ++i) {
    d.net().at(t0 + migrate_at[i], [&, i] {
      mobiles[i]->rehome(sn_b);
      mcs[i]->announce();
      mobiles[i]->rotate_keys();
    });
  }

  // Stale-routed stragglers: a west peer keeps aiming m1's traffic at the
  // OLD SN after the move (in-flight / unconverged routing state). Inside
  // the 25ms crumb TTL the breadcrumb chases them to sn_b; the one at 48ms
  // lands after expiry and must fall back to the refreshed lookup route.
  std::uint64_t stale_sent = 0;
  auto stale_send = [&] {
    ++stale_sent;
    streams[1].on_sent(d.net().now());
    ilp::ilp_header h;
    h.service = ilp::svc::mobility;
    h.connection = 7777;
    h.set_meta_u64(ilp::meta_key::src_addr, w_peer.addr());
    h.set_meta_u64(ilp::meta_key::dest_addr, mobiles[1]->addr());
    w_peer.pipes().send(sn_a, h, stamped_payload(d.net().now()));
  };
  for (nanoseconds off = 21ms; off <= 29ms; off += 1ms) {
    d.net().at(t0 + off, stale_send);
  }
  d.net().at(t0 + 48ms, stale_send);

  // Faults mid-migration: a 4ms inter-domain partition blip right after
  // m2's move (below the liveness miss budget — transport-level loss, not
  // a peer-down), then the old SN crashes for real during m0's move. The
  // crash strands gw1's cached delivery forwards until liveness declares
  // the peer down and erase_forwards_to purges them.
  const std::int64_t base = t0.time_since_epoch().count();
  const std::vector<sim::fault_event> faults = {
      {.at = nanoseconds(base) + 30ms,
       .kind = sim::fault_kind::partition,
       .a = static_cast<sim::node_id>(gw1),
       .b = static_cast<sim::node_id>(gw2)},
      {.at = nanoseconds(base) + 34ms,
       .kind = sim::fault_kind::heal,
       .a = static_cast<sim::node_id>(gw1),
       .b = static_cast<sim::node_id>(gw2)},
      {.at = nanoseconds(base) + 52ms,
       .kind = sim::fault_kind::crash,
       .a = static_cast<sim::node_id>(sn_a)},
      {.at = nanoseconds(base) + 80ms,
       .kind = sim::fault_kind::restart,
       .a = static_cast<sim::node_id>(sn_a)},
  };
  d.net().schedule_faults(faults);

  d.net().run_until(t0 + 130ms);
  for (stream_stats& s : streams) s.finish(t0 + 111ms);

  std::uint64_t sent = 0, received = 0;
  double max_gap_ms = 0.0;
  for (const stream_stats& s : streams) {
    sent += s.sent;
    received += s.received;
    max_gap_ms = std::max(max_gap_ms, static_cast<double>(s.max_gap_ns) / 1e6);
  }
  auto* old_sn_mob = static_cast<services::mobility_service*>(
      d.sn(sn_a).env().module_for(ilp::svc::mobility));
  auto* new_sn_mob = static_cast<services::mobility_service*>(
      d.sn(sn_b).env().module_for(ilp::svc::mobility));
  const std::uint64_t crumb_expired =
      d.sn(sn_a).metrics().get_counter("mobility.breadcrumbs_expired").value();

  rep.checks.push_back(check_min("delivered_ratio", ratio(received, sent), 0.90));
  rep.checks.push_back(check_max("max_outage_ms", max_gap_ms, 14.0));
  rep.checks.push_back(check_min(
      "announces", static_cast<double>(new_sn_mob->announces()), kStreams));
  rep.checks.push_back(check_min(
      "breadcrumb_forwards",
      static_cast<double>(old_sn_mob->forwarded_via_breadcrumb()), 5.0));
  rep.checks.push_back(
      check_min("breadcrumbs_expired", static_cast<double>(crumb_expired), 1.0));
  rep.checks.push_back(check_min(
      "peer_down_cache_purges",
      static_cast<double>(d.sn(gw1).cache().stats().invalidations), 1.0));

  for (int i = 0; i < kStreams; ++i) {
    rep.stats["stream" + std::to_string(i) + "_sent"] = static_cast<double>(streams[i].sent);
    rep.stats["stream" + std::to_string(i) + "_recv"] =
        static_cast<double>(streams[i].received);
    rep.stats["stream" + std::to_string(i) + "_max_gap_ms"] =
        static_cast<double>(streams[i].max_gap_ns) / 1e6;
  }
  rep.stats["stale_sent"] = static_cast<double>(stale_sent);
  rep.stats["breadcrumbed"] = static_cast<double>(old_sn_mob->forwarded_via_breadcrumb());
  rep.stats["crumbs_expired"] = static_cast<double>(crumb_expired);
  rep.stats["gw1_cache_invalidations"] =
      static_cast<double>(d.sn(gw1).cache().stats().invalidations);
  rep.stats["packets"] = static_cast<double>(digest.packets());
  if (plane.series() != nullptr) {
    const std::string key =
        render_metric_key("edomain.path.total_ns", {{"service", "mobility"}});
    rep.stats["plane_mobility_completed"] =
        static_cast<double>(plane.series()->hist_count(key, 250ms));
  }
  rep.behavior_digest = digest.value();
  return rep;
}

// ---- dispatch ----------------------------------------------------------

std::vector<std::string_view> suite_names() {
  return {"flash_crowd", "pubsub_storm", "ddos_mix", "mobility_churn"};
}

scenario_report run_suite(std::string_view name, std::uint64_t seed) {
  if (name == "flash_crowd") return run_flash_crowd(seed);
  if (name == "pubsub_storm") return run_pubsub_storm(seed);
  if (name == "ddos_mix") return run_ddos_mix(seed);
  if (name == "mobility_churn") return run_mobility_churn(seed);
  throw std::invalid_argument("unknown scenario suite: " + std::string(name));
}

}  // namespace interedge::scenario
