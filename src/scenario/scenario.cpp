#include "scenario/scenario.h"

#include <sstream>

namespace interedge::scenario {

slo_check check_max(std::string name, double observed, double bound) {
  return {std::move(name), observed, bound, /*upper_bound=*/true, observed <= bound};
}

slo_check check_min(std::string name, double observed, double bound) {
  return {std::move(name), observed, bound, /*upper_bound=*/false, observed >= bound};
}

bool scenario_report::passed() const {
  for (const slo_check& c : checks) {
    if (!c.pass) return false;
  }
  return !checks.empty();
}

namespace {
void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}
}  // namespace

std::string scenario_report::to_json() const {
  std::ostringstream os;
  os << "{\"suite\":";
  json_string(os, suite);
  os << ",\"seed\":" << seed << ",\"behavior_digest\":\"" << std::hex << behavior_digest
     << std::dec << "\",\"passed\":" << (passed() ? "true" : "false") << ",\"checks\":[";
  bool first = true;
  for (const slo_check& c : checks) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    json_string(os, c.name);
    os << ",\"observed\":" << c.observed << ",\"bound\":" << c.bound << ",\"kind\":\""
       << (c.upper_bound ? "max" : "min") << "\",\"pass\":" << (c.pass ? "true" : "false")
       << '}';
  }
  os << "],\"stats\":{";
  first = true;
  for (const auto& [k, v] : stats) {
    if (!first) os << ',';
    first = false;
    json_string(os, k);
    os << ':' << v;
  }
  os << "},\"notes\":[";
  first = true;
  for (const std::string& n : notes) {
    if (!first) os << ',';
    first = false;
    json_string(os, n);
  }
  os << "]}";
  return os.str();
}

void behavior_digest::record(std::uint64_t from, std::uint64_t to, std::size_t size,
                             std::int64_t at_ns) {
  const std::uint64_t words[4] = {from, to, static_cast<std::uint64_t>(size),
                                  static_cast<std::uint64_t>(at_ns)};
  for (const std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (w >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  ++packets_;
}

void behavior_digest::attach(sim::simulation& net) {
  net.set_tap([this, &net](sim::node_id from, sim::node_id to, const bytes& data) {
    record(from, to, data.size(), net.now().time_since_epoch().count());
  });
}

}  // namespace interedge::scenario
