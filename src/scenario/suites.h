// The named scenario suites (ISSUE 9): deterministic adversarial + churn
// workloads over the simulated deployment, each ending in a machine-
// readable SLO verdict report.
//
//   flash_crowd    — CDN/caching bundle absorbing a 50x arrival spike
//   pubsub_storm   — fan-out amplification across three edomains
//   ddos_mix       — volumetric + spoofed attack through a bandwidth-
//                    limited edge; burn-rate page, flight-recorder freeze,
//                    then mitigation and recovery
//   mobility_churn — endpoints re-anchoring between SNs mid-flow with
//                    re-keying, crash and partition faults mid-migration
//
// Every suite is a pure function of its seed: same seed, byte-identical
// report (behavior digest included) — asserted by the replay test and
// exposed through bench/scenario_suites for CI.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "scenario/scenario.h"

namespace interedge::scenario {

// Cross-suite knobs that must never perturb behavior. The profiler fields
// arm the continuous profiling plane (ISSUE 10) on every SN in the suite's
// deployment; sampling is observation-only (SIGPROF handler reads stacks,
// SA_RESTART hides it from syscalls), so a suite run armed at any Hz
// produces the same behavior_digest as a run with the profiler off — the
// determinism guard in scenario_suites_test asserts exactly that.
struct suite_options {
  std::uint32_t profiler_hz = 0;
  bool profiler_force_timer = false;
};

scenario_report run_flash_crowd(std::uint64_t seed, const suite_options& opts = {});
scenario_report run_pubsub_storm(std::uint64_t seed);
scenario_report run_ddos_mix(std::uint64_t seed);
scenario_report run_mobility_churn(std::uint64_t seed);

// All suite names, in the order the runner executes them.
std::vector<std::string_view> suite_names();
// Dispatch by name; throws std::invalid_argument for an unknown suite.
scenario_report run_suite(std::string_view name, std::uint64_t seed);

}  // namespace interedge::scenario
