// Scenario verdicts and the behavioral digest (DESIGN.md §14).
//
// A suite run ends in a machine-readable scenario_report: named SLO checks
// (observed value vs. bound, pass/fail), free-form stats, and a 64-bit
// behavioral digest folded over every datagram the simulator moved —
// (from, to, size, time), the same tuple the determinism tests compare.
// Two runs of a suite with the same seed must produce byte-identical
// reports; the digest is how the replay test asserts it cheaply.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "simnet/simulation.h"

namespace interedge::scenario {

// One SLO verdict line: pass iff observed respects the bound.
struct slo_check {
  std::string name;
  double observed = 0.0;
  double bound = 0.0;
  bool upper_bound = true;  // true: observed <= bound; false: observed >= bound
  bool pass = false;
};

// observed must stay at or below `bound` (latency, loss, shed fraction...).
slo_check check_max(std::string name, double observed, double bound);
// observed must reach at least `bound` (delivery ratio, shed coverage...).
slo_check check_min(std::string name, double observed, double bound);

struct scenario_report {
  std::string suite;
  std::uint64_t seed = 0;
  std::uint64_t behavior_digest = 0;
  std::vector<slo_check> checks;
  // Raw observations that inform but don't gate the verdict (counts,
  // ratios, quantiles) — keyed for the EXPERIMENTS.md tables.
  std::map<std::string, double> stats;
  std::vector<std::string> notes;

  bool passed() const;
  // Stable JSON: keys in fixed order, checks in insertion order — replay
  // equality can compare the serialized form directly.
  std::string to_json() const;
};

// FNV-1a accumulator over the simulator's behavioral trace. Packet bytes
// vary run-to-run (fresh handshake keys), so the digest folds only the
// (from, to, size, time) tuple — identical across same-seed runs.
class behavior_digest {
 public:
  void record(std::uint64_t from, std::uint64_t to, std::size_t size, std::int64_t at_ns);
  std::uint64_t value() const { return h_; }
  std::uint64_t packets() const { return packets_; }

  // Installs the digest as the simulation's tap. Replaces any existing tap
  // (the deployment's settlement tap included) — suites attach after
  // topology construction and don't assert on settlement.
  void attach(sim::simulation& net);

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
  std::uint64_t packets_ = 0;
};

}  // namespace interedge::scenario
