#include "services/bulk_delivery.h"

namespace interedge::services {
namespace {
std::string chunk_key(const std::string& object, std::uint64_t index) {
  return "chunk/" + object + "/" + std::to_string(index);
}
inline constexpr const char* kFetchOp = "fetch";
inline constexpr const char* kChunkOp = "chunk";
}  // namespace

void bulk_delivery_service::cache_chunk(core::service_context& ctx, const std::string& object,
                                        std::uint64_t index, const bytes& body) {
  const std::string key = chunk_key(object, index);
  if (ctx.storage().contains(key)) return;
  if (cached_keys_.size() >= max_cached_) {
    ctx.storage().erase(cached_keys_.front());
    cached_keys_.pop_front();
  }
  cached_keys_.push_back(key);
  ctx.storage().put(key, body);
}

core::module_result bulk_delivery_service::handle_control(core::service_context& ctx,
                                                          const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !src) return core::module_result::drop();

  const auto group = get_skey_str(pkt.header, skey::group);
  if (*op == ops::join && group) {
    if (fanout_.may_join(*group, *src, /*auto_open=*/true)) {
      fanout_.local_join(*group, *src);
    }
    return core::module_result::deliver();
  }
  if (*op == ops::leave && group) {
    fanout_.local_leave(*group, *src);
    return core::module_result::deliver();
  }

  if (*op == kFetchOp) {
    // A receiver re-fetches a chunk it missed from its first-hop SN.
    const auto object = get_skey_str(pkt.header, skey::object_id);
    const auto index = get_skey_u64(pkt.header, skey::chunk_index);
    if (!object || !index) return core::module_result::drop();
    const auto cached = ctx.storage().get(chunk_key(*object, *index));
    if (!cached) return core::module_result::deliver();  // miss: nothing to send
    ++refetch_hits_;
    refetch_hits_metric_.add(ctx);
    ilp::ilp_header h;
    h.service = ilp::svc::bulk_delivery;
    h.connection = pkt.header.connection;
    h.flags = ilp::kFlagControl | ilp::kFlagToHost;
    h.set_meta_str(ilp::meta_key::control_op, kChunkOp);
    set_skey_str(h, skey::object_id, *object);
    set_skey_u64(h, skey::chunk_index, *index);
    // The cached chunk count lets a receiver that missed every data packet
    // still learn the object size.
    if (const auto count = ctx.storage().get("count/" + *object)) {
      if (count->size() == 8) {
        std::uint64_t total = 0;
        for (int i = 0; i < 8; ++i) total |= static_cast<std::uint64_t>((*count)[i]) << (8 * i);
        set_skey_u64(h, skey::chunk_count, total);
      }
    }
    ctx.send(*src, h, *cached);
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result bulk_delivery_service::on_packet(core::service_context& ctx,
                                                     const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);

  const auto group = get_skey_str(pkt.header, skey::group);
  const auto object = get_skey_str(pkt.header, skey::object_id);
  const auto index = get_skey_u64(pkt.header, skey::chunk_index);
  if (!group || !object || !index) return core::module_result::drop();

  // Every SN on the distribution path caches the chunk (and the object's
  // chunk count, for gap repair).
  cache_chunk(ctx, *object, *index, pkt.payload);
  if (const auto total = get_skey_u64(pkt.header, skey::chunk_count)) {
    bytes enc(8);
    for (int i = 0; i < 8; ++i) enc[i] = static_cast<std::uint8_t>(*total >> (8 * i));
    ctx.storage().put("count/" + *object, std::move(enc));
  }
  return fanout_.fan_out(ctx, pkt, *group);
}

}  // namespace interedge::services
