#include "services/envelope.h"

#include <cstring>

#include "crypto/aead.h"
#include "crypto/kdf.h"
#include "crypto/random.h"

namespace interedge::services {
namespace {

struct derived_keys {
  std::array<std::uint8_t, 32> message;
  reply_key reply;
};

derived_keys derive(const crypto::x25519_key& shared, const crypto::x25519_key& ephemeral_pub) {
  bytes ikm(shared.begin(), shared.end());
  ikm.insert(ikm.end(), ephemeral_pub.begin(), ephemeral_pub.end());
  const bytes keys = crypto::hkdf(to_bytes("interedge-envelope-v1"), ikm, {}, 64);
  derived_keys out;
  std::memcpy(out.message.data(), keys.data(), 32);
  std::memcpy(out.reply.data(), keys.data() + 32, 32);
  return out;
}

}  // namespace

std::pair<bytes, reply_key> envelope_seal_with_reply(const crypto::x25519_key& recipient_public,
                                                     const_byte_span plaintext) {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  const auto ephemeral = crypto::x25519_keypair_from_seed(seed);
  const auto shared = crypto::x25519(ephemeral.secret, recipient_public);
  const derived_keys keys = derive(shared, ephemeral.public_key);

  const std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  bytes out(ephemeral.public_key.begin(), ephemeral.public_key.end());
  const bytes sealed = crypto::aead_seal(keys.message.data(), nonce,
                                         const_byte_span(ephemeral.public_key.data(), 32),
                                         plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return {std::move(out), keys.reply};
}

bytes envelope_seal(const crypto::x25519_key& recipient_public, const_byte_span plaintext) {
  return envelope_seal_with_reply(recipient_public, plaintext).first;
}

std::optional<std::pair<bytes, reply_key>> envelope_open_with_reply(
    const crypto::x25519_key& recipient_secret, const_byte_span sealed) {
  if (sealed.size() < kEnvelopeOverhead) return std::nullopt;
  crypto::x25519_key ephemeral_pub;
  std::copy(sealed.begin(), sealed.begin() + 32, ephemeral_pub.begin());
  const auto shared = crypto::x25519(recipient_secret, ephemeral_pub);
  const derived_keys keys = derive(shared, ephemeral_pub);

  const std::uint8_t nonce[crypto::kAeadNonceSize] = {};
  auto plaintext = crypto::aead_open(keys.message.data(), nonce,
                                     const_byte_span(ephemeral_pub.data(), 32),
                                     sealed.subspan(32));
  if (!plaintext) return std::nullopt;
  return std::make_pair(std::move(*plaintext), keys.reply);
}

std::optional<bytes> envelope_open(const crypto::x25519_key& recipient_secret,
                                   const_byte_span sealed) {
  auto opened = envelope_open_with_reply(recipient_secret, sealed);
  if (!opened) return std::nullopt;
  return std::move(opened->first);
}

bytes reply_seal(const reply_key& key, const_byte_span plaintext) {
  std::uint8_t nonce[crypto::kAeadNonceSize];
  crypto::random_bytes(byte_span(nonce, sizeof(nonce)));
  bytes out(nonce, nonce + sizeof(nonce));
  const bytes sealed = crypto::aead_seal(key.data(), nonce, {}, plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<bytes> reply_open(const reply_key& key, const_byte_span sealed) {
  if (sealed.size() < crypto::kAeadNonceSize + crypto::kAeadTagSize) return std::nullopt;
  return crypto::aead_open(key.data(), sealed.data(), {},
                           sealed.subspan(crypto::kAeadNonceSize));
}

}  // namespace interedge::services
