#include "services/pubsub.h"

namespace interedge::services {

void pubsub_service::reply(core::service_context& ctx, const core::packet& pkt,
                           const std::string& op, const std::string& detail) {
  const auto reply_to = pkt.header.meta_u64(ilp::meta_key::reply_to);
  if (!reply_to) return;
  ilp::ilp_header h;
  h.service = ilp::svc::pubsub;
  h.connection = pkt.header.connection;
  h.flags = ilp::kFlagControl | ilp::kFlagToHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  ctx.send(*reply_to, h, to_bytes(detail));
}

core::module_result pubsub_service::handle_control(core::service_context& ctx,
                                                   const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto topic = get_skey_str(pkt.header, skey::group);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !topic || !src) return core::module_result::drop();

  const bool auto_open = ctx.config("auto_open_groups", "true") == "true";
  if (*op == ops::subscribe) {
    if (!fanout_.may_join(*topic, *src, auto_open)) {
      reply(ctx, pkt, ops::deny, *topic);
      denied_joins_metric_.add(ctx);
      return core::module_result::deliver();
    }
    fanout_.local_join(*topic, *src);
    reply(ctx, pkt, ops::publish_ack, *topic);
    return core::module_result::deliver();
  }
  if (*op == ops::unsubscribe) {
    fanout_.local_leave(*topic, *src);
    reply(ctx, pkt, ops::publish_ack, *topic);
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result pubsub_service::on_packet(core::service_context& ctx,
                                              const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);
  const auto topic = get_skey_str(pkt.header, skey::group);
  if (!topic) return core::module_result::drop();
  published_metric_.add(ctx);
  return fanout_.fan_out(ctx, pkt, *topic);
}

}  // namespace interedge::services
