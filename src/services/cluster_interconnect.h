// Cluster interconnection service (paper §6.3 prototype list: "cluster
// interconnection").
//
// Joins geographically separate compute clusters into one fabric over the
// InterEdge: each site registers a gateway host for a named cluster;
// frames addressed to a remote private address are encapsulated by the
// sending gateway, fanned out edge-to-edge to the other sites' gateways
// (reusing the group machinery), and decapsulated into the remote cluster.
// The InterEdge carries the frames; the private addressing stays opaque to
// it.
#pragma once

#include "core/service_module.h"
#include "services/fanout.h"

namespace interedge::services {

namespace cluster_ops {
inline constexpr const char* attach = "cluster-attach";
inline constexpr const char* detach = "cluster-detach";
}  // namespace cluster_ops

class cluster_interconnect_service final : public core::service_module {
 public:
  cluster_interconnect_service(edomain::domain_core& core, core::peer_id self)
      : fanout_(core, self, ilp::svc::cluster) {}

  ilp::service_id id() const override { return ilp::svc::cluster; }
  std::string_view name() const override { return "cluster-interconnect"; }

  void start(core::service_context& ctx) override {
    denied_metric_.bind(ctx);
    gateways_metric_.bind(ctx);
    frames_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override { return fanout_.checkpoint(); }
  void restore(core::service_context&, const_byte_span state) override {
    fanout_.restore(state);
  }

  std::size_t gateways(const std::string& cluster) const {
    return fanout_.local_member_count(cluster);
  }

 private:
  group_fanout fanout_;
  counter_handle denied_metric_{"cluster.denied"};
  counter_handle gateways_metric_{"cluster.gateways"};
  counter_handle frames_metric_{"cluster.frames"};
};

}  // namespace interedge::services
