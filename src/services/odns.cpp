#include "services/odns.h"

namespace interedge::services {

core::module_result odns_service::on_packet(core::service_context& ctx,
                                            const core::packet& pkt) {
  const auto resolver_str = ctx.config("resolver", "");
  if (resolver_str.empty()) return core::module_result::drop();
  const core::edge_addr resolver = std::stoull(resolver_str);

  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);

  // Answer leg: the resolver addressed this SN (the proxy); match the
  // pending query and relay the sealed answer to the client, restoring
  // the client's original connection id.
  if (dest && *dest == ctx.node_id()) {
    auto it = pending_.find(pkt.header.connection);
    if (it == pending_.end()) return core::module_result::drop();
    const pending_query q = it->second;
    pending_.erase(it);

    ilp::ilp_header to_client;
    to_client.service = ilp::svc::odns;
    to_client.connection = q.client_connection;
    to_client.flags = ilp::kFlagToHost;
    to_client.set_meta_u64(ilp::meta_key::dest_addr, q.client);

    const auto hop = ctx.next_hop(q.client);
    if (!hop) return core::module_result::drop();
    core::module_result r;
    r.verdict = core::decision::deliver();
    r.sends.push_back(core::outbound{*hop, std::move(to_client), pkt.payload});
    return r;
  }

  // Transit leg: an explicitly addressed oDNS packet (proxy->resolver or
  // resolver->proxy) passing through this SN. Must be checked before the
  // query-leg test: the resolver is also a host.
  if (dest) {
    const auto hop = ctx.next_hop(*dest);
    if (!hop) return core::module_result::drop();
    return core::module_result::forward(*hop);
  }

  // Query leg from a client host (clients leave dest unset; the proxy
  // supplies the resolver address): re-originate under the SN's identity.
  if (src && pkt.l3_src == *src) {
    const ilp::connection_id proxy_conn = next_proxy_conn_++;
    pending_[proxy_conn] = pending_query{*src, pkt.header.connection};
    ++proxied_;
    proxied_metric_.add(ctx);

    ilp::ilp_header to_resolver;
    to_resolver.service = ilp::svc::odns;
    to_resolver.connection = proxy_conn;
    // The client's identity is deliberately absent: the resolver sees only
    // the proxy SN as the source.
    to_resolver.set_meta_u64(ilp::meta_key::src_addr, ctx.node_id());
    to_resolver.set_meta_u64(ilp::meta_key::dest_addr, resolver);

    const auto hop = ctx.next_hop(resolver);
    if (!hop) return core::module_result::drop();
    core::module_result r;
    r.verdict = core::decision::deliver();
    r.sends.push_back(core::outbound{*hop, std::move(to_resolver), pkt.payload});
    return r;
  }

  return core::module_result::drop();
}

}  // namespace interedge::services
