// Null service (Appendix C): "the packet arrives on an ingress pipe to the
// pipe-terminus, then is sent to a service module (via IPC) which
// immediately returns the packet to the pipe-terminus, which then sends it
// to an egress pipe."
//
// This is the measurement baseline of Table 1, not a real service: it makes
// no decision beyond bouncing the packet toward its destination (or a fixed
// egress peer), exercising the full terminus -> channel -> module ->
// terminus path with zero service work.
#pragma once

#include "core/service_module.h"

namespace interedge::services {

class null_service final : public core::service_module {
 public:
  // egress == 0: route by dest_addr metadata; otherwise always forward to
  // the fixed egress peer (the Appendix C microbenchmark setup).
  explicit null_service(core::peer_id egress = 0, bool cacheable = false)
      : egress_(egress), cacheable_(cacheable) {}

  ilp::service_id id() const override { return ilp::svc::null_service; }
  std::string_view name() const override { return "null"; }

  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override {
    core::peer_id hop = egress_;
    if (hop == 0) {
      const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
      if (!dest) return core::module_result::drop();
      const auto routed = ctx.next_hop(*dest);
      if (!routed) return core::module_result::drop();
      hop = *routed;
    }
    core::module_result r = core::module_result::forward(hop);
    if (cacheable_) {
      r.cache_inserts.emplace_back(
          core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
          core::decision::forward_to(hop));
    }
    return r;
  }

 private:
  core::peer_id egress_;
  bool cacheable_;
};

}  // namespace interedge::services
