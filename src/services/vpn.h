// Generic VPN service (paper §6): "the InterEdge could easily support a
// generic VPN service that provides a customer with a publicly reachable
// address, redirects incoming traffic to a customer-specified
// authentication service, and only allows in traffic that has been duly
// authenticated."
//
// Flow:
//   1. customer registers: "vpn-register", payload = auth-service address;
//   2. unauthenticated traffic for the customer is redirected to the auth
//      service (original destination preserved in metadata);
//   3. the auth service vouches for a sender: "vpn-auth-ok", payload =
//      sender address — the SN replies with a capability token that the
//      auth service forwards to the sender;
//   4. traffic carrying a valid token in skey::auth_token flows through.
#pragma once

#include <map>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

class vpn_service final : public core::service_module {
 public:
  // secret_seed 0 = ambient entropy; nonzero derives the token secret
  // deterministically for seeded deployments (scenario replay).
  explicit vpn_service(std::uint64_t secret_seed = 0) : secret_seed_(secret_seed) {}

  ilp::service_id id() const override { return ilp::svc::vpn; }
  std::string_view name() const override { return "vpn"; }

  void start(core::service_context& ctx) override;
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes token_for(core::edge_addr customer, core::edge_addr sender) const;
  bool is_registered(core::edge_addr customer) const { return customers_.count(customer) > 0; }
  std::uint64_t redirected() const { return redirected_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);

  std::uint64_t secret_seed_ = 0;
  bytes secret_;
  std::map<core::edge_addr, core::edge_addr> customers_;  // customer -> auth service
  std::uint64_t redirected_ = 0;
  std::uint64_t admitted_ = 0;
  counter_handle customers_metric_{"vpn.customers"};
  counter_handle redirected_metric_{"vpn.redirected"};
};

}  // namespace interedge::services
