#include "services/streaming.h"

#include "common/serial.h"

namespace interedge::services {

bytes media_frame::encode() const {
  writer w(16 + samples.size());
  w.u32(frame_id);
  w.u32(bitrate_kbps);
  w.blob(samples);
  return w.take();
}

media_frame media_frame::decode(const_byte_span data) {
  reader r(data);
  media_frame f;
  f.frame_id = r.u32();
  f.bitrate_kbps = r.u32();
  const auto s = r.blob();
  f.samples.assign(s.begin(), s.end());
  return f;
}

media_frame media_transcode(const media_frame& frame, std::uint32_t target_kbps) {
  if (target_kbps == 0 || frame.bitrate_kbps <= target_kbps) return frame;
  media_frame out;
  out.frame_id = frame.frame_id;
  out.bitrate_kbps = target_kbps;
  // Deterministic downsample: keep a sample-count proportional to the
  // bitrate ratio, spread evenly across the frame.
  const std::size_t keep = std::max<std::size_t>(
      1, frame.samples.size() * target_kbps / frame.bitrate_kbps);
  out.samples.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    out.samples.push_back(frame.samples[i * frame.samples.size() / keep]);
  }
  return out;
}

core::module_result streaming_service::on_packet(core::service_context& ctx,
                                                 const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) {
    const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
    const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
    if (!op || !src || *op != kStreamConfigure) return core::module_result::drop();
    try {
      reader r(pkt.payload);
      max_kbps_[*src] = static_cast<std::uint32_t>(r.u64());
      profiles_metric_.add(ctx);
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
    return core::module_result::deliver();
  }

  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();
  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();

  // Only the receiver's first-hop SN considers transcoding; transit SNs
  // forward untouched (and may fast-path the connection).
  auto profile = max_kbps_.find(*dest);
  if (*hop != *dest || profile == max_kbps_.end()) {
    core::module_result r = core::module_result::forward(*hop);
    if (*hop != *dest) {
      r.cache_inserts.emplace_back(
          core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
          core::decision::forward_to(*hop));
    }
    return r;
  }

  try {
    const media_frame frame = media_frame::decode(pkt.payload);
    if (frame.bitrate_kbps <= profile->second) {
      ++passed_;
      return core::module_result::forward(*hop);
    }
    const media_frame reduced = media_transcode(frame, profile->second);
    ++transcoded_;
    transcoded_metric_.add(ctx);
    core::module_result r;
    r.verdict = core::decision::deliver();
    ilp::ilp_header header = pkt.header;
    header.flags |= ilp::kFlagToHost;
    r.sends.push_back(core::outbound{*hop, std::move(header), reduced.encode()});
    return r;
  } catch (const serial_error&) {
    return core::module_result::drop();  // malformed media frame
  }
}

}  // namespace interedge::services
