#include "services/vpn.h"

#include "common/rng.h"
#include "common/serial.h"
#include "crypto/kdf.h"
#include "crypto/random.h"

namespace interedge::services {

void vpn_service::start(core::service_context& ctx) {
  customers_metric_.bind(ctx);
  redirected_metric_.bind(ctx);
  secret_.resize(32);
  if (secret_seed_ != 0) {
    rng(secret_seed_).fill(secret_);
  } else {
    crypto::random_bytes(secret_);
  }
}

bytes vpn_service::token_for(core::edge_addr customer, core::edge_addr sender) const {
  writer w(16);
  w.u64(customer);
  w.u64(sender);
  const auto mac = crypto::hmac_sha256(secret_, w.data());
  return bytes(mac.begin(), mac.end());
}

core::module_result vpn_service::handle_control(core::service_context& ctx,
                                                const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !src) return core::module_result::drop();

  if (*op == ops::vpn_register) {
    try {
      reader r(pkt.payload);
      customers_[*src] = r.u64();  // auth-service address
      customers_metric_.add(ctx);
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
    return core::module_result::deliver();
  }

  if (*op == ops::vpn_auth_ok) {
    // Must come from the registered auth service of some customer; the
    // payload names (customer, sender).
    try {
      reader r(pkt.payload);
      const core::edge_addr customer = r.u64();
      const core::edge_addr sender = r.u64();
      auto it = customers_.find(customer);
      if (it == customers_.end() || it->second != *src) {
        return core::module_result::drop();  // not that customer's auth service
      }
      // Return the capability token to the auth service, which relays it
      // to the now-authenticated sender.
      ilp::ilp_header reply;
      reply.service = ilp::svc::vpn;
      reply.connection = pkt.header.connection;
      reply.flags = ilp::kFlagControl | ilp::kFlagToHost;
      reply.set_meta_str(ilp::meta_key::control_op, ops::vpn_auth_ok);
      reply.set_meta_u64(ilp::meta_key::dest_addr, customer);
      set_skey_u64(reply, skey::origin_addr, sender);
      ctx.send(*src, reply, token_for(customer, sender));
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result vpn_service::on_packet(core::service_context& ctx, const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);

  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();

  auto it = customers_.find(*dest);
  if (it == customers_.end()) {
    // Not a VPN address: plain forward.
    const auto hop = ctx.next_hop(*dest);
    if (!hop) return core::module_result::drop();
    return core::module_result::forward(*hop);
  }

  const core::edge_addr sender =
      pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src);
  const auto token = get_skey_bytes(pkt.header, skey::auth_token);
  if (token && ct_equal(*token, token_for(*dest, sender))) {
    ++admitted_;
    const auto hop = ctx.next_hop(*dest);
    if (!hop) return core::module_result::drop();
    return core::module_result::forward(*hop);
  }

  // Unauthenticated: redirect to the customer's authentication service,
  // preserving the intended destination.
  ++redirected_;
  redirected_metric_.add(ctx);
  const core::edge_addr auth_service = it->second;
  const auto hop = ctx.next_hop(auth_service);
  if (!hop) return core::module_result::drop();

  core::module_result r;
  r.verdict = core::decision::deliver();  // original packet consumed
  core::outbound redirect;
  redirect.to = *hop;
  redirect.header = pkt.header;
  redirect.header.set_meta_u64(ilp::meta_key::dest_addr, auth_service);
  set_skey_u64(redirect.header, skey::origin_addr, *dest);  // intended target
  redirect.payload = pkt.payload;
  r.sends.push_back(std::move(redirect));
  return r;
}

}  // namespace interedge::services
