// DDoS protection service (paper §6 tests it on the prototype: "DDoS
// protection" is in the deployed-services list).
//
// A destination opts in ("protect"), flipping its policy at the edge to
// default-deny. Admission is then by either:
//   * allowlist — the protected host names a permitted sender ("allow"),
//   * capability token — the SN mints HMAC(secret, dest||sender), which the
//     protected host distributes out of band; senders attach it in
//     skey::auth_token and the SN verifies statelessly.
// Admitted traffic is still token-bucket rate-limited per (dest, sender),
// so a compromised authorized sender cannot flood.
//
// Drops are installed in the decision cache, so attack traffic is shed on
// the fast path — the service module only sees the first packet of each
// attacking connection.
#pragma once

#include <map>
#include <set>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

class ddos_service final : public core::service_module {
 public:
  // rate_pps: per-(dest,sender) admitted packet rate; burst: bucket depth.
  // secret_seed 0 draws the token secret from ambient entropy; nonzero
  // derives it deterministically (seeded deployments — the token for a
  // (dest, sender) pair is then replayable across same-seed runs).
  explicit ddos_service(double rate_pps = 1000.0, double burst = 100.0,
                        std::uint64_t secret_seed = 0)
      : rate_pps_(rate_pps), burst_(burst), secret_seed_(secret_seed) {}

  ilp::service_id id() const override { return ilp::svc::ddos_protect; }
  std::string_view name() const override { return "ddos-protect"; }

  void start(core::service_context& ctx) override;
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  // Token a sender must carry for (dest, sender); exposed so tests and the
  // protected host's control flow can mint expected values.
  bytes token_for(core::edge_addr dest, core::edge_addr sender) const;

  bool is_protected(core::edge_addr dest) const { return protected_.count(dest) > 0; }
  std::uint64_t denied() const { return denied_; }
  std::uint64_t rate_limited() const { return rate_limited_; }
  std::uint64_t spoof_rejected() const { return spoof_rejected_; }

 private:
  struct bucket {
    double tokens = 0;
    time_point last{};
  };

  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);
  bool admit_rate(core::service_context& ctx, core::edge_addr dest, core::edge_addr sender);

  double rate_pps_;
  double burst_;
  std::uint64_t secret_seed_;
  bytes secret_;
  // Config "admit_cache_ttl_ms" (default 0 = off, read lazily per packet):
  // when set, admitted protected-flow packets install a TTL'd forward entry
  // so legitimate connections ride the fast path while the slow path is
  // saturated with attack traffic — the rate limit re-checks each time the
  // entry ages out.
  std::set<core::edge_addr> protected_;
  std::map<core::edge_addr, std::set<core::edge_addr>> allowlist_;  // dest -> senders
  std::map<std::pair<core::edge_addr, core::edge_addr>, bucket> buckets_;
  std::uint64_t denied_ = 0;
  std::uint64_t rate_limited_ = 0;
  std::uint64_t spoof_rejected_ = 0;
  counter_handle protected_metric_{"ddos.protected_hosts"};
  counter_handle denied_metric_{"ddos.denied"};
  counter_handle rate_limited_metric_{"ddos.rate_limited"};
  counter_handle spoof_rejected_metric_{"ddos.spoof_rejected"};
  counter_handle invalidated_metric_{"ddos.policy_invalidations"};
};

}  // namespace interedge::services
