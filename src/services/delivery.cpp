#include "services/delivery.h"

namespace interedge::services {
namespace {
std::string storage_key(const std::string& content_key) { return "content/" + content_key; }
std::string stamp_key(const std::string& content_key) { return "content_ts/" + content_key; }

bytes encode_time(time_point t) {
  bytes out(8);
  const auto v = static_cast<std::uint64_t>(t.time_since_epoch().count());
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

std::uint64_t decode_time(const bytes& b) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(b.size()); ++i) {
    v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}
}  // namespace

core::module_result delivery_service::plain_forward(core::service_context& ctx,
                                                    const core::packet& pkt, bool cacheable) {
  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();
  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();
  core::module_result r = core::module_result::forward(*hop);
  if (cacheable) {
    r.cache_inserts.emplace_back(
        core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
        core::decision::forward_to(*hop));
  }
  return r;
}

void delivery_service::store_content(core::service_context& ctx, const std::string& key,
                                     const bytes& body) {
  const std::string skey_name = storage_key(key);
  if (!ctx.storage().contains(skey_name)) {
    if (cached_keys_.size() >= max_cached_) {
      ctx.storage().erase(storage_key(cached_keys_.front()));
      ctx.storage().erase(stamp_key(cached_keys_.front()));
      cached_keys_.pop_front();
    }
    cached_keys_.push_back(key);
  }
  ctx.storage().put(skey_name, body);
  ctx.storage().put(stamp_key(key), encode_time(ctx.now()));
}

std::optional<bytes> delivery_service::fresh_content(core::service_context& ctx,
                                                     const std::string& key) {
  auto cached = ctx.storage().get(storage_key(key));
  if (!cached) return std::nullopt;
  // Standardized freshness config: cache_ttl_ms, 0 = never expires.
  const std::int64_t ttl_ms = std::stoll(ctx.config("cache_ttl_ms", "0"));
  if (ttl_ms > 0) {
    const auto stamp = ctx.storage().get(stamp_key(key));
    const std::uint64_t stored_ns = stamp ? decode_time(*stamp) : 0;
    const auto age_ns =
        static_cast<std::uint64_t>(ctx.now().time_since_epoch().count()) - stored_ns;
    if (age_ns > static_cast<std::uint64_t>(ttl_ms) * 1000000ull) {
      ctx.storage().erase(storage_key(key));
      ctx.storage().erase(stamp_key(key));
      ++cache_expiries_;
      return std::nullopt;
    }
  }
  return cached;
}

core::module_result delivery_service::on_packet(core::service_context& ctx,
                                                const core::packet& pkt) {
  const std::uint64_t options = pkt.header.meta_u64(ilp::meta_key::bundle_options).value_or(0);
  const auto content_key = get_skey_str(pkt.header, skey::content_key);
  if ((options & kBundleCaching) == 0 || !content_key) {
    // IP-like leg of the bundle; forwarding decisions are cacheable.
    return plain_forward(ctx, pkt, /*cacheable=*/true);
  }

  const std::uint64_t stage = get_skey_u64(pkt.header, skey::stage).value_or(kContentRequest);
  if (stage == kContentResponse) {
    // Cache the object on the way through, then keep forwarding. Content
    // packets must reach the service on every SN (not the decision cache),
    // so the forwarding decision is deliberately NOT cached.
    store_content(ctx, *content_key, pkt.payload);
    return plain_forward(ctx, pkt, /*cacheable=*/false);
  }

  // Content request: serve locally if cached and fresh.
  const auto cached = fresh_content(ctx, *content_key);
  const auto requester = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (cached && requester) {
    ++cache_hits_;
    cache_hits_metric_.add(ctx);
    ilp::ilp_header response;
    response.service = ilp::svc::delivery;
    response.connection = pkt.header.connection;
    response.flags = ilp::kFlagToHost;
    response.set_meta_u64(ilp::meta_key::dest_addr, *requester);
    response.set_meta_u64(ilp::meta_key::src_addr, ctx.node_id());
    response.set_meta_u64(ilp::meta_key::bundle_options, kBundleCaching);
    set_skey_str(response, skey::content_key, *content_key);
    set_skey_u64(response, skey::stage, kContentResponse);

    const auto hop = ctx.next_hop(*requester);
    if (!hop) return core::module_result::drop();
    core::module_result r = core::module_result::drop();  // request consumed
    r.verdict = core::decision::deliver();
    r.sends.push_back(core::outbound{*hop, std::move(response), *cached});
    return r;
  }

  ++cache_misses_;
  cache_misses_metric_.add(ctx);
  return plain_forward(ctx, pkt, /*cacheable=*/false);
}

}  // namespace interedge::services
