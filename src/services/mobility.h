// Mobility lookup service (paper §6.3 lists "mobility lookup service"
// among the services running on the prototype).
//
// The problem: a host's first-hop SN association changes when it moves
// (new access network, new IESP). Peers holding its old association keep
// sending through the old SN. This service keeps the binding fresh:
//
//   announce  — the moved host tells its NEW first-hop SN, which updates
//               the host's record in the global lookup service and leaves
//               a forwarding breadcrumb at the OLD SN (via a control
//               message), so in-flight traffic chases the host;
//   locate    — any host asks its SN for a peer's current first-hop SNs.
//
// The breadcrumb makes the old SN forward mobility-service data packets to
// the new SN for a grace period instead of dropping them.
#pragma once

#include <map>

#include "core/service_module.h"
#include "edomain/domain_core.h"
#include "services/common.h"

namespace interedge::services {

namespace mobility_ops {
inline constexpr const char* announce = "announce";
inline constexpr const char* locate = "locate";
inline constexpr const char* located = "located";
inline constexpr const char* breadcrumb = "breadcrumb";
}  // namespace mobility_ops

class mobility_service final : public core::service_module {
 public:
  mobility_service(edomain::domain_core& core, core::peer_id self)
      : core_(core), self_(self) {}

  static constexpr ilp::service_id kId = ilp::svc::mobility;
  ilp::service_id id() const override { return kId; }
  std::string_view name() const override { return "mobility"; }

  void start(core::service_context& ctx) override;
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  std::uint64_t announces() const { return announces_; }
  std::uint64_t forwarded_via_breadcrumb() const { return breadcrumbed_; }
  bool has_breadcrumb(core::edge_addr host) const { return breadcrumbs_.count(host) > 0; }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);

  bool crumb_fresh(core::service_context& ctx, core::edge_addr host);

  edomain::domain_core& core_;
  core::peer_id self_;
  struct crumb_entry {
    core::peer_id new_sn = 0;
    time_point installed{};
  };
  // host -> its new first-hop SN (left at the OLD SN after a move).
  // Config "breadcrumb_ttl_ms" (default 0 = never expire) bounds the grace
  // period: stragglers past the TTL fall back to the (refreshed) lookup
  // route instead of chasing a stale crumb forever.
  std::map<core::edge_addr, crumb_entry> breadcrumbs_;
  std::uint64_t announces_ = 0;
  std::uint64_t breadcrumbed_ = 0;
  counter_handle announces_metric_{"mobility.announces"};
  counter_handle breadcrumbed_metric_{"mobility.breadcrumbed"};
  counter_handle crumb_expired_metric_{"mobility.breadcrumbs_expired"};
  counter_handle invalidated_metric_{"mobility.reanchor_invalidations"};
};

}  // namespace interedge::services
