// Mobility lookup service (paper §6.3 lists "mobility lookup service"
// among the services running on the prototype).
//
// The problem: a host's first-hop SN association changes when it moves
// (new access network, new IESP). Peers holding its old association keep
// sending through the old SN. This service keeps the binding fresh:
//
//   announce  — the moved host tells its NEW first-hop SN, which updates
//               the host's record in the global lookup service and leaves
//               a forwarding breadcrumb at the OLD SN (via a control
//               message), so in-flight traffic chases the host;
//   locate    — any host asks its SN for a peer's current first-hop SNs.
//
// The breadcrumb makes the old SN forward mobility-service data packets to
// the new SN for a grace period instead of dropping them.
#pragma once

#include <map>

#include "core/service_module.h"
#include "edomain/domain_core.h"
#include "services/common.h"

namespace interedge::services {

namespace mobility_ops {
inline constexpr const char* announce = "announce";
inline constexpr const char* locate = "locate";
inline constexpr const char* located = "located";
inline constexpr const char* breadcrumb = "breadcrumb";
}  // namespace mobility_ops

class mobility_service final : public core::service_module {
 public:
  mobility_service(edomain::domain_core& core, core::peer_id self)
      : core_(core), self_(self) {}

  static constexpr ilp::service_id kId = ilp::svc::mobility;
  ilp::service_id id() const override { return kId; }
  std::string_view name() const override { return "mobility"; }

  void start(core::service_context& ctx) override {
    announces_metric_.bind(ctx);
    breadcrumbed_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  std::uint64_t announces() const { return announces_; }
  std::uint64_t forwarded_via_breadcrumb() const { return breadcrumbed_; }
  bool has_breadcrumb(core::edge_addr host) const { return breadcrumbs_.count(host) > 0; }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);

  edomain::domain_core& core_;
  core::peer_id self_;
  // host -> its new first-hop SN (left at the OLD SN after a move).
  std::map<core::edge_addr, core::peer_id> breadcrumbs_;
  std::uint64_t announces_ = 0;
  std::uint64_t breadcrumbed_ = 0;
  counter_handle announces_metric_{"mobility.announces"};
  counter_handle breadcrumbed_metric_{"mobility.breadcrumbed"};
};

}  // namespace interedge::services
