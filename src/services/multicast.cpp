#include "services/multicast.h"

#include "common/serial.h"

namespace interedge::services {

void multicast_service::reply(core::service_context& ctx, const core::packet& pkt,
                              const std::string& op, const std::string& detail) {
  const auto reply_to = pkt.header.meta_u64(ilp::meta_key::reply_to);
  if (!reply_to) return;
  ilp::ilp_header h;
  h.service = ilp::svc::multicast;
  h.connection = pkt.header.connection;
  h.flags = ilp::kFlagControl | ilp::kFlagToHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  ctx.send(*reply_to, h, to_bytes(detail));
}

bool multicast_service::is_registered_sender(const std::string& group,
                                             core::edge_addr host) const {
  auto it = senders_.find(group);
  return it != senders_.end() && it->second.count(host) > 0;
}

core::module_result multicast_service::handle_control(core::service_context& ctx,
                                                      const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto group = get_skey_str(pkt.header, skey::group);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !group || !src) return core::module_result::drop();

  const bool auto_open = ctx.config("auto_open_groups", "false") == "true";
  if (*op == ops::join) {
    if (!fanout_.may_join(*group, *src, auto_open)) {
      reply(ctx, pkt, ops::deny, *group);
      denied_joins_metric_.add(ctx);
      return core::module_result::deliver();
    }
    fanout_.local_join(*group, *src);
    reply(ctx, pkt, ops::publish_ack, *group);
    return core::module_result::deliver();
  }
  if (*op == ops::leave) {
    fanout_.local_leave(*group, *src);
    reply(ctx, pkt, ops::publish_ack, *group);
    return core::module_result::deliver();
  }
  if (*op == ops::register_sender) {
    // Registration itself needs no owner signature in the paper's text;
    // it exists for scalability (the SN pre-fetches membership state).
    senders_[*group].insert(*src);
    fanout_.core().register_sender(*group, ctx.node_id());
    reply(ctx, pkt, ops::publish_ack, *group);
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result multicast_service::on_packet(core::service_context& ctx,
                                                 const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);
  const auto group = get_skey_str(pkt.header, skey::group);
  if (!group) return core::module_result::drop();

  // Sender registration is enforced only at the origin SN (relay copies
  // come from peer SNs, which already enforced it).
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  const bool from_host = src && pkt.l3_src == *src &&
                         !get_skey_u64(pkt.header, skey::origin_addr).has_value();
  if (from_host && !is_registered_sender(*group, *src)) {
    unregistered_drops_metric_.add(ctx);
    return core::module_result::drop();
  }
  return fanout_.fan_out(ctx, pkt, *group);
}

bytes multicast_service::checkpoint(core::service_context&) {
  writer w;
  w.blob(fanout_.checkpoint());
  w.varint(senders_.size());
  for (const auto& [group, hosts] : senders_) {
    w.str(group);
    w.varint(hosts.size());
    for (core::edge_addr h : hosts) w.u64(h);
  }
  return w.take();
}

void multicast_service::restore(core::service_context&, const_byte_span state) {
  reader r(state);
  fanout_.restore(r.blob());
  std::map<std::string, std::set<core::edge_addr>> senders;
  const std::uint64_t n = r.varint();
  for (std::uint64_t g = 0; g < n; ++g) {
    std::string group = r.str();
    const std::uint64_t count = r.varint();
    auto& hosts = senders[group];
    for (std::uint64_t i = 0; i < count; ++i) hosts.insert(r.u64());
  }
  senders_ = std::move(senders);
}

}  // namespace interedge::services
