#include "services/ddos.h"

#include "common/rng.h"
#include "common/serial.h"
#include "crypto/kdf.h"
#include "crypto/random.h"

namespace interedge::services {

void ddos_service::start(core::service_context& ctx) {
  protected_metric_.bind(ctx);
  denied_metric_.bind(ctx);
  rate_limited_metric_.bind(ctx);
  spoof_rejected_metric_.bind(ctx);
  invalidated_metric_.bind(ctx);
  secret_.resize(32);
  if (secret_seed_ != 0) {
    rng(secret_seed_).fill(secret_);
  } else {
    crypto::random_bytes(secret_);
  }
}

bytes ddos_service::token_for(core::edge_addr dest, core::edge_addr sender) const {
  writer w(16);
  w.u64(dest);
  w.u64(sender);
  const auto mac = crypto::hmac_sha256(secret_, w.data());
  return bytes(mac.begin(), mac.end());
}

core::module_result ddos_service::handle_control(core::service_context& ctx,
                                                 const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !src) return core::module_result::drop();

  if (*op == ops::protect) {
    protected_.insert(*src);
    protected_metric_.add(ctx);
    // Flows admitted before protection hold cached forward verdicts that
    // now bypass default-deny — purge them so every in-flight connection
    // re-faces admission.
    ctx.invalidate_service(id());
    invalidated_metric_.add(ctx);
    return core::module_result::deliver();
  }
  if (*op == ops::allow) {
    // Only the protected host itself can admit senders to its allowlist.
    if (!protected_.count(*src)) return core::module_result::drop();
    // Symmetrically, a newly allowed sender may have cached drop verdicts
    // from pre-allow denials — purge so its next packet is re-judged.
    ctx.invalidate_service(id());
    invalidated_metric_.add(ctx);
    try {
      reader r(pkt.payload);
      const core::edge_addr sender = r.u64();
      allowlist_[*src].insert(sender);
      // Hand the capability token back to the protected host for
      // out-of-band distribution to the sender.
      ilp::ilp_header reply;
      reply.service = ilp::svc::ddos_protect;
      reply.connection = pkt.header.connection;
      reply.flags = ilp::kFlagControl | ilp::kFlagToHost;
      reply.set_meta_str(ilp::meta_key::control_op, ops::allow);
      ctx.send(*src, reply, token_for(*src, sender));
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

bool ddos_service::admit_rate(core::service_context& ctx, core::edge_addr dest,
                              core::edge_addr sender) {
  bucket& b = buckets_[{dest, sender}];
  const time_point now = ctx.now();
  if (b.last.time_since_epoch().count() == 0) {
    b.tokens = burst_;
  } else {
    const double elapsed_s =
        static_cast<double>((now - b.last).count()) / 1e9;
    b.tokens = std::min(burst_, b.tokens + elapsed_s * rate_pps_);
  }
  b.last = now;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

core::module_result ddos_service::on_packet(core::service_context& ctx,
                                            const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);

  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();

  if (protected_.count(*dest)) {
    const core::edge_addr sender =
        pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src);
    bool admitted = false;
    auto allow_it = allowlist_.find(*dest);
    if (allow_it != allowlist_.end() && allow_it->second.count(sender)) {
      // uRPF-style spoof check for allowlist admission: a packet claiming
      // `sender` must arrive over the adjacency this SN would use toward
      // `sender` (the sender itself when host-attached, its gateway when
      // relayed). Capability tokens skip this — they are unforgeable.
      const auto reverse = ctx.next_hop(sender);
      if (pkt.l3_src == sender || (reverse && *reverse == pkt.l3_src)) {
        admitted = true;
      } else {
        ++spoof_rejected_;
        spoof_rejected_metric_.add(ctx);
      }
    }
    if (!admitted) {
      if (const auto token = get_skey_bytes(pkt.header, skey::auth_token)) {
        admitted = ct_equal(*token, token_for(*dest, sender));
      }
    }
    if (!admitted) {
      ++denied_;
      denied_metric_.add(ctx);
      // Shed this connection on the fast path from now on.
      core::module_result r = core::module_result::drop();
      r.cache_inserts.emplace_back(
          core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
          core::decision::drop_packet());
      return r;
    }
    if (!admit_rate(ctx, *dest, sender)) {
      ++rate_limited_;
      rate_limited_metric_.add(ctx);
      return core::module_result::drop();
    }
  }

  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();
  // Admitted traffic is by default NOT fast-path cached: the rate limit
  // must see every packet. With admit_cache_ttl_ms set, a short-TTL
  // forward entry is installed instead — the flow rides the fast path
  // between expiries (surviving slow-path saturation during an attack)
  // and the rate limit re-checks it each time the entry ages out.
  if (protected_.count(*dest)) {
    core::module_result r = core::module_result::forward(*hop);
    // Read lazily: operators set this via set_config after deploy.
    const auto ttl_ms = std::stoul(ctx.config("admit_cache_ttl_ms", "0"));
    if (ttl_ms > 0) {
      core::decision d = core::decision::forward_to(*hop);
      d.ttl = std::chrono::milliseconds(ttl_ms);
      r.cache_inserts.emplace_back(
          core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection}, d);
    }
    return r;
  }
  core::module_result r = core::module_result::forward(*hop);
  r.cache_inserts.emplace_back(
      core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
      core::decision::forward_to(*hop));
  return r;
}

}  // namespace interedge::services
