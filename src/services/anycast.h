// Anycast service module (paper §6): join/leave like multicast, but a
// datagram sent to the group reaches exactly one member, preferring the
// nearest (same-SN member, then same-edomain, then a remote edomain).
#pragma once

#include "core/service_module.h"
#include "services/fanout.h"

namespace interedge::services {

class anycast_service final : public core::service_module {
 public:
  anycast_service(edomain::domain_core& core, core::peer_id self)
      : fanout_(core, self, ilp::svc::anycast) {}

  ilp::service_id id() const override { return ilp::svc::anycast; }
  std::string_view name() const override { return "anycast"; }

  void start(core::service_context& ctx) override { denied_joins_metric_.bind(ctx); }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override { return fanout_.checkpoint(); }
  void restore(core::service_context&, const_byte_span state) override {
    fanout_.restore(state);
  }

  std::size_t members(const std::string& group) const {
    return fanout_.local_member_count(group);
  }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);

  group_fanout fanout_;
  counter_handle denied_joins_metric_{"anycast.denied_joins"};
};

}  // namespace interedge::services
