// Shared vocabulary for the standardized service modules (paper §6).
//
// Service-private metadata keys live at >= 0x100; the well-known keys are
// in ilp/header.h. Control operations are the strings carried in
// meta_key::control_op on kFlagControl packets.
#pragma once

#include <cstdint>

#include "core/service_module.h"
#include "ilp/header.h"

namespace interedge::services {

// Cached metric handle (ISSUE 2): service modules resolve their counters
// once — in start(), or lazily on the first add for modules driven outside
// exec_env (bench harnesses call on_packet directly) — so the packet path
// never takes the registry mutex or the name-map lookup.
class counter_handle {
 public:
  explicit counter_handle(const char* name) : name_(name) {}

  void bind(core::service_context& ctx) { c_ = &ctx.metrics().get_counter(name_); }

  void add(core::service_context& ctx, std::uint64_t n = 1) {
    if (c_ == nullptr) bind(ctx);
    c_->add(n);
  }

  bool bound() const { return c_ != nullptr; }

 private:
  const char* name_;
  counter* c_ = nullptr;
};

// Service-private ILP metadata keys.
enum class skey : std::uint16_t {
  group = 0x100,          // str: topic / multicast group / anycast group name
  stage = 0x101,          // u64: fan-out relay stage (see fanout.h)
  target_domain = 0x102,  // u64: edomain a domain-relay copy is headed for
  content_key = 0x103,    // str: cache/CDN content identifier
  auth_token = 0x104,     // blob: capability (DDoS/VPN admission)
  queue_name = 0x105,     // str: message-queue name
  msg_seq = 0x106,        // u64: per-sender sequence number
  timestamp_ns = 0x107,   // u64: GPS-clock timestamp (ordered delivery)
  chunk_index = 0x108,    // u64: bulk-delivery chunk number
  chunk_count = 0x109,    // u64: total chunks in the object
  object_id = 0x10a,      // str: bulk-delivery object identifier
  origin_addr = 0x10b,    // u64: original source (when an SN re-originates)
};

inline void set_skey_u64(ilp::ilp_header& h, skey key, std::uint64_t value) {
  std::uint8_t enc[8];
  for (int i = 0; i < 8; ++i) enc[i] = static_cast<std::uint8_t>(value >> (8 * i));
  h.metadata[static_cast<std::uint16_t>(key)] = bytes(enc, enc + 8);
}

inline void set_skey_str(ilp::ilp_header& h, skey key, std::string_view value) {
  h.metadata[static_cast<std::uint16_t>(key)] = to_bytes(value);
}

inline void set_skey_bytes(ilp::ilp_header& h, skey key, const_byte_span value) {
  h.metadata[static_cast<std::uint16_t>(key)] = bytes(value.begin(), value.end());
}

inline std::optional<std::uint64_t> get_skey_u64(const ilp::ilp_header& h, skey key) {
  auto it = h.metadata.find(static_cast<std::uint16_t>(key));
  if (it == h.metadata.end() || it->second.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(it->second[i]) << (8 * i);
  return v;
}

inline std::optional<std::string> get_skey_str(const ilp::ilp_header& h, skey key) {
  auto it = h.metadata.find(static_cast<std::uint16_t>(key));
  if (it == h.metadata.end()) return std::nullopt;
  return to_string(it->second);
}

inline std::optional<const_byte_span> get_skey_bytes(const ilp::ilp_header& h, skey key) {
  auto it = h.metadata.find(static_cast<std::uint16_t>(key));
  if (it == h.metadata.end()) return std::nullopt;
  return const_byte_span(it->second);
}

// Control operation names (standardized so configuration is portable
// across IESPs, §5).
namespace ops {
inline constexpr const char* subscribe = "subscribe";
inline constexpr const char* unsubscribe = "unsubscribe";
inline constexpr const char* join = "join";
inline constexpr const char* leave = "leave";
inline constexpr const char* register_sender = "register-sender";
inline constexpr const char* publish_ack = "ack";
inline constexpr const char* deny = "deny";
inline constexpr const char* qos_configure = "qos-configure";
inline constexpr const char* protect = "protect";
inline constexpr const char* allow = "allow";
inline constexpr const char* vpn_register = "vpn-register";
inline constexpr const char* vpn_auth_ok = "vpn-auth-ok";
inline constexpr const char* queue_create = "queue-create";
inline constexpr const char* queue_push = "queue-push";
inline constexpr const char* queue_pop = "queue-pop";
inline constexpr const char* queue_ack = "queue-ack";
inline constexpr const char* queue_msg = "queue-msg";
inline constexpr const char* queue_empty = "queue-empty";
}  // namespace ops

// Bundle option bits (meta_key::bundle_options) for the delivery bundle.
inline constexpr std::uint64_t kBundleCaching = 1 << 0;

}  // namespace interedge::services
