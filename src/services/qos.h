// Last-hop QoS service (paper §6): "receivers ... specify to their
// first-hop SN (which is presumably on the other side of their congested
// network access link) the total bandwidth that their access link can
// handle and a set of weights or priorities ... for various traffic
// streams (identified by source prefixes). This approach would allow a
// household to give high priority to gaming traffic ... while still
// preserving enough bandwidth for streaming movies."
//
// The module shapes traffic destined to a configured receiver to the
// declared access-link rate, scheduling releases with WFQ + priority.
// Configuration arrives out of band (control op "qos-configure") with a
// serialized qos_profile; it is standardized, so moving to another IESP
// needs no reconfiguration (§5).
#pragma once

#include <map>
#include <vector>

#include "core/service_module.h"
#include "services/common.h"
#include "services/wfq.h"

namespace interedge::services {

struct qos_stream_rule {
  // Source prefix: addr/prefix_bits over the 64-bit address space.
  std::uint64_t src_prefix = 0;
  std::uint8_t prefix_bits = 0;  // 0 matches everything
  std::uint32_t priority = 1;
  double weight = 1.0;

  bool matches(std::uint64_t src) const {
    if (prefix_bits == 0) return true;
    const std::uint64_t mask = prefix_bits >= 64 ? ~0ull : ~((1ull << (64 - prefix_bits)) - 1);
    return (src & mask) == (src_prefix & mask);
  }
};

struct qos_profile {
  std::uint64_t access_bps = 0;  // declared last-mile capacity
  std::vector<qos_stream_rule> rules;

  bytes encode() const;
  static qos_profile decode(const_byte_span data);  // throws serial_error
};

class qos_service final : public core::service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::last_hop_qos; }
  std::string_view name() const override { return "last-hop-qos"; }

  void start(core::service_context& ctx) override { profiles_metric_.bind(ctx); }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bool has_profile(core::edge_addr receiver) const { return receivers_.count(receiver) > 0; }
  std::uint64_t shaped(core::edge_addr receiver) const;
  std::uint64_t dropped(core::edge_addr receiver) const;

 private:
  struct pending_packet {
    ilp::ilp_header header;
    bytes payload;
  };
  struct receiver_state {
    qos_profile profile;
    wfq_scheduler<pending_packet> scheduler;
    bool draining = false;
    std::uint64_t shaped = 0;
  };

  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);
  void start_drain(core::service_context& ctx, core::edge_addr receiver);
  // Rule index for a source under a receiver's profile (first match wins).
  static std::size_t classify(const qos_profile& profile, std::uint64_t src);

  std::map<core::edge_addr, receiver_state> receivers_;
  counter_handle profiles_metric_{"qos.profiles"};
};

}  // namespace interedge::services
