// Mixnet service (paper §6: "ToR-like mixnet infrastructures" as a
// privacy-aware service; "mixnets" is first in the prototype's
// deployed-services list).
//
// Onion routing over SNs: the client picks a chain of mix SNs, wraps the
// message in nested envelopes (one per hop, sealed to that mix's published
// key), and each mix peels exactly one layer — learning only its successor.
// The exit mix delivers the innermost payload to the destination host with
// the original sender identity absent.
//
// Layer plaintext (serialized): u8 type (0 relay, 1 exit) || u64 next ||
// blob inner. See services/clients/mixnet_client.h for the onion builder.
// Deploying the module inside an enclave_runtime keeps even the peeled
// routing information out of the untrusted part of the SN.
#pragma once

#include "core/service_module.h"
#include "crypto/x25519.h"
#include "services/common.h"

namespace interedge::services {

inline constexpr std::uint8_t kMixRelay = 0;
inline constexpr std::uint8_t kMixExit = 1;

class mixnet_service final : public core::service_module {
 public:
  mixnet_service();
  explicit mixnet_service(const crypto::x25519_key& seed);

  ilp::service_id id() const override { return ilp::svc::mixnet; }
  std::string_view name() const override { return "mixnet"; }

  void start(core::service_context& ctx) override { peeled_metric_.bind(ctx); }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  // Published in the mix directory the clients use.
  const crypto::x25519_key& public_key() const { return keypair_.public_key; }

  std::uint64_t peeled() const { return peeled_; }
  std::uint64_t exited() const { return exited_; }

 private:
  crypto::x25519_keypair keypair_;
  std::uint64_t peeled_ = 0;
  std::uint64_t exited_ = 0;
  counter_handle peeled_metric_{"mixnet.peeled"};
};

}  // namespace interedge::services
