// Time-ordered message delivery (paper §6 "Specialty services"):
// "If InterEdge requires that SNs be equipped with GPS receivers, it could
// offer a high-latency ... but ordered message delivery system. While such
// a system cannot guarantee atomicity (since we cannot assume bounds on
// message latencies), ... even ordering in the absence of atomicity can
// reduce coordination overheads for applications."
//
// Mechanics: the origin SN stamps each message with its GPS clock (the
// simulation clock plus a per-SN deterministic jitter modeling GPS
// precision, config "clock_jitter_ns"). The destination's first-hop SN
// buffers arrivals and releases them in (timestamp, origin, seq) order
// after a fixed delay window (config "release_delay_ms") — messages
// arriving later than the window may be released out of order, which is
// exactly the non-atomic guarantee the paper describes.
#pragma once

#include <map>
#include <set>
#include <tuple>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

class ordered_delivery_service final : public core::service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::ordered_delivery; }
  std::string_view name() const override { return "ordered-delivery"; }

  void start(core::service_context& ctx) override {
    stamped_metric_.bind(ctx);
    late_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  std::uint64_t stamped() const { return stamped_; }
  std::uint64_t released() const { return released_; }
  std::uint64_t late() const { return late_; }

 private:
  // Ordering key: (timestamp, origin, sequence) — total order across SNs.
  using order_key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  struct buffered {
    ilp::ilp_header header;
    bytes payload;
  };
  struct receiver_buffer {
    std::map<order_key, buffered> pending;
    // Highest timestamp already released: later arrivals below this are
    // "late" (ordering violation the window could not absorb).
    std::uint64_t released_watermark = 0;
  };

  std::uint64_t gps_now(core::service_context& ctx) const;
  void schedule_release(core::service_context& ctx, core::edge_addr receiver);

  std::map<core::edge_addr, receiver_buffer> buffers_;
  std::map<core::edge_addr, std::uint64_t> seq_;  // per-origin-host sequence
  std::uint64_t stamped_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t late_ = 0;
  counter_handle stamped_metric_{"ordered.stamped"};
  counter_handle late_metric_{"ordered.late"};
};

}  // namespace interedge::services
