#include "services/cluster_interconnect.h"

namespace interedge::services {

core::module_result cluster_interconnect_service::on_packet(core::service_context& ctx,
                                                            const core::packet& pkt) {
  const auto cluster = get_skey_str(pkt.header, skey::group);
  if (pkt.header.flags & ilp::kFlagControl) {
    const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
    const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
    if (!op || !cluster || !src) return core::module_result::drop();
    if (*op == cluster_ops::attach) {
      // Cluster fabrics are private: membership is grant-gated unless the
      // cluster owner opened it (auto-open off, like multicast).
      const bool auto_open = ctx.config("auto_open_clusters", "true") == "true";
      if (!fanout_.may_join(*cluster, *src, auto_open)) {
        denied_metric_.add(ctx);
        return core::module_result::deliver();
      }
      fanout_.local_join(*cluster, *src);
      gateways_metric_.add(ctx);
      return core::module_result::deliver();
    }
    if (*op == cluster_ops::detach) {
      fanout_.local_leave(*cluster, *src);
      return core::module_result::deliver();
    }
    return core::module_result::drop();
  }

  // Encapsulated cluster frame: fan out to every other site gateway. The
  // inner (private) destination rides in the payload, opaque to us.
  if (!cluster) return core::module_result::drop();
  frames_metric_.add(ctx);
  return fanout_.fan_out(ctx, pkt, *cluster);
}

}  // namespace interedge::services
