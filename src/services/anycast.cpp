#include "services/anycast.h"

namespace interedge::services {

core::module_result anycast_service::handle_control(core::service_context& ctx,
                                                    const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto group = get_skey_str(pkt.header, skey::group);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !group || !src) return core::module_result::drop();

  const bool auto_open = ctx.config("auto_open_groups", "true") == "true";
  if (*op == ops::join) {
    if (!fanout_.may_join(*group, *src, auto_open)) {
      denied_joins_metric_.add(ctx);
      return core::module_result::deliver();
    }
    fanout_.local_join(*group, *src);
    return core::module_result::deliver();
  }
  if (*op == ops::leave) {
    fanout_.local_leave(*group, *src);
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result anycast_service::on_packet(core::service_context& ctx,
                                               const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);
  const auto group = get_skey_str(pkt.header, skey::group);
  if (!group) return core::module_result::drop();
  return fanout_.deliver_one(ctx, pkt, *group);
}

}  // namespace interedge::services
