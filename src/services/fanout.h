// Group fan-out machinery shared by the pub/sub, multicast, and anycast
// modules (paper §6 "Multipoint delivery").
//
// State per SN (exactly what §6 prescribes):
//   * the local member hosts that joined through this SN;
//   * via the edomain core: which other local SNs have members, and which
//     remote edomains have members (lookup-sourced, watch-maintained).
//
// Data-plane relay protocol (metadata-driven, loop-free):
//   * a packet from a member host (no relay markers) is the *origin* stage:
//     the SN registers as sender with its core and emits copies to (a) each
//     local member SN, (b) per remote member edomain, the gateway path with
//     skey::target_domain set;
//   * a packet with target_domain != this edomain is in gateway transit:
//     forward along the gateway chain;
//   * a packet with target_domain == this edomain re-fans out inside the
//     domain (gateway ingress);
//   * a packet from another SN without target_domain is an intra-domain
//     relay copy: deliver to local member hosts only.
#pragma once

#include <map>
#include <set>
#include <string>

#include "core/service_module.h"
#include "edomain/domain_core.h"
#include "services/common.h"

namespace interedge::services {

class group_fanout {
 public:
  group_fanout(edomain::domain_core& core, core::peer_id self, ilp::service_id service)
      : core_(core), self_(self), service_(service) {}

  // ---- membership (driven by validated control packets) ----
  void local_join(const std::string& group, core::edge_addr member);
  void local_leave(const std::string& group, core::edge_addr member);
  bool is_local_member(const std::string& group, core::edge_addr member) const;
  std::size_t local_member_count(const std::string& group) const;

  // Authorization check against the global lookup service. With auto_open,
  // unclaimed groups are created open on first use.
  bool may_join(const std::string& group, core::edge_addr member, bool auto_open);

  // ---- data plane ----
  // Fan out to every member (pub/sub, multicast).
  core::module_result fan_out(core::service_context& ctx, const core::packet& pkt,
                              const std::string& group);
  // Deliver to exactly one member, preferring the closest (anycast).
  core::module_result deliver_one(core::service_context& ctx, const core::packet& pkt,
                                  const std::string& group);

  // ---- checkpointing ----
  bytes checkpoint() const;
  void restore(const_byte_span state);

  edomain::domain_core& core() { return core_; }

 private:
  enum class role { origin, gateway_transit, gateway_ingress, relay };
  role classify(const core::packet& pkt) const;
  // Builds the copy sent to another SN.
  core::outbound relay_copy(const core::packet& pkt, core::peer_id to,
                            std::optional<edomain::edomain_id> target_domain) const;
  void deliver_local(core::module_result& result, const core::packet& pkt,
                     const std::string& group) const;
  // Gateway hop toward a remote edomain: local gateway or (if we are the
  // gateway) the remote gateway.
  std::optional<core::peer_id> gateway_hop(edomain::edomain_id domain) const;

  edomain::domain_core& core_;
  core::peer_id self_;
  ilp::service_id service_;
  std::map<std::string, std::set<core::edge_addr>> local_members_;
  // Lazily bound: group_fanout is a shared helper, not a module, so it has
  // no start() hook; the first data packet resolves the handles.
  counter_handle origin_metric_{"fanout.origin_packets"};
  counter_handle local_hits_metric_{"anycast.local_hits"};
};

}  // namespace interedge::services
