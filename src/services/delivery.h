// Delivery bundle (paper §3.2): "naturally composable services can be
// combined into 'bundles' (e.g., an IP-like service and a caching service)
// that hosts can invoke, and the invocation may have optional settings
// (signalled in the metadata) that control various aspects of the service
// (e.g., whether or not to invoke caching)."
//
// Plain mode: IP-like forwarding by destination address, decision-cached.
// With kBundleCaching set and a content key present, the SN additionally
// runs a CDN-style content cache:
//   * content request  (stage 0, empty payload): answered from the local
//     cache when possible, else forwarded toward the origin;
//   * content response (stage 1, payload = object): cached on every SN it
//     traverses (so the client's first-hop SN serves the next request),
//     then forwarded to the client.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

inline constexpr std::uint64_t kContentRequest = 0;
inline constexpr std::uint64_t kContentResponse = 1;

class delivery_service final : public core::service_module {
 public:
  explicit delivery_service(std::size_t max_cached_objects = 1024)
      : max_cached_(max_cached_objects) {}

  ilp::service_id id() const override { return ilp::svc::delivery; }
  std::string_view name() const override { return "delivery"; }

  void start(core::service_context& ctx) override {
    cache_hits_metric_.bind(ctx);
    cache_misses_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }
  std::uint64_t cache_expiries() const { return cache_expiries_; }
  std::uint64_t cached_objects() const { return cached_keys_.size(); }

 private:
  core::module_result plain_forward(core::service_context& ctx, const core::packet& pkt,
                                    bool cacheable);
  void store_content(core::service_context& ctx, const std::string& key, const bytes& body);
  // Cached body if present and within the configured TTL; expired entries
  // are dropped on access.
  std::optional<bytes> fresh_content(core::service_context& ctx, const std::string& key);

  std::size_t max_cached_;
  std::deque<std::string> cached_keys_;  // FIFO eviction order
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_expiries_ = 0;
  counter_handle cache_hits_metric_{"delivery.cache_hits"};
  counter_handle cache_misses_metric_{"delivery.cache_misses"};
};

}  // namespace interedge::services
