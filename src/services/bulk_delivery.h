// Bulk data delivery service (paper §6 "Specialty services"): "Bulk data
// delivery is a form of multipoint delivery but focuses on large data
// transfers rather than single packets or messages. The InterEdge could
// incorporate an interconnected version of this, and we are currently
// building such a service for possible use for large experimental datasets
// in the scientific community."
//
// Objects are split into chunks by the sending client; each chunk fans out
// to the group (via the same machinery as multicast) and every SN it
// traverses caches it, so (a) receivers in the same edomain cost one
// cross-domain transfer, and (b) a receiver missing chunks re-fetches them
// from its own first-hop SN instead of the sender ("fetch" control op).
#pragma once

#include <deque>

#include "core/service_module.h"
#include "services/fanout.h"

namespace interedge::services {

class bulk_delivery_service final : public core::service_module {
 public:
  bulk_delivery_service(edomain::domain_core& core, core::peer_id self,
                        std::size_t max_cached_chunks = 4096)
      : fanout_(core, self, ilp::svc::bulk_delivery), max_cached_(max_cached_chunks) {}

  ilp::service_id id() const override { return ilp::svc::bulk_delivery; }
  std::string_view name() const override { return "bulk-delivery"; }

  void start(core::service_context& ctx) override { refetch_hits_metric_.bind(ctx); }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override { return fanout_.checkpoint(); }
  void restore(core::service_context&, const_byte_span state) override {
    fanout_.restore(state);
  }

  std::uint64_t chunks_cached() const { return cached_keys_.size(); }
  std::uint64_t refetch_hits() const { return refetch_hits_; }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);
  void cache_chunk(core::service_context& ctx, const std::string& object,
                   std::uint64_t index, const bytes& body);

  group_fanout fanout_;
  std::size_t max_cached_;
  std::deque<std::string> cached_keys_;
  std::uint64_t refetch_hits_ = 0;
  counter_handle refetch_hits_metric_{"bulk.refetch_hits"};
};

}  // namespace interedge::services
