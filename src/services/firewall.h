// Operator-imposed firewall (paper §3.2, third invocation mode): "an
// enterprise may impose a firewall service ... on all traffic entering and
// leaving its network. In this case, the enterprise would have what we call
// a 'pass-through' SN at its boundary that terminates ILP and executes the
// operator-imposed services, and then forwards to the next-hop SN."
//
// Rules match on (source addr, dest addr, service id); any field may be a
// wildcard. Default policy is allow; the operator installs deny rules via
// standardized configuration.
#pragma once

#include <vector>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

struct firewall_rule {
  static constexpr std::uint64_t kAny = 0xffffffffffffffffull;
  std::uint64_t src = kAny;       // edge addr or kAny
  std::uint64_t dest = kAny;      // edge addr or kAny
  std::uint64_t service = kAny;   // inner service id or kAny
  bool allow = false;             // first matching rule wins

  bool matches(std::uint64_t s, std::uint64_t d, std::uint64_t svc) const {
    return (src == kAny || src == s) && (dest == kAny || dest == d) &&
           (service == kAny || service == svc);
  }
};

class firewall_service final : public core::service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::firewall; }
  std::string_view name() const override { return "firewall"; }

  void add_rule(firewall_rule rule) { rules_.push_back(rule); }
  void clear_rules() { rules_.clear(); }

  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override {
    const std::uint64_t src =
        pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src);
    const std::uint64_t dest = pkt.header.meta_u64(ilp::meta_key::dest_addr).value_or(0);
    // The inner service the packet would use past the boundary. The
    // pass-through SN sees it in metadata (origin service id).
    const std::uint64_t inner = get_skey_u64(pkt.header, skey::origin_addr).value_or(
        static_cast<std::uint64_t>(pkt.header.service));

    for (const firewall_rule& rule : rules_) {
      if (!rule.matches(src, dest, inner)) continue;
      if (!rule.allow) {
        ++blocked_;
        // Deny decisions are cacheable: same connection keeps hitting the
        // fast path as a drop.
        core::module_result r = core::module_result::drop();
        r.cache_inserts.emplace_back(
            core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
            core::decision::drop_packet());
        return r;
      }
      break;  // explicit allow
    }

    if (dest == 0) return core::module_result::drop();
    const auto hop = ctx.next_hop(dest);
    if (!hop) return core::module_result::drop();
    core::module_result r = core::module_result::forward(*hop);
    r.cache_inserts.emplace_back(
        core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
        core::decision::forward_to(*hop));
    return r;
  }

  std::uint64_t blocked() const { return blocked_; }

 private:
  std::vector<firewall_rule> rules_;
  std::uint64_t blocked_ = 0;
};

}  // namespace interedge::services
