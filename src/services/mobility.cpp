#include "services/mobility.h"

#include "common/serial.h"

namespace interedge::services {

void mobility_service::start(core::service_context& ctx) {
  announces_metric_.bind(ctx);
  breadcrumbed_metric_.bind(ctx);
  crumb_expired_metric_.bind(ctx);
  invalidated_metric_.bind(ctx);
}

// True while the crumb is inside its grace period; expired crumbs are
// erased on access (TTL 0 = crumbs never expire, the historical behavior).
bool mobility_service::crumb_fresh(core::service_context& ctx, core::edge_addr host) {
  auto it = breadcrumbs_.find(host);
  if (it == breadcrumbs_.end()) return false;
  // Read lazily: operators set this via set_config after deploy.
  const nanoseconds ttl =
      std::chrono::milliseconds(std::stoul(ctx.config("breadcrumb_ttl_ms", "0")));
  if (ttl.count() > 0 && ctx.now() - it->second.installed >= ttl) {
    breadcrumbs_.erase(it);
    crumb_expired_metric_.add(ctx);
    return false;
  }
  return true;
}

core::module_result mobility_service::handle_control(core::service_context& ctx,
                                                     const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !src) return core::module_result::drop();
  auto& global = core_.global();

  if (*op == mobility_ops::announce) {
    // The moved host announces through its NEW first-hop SN (this one).
    const auto record = global.find_host(*src);
    if (!record) return core::module_result::drop();
    const auto old_sns = record->service_nodes;

    lookup::host_record updated = *record;
    updated.service_nodes = {self_};
    updated.edomain = core_.id();
    global.register_host(updated);
    ++announces_;
    announces_metric_.add(ctx);

    // Leave breadcrumbs at the previous SNs so in-flight traffic chases
    // the host to its new attachment.
    for (core::peer_id old_sn : old_sns) {
      if (old_sn == self_) continue;
      ilp::ilp_header crumb;
      crumb.service = kId;
      crumb.connection = pkt.header.connection;
      crumb.flags = ilp::kFlagControl;
      crumb.set_meta_str(ilp::meta_key::control_op, mobility_ops::breadcrumb);
      crumb.set_meta_u64(ilp::meta_key::src_addr, *src);
      writer w(8);
      w.u64(self_);
      ctx.send(old_sn, crumb, w.take());
    }
    return core::module_result::deliver();
  }

  if (*op == mobility_ops::breadcrumb) {
    // Installed at the OLD SN by the new one. Only accept from SNs (the
    // sender is the packet's L3 source, an SN, not a host).
    try {
      reader r(pkt.payload);
      breadcrumbs_[*src] = {r.u64(), ctx.now()};
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
    // The host re-anchored: cached forward verdicts at this (old) SN still
    // point flows at the stale attachment. Purge delivery and mobility
    // entries so in-flight connections re-resolve through the refreshed
    // lookup record (or this breadcrumb) instead of blackholing.
    ctx.invalidate_service(ilp::svc::delivery);
    ctx.invalidate_service(kId);
    invalidated_metric_.add(ctx);
    return core::module_result::deliver();
  }

  if (*op == mobility_ops::locate) {
    const auto target = pkt.header.meta_u64(ilp::meta_key::dest_addr);
    const auto reply_to = pkt.header.meta_u64(ilp::meta_key::reply_to);
    if (!target || !reply_to) return core::module_result::drop();
    const auto record = global.find_host(*target);
    ilp::ilp_header reply;
    reply.service = kId;
    reply.connection = pkt.header.connection;
    reply.flags = ilp::kFlagControl | ilp::kFlagToHost;
    reply.set_meta_str(ilp::meta_key::control_op, mobility_ops::located);
    reply.set_meta_u64(ilp::meta_key::dest_addr, *target);
    writer w;
    if (record) {
      w.varint(record->service_nodes.size());
      for (core::peer_id sn : record->service_nodes) w.u64(sn);
    } else {
      w.varint(0);
    }
    ctx.send(*reply_to, reply, w.take());
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

core::module_result mobility_service::on_packet(core::service_context& ctx,
                                                const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);

  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();

  // Breadcrumb chase: the destination moved away from this SN.
  if (crumb_fresh(ctx, *dest)) {
    ++breadcrumbed_;
    breadcrumbed_metric_.add(ctx);
    // NOT cached: the lookup record is already fresh, so new connections
    // route correctly; only stragglers take this path.
    return core::module_result::forward(breadcrumbs_.at(*dest).new_sn);
  }

  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();
  return core::module_result::forward(*hop);
}

}  // namespace interedge::services
